//! Federated-dispatch safety nets.
//!
//! * A **regression test pinning 1-shard bitwise parity**: a federation of
//!   one shard must reproduce the single-cluster run exactly — per-seed
//!   metrics *and* engine counters — for every mechanism. This is the
//!   oracle that keeps the `ClusterBackend` refactor honest.
//! * A **property test** over arbitrary feasible workloads and shard
//!   splits: a federation with the same total node count and a
//!   deterministic placement never produces a per-job outcome absent from
//!   the single-cluster run's outcome set (every job still reaches a
//!   terminal state, and no new failure modes — kills — appear out of
//!   nowhere).

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;
use proptest::prelude::*;

fn quiet(mechanism: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::with_mechanism(mechanism);
    // Wall-clock decision latency is the one non-simulated metric.
    cfg.measure_decisions = false;
    cfg
}

#[test]
fn one_shard_federation_is_bitwise_identical_to_single_cluster() {
    let tcfg = TraceConfig::small();
    for seed in [0u64, 7] {
        let trace = tcfg.generate(seed);
        for m in Mechanism::ALL_SIX {
            let plain = Simulator::run_trace(&quiet(m), &trace);
            let fed_cfg = quiet(m).federated(FederationConfig::even_split(1, trace.system_size));
            let fed = Simulator::run_trace(&fed_cfg, &trace);
            assert_eq!(
                fed.metrics,
                plain.metrics,
                "{} seed {seed}: 1-shard federation metrics diverged",
                m.name()
            );
            assert_eq!(
                fed.engine,
                plain.engine,
                "{} seed {seed}: 1-shard federation engine stats diverged",
                m.name()
            );
            let shards = fed.shards.expect("federated runs report shards");
            assert_eq!(shards.len(), 1);
            assert!(plain.shards.is_none());
        }
    }
}

#[test]
fn one_shard_federation_matches_on_the_swf_replay_baseline_shape() {
    // Same oracle on a paranoid run: the federation's per-event invariant
    // checks (shard conservation, home consistency) must also hold.
    let trace = TraceConfig::tiny().generate(3);
    let m = Mechanism::CUP_SPAA;
    let plain = Simulator::run_trace(&quiet(m), &trace);
    let fed_cfg = quiet(m)
        .federated(FederationConfig::even_split(1, trace.system_size))
        .paranoid();
    let fed = Simulator::run_trace(&fed_cfg, &trace);
    assert_eq!(fed.metrics, plain.metrics);
}

#[test]
fn class_affinity_and_least_loaded_runs_complete_and_conserve_shards() {
    let trace = TraceConfig::tiny().generate(1);
    // tiny() is a 1,000-node system; all generated sizes fit a 250-node
    // shard only sometimes — filter instead of assuming.
    let max_size = trace.jobs.iter().map(|j| j.size).max().unwrap();
    let shards = if max_size <= 250 { 4 } else { 2 };
    for fed in [
        FederationConfig::even_split(shards, trace.system_size).with_policy(LeastLoaded),
        FederationConfig::even_split(shards, trace.system_size).with_policy(ClassAffinity),
    ] {
        let cfg = quiet(Mechanism::CUA_SPAA).federated(fed).paranoid();
        let out = Simulator::run_trace(&cfg, &trace);
        let report = out.shards.expect("federated run");
        assert_eq!(report.len(), shards);
        let totals = ShardTotals::of(&report);
        assert_eq!(totals.nodes, trace.system_size);
        assert!(totals.occupied_node_seconds > 0);
        assert!(totals.jobs_started > 0);
        // No shard can be occupied beyond its capacity over the span.
        let span_secs = (out.metrics.span_hours * 3_600.0).round() as u64;
        for s in &report {
            assert!(s.occupancy(span_secs) <= 1.0 + 1e-9, "{s:?} over capacity");
        }
    }
}

#[test]
fn oversized_jobs_are_rejected_at_submit_not_starved() {
    // 64-node system split 2×32: a 40-node job can never run on any shard
    // and must terminate as killed instead of wedging the queue forever.
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(40)
            .work(D::from_secs(600))
            .build(),
        JobSpecBuilder::rigid(1)
            .size(8)
            .work(D::from_secs(600))
            .build(),
    ];
    let trace = Trace::new(64, D::from_days(1), jobs);
    let cfg = quiet(Mechanism::CUA_SPAA).federated(FederationConfig::even_split(2, 64));
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.killed_jobs, 1);
    assert_eq!(out.metrics.completed_jobs, 1);
    // On the single cluster the same job fits and everything completes.
    let plain = Simulator::run_trace(&quiet(Mechanism::CUA_SPAA), &trace);
    assert_eq!(plain.metrics.killed_jobs, 0);
    assert_eq!(plain.metrics.completed_jobs, 2);
}

// ---------------------------------------------------------------------------
// Property: federated outcomes ⊆ single-cluster outcome set
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ArbJob {
    kind: u8,
    submit: u64,
    size: u32,
    work: u64,
    notice_lead: Option<u64>,
    site_hint: Option<u32>,
}

fn arb_job() -> impl Strategy<Value = ArbJob> {
    (
        0..3u8,
        0..100_000u64,
        1..16u32, // ≤ the smallest shard of a 4-way split of 64 nodes
        60..8_000u64,
        proptest::option::of(900..1_800u64),
        proptest::option::of(0..6u32),
    )
        .prop_map(
            |(kind, submit, size, work, notice_lead, site_hint)| ArbJob {
                kind,
                submit,
                size,
                work,
                notice_lead,
                site_hint,
            },
        )
}

fn build_trace(jobs: &[ArbJob], system: u32) -> Trace {
    let specs: Vec<JobSpec> = jobs
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let id = i as u64;
            let submit = T::from_secs(a.submit);
            let work = D::from_secs(a.work);
            let mut b = match a.kind {
                0 => JobSpecBuilder::rigid(id),
                1 => JobSpecBuilder::malleable(id).min_size(1),
                _ => JobSpecBuilder::on_demand(id),
            }
            .submit_at(submit)
            .size(a.size)
            .work(work)
            .estimate(work + D::from_secs(1_800));
            if a.kind == 2 {
                if let Some(lead) = a.notice_lead {
                    let lead = D::from_secs(lead);
                    b = b.notice(submit.saturating_sub(lead), submit);
                }
            }
            if let Some(h) = a.site_hint {
                b = b.site_hint(h);
            }
            b.build()
        })
        .collect();
    Trace::new(system, D::from_days(30), specs)
}

/// A job's terminal outcome, as observable from the §IV-D metrics: either
/// it completed or it was killed. (The simulator runs to quiescence, so a
/// job that did neither would show up as `completed + killed < jobs`.)
fn outcome_sets(m: &Metrics, jobs: usize) -> (usize, usize, usize) {
    (m.completed_jobs, m.killed_jobs, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any federation of 2/4 same-total shards with deterministic
    /// placement yields only job outcomes the single-cluster run could
    /// produce: with feasible sizes and honest estimates the single run
    /// completes every job, so the federated run must too — no stuck jobs,
    /// no spurious kills, on every mechanism family.
    #[test]
    fn federated_outcomes_subset_of_single_cluster(
        jobs in proptest::collection::vec(arb_job(), 1..24),
        n_shards_sel in 0..2usize,
    ) {
        const SYSTEM: u32 = 64;
        let n_shards = [2, 4][n_shards_sel];
        let trace = build_trace(&jobs, SYSTEM);
        prop_assert!(trace.validate().is_ok());
        for m in [Mechanism::N_PAA, Mechanism::CUA_SPAA, Mechanism::CUP_PAA] {
            let single = Simulator::run_trace(&quiet(m), &trace);
            let (s_done, s_killed, n) = outcome_sets(&single.metrics, trace.len());
            prop_assert_eq!(s_done + s_killed, n, "single run left jobs unfinished");
            prop_assert_eq!(s_killed, 0, "honest estimates: nothing may be killed");

            let fed_cfg = quiet(m)
                .federated(FederationConfig::even_split(n_shards, SYSTEM))
                .paranoid();
            let fed = Simulator::run_trace(&fed_cfg, &trace);
            let (f_done, f_killed, _) = outcome_sets(&fed.metrics, trace.len());
            // Outcome-set containment: "killed" never appears in the
            // single-cluster outcome set here, so it must not appear in
            // the federated one; every job still reaches a terminal state.
            prop_assert_eq!(
                f_killed, 0,
                "{} on {} shards produced kills absent from the single-cluster outcome set",
                m.name(), n_shards
            );
            prop_assert_eq!(
                f_done, n,
                "{} on {} shards left jobs unfinished", m.name(), n_shards
            );
            // Shard accounting stays conservative.
            let report = fed.shards.expect("federated run");
            let totals = ShardTotals::of(&report);
            prop_assert_eq!(totals.nodes, SYSTEM);
        }
    }
}
