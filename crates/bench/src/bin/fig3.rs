//! **Figure 3** — number of jobs (outer ring) and total core-hours (inner
//! ring) per job-size range. The reproduction target is the *shape*: the
//! smallest bucket dominates job count while core-hours shift toward the
//! large buckets.

use hws_bench::TraceSource;
use hws_metrics::Table;
use hws_workload::{stats, TraceConfig};

fn main() {
    let seed = std::env::var("HWS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let source = TraceSource::from_env_or(TraceConfig::theta_2019());
    let trace = source.make_trace(seed);
    let hist = stats::size_histogram(&trace, &source.size_buckets(&trace));
    let total_jobs: usize = hist.iter().map(|b| b.n_jobs).sum();
    let total_nh: f64 = hist.iter().map(|b| b.node_hours).sum();

    let mut t = Table::new(vec!["Size range", "Jobs", "Jobs %", "Node-hours %"]);
    for b in &hist {
        t.row(vec![
            b.label(),
            format!("{}", b.n_jobs),
            format!("{:.1}%", 100.0 * b.n_jobs as f64 / total_jobs as f64),
            format!("{:.1}%", 100.0 * b.node_hours / total_nh),
        ]);
    }
    println!("FIGURE 3: jobs (outer) and core-hours (inner) by size range (seed {seed})");
    println!("{}", t.render());
    println!("expected shape: smallest bucket has the most jobs; node-hour share shifts to large buckets");
}
