//! The simulator as a deterministic tuning environment (DESIGN.md §16).
//!
//! [`Environment`] wraps the live [`SchedulerService`] in the
//! observation/action/reward loop the policy search (`hws-search`) and
//! any external tuner drive: at each decision point the caller samples a
//! deterministic feature vector ([`Observation`]), applies an
//! [`Action`] — a mechanism selection plus a
//! [`KnobVector`] — and virtual time advances
//! one decision interval. The episode's scalar return is a configurable
//! [`RewardSpec`] fold over the final run metrics.
//!
//! ## Determinism and the identity contract
//!
//! Every observation is a pure function of simulator state, and every
//! action mutates only the tunable seams (the [`TunableHooks`] admission
//! wrapper, the backfill flags, the checkpoint interval factor). The
//! service's bitwise parity contract therefore lifts directly: driving
//! an episode with [`Action::hold`] at every decision point is
//! **bitwise identical** to batch-replaying the same trace under the
//! base configuration — for all six mechanisms, custom hook stacks, and
//! federations (`tests/environment_parity.rs` asserts exactly this).
//!
//! Knob semantics are *absolute*: applying a vector moves the
//! configuration to `base ⊕ vector`, so re-applying a vector is
//! idempotent and [`Action::hold`] (no vector at all) touches nothing.

use super::hooks::{
    hooks_for, standard_composition, AdmissionView, ArrivalPlan, ArrivalView, HooksHandle,
    MechanismHooks, NoticeDecision, NoticeView, PredictionView,
};
use super::service::SchedulerService;
use super::SimOutcome;
use crate::config::{Mechanism, ShrinkStrategy, SimConfig, VictimOrder};
use crate::mechanism::CupPlan;
use hws_cluster::{ClassAffinity, Cluster, Federation, FirstFit, LeastLoaded, SnapshotBackend};
use hws_metrics::RewardSpec;
use hws_sim::{SimDuration, SimTime};
use hws_workload::{JobClass, KnobVector, PlacementChoice, Trace};
use std::fmt;
use std::sync::{Arc, RwLock};

// ---------------------------------------------------------------------
// Tunable hook wrapper
// ---------------------------------------------------------------------

/// A [`MechanismHooks`] wrapper whose inner composition and capability
/// admission throttle can be swapped *while a simulation is running* —
/// the seam [`Environment`] actions act through, also used by
/// `hws-search` to materialise throttled candidate configurations.
///
/// With the throttle unset and the inner hooks untouched, every method
/// is a pure delegation, so a wrapped run is bitwise identical to an
/// unwrapped one.
pub struct TunableHooks {
    label: String,
    inner: RwLock<Arc<dyn MechanismHooks>>,
    /// Captured once at construction: the driver reads `uses_notices`
    /// exactly once (to decide whether notice events are scheduled at
    /// all), so a mid-run swap could never retroactively apply anyway —
    /// freezing it keeps the wrapper's answer consistent with what the
    /// run was started with.
    uses_notices: bool,
    throttle: RwLock<Option<u32>>,
}

impl TunableHooks {
    /// Wrap an existing hook stack (pure delegation until mutated).
    pub fn wrapping(inner: Arc<dyn MechanismHooks>) -> Self {
        TunableHooks {
            label: format!("tunable[{}]", inner.name()),
            uses_notices: inner.uses_notices(),
            inner: RwLock::new(inner),
            throttle: RwLock::new(None),
        }
    }

    /// Wrap the standard composition for `m`.
    ///
    /// # Errors
    ///
    /// [`Mechanism::Custom`] has no built-in composition.
    pub fn for_mechanism(
        m: Mechanism,
        victim_order: VictimOrder,
        shrink_strategy: ShrinkStrategy,
    ) -> Result<Self, String> {
        if m == Mechanism::Custom {
            return Err("Mechanism::Custom has no built-in composition to wrap".into());
        }
        Ok(Self::wrapping(standard_composition(
            m,
            victim_order,
            shrink_strategy,
        )))
    }

    /// Swap the inner composition to the standard one for `m`. Notice
    /// *scheduling* stays as captured at construction (see the field
    /// docs); planning and arrival behaviour switch immediately.
    pub fn set_mechanism(
        &self,
        m: Mechanism,
        victim_order: VictimOrder,
        shrink_strategy: ShrinkStrategy,
    ) -> Result<(), String> {
        if m == Mechanism::Custom {
            return Err("cannot switch to Mechanism::Custom (no built-in composition)".into());
        }
        *self.inner.write().expect("hooks lock") =
            standard_composition(m, victim_order, shrink_strategy);
        Ok(())
    }

    /// Set (or clear) the capability admission throttle: at most `k`
    /// capability-class jobs running concurrently.
    pub fn set_throttle(&self, k: Option<u32>) {
        *self.throttle.write().expect("throttle lock") = k;
    }

    /// The current throttle.
    pub fn throttle(&self) -> Option<u32> {
        *self.throttle.read().expect("throttle lock")
    }

    fn inner(&self) -> Arc<dyn MechanismHooks> {
        Arc::clone(&self.inner.read().expect("hooks lock"))
    }
}

impl fmt::Debug for TunableHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TunableHooks")
            .field("label", &self.label)
            .field("inner", &self.inner().name().to_string())
            .field("throttle", &self.throttle())
            .finish()
    }
}

impl MechanismHooks for TunableHooks {
    fn name(&self) -> &str {
        &self.label
    }

    fn uses_notices(&self) -> bool {
        self.uses_notices
    }

    fn on_notice(&self, view: &NoticeView) -> NoticeDecision {
        self.inner().on_notice(view)
    }

    fn plans_predictions(&self) -> bool {
        self.inner().plans_predictions()
    }

    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        self.inner().plan_for_prediction(view)
    }

    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        self.inner().on_arrival(view)
    }

    fn admit(&self, view: &AdmissionView) -> bool {
        if view.class == JobClass::Capability {
            if let Some(cap) = self.throttle() {
                if view.running_capability >= cap {
                    return false;
                }
            }
        }
        self.inner().admit(view)
    }
}

// ---------------------------------------------------------------------
// Knob application
// ---------------------------------------------------------------------

/// Apply the *configuration-level* knobs of `vector` to `cfg`: backfill
/// flags, checkpoint interval multiplier, placement policy. The
/// admission throttle is hook-level and **not** applied here — see
/// [`config_for_knobs`] (search candidates) and [`Environment`]
/// (live episodes) for the two appliers.
///
/// The identity vector leaves `cfg` bitwise unchanged.
pub fn apply_knobs(cfg: &mut SimConfig, vector: &KnobVector) -> Result<(), String> {
    vector.validate()?;
    if let Some(level) = vector.backfill {
        let (easy, reserved) = level.flags();
        cfg.easy_backfill = easy;
        cfg.backfill_on_reserved = reserved;
    }
    if vector.ckpt_mult != 1.0 {
        cfg.ckpt.interval_factor *= vector.ckpt_mult;
    }
    if let Some(choice) = vector.placement {
        let fed = cfg
            .federation
            .take()
            .ok_or("placement knob requires a federated base configuration")?;
        cfg.federation = Some(match choice {
            PlacementChoice::FirstFit => fed.with_policy(FirstFit),
            PlacementChoice::LeastLoaded => fed.with_policy(LeastLoaded),
            PlacementChoice::ClassAffinity => fed.with_policy(ClassAffinity),
        });
    }
    Ok(())
}

/// Materialise a search candidate: `base` with `mechanism` selected and
/// `vector` applied. With no admission throttle the result carries no
/// hook wrapper at all, so it is bitwise equivalent to a plain
/// `base.with_mechanism(mechanism)` — throttled candidates install a
/// [`TunableHooks`] wrapper around the mechanism's standard composition.
///
/// # Errors
///
/// [`Mechanism::Custom`] (no built-in composition), invalid vectors,
/// and placement overrides on non-federated bases.
pub fn config_for_knobs(
    base: &SimConfig,
    mechanism: Mechanism,
    vector: &KnobVector,
) -> Result<SimConfig, String> {
    if mechanism == Mechanism::Custom {
        return Err("search candidates must use a built-in mechanism, not Custom".into());
    }
    let mut cfg = base.clone();
    cfg.hooks = None;
    cfg.mechanism = mechanism;
    apply_knobs(&mut cfg, vector)?;
    if let Some(k) = vector.admit_throttle {
        let tunable =
            TunableHooks::for_mechanism(mechanism, cfg.victim_order, cfg.shrink_strategy)?;
        tunable.set_throttle(Some(k));
        cfg.hooks = Some(HooksHandle(Arc::new(tunable)));
    }
    Ok(cfg)
}

// ---------------------------------------------------------------------
// Observation / action / report
// ---------------------------------------------------------------------

/// Deterministic feature snapshot at a decision point. Per-class arrays
/// are indexed `[capacity, capability]`. Every field is a pure function
/// of simulator state — no wall-clock, no randomness.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Current virtual time.
    pub now: SimTime,
    /// Submitted jobs the scheduler has not seen yet.
    pub pending_jobs: usize,
    /// Waiting-queue depth.
    pub queue_depth: usize,
    /// Waiting jobs per class.
    pub queue_by_class: [usize; 2],
    /// Median waiting age per class, seconds (0 when empty).
    pub queue_age_p50_s: [u64; 2],
    /// 90th-percentile waiting age per class, seconds (0 when empty).
    pub queue_age_p90_s: [u64; 2],
    /// Maximum waiting age per class, seconds (0 when empty).
    pub queue_age_max_s: [u64; 2],
    /// EASY-shadow slack of the queue head: seconds until its projected
    /// start under the current running set (`Some(0)` = startable now,
    /// `u64::MAX` = never at current capacity, `None` = empty queue).
    pub head_slack_s: Option<u64>,
    pub total_nodes: u32,
    pub free_nodes: u32,
    pub live_nodes: u32,
    /// Free nodes per shard (one entry for a single cluster).
    pub shard_free: Vec<u32>,
    /// In-service nodes per shard (one entry for a single cluster).
    pub shard_live: Vec<u32>,
    pub running_jobs: u32,
    /// Running jobs per class.
    pub running_by_class: [u32; 2],
}

impl Observation {
    /// Head-slack saturation bound for [`Observation::features`]
    /// (30 days — beyond it "effectively never").
    pub const SLACK_CAP_S: u64 = 30 * 86_400;

    /// Flat feature vector, fixed length for a fixed shard count:
    /// `[now_h, pending, depth, by_class×2, p50×2, p90×2, max×2,
    /// head_slack (capped, -1 when queue empty), free, live, total,
    /// running, running_by_class×2, shard_free…, shard_live…]`.
    pub fn features(&self) -> Vec<f64> {
        let mut f = vec![
            self.now.as_secs() as f64 / 3600.0,
            self.pending_jobs as f64,
            self.queue_depth as f64,
            self.queue_by_class[0] as f64,
            self.queue_by_class[1] as f64,
            self.queue_age_p50_s[0] as f64,
            self.queue_age_p50_s[1] as f64,
            self.queue_age_p90_s[0] as f64,
            self.queue_age_p90_s[1] as f64,
            self.queue_age_max_s[0] as f64,
            self.queue_age_max_s[1] as f64,
            match self.head_slack_s {
                None => -1.0,
                Some(s) => s.min(Self::SLACK_CAP_S) as f64,
            },
            self.free_nodes as f64,
            self.live_nodes as f64,
            self.total_nodes as f64,
            self.running_jobs as f64,
            self.running_by_class[0] as f64,
            self.running_by_class[1] as f64,
        ];
        f.extend(self.shard_free.iter().map(|&n| n as f64));
        f.extend(self.shard_live.iter().map(|&n| n as f64));
        f
    }
}

/// One decision: optionally switch the mechanism, optionally move to a
/// new knob point. `None` fields leave the corresponding state exactly
/// as it is — [`Action::hold`] is the guaranteed no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Switch to this mechanism's standard composition. Rejected for
    /// `Baseline` (the baseline never consults hooks, so a mid-run
    /// "switch" would silently misbehave) and `Custom`.
    pub mechanism: Option<Mechanism>,
    /// Move the knobs to `base ⊕ vector` (absolute, idempotent).
    /// Placement is fixed at episode start and rejected here.
    pub knobs: Option<KnobVector>,
}

impl Action {
    /// The identity action: change nothing.
    pub fn hold() -> Self {
        Action {
            mechanism: None,
            knobs: None,
        }
    }
}

/// A finished episode: the full batch outcome, its scalar reward, and
/// how many decision points the policy saw.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    pub outcome: SimOutcome,
    pub reward: f64,
    pub decisions: usize,
}

// ---------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------

/// Episode specification: base configuration, reward fold, decision
/// cadence, and the initial knob point.
#[derive(Debug, Clone)]
pub struct EnvSpec {
    pub cfg: SimConfig,
    pub reward: RewardSpec,
    /// Virtual-time distance between decision points (must be > 0).
    pub decision_interval: SimDuration,
    /// Knob point the episode starts at ([`KnobVector::identity`] for
    /// parity with plain batch replay).
    pub knobs: KnobVector,
}

impl EnvSpec {
    pub fn new(cfg: SimConfig) -> Self {
        EnvSpec {
            cfg,
            reward: RewardSpec::neg_bounded_slowdown(),
            decision_interval: SimDuration::HOUR,
            knobs: KnobVector::identity(),
        }
    }

    pub fn with_reward(mut self, reward: RewardSpec) -> Self {
        self.reward = reward;
        self
    }

    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.decision_interval = interval;
        self
    }

    pub fn with_knobs(mut self, knobs: KnobVector) -> Self {
        self.knobs = knobs;
        self
    }
}

/// The simulator as an environment: a [`SchedulerService`] pre-loaded
/// with a trace, stepped one decision interval at a time. See the
/// module docs for the determinism contract.
pub struct Environment<B: SnapshotBackend = Cluster> {
    svc: SchedulerService<B>,
    tunable: Arc<TunableHooks>,
    reward: RewardSpec,
    interval: SimDuration,
    /// Base values knob vectors are applied against (absolute ⊕).
    base_ckpt_factor: f64,
    base_backfill: (bool, bool),
    victim_order: VictimOrder,
    shrink_strategy: ShrinkStrategy,
    next_tick: SimTime,
    decisions: usize,
}

/// Validate the spec and build the wrapped configuration plus the
/// shared tunable seam.
fn build_cfg(spec: &EnvSpec) -> Result<(SimConfig, Arc<TunableHooks>), String> {
    if spec.decision_interval.is_zero() {
        return Err("decision interval must be positive".into());
    }
    if spec.cfg.mechanism == Mechanism::Custom && spec.cfg.hooks.is_none() {
        return Err("Mechanism::Custom requires explicit SimConfig::hooks".into());
    }
    let mut cfg = spec.cfg.clone();
    apply_knobs(&mut cfg, &spec.knobs)?;
    let tunable = Arc::new(TunableHooks::wrapping(hooks_for(&cfg)));
    tunable.set_throttle(spec.knobs.admit_throttle);
    // Explicit hooks take precedence over the mechanism enum, while the
    // enum itself stays untouched — so `hybrid()`, notice scheduling,
    // and the outcome's mechanism tag all remain faithful to the base.
    cfg.hooks = Some(HooksHandle(Arc::clone(&tunable) as Arc<dyn MechanismHooks>));
    Ok((cfg, tunable))
}

impl Environment<Cluster> {
    /// Open a single-cluster episode over `trace`.
    ///
    /// # Errors
    ///
    /// Invalid specs (zero interval, bad knob vectors, hook-less
    /// `Custom`), federated base configurations (use
    /// [`Environment::federated`]), and rejected submissions.
    pub fn new(spec: EnvSpec, trace: &Trace) -> Result<Self, String> {
        if spec.cfg.federation.is_some() {
            return Err("config carries a federation; use Environment::federated".into());
        }
        let (cfg, tunable) = build_cfg(&spec)?;
        let svc = SchedulerService::new(cfg, trace.system_size);
        Environment::from_parts(svc, tunable, &spec, trace)
    }
}

impl Environment<Federation> {
    /// Open a federated episode over `trace` (`spec.cfg.federation`
    /// must be set).
    pub fn federated(spec: EnvSpec, trace: &Trace) -> Result<Self, String> {
        if spec.cfg.federation.is_none() {
            return Err("Environment::federated needs cfg.federation".into());
        }
        let (cfg, tunable) = build_cfg(&spec)?;
        let svc = SchedulerService::<Federation>::federated(cfg, trace.system_size);
        Environment::from_parts(svc, tunable, &spec, trace)
    }
}

impl<B: SnapshotBackend> Environment<B>
where
    B::Ctx: Clone,
{
    fn from_parts(
        mut svc: SchedulerService<B>,
        tunable: Arc<TunableHooks>,
        spec: &EnvSpec,
        trace: &Trace,
    ) -> Result<Self, String> {
        // Trace jobs are already (submit, id)-sorted, which is the order
        // the batch pump injects in — the service reproduces its
        // tie-breaking from buffered order, so parity holds.
        for job in &trace.jobs {
            svc.submit(job.clone())
                .map_err(|e| format!("trace job rejected: {e:?}"))?;
        }
        let cfg = svc.config();
        Ok(Environment {
            base_ckpt_factor: spec.cfg.ckpt.interval_factor,
            base_backfill: (spec.cfg.easy_backfill, spec.cfg.backfill_on_reserved),
            victim_order: cfg.victim_order,
            shrink_strategy: cfg.shrink_strategy,
            svc,
            tunable,
            reward: spec.reward,
            interval: spec.decision_interval,
            next_tick: SimTime::ZERO,
            decisions: 0,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.svc.now()
    }

    /// Decision points taken so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Whether the episode is over: every job injected and every event
    /// delivered. (A fully starved queue with nothing running also
    /// terminates — no event will ever unblock it, so stepping further
    /// cannot change anything. `&mut`: the event queue compacts
    /// cancelled entries lazily on inspection.)
    pub fn done(&mut self) -> bool {
        self.svc.pending_jobs() == 0 && !self.svc.events_pending()
    }

    /// Sample the deterministic feature snapshot at the current instant.
    /// (`&mut` because the EASY-shadow projection reuses the driver's
    /// scratch buffers; simulator state is untouched.)
    pub fn observe(&mut self) -> Observation {
        let now = self.svc.now();
        let pending_jobs = self.svc.pending_jobs();
        let core = self.svc.core_mut();

        let ids: Vec<_> = core.queue.ids().collect();
        let head = ids.first().copied();
        let mut ages: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for &j in &ids {
            let spec = core.spec(j);
            let cls = (spec.class == JobClass::Capability) as usize;
            ages[cls].push(now.since(spec.submit).as_secs());
        }
        ages[0].sort_unstable();
        ages[1].sort_unstable();
        let pct = |v: &[u64], q: usize| -> u64 {
            if v.is_empty() {
                0
            } else {
                v[(v.len() - 1) * q / 100]
            }
        };

        let head_slack_s = head.map(|h| {
            let shadow = core.head_shadow(h, now);
            if shadow.time == SimTime::MAX {
                u64::MAX
            } else {
                shadow.time.since(now).as_secs()
            }
        });

        let cluster = core.backend();
        let shards = cluster.shard_count();
        let mut running_jobs = 0u32;
        cluster.for_each_running(&mut |_| running_jobs += 1);
        let cap_running = core.running_capability();

        Observation {
            now,
            pending_jobs,
            queue_depth: ids.len(),
            queue_by_class: [ages[0].len(), ages[1].len()],
            queue_age_p50_s: [pct(&ages[0], 50), pct(&ages[1], 50)],
            queue_age_p90_s: [pct(&ages[0], 90), pct(&ages[1], 90)],
            queue_age_max_s: [
                ages[0].last().copied().unwrap_or(0),
                ages[1].last().copied().unwrap_or(0),
            ],
            head_slack_s,
            total_nodes: cluster.total_nodes(),
            free_nodes: cluster.free_count(),
            live_nodes: cluster.live_nodes(),
            shard_free: (0..shards).map(|i| cluster.shard_free_nodes(i)).collect(),
            shard_live: (0..shards).map(|i| cluster.shard_live_nodes(i)).collect(),
            running_jobs,
            running_by_class: [running_jobs - cap_running, cap_running],
        }
    }

    /// Apply `action` and advance one decision interval. Returns
    /// [`Environment::done`] after the step.
    pub fn step(&mut self, action: &Action) -> Result<bool, String> {
        if let Some(m) = action.mechanism {
            if m.is_baseline() {
                return Err(
                    "cannot switch to the baseline mid-episode: the baseline never consults hooks"
                        .into(),
                );
            }
            self.tunable
                .set_mechanism(m, self.victim_order, self.shrink_strategy)?;
        }
        if let Some(vector) = &action.knobs {
            vector.validate()?;
            if vector.placement.is_some() {
                return Err("placement policy is fixed at episode start".into());
            }
            self.tunable.set_throttle(vector.admit_throttle);
            let (easy, reserved) = match vector.backfill {
                Some(level) => level.flags(),
                None => self.base_backfill,
            };
            let factor = self.base_ckpt_factor * vector.ckpt_mult;
            let core = self.svc.core_mut();
            core.cfg.easy_backfill = easy;
            core.cfg.backfill_on_reserved = reserved;
            if core.cfg.ckpt.interval_factor != factor {
                core.cfg.ckpt.interval_factor = factor;
                // Memoised per-size intervals are stale now.
                core.tau_memo.borrow_mut().clear();
            }
        }
        self.next_tick += self.interval;
        self.svc.step_until(self.next_tick);
        self.decisions += 1;
        Ok(self.done())
    }

    /// Finish the episode: drain every remaining event, fold the reward.
    pub fn finish(self) -> EpisodeReport {
        let decisions = self.decisions;
        let reward_spec = self.reward;
        let outcome = self.svc.into_outcome();
        let reward = reward_spec.score(&outcome.metrics, outcome.classes.as_ref());
        EpisodeReport {
            outcome,
            reward,
            decisions,
        }
    }

    /// Drive a whole episode with `policy`, one observation → action per
    /// decision interval.
    pub fn run<P: FnMut(&Observation) -> Action>(
        mut self,
        mut policy: P,
    ) -> Result<EpisodeReport, String> {
        while !self.done() {
            let obs = self.observe();
            let action = policy(&obs);
            self.step(&action)?;
        }
        Ok(self.finish())
    }
}
