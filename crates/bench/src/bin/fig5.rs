//! **Figure 5** — on-demand jobs per week for three sample traces,
//! demonstrating the bursty submission pattern (high week-to-week
//! coefficient of variation).

use hws_bench::TraceSource;
use hws_metrics::Table;
use hws_workload::{stats, TraceConfig};

fn main() {
    let source = TraceSource::from_env_or(TraceConfig::theta_2019());
    let traces: Vec<_> = (0..3).map(|s| source.make_trace(s)).collect();
    let series: Vec<Vec<u32>> = traces.iter().map(stats::weekly_on_demand).collect();

    let mut t = Table::new(vec!["Week", "Trace 0", "Trace 1", "Trace 2"]);
    let weeks = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for w in 0..weeks {
        t.row(vec![
            format!("{}", w + 1),
            format!("{}", series[0].get(w).copied().unwrap_or(0)),
            format!("{}", series[1].get(w).copied().unwrap_or(0)),
            format!("{}", series[2].get(w).copied().unwrap_or(0)),
        ]);
    }
    println!("FIGURE 5: on-demand jobs per week (three sample traces)");
    println!("{}", t.render());
    for (i, s) in series.iter().enumerate() {
        println!(
            "trace {i}: total {} on-demand jobs, weekly CV {:.2} (bursty ≫ 0)",
            s.iter().sum::<u32>(),
            stats::coefficient_of_variation(s)
        );
    }
}
