//! The trace-replay simulator: CQSim-style event loop binding the workload,
//! the cluster, the queue policy, EASY backfilling, and the six hybrid
//! mechanisms together.
//!
//! ## Layer map (see DESIGN.md §1–§3 for the full architecture)
//!
//! * `events` — the [`Ev`] enum and the epoch-guarded dispatch loop.
//! * `alloc` — claims, the `offer_free_nodes` node-routing discipline,
//!   lease settling, and on-demand notice/arrival orchestration.
//! * `preempt` — preempt/shrink/expand/drain/checkpoint mechanics.
//! * `pass` — the FCFS + EASY scheduling pass, shadow computation, and
//!   backfill sizing.
//! * `core` — the slimmed [`SimCore`] state, estimates, run lifecycle —
//!   generic over [`hws_cluster::ClusterBackend`], so the same driver
//!   schedules a single [`hws_cluster::Cluster`] or a multi-shard
//!   [`hws_cluster::Federation`].
//! * [`hooks`] — the [`MechanismHooks`] extension point; the six paper
//!   mechanisms are `{N, CUA, CUP} × {PAA, SPAA}` compositions, and new
//!   mechanisms register via [`SimConfig::with_hooks`] without touching
//!   driver internals.

mod alloc;
mod core;
mod events;
pub mod hooks;
mod pass;
mod preempt;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_hooks;

pub use self::core::SimCore;
pub use events::Ev;
pub use hooks::{
    standard_composition, AdmissionView, ArrivalPlan, ArrivalPolicy, ArrivalView, CapabilityAware,
    CollectUntilArrival, CollectUntilPredicted, Composed, HooksHandle, IgnoreNotices,
    MechanismHooks, NoticeDecision, NoticePolicy, NoticeView, PredictionView, PreemptAtArrival,
    ShrinkThenPreempt,
};

use crate::config::{Mechanism, SimConfig};
use crate::timeline::Timeline;
use hws_cluster::{ClusterBackend, Federation};
use hws_metrics::{ClassBreakdown, Metrics, ShardStat};
use hws_sim::{Engine, EngineStats};
use hws_workload::{Trace, TraceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    pub metrics: Metrics,
    pub engine: EngineStats,
    pub mechanism: Mechanism,
    /// Present when `SimConfig::record_timeline` was set.
    pub timeline: Option<Timeline>,
    /// Per-shard breakdown, present for federated runs only. Deliberately
    /// *outside* [`Metrics`] so the 1-shard-federation-vs-single-cluster
    /// metric comparison stays bitwise meaningful.
    pub shards: Option<Vec<ShardStat>>,
    /// Capability/capacity breakdown, present only when the trace carried
    /// capability-class jobs. Outside [`Metrics`] for the same reason as
    /// `shards`: zero-capability runs must compare bitwise against the
    /// two-class path.
    pub classes: Option<ClassBreakdown>,
}

/// Public façade: configure once, replay traces.
pub struct Simulator;

impl Simulator {
    /// Replay `trace` under `cfg` and report the §IV-D metrics. Runs on a
    /// single cluster, or — when `cfg.federation` is set — on a
    /// federation of shards at the same total capacity.
    pub fn run_trace(cfg: &SimConfig, trace: &Trace) -> SimOutcome {
        match &cfg.federation {
            None => Self::run_core(SimCore::new(cfg.clone(), trace), trace),
            Some(fed) => {
                let backend = Federation::new(fed, trace.system_size, &trace.jobs);
                Self::run_core(SimCore::with_backend(cfg.clone(), trace, backend), trace)
            }
        }
    }

    /// The backend-generic run loop behind [`Simulator::run_trace`].
    fn run_core<B: ClusterBackend>(core: SimCore<'_, B>, trace: &Trace) -> SimOutcome {
        let schedule_notices = !core.cfg.mechanism.is_baseline() && core.hooks.uses_notices();
        let mechanism = core.cfg.mechanism;
        let mut engine = Engine::new(core);
        for (idx, spec) in trace.jobs.iter().enumerate() {
            let id = spec.id;
            debug_assert_eq!(engine.sim.idx_of[&id], idx);
            if let (Some(notice), true) = (&spec.notice, schedule_notices) {
                engine.queue.schedule(notice.notice_time, Ev::Notice(id));
            }
            engine.queue.schedule(spec.submit, Ev::Submit(id));
        }
        let stats = engine.run_to_completion();
        let core = engine.into_sim();
        let metrics = Metrics::compute(&core.rec, core.cfg.instant_threshold);
        SimOutcome {
            metrics,
            engine: stats,
            mechanism,
            shards: core.shard_report(),
            // O(1) guard: two-class runs never pay for the breakdown.
            classes: core
                .rec
                .saw_capability()
                .then(|| ClassBreakdown::compute(&core.rec)),
            timeline: core.cfg.record_timeline.then_some(core.timeline),
        }
    }

    /// Generate one trace per seed and replay each under `cfg`, fanning the
    /// runs across CPU cores with scoped threads. Returns one outcome per
    /// seed, in seed order.
    ///
    /// Every run is an independent simulation over its own trace, so the
    /// per-seed metrics are **bitwise identical** to sequential
    /// [`Simulator::run_trace`] calls (wall-clock decision latencies are the
    /// one legitimate exception; disable `measure_decisions` for strict
    /// equality). The figure/table binaries in `hws-bench` route through
    /// this entry point.
    pub fn run_sweep(cfg: &SimConfig, trace_cfg: &TraceConfig, seeds: &[u64]) -> Vec<SimOutcome> {
        Simulator::run_sweep_with(cfg, seeds, |seed| trace_cfg.generate(seed))
    }

    /// Like [`Simulator::run_sweep`], but over an arbitrary trace factory:
    /// `make_trace(seed)` is called once per seed from the worker threads.
    /// This is how trace sources other than the synthetic generator — SWF
    /// replays, recorded CSV traces — fan across cores with the same
    /// bitwise-deterministic per-seed guarantee (the factory must be a pure
    /// function of the seed).
    pub fn run_sweep_with<F>(cfg: &SimConfig, seeds: &[u64], make_trace: F) -> Vec<SimOutcome>
    where
        F: Fn(u64) -> Trace + Sync,
    {
        if seeds.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(seeds.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SimOutcome>>> =
            seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seed) = seeds.get(i) else { break };
                    let trace = make_trace(seed);
                    let outcome = Simulator::run_trace(cfg, &trace);
                    *slots[i].lock().expect("sweep slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("sweep slot")
                    .expect("worker filled every slot")
            })
            .collect()
    }
}
