//! Minimal aligned-table / CSV emitter used by the experiment binaries and
//! examples — keeps the workspace free of serialization dependencies.

/// Column-aligned plain-text table with an optional CSV rendering.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with padded columns, a separator line under the header.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(c);
                if i + 1 < ncol {
                    for _ in 0..widths[i].saturating_sub(c.chars().count()) + 2 {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting — callers keep cells comma-free).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            debug_assert!(row.iter().all(|c| !c.contains(',')), "comma in CSV cell");
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format hours with one decimal.
pub fn hours(x: f64) -> String {
    format!("{x:.1} h")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].rfind('1').unwrap(), col);
    }

    #[test]
    fn csv_round_trips_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8393), "83.9%");
        assert_eq!(hours(15.62), "15.6 h");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["x"]);
        assert_eq!(t.n_rows(), 0);
        assert!(t.render().starts_with("x\n"));
    }
}
