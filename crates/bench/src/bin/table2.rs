//! **Table II** — baseline performance of plain FCFS/EASY with no special
//! treatment of on-demand, rigid, or malleable jobs.
//!
//! Paper values: 15.6 h average turnaround, 83.93 % utilization, 22.69 %
//! on-demand instant-start rate.
//!
//! ```text
//! cargo run --release -p hws-bench --bin table2
//! HWS_SCALE=full HWS_SEEDS=10 cargo run --release -p hws-bench --bin table2
//! ```

use hws_bench::{run_averaged_source, seeds_from_env, Scale, TraceSource};
use hws_core::SimConfig;
use hws_metrics::Table;

fn main() {
    let scale = Scale::from_env();
    let seeds = seeds_from_env();
    let source = TraceSource::from_env(scale);
    eprintln!(
        "table2: scale {scale:?}, {seeds} seeds, {}",
        source.describe()
    );

    let m = run_averaged_source(&SimConfig::baseline(), &source, seeds);

    let mut t = Table::new(vec![
        "Avg. Turnaround",
        "System Util.",
        "On-demand Jobs' Instant Start Rate",
    ]);
    t.row(vec![
        format!("{:.1} hours", m.avg_turnaround_h),
        format!("{:.2}%", m.utilization * 100.0),
        format!("{:.2}%", m.instant_start_rate * 100.0),
    ]);
    println!("TABLE II: Baseline performance (FCFS/EASY, no special treatment)");
    println!("{}", t.render());
    println!("paper reports: 15.6 hours | 83.93% | 22.69%");
    println!(
        "(supporting: raw occupancy {:.2}%, completed {} jobs, span {:.0} h)",
        m.raw_occupancy * 100.0,
        m.completed_jobs,
        m.span_hours
    );
}
