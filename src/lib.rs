//! # hybrid-workload-sched
//!
//! A faithful, from-scratch Rust reproduction of **"Hybrid Workload
//! Scheduling on HPC Systems"** (Fan, Lan, Rich, Allcock, Papka —
//! IPDPS 2022, arXiv:2109.05412): six mechanisms for co-scheduling
//! **on-demand**, **rigid**, and **malleable** jobs on a single HPC
//! machine, evaluated with a CQSim-style trace-driven simulator.
//!
//! ## The six mechanisms
//!
//! A mechanism pairs a strategy for an on-demand job's **advance notice**
//! with one for its **actual arrival**:
//!
//! | notice ↓ / arrival → | PAA (preempt at arrival) | SPAA (shrink first) |
//! |---|---|---|
//! | **N** — ignore notices | `N&PAA` | `N&SPAA` |
//! | **CUA** — collect released nodes until arrival | `CUA&PAA` | `CUA&SPAA` |
//! | **CUP** — collect + plan preemptions for the predicted arrival | `CUP&PAA` | `CUP&SPAA` |
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_workload_sched::prelude::*;
//!
//! // A scaled-down Theta-like workload (deterministic in the seed).
//! let trace = TraceConfig::small().generate(42);
//!
//! // Schedule it with CUA&SPAA and compare against the plain
//! // FCFS/EASY baseline.
//! let hybrid = Simulator::run_trace(&SimConfig::with_mechanism(Mechanism::CUA_SPAA), &trace);
//! let baseline = Simulator::run_trace(&SimConfig::baseline(), &trace);
//!
//! // On-demand jobs start (almost) instantly under the hybrid mechanism.
//! assert!(hybrid.metrics.instant_start_rate >= baseline.metrics.instant_start_rate);
//! println!("{}", hybrid.metrics.one_line());
//! ```
//!
//! ## Crate map
//!
//! * [`hws_sim`] — discrete-event simulation kernel (clock, cancellable
//!   event queue, engine).
//! * [`hws_cluster`] — resource manager substrate: node states,
//!   reservations, backfill squatting, shrink/expand, lease ledger.
//! * [`hws_workload`] — job model and the calibrated synthetic Theta
//!   trace generator (the real 2019 trace is proprietary; see DESIGN.md §4).
//! * [`hws_core`] — queue policies, EASY backfilling, the six mechanisms
//!   as [`hws_core::MechanismHooks`] compositions, and the layered
//!   trace-replay driver (DESIGN.md §2–§3).
//! * [`hws_metrics`] — the paper's §IV-D metrics and cross-seed averaging.
//! * [`hws_search`] — deterministic black-box policy search (grid and
//!   tournament tuners over mechanism/knob vectors) on top of the
//!   [`hws_core::Environment`] facade (DESIGN.md §16).
//!
//! Every table and figure of the paper regenerates from `hws-bench`
//! binaries (`cargo run -p hws-bench --bin fig6 --release`), which fan
//! seeds across cores via [`hws_core::Simulator::run_sweep`]; DESIGN.md §7
//! describes the sweep/bench plumbing and the recorded latency baseline
//! (`BENCH_decision_latency.json`).

pub use hws_cluster;
pub use hws_core;
pub use hws_metrics;
pub use hws_search;
pub use hws_sim;
pub use hws_workload;

/// Everything needed for typical use.
pub mod prelude {
    pub use hws_cluster::{
        ClassAffinity, Cluster, ClusterBackend, Federation, FederationConfig, FirstFit,
        LeaseLedger, LeastLoaded, NodeId, PlacementPolicy, ShardSpec,
    };
    pub use hws_core::{
        apply_knobs, config_for_knobs, replay_submission_log, Action, AdmissionView, ArrivalPlan,
        ArrivalPolicy, ArrivalStrategy, ArrivalView, CancelOutcome, CapabilityAware, CkptConfig,
        CollectUntilArrival, CollectUntilPredicted, Composed, EnvSpec, Environment, EpisodeReport,
        IgnoreNotices, JobStatus, Mechanism, MechanismHooks, NoticeDecision, NoticePolicy,
        NoticeStrategy, NoticeView, Observation, PolicyKind, PredictionView, PreemptAtArrival,
        SchedulerService, ShrinkStrategy, ShrinkThenPreempt, SimConfig, SimOutcome, Simulator,
        SubmitError, TunableHooks, VictimOrder,
    };
    pub use hws_metrics::{
        ClassBreakdown, ClassStats, Metrics, MetricsAvg, Recorder, RewardSpec, ShardStat,
        ShardTotals, Table,
    };
    pub use hws_search::{
        grid_search, tournament_search, Candidate, Leaderboard, SearchConfig, SearchSpace,
        TournamentConfig,
    };
    pub use hws_sim::{SimDuration, SimTime};
    pub use hws_workload::{
        job::JobSpecBuilder, BackfillLevel, JobClass, JobId, JobKind, JobSpec, KnobVector,
        LiveSource, LogEntry, NoticeCategory, NoticeMix, PlacementChoice, SubmissionLog, SubmitOp,
        Trace, TraceConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_complete_workflow() {
        let trace = TraceConfig::tiny().generate(0);
        let out = Simulator::run_trace(&SimConfig::with_mechanism(Mechanism::N_PAA), &trace);
        assert!(out.metrics.completed_jobs > 0);
    }

    // The README "Live service mode" snippet, kept honest.
    #[test]
    fn prelude_exposes_the_live_service() {
        let mut svc = SchedulerService::new(SimConfig::with_mechanism(Mechanism::CUP_SPAA), 64);
        let spec = JobSpecBuilder::rigid(1)
            .submit_at(SimTime::from_secs(10))
            .size(32)
            .build();
        svc.submit(spec.clone()).unwrap();
        assert_eq!(svc.query(spec.id), JobStatus::Pending);
        svc.step_until(SimTime::from_secs(20));
        assert_eq!(svc.query(spec.id), JobStatus::Running);

        let probe = JobSpecBuilder::rigid(2)
            .submit_at(svc.now())
            .size(32)
            .build();
        let forecast = svc.what_if(&probe).unwrap();
        assert_eq!(forecast.len(), 6);
    }
}
