//! Microbench of the event-queue kernel: steady-state push/pop churn (the
//! per-event cost every simulated second pays), bulk drains, and the
//! arrival-lane seeding used by streaming replay. The alloc-budget tests
//! (`hws-core --features count-allocs`) prove the warm paths allocation-
//! free; this bench tracks their cycle cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hws_sim::{EventQueue, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");

    for occupancy in [64u64, 1_024, 16_384] {
        g.bench_function(format!("push_pop_churn/{occupancy}_resident"), |b| {
            // Warm a queue to the target occupancy; the churn loop then
            // holds it there, so heap and ring storage never regrow.
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..occupancy {
                q.schedule(SimTime::from_secs(i + 1), i);
            }
            let mut now = occupancy + 1;
            b.iter(|| {
                // Times keep advancing: the queue's watermark forbids
                // scheduling in the causal past.
                for i in 0..8u64 {
                    q.schedule(SimTime::from_secs(now + occupancy + i), i);
                }
                now += 8;
                for _ in 0..8 {
                    black_box(q.pop());
                }
            });
        });
    }

    g.bench_function("seed_and_drain/4096_dynamic", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..4_096u64 {
                    q.schedule(SimTime::from_secs((i * 37) % 86_400 + 1), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
                q
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("seed_and_drain/4096_arrival_lane", |b| {
        // The streaming pump's path: arrivals enter through the dedicated
        // lane (whose sequence numbers order them before same-instant
        // dynamic events) in trace order, i.e. non-decreasing times.
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..4_096u64 {
                    q.schedule_arrival(SimTime::from_secs(i / 4 + 1), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
                q
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
