//! Node identity and per-node state.

use hws_workload::JobId;
use std::fmt;

/// A compute node. The paper's model has no topology; identity only matters
/// for bookkeeping (conservation invariants, squatter tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// State of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Idle and unreserved.
    Free,
    /// Running `job`.
    Busy { job: JobId },
    /// Idle but earmarked for on-demand job `holder`.
    Reserved { holder: JobId },
    /// Earmarked for `holder` but currently running backfilled `job`
    /// (a *squatter*, preempted the moment `holder` arrives).
    ReservedBusy { holder: JobId, job: JobId },
    /// Out of service (failed or under maintenance). A down node belongs
    /// to no free list, allocation, or reservation; it re-enters service
    /// only through an explicit rejoin.
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn state_equality() {
        let a = NodeState::Busy { job: JobId(1) };
        let b = NodeState::Busy { job: JobId(1) };
        let c = NodeState::Busy { job: JobId(2) };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, NodeState::Free);
    }
}
