//! Compare all six mechanisms (plus the baseline) on the same workload —
//! a one-trace miniature of the paper's Figure 6.
//!
//! ```text
//! cargo run --release --example mechanism_comparison
//! ```

use hybrid_workload_sched::prelude::*;

fn main() {
    let trace = TraceConfig::small().generate(7);
    println!(
        "workload: {} jobs on {} nodes, W5 notice mix\n",
        trace.len(),
        trace.system_size
    );

    let mut table = Table::new(vec![
        "mechanism",
        "TAT (h)",
        "rigid TAT",
        "mall. TAT",
        "util %",
        "instant %",
        "preempt r/m %",
    ]);

    let baseline = Simulator::run_trace(&SimConfig::baseline(), &trace);
    push_row(&mut table, "FCFS/EASY", &baseline.metrics);
    for m in Mechanism::ALL_SIX {
        let out = Simulator::run_trace(&SimConfig::with_mechanism(m), &trace);
        push_row(&mut table, m.name(), &out.metrics);
    }
    println!("{}", table.render());
    println!("(single trace; the fig6 bench averages ten — expect noise here)");
}

fn push_row(table: &mut Table, name: &str, m: &Metrics) {
    table.row(vec![
        name.to_string(),
        format!("{:.1}", m.avg_turnaround_h),
        format!("{:.1}", m.rigid.avg_turnaround_h),
        format!("{:.1}", m.malleable.avg_turnaround_h),
        format!("{:.1}", m.utilization * 100.0),
        format!("{:.1}", m.instant_start_rate * 100.0),
        format!(
            "{:.1}/{:.1}",
            m.rigid.preemption_ratio * 100.0,
            m.malleable.preemption_ratio * 100.0
        ),
    ]);
}
