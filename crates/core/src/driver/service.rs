//! Live scheduler service: incremental submit/cancel/query against a
//! long-lived simulation, with snapshot/restore and what-if forecasting.
//!
//! [`Simulator::run_trace`](super::Simulator::run_trace) is a batch oracle:
//! it consumes a complete workload and returns once the last job retires.
//! [`SchedulerService`] is the same engine turned inside out — the caller
//! owns the clock. Jobs arrive one at a time through [`submit`], virtual
//! time advances only on [`step_until`]/[`step_before`], and in between
//! the caller may [`query`] any job, [`cancel`] one, [`snapshot`] the
//! whole simulation to bytes, or fork speculative futures with
//! [`what_if`].
//!
//! ## Parity contract
//!
//! Replaying a [`SubmissionLog`] through the service (ops applied at
//! their timestamps, events stepped in between) produces **bitwise
//! identical** metrics to materializing the same log into a trace and
//! batch-replaying it — for every mechanism. The pump below keeps the
//! guarantee the same way the batch pump does: submissions are injected
//! in ascending `(submit, id)` order, and always before the event
//! horizon reaches a job's earliest event, so arrival-lane sequence
//! numbers tie-break same-instant events exactly as a pre-seeded run
//! would.
//!
//! [`submit`]: SchedulerService::submit
//! [`query`]: SchedulerService::query
//! [`cancel`]: SchedulerService::cancel
//! [`step_until`]: SchedulerService::step_until
//! [`step_before`]: SchedulerService::step_before
//! [`snapshot`]: SchedulerService::snapshot
//! [`what_if`]: SchedulerService::what_if

use super::core::SimCore;
use super::events::Ev;
use super::snapshot::{restore_engine, snapshot_engine};
use super::SimOutcome;
use crate::config::{Mechanism, SimConfig};
use crate::jobstate::Status;
use crate::timeline::TimelineEvent;
use hws_cluster::{Cluster, Federation, NodeId, SnapshotBackend};
use hws_metrics::{ClassBreakdown, Metrics};
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_sim::{Engine, SimTime};
use hws_workload::{earliest_event, JobId, JobSpec, LogEntry, SubmissionLog, SubmitOp};
use std::collections::{BTreeMap, BTreeSet};

/// Service snapshot format version (wraps the engine image).
const SERVICE_SNAP_VERSION: u8 = 1;

/// Externally visible lifecycle of a job, as reported by
/// [`SchedulerService::query`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted to the service but not yet visible to the scheduler
    /// (virtual time has not reached its earliest event).
    Pending,
    /// Known through its advance notice; not yet arrived.
    Announced,
    /// In the wait queue.
    Waiting,
    Running,
    /// Malleable job inside its preemption warning.
    Draining,
    Finished,
    /// Terminated by the scheduler (exceeded estimate, or unrunnable).
    Killed,
    /// Withdrawn via [`SchedulerService::cancel`].
    Cancelled,
    /// Never submitted to this service.
    Unknown,
}

/// Result of a [`SchedulerService::cancel`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Withdrawn before the scheduler ever saw the job; replaying the log
    /// without the job is bitwise-identical.
    Buffered,
    /// Withdrawn in flight (announced or waiting); reservations were
    /// released and the job retired without running.
    Cancelled,
    /// The job is running, draining, or already finished — nothing to
    /// withdraw.
    TooLate,
    /// Not a job this service knows (or already cancelled).
    Unknown,
}

/// Why a [`SchedulerService::submit`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The id was already used by an earlier submission (live, finished,
    /// or cancelled — ids are never reusable, so stale events can never
    /// strike a re-admitted job).
    DuplicateId(JobId),
    /// The job's earliest event (notice or submission) lies before the
    /// service's current virtual time.
    PastDue { earliest: SimTime, now: SimTime },
    /// Structurally invalid spec (zero size, `min_size > size`, …).
    InvalidSpec(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
            SubmitError::PastDue { earliest, now } => write!(
                f,
                "job's earliest event {earliest:?} is before service time {now:?}"
            ),
            SubmitError::InvalidSpec(what) => write!(f, "invalid job spec: {what}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A long-lived scheduling session over any snapshot-capable backend: a
/// single [`Cluster`] (the default) or a [`Federation`] of shards.
///
/// ```
/// use hws_core::{Mechanism, SchedulerService, SimConfig, JobStatus};
/// use hws_sim::{SimDuration, SimTime};
/// use hws_workload::job::JobSpecBuilder;
///
/// let cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
/// let mut svc = SchedulerService::new(cfg, 64);
///
/// let job = JobSpecBuilder::rigid(1)
///     .submit_at(SimTime::from_secs(10))
///     .size(8)
///     .work(SimDuration::from_secs(600))
///     .estimate(SimDuration::from_secs(900))
///     .build();
/// let id = svc.submit(job).unwrap();
/// assert_eq!(svc.query(id), JobStatus::Pending);
///
/// svc.step_until(SimTime::from_secs(20));
/// assert_eq!(svc.query(id), JobStatus::Running);
///
/// // Fork speculative futures: when would a 32-node job start under
/// // each of the six mechanisms? The live session is not perturbed.
/// let probe = JobSpecBuilder::rigid(2)
///     .submit_at(SimTime::from_secs(30))
///     .size(32)
///     .work(SimDuration::from_secs(60))
///     .build();
/// let forecast = svc.what_if(&probe).unwrap();
/// assert_eq!(forecast.len(), 6);
/// assert_eq!(svc.query(id), JobStatus::Running); // unchanged
/// ```
pub struct SchedulerService<B: SnapshotBackend = Cluster> {
    engine: Engine<SimCore<B>>,
    /// Submitted jobs the scheduler has not seen yet, in the arrival
    /// order the batch pump would use. Every buffered job's earliest
    /// event is `>=` the engine's delivery watermark (enforced at submit
    /// and maintained by the pump), so injection never violates the
    /// arrival lane's monotonicity.
    buffer: BTreeMap<(SimTime, JobId), JobSpec>,
    /// Jobs withdrawn via [`SchedulerService::cancel`].
    cancelled: BTreeSet<JobId>,
    /// Every id ever submitted (live, retired, or cancelled).
    seen: BTreeSet<JobId>,
    /// Whether notice events are scheduled for buffered jobs (mirrors the
    /// batch pump's criterion; recomputed per config on restore).
    schedule_notices: bool,
    /// Backend reconstruction context, kept for [`SchedulerService::what_if`]
    /// forks and exposed restores.
    ctx: B::Ctx,
}

impl SchedulerService<Cluster> {
    /// Open a session on a single cluster of `system_size` nodes.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.federation` is set — use
    /// [`SchedulerService::federated`] for sharded systems.
    pub fn new(cfg: SimConfig, system_size: u32) -> Self {
        assert!(
            cfg.federation.is_none(),
            "config carries a federation; use SchedulerService::federated"
        );
        let core = SimCore::new(cfg, system_size);
        Self::from_core(core, ())
    }
}

impl SchedulerService<Federation> {
    /// Open a session on a federation of shards (`cfg.federation` must be
    /// set). Jobs are registered with the placement policy incrementally
    /// as they are injected, which places each job exactly as the batch
    /// driver's up-front registration would.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.federation` is `None`.
    pub fn federated(cfg: SimConfig, system_size: u32) -> Self {
        let fed = cfg
            .federation
            .clone()
            .expect("SchedulerService::federated needs cfg.federation");
        let backend = Federation::new(&fed, system_size, &[]);
        let core = SimCore::with_backend(cfg, backend);
        Self::from_core(core, fed)
    }
}

impl<B: SnapshotBackend> SchedulerService<B>
where
    B::Ctx: Clone,
{
    fn from_core(core: SimCore<B>, ctx: B::Ctx) -> Self {
        let schedule_notices = !core.cfg.mechanism.is_baseline() && core.hooks.uses_notices();
        let mut engine = Engine::new(core);
        super::outage::seed_outages(&mut engine);
        SchedulerService {
            engine,
            buffer: BTreeMap::new(),
            cancelled: BTreeSet::new(),
            seen: BTreeSet::new(),
            schedule_notices,
            ctx,
        }
    }

    /// Current virtual time: the timestamp of the most recently delivered
    /// event (not the last `step_until` horizon — the clock only moves
    /// when events do, exactly like [`Engine::run_until`]).
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Jobs submitted but not yet visible to the scheduler.
    pub fn pending_jobs(&self) -> usize {
        self.buffer.len()
    }

    /// The active scheduling configuration.
    pub fn config(&self) -> &SimConfig {
        &self.engine.sim.cfg
    }

    /// Driver-internal mutable view of the simulation core: the
    /// `Environment` facade samples observations and applies knob
    /// changes through it.
    pub(super) fn core_mut(&mut self) -> &mut SimCore<B> {
        &mut self.engine.sim
    }

    /// Whether any event is still pending in the engine queue (`&mut`:
    /// the queue compacts cancelled entries lazily on inspection).
    pub(super) fn events_pending(&mut self) -> bool {
        self.engine.queue.peek_time().is_some()
    }

    /// Hand a new job to the service. The scheduler sees it when virtual
    /// time reaches its earliest event (advance notice if it carries one,
    /// submission otherwise).
    ///
    /// # Errors
    ///
    /// [`SubmitError::DuplicateId`] for any id this service has ever
    /// seen, [`SubmitError::PastDue`] when the job's earliest event is
    /// already in the past, [`SubmitError::InvalidSpec`] for structural
    /// nonsense.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SubmitError> {
        let id = spec.id;
        if self.seen.contains(&id) {
            return Err(SubmitError::DuplicateId(id));
        }
        if spec.size == 0 {
            return Err(SubmitError::InvalidSpec("size 0".into()));
        }
        if spec.min_size == 0 || spec.min_size > spec.size {
            return Err(SubmitError::InvalidSpec(format!(
                "min_size {} outside [1, {}]",
                spec.min_size, spec.size
            )));
        }
        if let Some(n) = &spec.notice {
            if n.notice_time > spec.submit {
                return Err(SubmitError::InvalidSpec(
                    "notice after actual arrival".into(),
                ));
            }
        }
        let earliest = earliest_event(&spec);
        let now = self.engine.now();
        if earliest < now {
            return Err(SubmitError::PastDue { earliest, now });
        }
        self.seen.insert(id);
        self.buffer.insert((spec.submit, id), spec);
        Ok(id)
    }

    /// Report a job's lifecycle stage. Never blocks or advances time.
    pub fn query(&self, id: JobId) -> JobStatus {
        if let Some(st) = self.engine.sim.jobs().get_state(id) {
            return match st.status {
                Status::Announced => JobStatus::Announced,
                Status::Waiting => JobStatus::Waiting,
                Status::Running => JobStatus::Running,
                Status::Draining => JobStatus::Draining,
                Status::Finished => JobStatus::Finished,
                Status::Killed => JobStatus::Killed,
            };
        }
        if self.buffer.values().any(|s| s.id == id) {
            return JobStatus::Pending;
        }
        if self.cancelled.contains(&id) {
            return JobStatus::Cancelled;
        }
        match self.engine.sim.rec.get(id) {
            Some(r) if r.completed() => JobStatus::Finished,
            Some(_) => JobStatus::Killed,
            None => JobStatus::Unknown,
        }
    }

    /// Withdraw a job.
    ///
    /// * Still buffered → removed outright; the run is bitwise-identical
    ///   to one where the job was never submitted.
    /// * Announced (notice phase) → its reservation is released and the
    ///   job retired, mirroring the reservation-timeout cleanup; its
    ///   pending arrival events die against the liveness guard.
    /// * Waiting → removed from the queue, recorded as killed.
    /// * Running / draining / finished → [`CancelOutcome::TooLate`].
    pub fn cancel(&mut self, id: JobId) -> CancelOutcome {
        if self.cancelled.contains(&id) {
            return CancelOutcome::Unknown;
        }
        if let Some(key) = self
            .buffer
            .iter()
            .find(|(_, s)| s.id == id)
            .map(|(&k, _)| k)
        {
            self.buffer.remove(&key);
            self.cancelled.insert(id);
            return CancelOutcome::Buffered;
        }
        let now = self.engine.now();
        let Engine { queue, sim, .. } = &mut self.engine;
        match sim.jobs().get_state(id).map(|st| st.status) {
            Some(Status::Announced) => {
                // Mirror the Ev::ReservationTimeout cleanup, then retire:
                // the still-pending arrival-lane Submit (and Notice) for
                // this job will be dropped by the dispatch liveness guard.
                if let Some(ev) = sim.timeout_ev.remove(&id) {
                    queue.cancel(ev);
                }
                if let Some(evs) = sim.cup_plans.remove(&id) {
                    for ev in evs {
                        queue.cancel(ev);
                    }
                }
                sim.remove_claim(id);
                sim.squattable.remove(&id);
                sim.noticed.remove(&id);
                sim.cluster.release_reservation(id);
                sim.retire(id);
                sim.offer_free_nodes(now);
                sim.request_pass(now, queue);
                self.cancelled.insert(id);
                CancelOutcome::Cancelled
            }
            Some(Status::Waiting) => {
                // Unindex before the od_front flip changes the key class.
                sim.dequeue_waiting(id);
                sim.od_front.remove(&id);
                if let Some(ev) = sim.timeout_ev.remove(&id) {
                    queue.cancel(ev);
                }
                if let Some(evs) = sim.cup_plans.remove(&id) {
                    for ev in evs {
                        queue.cancel(ev);
                    }
                }
                sim.remove_claim(id);
                sim.squattable.remove(&id);
                sim.noticed.remove(&id);
                sim.cluster.release_reservation(id);
                sim.rec.job_killed(id, now);
                sim.log(now, id, TimelineEvent::Killed);
                sim.retire(id);
                sim.offer_free_nodes(now);
                sim.request_pass(now, queue);
                self.cancelled.insert(id);
                CancelOutcome::Cancelled
            }
            Some(Status::Running | Status::Draining) => CancelOutcome::TooLate,
            // Live terminal states never persist past their event, so a
            // table hit can't be Finished/Killed; a recorder hit means
            // the job already completed.
            Some(_) | None => {
                if self.engine.sim.rec.get(id).is_some() {
                    CancelOutcome::TooLate
                } else {
                    CancelOutcome::Unknown
                }
            }
        }
    }

    /// Advance virtual time, delivering every event with `time <= t`
    /// (inclusive horizon, inherited verbatim from [`Engine::run_until`])
    /// and injecting buffered submissions as the horizon reaches them.
    /// Idempotent: a repeated call with the same `t` delivers nothing.
    pub fn step_until(&mut self, t: SimTime) {
        self.pump(t, true);
    }

    /// Advance virtual time, delivering every event with `time < t`
    /// (exclusive horizon). This is the replay primitive: operations
    /// timestamped `t` apply after all strictly earlier events and before
    /// any event at `t`, matching the submission-log ordering contract.
    pub fn step_before(&mut self, t: SimTime) {
        self.pump(t, false);
    }

    /// Deliver all remaining events (and buffered submissions) and fold
    /// the run into the same [`SimOutcome`] the batch driver reports.
    pub fn into_outcome(mut self) -> SimOutcome {
        self.pump(SimTime::MAX, true);
        let stats = self.engine.stats();
        let core = self.engine.into_sim();
        let metrics = Metrics::compute(&core.rec, core.cfg.instant_threshold);
        SimOutcome {
            metrics,
            engine: stats,
            mechanism: core.cfg.mechanism,
            shards: core.shard_report(),
            classes: core
                .rec
                .saw_capability()
                .then(|| ClassBreakdown::compute(&core.rec)),
            outages: core.outage_report(),
            peak_resident_jobs: core.jobs().peak_live(),
            admitted_jobs: core.jobs().admitted(),
            timeline: core.cfg.record_timeline.then_some(core.timeline),
        }
    }

    /// The service pump: alternate injection and delivery up to the
    /// horizon. Before each delivered event, every buffered job whose
    /// earliest event the horizon has reached is injected — as a key-
    /// ordered prefix, because `earliest_event` is not monotone in
    /// `(submit, id)` order and the arrival lane must see submissions in
    /// key order to reproduce the batch pump's tie-breaking.
    fn pump(&mut self, horizon: SimTime, inclusive: bool) {
        let within = |t: SimTime| t < horizon || (inclusive && t == horizon);
        loop {
            let next = self.engine.queue.peek_time().filter(|&t| within(t));
            match next {
                // Injection ahead of an event delivery may use an
                // inclusive threshold even on an exclusive horizon: the
                // event itself is strictly inside the horizon.
                Some(ht) => self.inject_up_to(ht, true),
                None => self.inject_up_to(horizon, inclusive),
            }
            match self.engine.queue.peek_time() {
                Some(ht) if within(ht) => {
                    self.engine.step();
                }
                _ => return,
            }
        }
    }

    /// Inject the longest buffer prefix whose last entry has
    /// `earliest_event <= threshold` (`<` when `inclusive` is false).
    fn inject_up_to(&mut self, threshold: SimTime, inclusive: bool) {
        let due = |spec: &JobSpec| {
            let e = earliest_event(spec);
            e < threshold || (inclusive && e == threshold)
        };
        let last_due = self
            .buffer
            .iter()
            .rev()
            .find(|(_, s)| due(s))
            .map(|(&k, _)| k);
        let Some(last) = last_due else { return };
        let keys: Vec<(SimTime, JobId)> = self.buffer.range(..=last).map(|(&k, _)| k).collect();
        for key in keys {
            let spec = self.buffer.remove(&key).expect("key just listed");
            let id = spec.id;
            if let (Some(notice), true) = (&spec.notice, self.schedule_notices) {
                self.engine
                    .queue
                    .schedule_arrival(notice.notice_time, Ev::Notice(id));
            }
            self.engine
                .queue
                .schedule_arrival(spec.submit, Ev::Submit(id));
            self.engine.sim.cluster.note_job(&spec);
            self.engine.sim.admit(spec);
        }
    }

    /// Serialize the entire session — engine, simulation state, buffered
    /// submissions, id history — into a standalone byte image. Restoring
    /// it (under the same config) and continuing is bitwise-identical to
    /// never having paused.
    pub fn snapshot(&self) -> Vec<u8> {
        let engine_image = snapshot_engine(&self.engine);
        let mut w = SnapWriter::with_capacity(engine_image.len() + 1024);
        w.put_u8(SERVICE_SNAP_VERSION);
        w.put_bytes(&engine_image);
        w.put_len(self.buffer.len());
        for spec in self.buffer.values() {
            spec.encode_snap(&mut w);
        }
        w.put_len(self.cancelled.len());
        for id in &self.cancelled {
            w.put_u64(id.0);
        }
        w.put_len(self.seen.len());
        for id in &self.seen {
            w.put_u64(id.0);
        }
        w.into_bytes()
    }

    /// Rebuild a session from [`SchedulerService::snapshot`] bytes.
    ///
    /// `cfg` is the scheduling configuration to resume under (normally
    /// the one the snapshot was taken with; a different *mechanism* is
    /// legal and is how what-if forecasting forks futures), and `ctx` the
    /// backend's reconstruction context (`()` for a single cluster, the
    /// federation config for shards).
    ///
    /// # Errors
    ///
    /// Corrupted, truncated, or version-skewed bytes — never panics on
    /// malformed input.
    pub fn restore(bytes: &[u8], cfg: &SimConfig, ctx: B::Ctx) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        let version = r.get_u8()?;
        if version != SERVICE_SNAP_VERSION {
            return Err(r.err(format!(
                "service snapshot version {version} (this build reads {SERVICE_SNAP_VERSION})"
            )));
        }
        let engine_image = r.get_bytes()?;
        let engine = restore_engine::<B>(engine_image, cfg, &ctx)?;
        let n_buf = r.get_len()?;
        let mut buffer = BTreeMap::new();
        for _ in 0..n_buf {
            let spec = JobSpec::decode_snap(&mut r)?;
            let key = (spec.submit, spec.id);
            if buffer.insert(key, spec).is_some() {
                return Err(r.err(format!("duplicate buffered job {}", key.1)));
            }
        }
        let cancelled = get_id_set(&mut r)?;
        let seen = get_id_set(&mut r)?;
        for key in buffer.keys() {
            if !seen.contains(&key.1) {
                return Err(r.err(format!("buffered job {} missing from id history", key.1)));
            }
        }
        r.expect_end()?;
        let schedule_notices = !cfg.mechanism.is_baseline() && engine.sim.hooks().uses_notices();
        Ok(SchedulerService {
            engine,
            buffer,
            cancelled,
            seen,
            schedule_notices,
            ctx,
        })
    }

    /// Forecast a hypothetical job's first start under each of the six
    /// hybrid mechanisms, without perturbing the live session.
    ///
    /// Each fork restores the current snapshot under one mechanism,
    /// submits `probe`, and drains to completion; the map holds the
    /// probe's first start per mechanism (a mechanism is absent when the
    /// probe never starts there, e.g. it exceeds every shard). Already
    /// in-flight jobs keep whatever treatment the live mechanism gave
    /// them — the forecast answers "what if the mechanism changed *now*",
    /// not "what if history were different".
    ///
    /// # Errors
    ///
    /// The same validations as [`SchedulerService::submit`] (the probe
    /// must be submittable right now).
    pub fn what_if(&self, probe: &JobSpec) -> Result<BTreeMap<Mechanism, SimTime>, SubmitError> {
        let image = self.snapshot();
        let mut forecast = BTreeMap::new();
        for m in Mechanism::ALL_SIX {
            let cfg = SimConfig {
                mechanism: m,
                hooks: None,
                // Wall-clock decision timing is meaningless in a
                // speculative fork; keep forks fully deterministic.
                measure_decisions: false,
                ..self.engine.sim.cfg.clone()
            };
            let mut fork = SchedulerService::<B>::restore(&image, &cfg, self.ctx.clone())
                .expect("a just-taken snapshot always restores");
            fork.submit(probe.clone())?;
            fork.pump(SimTime::MAX, true);
            if let Some(start) = fork
                .engine
                .sim
                .rec
                .get(probe.id)
                .and_then(|r| r.first_start)
            {
                forecast.insert(m, start);
            }
        }
        Ok(forecast)
    }

    /// Apply one submission-log entry: step to just before `entry.at`,
    /// then perform the operation (ops at `t` precede events at `t`).
    ///
    /// # Errors
    ///
    /// A rejected submission ([`SubmitError`]); cancels never fail (their
    /// outcome is returned in `Ok`).
    pub fn apply(&mut self, entry: &LogEntry) -> Result<Option<CancelOutcome>, SubmitError> {
        self.step_before(entry.at);
        match &entry.op {
            SubmitOp::Submit(spec) => {
                self.submit(spec.clone())?;
                Ok(None)
            }
            SubmitOp::Cancel(id) => Ok(Some(self.cancel(*id))),
        }
    }

    // ------------------------------------------------------------------
    // Capacity administration (outage extension)
    // ------------------------------------------------------------------

    /// Gracefully drain one node: it leaves service the moment it is idle
    /// (immediately when free, at release otherwise). No job is evicted.
    /// Returns `true` when the node is down after the call; `false` for a
    /// still-occupied (now marked) node or an out-of-range address.
    ///
    /// Admin ops act at the current virtual time and are part of the
    /// session's deterministic history: the same call sequence at the
    /// same times replays bitwise. They work with or without an outage
    /// schedule (capacity changed here is accounted in the outage report
    /// only when a schedule is active).
    pub fn drain_node(&mut self, shard: usize, node: u32) -> bool {
        let now = self.engine.now();
        let Engine { queue, sim, .. } = &mut self.engine;
        if shard >= sim.cluster.shard_count() || node >= sim.cluster.shard_nodes(shard) {
            return false;
        }
        sim.accrue_outage(now);
        let down = sim.cluster.drain_node(shard, NodeId(node));
        sim.request_pass(now, queue);
        down
    }

    /// Gracefully drain every node of a shard (rolling maintenance:
    /// the shard leaves the federation as its jobs finish). Returns the
    /// number of nodes already down after the call.
    pub fn drain_shard(&mut self, shard: usize) -> u32 {
        let now = self.engine.now();
        let Engine { queue, sim, .. } = &mut self.engine;
        if shard >= sim.cluster.shard_count() {
            return 0;
        }
        sim.accrue_outage(now);
        let mut down = 0;
        for n in 0..sim.cluster.shard_nodes(shard) {
            if sim.cluster.drain_node(shard, NodeId(n)) {
                down += 1;
            }
        }
        sim.request_pass(now, queue);
        down
    }

    /// Return a down node to service (or cancel its pending drain mark).
    /// Returns `true` when anything changed.
    pub fn rejoin_node(&mut self, shard: usize, node: u32) -> bool {
        let now = self.engine.now();
        let Engine { queue, sim, .. } = &mut self.engine;
        if shard >= sim.cluster.shard_count() || node >= sim.cluster.shard_nodes(shard) {
            return false;
        }
        sim.accrue_outage(now);
        let changed = sim.cluster.rejoin_node(shard, NodeId(node));
        if changed {
            sim.offer_free_nodes(now);
            sim.request_pass(now, queue);
        }
        changed
    }

    /// Rejoin every node of a shard. Returns the number of nodes whose
    /// state changed (down → free, or drain mark cleared).
    pub fn rejoin_shard(&mut self, shard: usize) -> u32 {
        let now = self.engine.now();
        let Engine { queue, sim, .. } = &mut self.engine;
        if shard >= sim.cluster.shard_count() {
            return 0;
        }
        sim.accrue_outage(now);
        let mut changed = 0;
        for n in 0..sim.cluster.shard_nodes(shard) {
            if sim.cluster.rejoin_node(shard, NodeId(n)) {
                changed += 1;
            }
        }
        if changed > 0 {
            sim.offer_free_nodes(now);
            sim.request_pass(now, queue);
        }
        changed
    }

    /// Nodes currently out of service across all shards.
    pub fn down_nodes(&self) -> u32 {
        self.engine.sim.cluster.down_nodes()
    }

    /// Nodes currently in service across all shards.
    pub fn live_nodes(&self) -> u32 {
        self.engine.sim.cluster.live_nodes()
    }
}

fn get_id_set(r: &mut SnapReader<'_>) -> Result<BTreeSet<JobId>, SnapError> {
    let n = r.get_len()?;
    let mut set = BTreeSet::new();
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let id = r.get_u64()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(r.err(format!("id set not strictly ascending at {id}")));
        }
        prev = Some(id);
        set.insert(JobId(id));
    }
    Ok(set)
}

/// Replay a full [`SubmissionLog`] through a fresh [`SchedulerService`]
/// (single-cluster or federated per `cfg.federation`) and fold the run
/// into a [`SimOutcome`] — the incremental counterpart of materializing
/// the log and calling [`Simulator::run_trace`](super::Simulator::run_trace),
/// with bitwise-identical metrics.
///
/// # Errors
///
/// A log entry the service rejects (duplicate id, past-due submission).
pub fn replay_submission_log(cfg: &SimConfig, log: &SubmissionLog) -> Result<SimOutcome, String> {
    fn drive<B: SnapshotBackend>(
        svc: &mut SchedulerService<B>,
        log: &SubmissionLog,
    ) -> Result<(), String>
    where
        B::Ctx: Clone,
    {
        for (i, entry) in log.entries().iter().enumerate() {
            svc.apply(entry)
                .map_err(|e| format!("log entry {i}: {e}"))?;
        }
        Ok(())
    }
    match &cfg.federation {
        None => {
            let mut svc = SchedulerService::new(cfg.clone(), log.system_size());
            drive(&mut svc, log)?;
            Ok(svc.into_outcome())
        }
        Some(_) => {
            let mut svc = SchedulerService::<Federation>::federated(cfg.clone(), log.system_size());
            drive(&mut svc, log)?;
            Ok(svc.into_outcome())
        }
    }
}
