//! The driver loop: repeatedly pops the earliest event and hands it to the
//! [`Simulation`] implementation together with a scheduling context.
//!
//! The handler receives `&mut EventQueue` directly (rather than a callback
//! context) so that it can schedule follow-up events and cancel stale ones
//! without borrow gymnastics.
//!
//! `run_until` is the primitive; `run_to_completion` is derived from it
//! (`run_until(SimTime::MAX)`). Delivery pacing is delegated to a [`Clock`]
//! so a live service can shadow wall time while batch replay stays
//! flat-out; see [`crate::clock`].

use crate::clock::{Clock, VirtualClock};
use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation model driven by the engine.
pub trait Simulation {
    type Event;

    /// Handle one event at virtual time `now`. New events may be scheduled
    /// on `queue`; they must not be in the past.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Counters describing an engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered to the handler.
    pub delivered: u64,
    /// Events scheduled over the whole run (delivered + cancelled + pending).
    pub scheduled: u64,
    /// Cancelled entries skipped by the queue.
    pub cancelled: u64,
    /// Virtual time of the last delivered event.
    pub end_time: SimTime,
}

/// Event-loop driver owning the future-event list and the model.
///
/// Generic over a [`Clock`] pacing policy; the default [`VirtualClock`]
/// never blocks, so `Engine<S>` behaves exactly as the pure-batch engine
/// always has.
pub struct Engine<S: Simulation, C: Clock = VirtualClock> {
    pub queue: EventQueue<S::Event>,
    pub sim: S,
    clock: C,
    now: SimTime,
    delivered: u64,
}

impl<S: Simulation> Engine<S> {
    pub fn new(sim: S) -> Self {
        Engine::with_clock(sim, VirtualClock)
    }

    /// Reassemble an engine from externally held state (snapshot restore).
    ///
    /// `now`/`delivered` must come from the same snapshot as `queue`, or
    /// the monotonic-time debug assertion in [`Engine::step`] can fire.
    pub fn from_parts(sim: S, queue: EventQueue<S::Event>, now: SimTime, delivered: u64) -> Self {
        Engine {
            queue,
            sim,
            clock: VirtualClock,
            now,
            delivered,
        }
    }
}

impl<S: Simulation, C: Clock> Engine<S, C> {
    pub fn with_clock(sim: S, clock: C) -> Self {
        Engine {
            queue: EventQueue::new(),
            sim,
            clock,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Current virtual time (time of the most recently delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Deliver a single event. Returns `false` when the queue is exhausted.
    ///
    /// The clock's [`Clock::pace`] runs after the event is popped and
    /// before its handler, so a pacing clock delays *delivery*, never the
    /// simulation's logical behaviour.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, _, ev)) => {
                debug_assert!(t >= self.now, "time went backwards");
                self.clock.pace(t);
                self.now = t;
                self.delivered += 1;
                self.sim.handle(t, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    ///
    /// Equivalent to `run_until(SimTime::MAX)`: `SimTime::MAX` is the
    /// "never" sentinel, and the inclusive horizon contract (see
    /// [`Engine::run_until`]) means no schedulable event can lie beyond it.
    pub fn run_to_completion(&mut self) -> EngineStats {
        self.run_until(SimTime::MAX)
    }

    /// Run while events exist at time `<= horizon`.
    ///
    /// # Horizon semantics (pinned contract)
    ///
    /// - **Inclusive**: events scheduled at exactly `horizon` *are*
    ///   delivered, including follow-ups a handler schedules at `horizon`
    ///   itself while the run is in progress.
    /// - **Idempotent**: a repeated call with an equal (or smaller)
    ///   horizon delivers nothing and changes no state — every remaining
    ///   event is strictly later than `horizon`.
    /// - **Clock stays put**: `now()` afterwards is the timestamp of the
    ///   last *delivered* event, which may be well short of `horizon`; the
    ///   engine never fast-forwards the clock to an instant where nothing
    ///   happened.
    ///
    /// `SchedulerService::step_until` in `hws-core` inherits this contract
    /// verbatim.
    pub fn run_until(&mut self, horizon: SimTime) -> EngineStats {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        self.stats()
    }

    pub fn stats(&self) -> EngineStats {
        EngineStats {
            delivered: self.delivered,
            scheduled: self.queue.scheduled_total(),
            cancelled: self.queue.cancelled_skipped(),
            end_time: self.now,
        }
    }

    /// Consume the engine, returning the model (for result extraction).
    pub fn into_sim(self) -> S {
        self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Toy model: a ping-pong chain that counts down.
    struct PingPong {
        remaining: u32,
        log: Vec<(SimTime, &'static str)>,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl Simulation for PingPong {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Ping => {
                    self.log.push((now, "ping"));
                    q.schedule(now + SimDuration::from_secs(1), Ev::Pong);
                }
                Ev::Pong => {
                    self.log.push((now, "pong"));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        q.schedule(now + SimDuration::from_secs(2), Ev::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let mut eng = Engine::new(PingPong {
            remaining: 2,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        let stats = eng.run_to_completion();
        assert_eq!(stats.delivered, 6); // ping,pong,ping,pong,ping,pong
        assert_eq!(eng.sim.log.last().unwrap().0, SimTime::from_secs(7));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_until(SimTime::from_secs(4));
        assert!(eng.sim.log.iter().all(|(t, _)| *t <= SimTime::from_secs(4)));
        assert!(eng.now() <= SimTime::from_secs(4));
        // Queue still holds the future part of the chain.
        assert!(!eng.queue.is_empty());
    }

    #[test]
    fn run_until_is_inclusive_at_exactly_horizon() {
        // Ping at t=0 schedules Pong at t=1; a horizon of exactly 1 must
        // deliver both, including the follow-up landing on the horizon.
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        let st = eng.run_until(SimTime::from_secs(1));
        assert_eq!(st.delivered, 2);
        assert_eq!(
            eng.sim.log,
            vec![(SimTime::ZERO, "ping"), (SimTime::from_secs(1), "pong")]
        );
        assert_eq!(eng.now(), SimTime::from_secs(1));
    }

    #[test]
    fn repeated_equal_horizon_is_a_no_op() {
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        let first = eng.run_until(SimTime::from_secs(10));
        let log_len = eng.sim.log.len();
        let again = eng.run_until(SimTime::from_secs(10));
        assert_eq!(first, again, "equal-horizon rerun changed stats");
        assert_eq!(
            eng.sim.log.len(),
            log_len,
            "equal-horizon rerun delivered events"
        );
        // A smaller horizon is just as inert.
        let smaller = eng.run_until(SimTime::from_secs(3));
        assert_eq!(first, smaller);
    }

    #[test]
    fn run_until_does_not_fast_forward_the_clock() {
        // Last deliverable event is the pong at t=3; a horizon of 100 must
        // leave `now` at 3, not advance it to the horizon.
        let mut eng = Engine::new(PingPong {
            remaining: 1,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_until(SimTime::from_secs(100));
        assert_eq!(eng.now(), SimTime::from_secs(4));
        assert!(eng.queue.is_empty());
    }

    #[test]
    fn run_to_completion_equals_run_until_max() {
        let run = |to_completion: bool| {
            let mut eng = Engine::new(PingPong {
                remaining: 10,
                log: vec![],
            });
            eng.queue.schedule(SimTime::ZERO, Ev::Ping);
            let st = if to_completion {
                eng.run_to_completion()
            } else {
                eng.run_until(SimTime::MAX)
            };
            (st, eng.sim.log)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn stats_track_counts() {
        let mut eng = Engine::new(PingPong {
            remaining: 0,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        let st = eng.run_to_completion();
        assert_eq!(st.delivered, 2);
        assert_eq!(st.scheduled, 2);
        assert_eq!(st.end_time, SimTime::from_secs(1));
        assert_eq!(eng.delivered(), 2);
    }

    #[test]
    fn deterministic_event_trace() {
        let run = || {
            let mut eng = Engine::new(PingPong {
                remaining: 10,
                log: vec![],
            });
            eng.queue.schedule(SimTime::ZERO, Ev::Ping);
            eng.run_to_completion();
            eng.sim.log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn from_parts_resumes_where_run_until_stopped() {
        // Split one run at an arbitrary horizon, carry the pieces through
        // `from_parts`, and finish: the log must match an unbroken run.
        let unbroken = {
            let mut eng = Engine::new(PingPong {
                remaining: 10,
                log: vec![],
            });
            eng.queue.schedule(SimTime::ZERO, Ev::Ping);
            eng.run_to_completion();
            (eng.stats(), eng.sim.log)
        };
        let mut eng = Engine::new(PingPong {
            remaining: 10,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_until(SimTime::from_secs(9));
        let now = eng.now();
        let delivered = eng.delivered();
        let Engine { queue, sim, .. } = eng;
        let mut resumed = Engine::from_parts(sim, queue, now, delivered);
        resumed.run_to_completion();
        assert_eq!((resumed.stats(), resumed.sim.log), unbroken);
    }

    #[test]
    fn wall_clock_engine_delivers_identical_trace() {
        // Pacing must not perturb behaviour: same log as the virtual run.
        use crate::clock::WallClock;
        let virt = {
            let mut eng = Engine::new(PingPong {
                remaining: 3,
                log: vec![],
            });
            eng.queue.schedule(SimTime::ZERO, Ev::Ping);
            eng.run_to_completion();
            eng.sim.log
        };
        // 1e6 virtual seconds per wall second keeps the test instant.
        let mut eng = Engine::with_clock(
            PingPong {
                remaining: 3,
                log: vec![],
            },
            WallClock::new(1e6),
        );
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_to_completion();
        assert_eq!(eng.sim.log, virt);
    }
}
