//! Queue-ordering policies. The paper's experiments use FCFS (+EASY); the
//! mechanisms are explicitly designed to compose with any waiting-job
//! policy, so a few common alternatives are provided and exercised by the
//! ablation benches.

use hws_sim::SimTime;
use hws_workload::JobSpec;
use std::cmp::Ordering;

/// Built-in queue policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// First-come-first-serve by (original) submission time.
    Fcfs,
    /// Shortest (estimated) job first.
    Sjf,
    /// Largest job (by node count) first.
    Ljf,
    /// The WFP3 priority of Tang et al.: `(wait/estimate)^3 × size`,
    /// favouring jobs that have waited long relative to their length.
    Wfp3,
}

impl PolicyKind {
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Fcfs,
        PolicyKind::Sjf,
        PolicyKind::Ljf,
        PolicyKind::Wfp3,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::Sjf => "SJF",
            PolicyKind::Ljf => "LJF",
            PolicyKind::Wfp3 => "WFP3",
        }
    }

    /// Whether the policy's score depends on the evaluation instant (an
    /// *aging* policy). Static policies (`false`) produce keys that stay
    /// valid for as long as a job waits, so the driver's maintained queue
    /// index never re-keys them; aging policies are re-keyed once per
    /// scheduling pass (see the key-epoch handling in `driver`).
    pub fn is_time_varying(self) -> bool {
        matches!(self, PolicyKind::Wfp3)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Total-ordered priority key; smaller sorts earlier.
///
/// `class` ranks ahead of the policy score: arrived on-demand jobs that
/// could not start instantly are "put to the front of the queue" (§III-B2),
/// so they get class 0, everything else class 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueKey {
    pub class: u8,
    pub score: f64,
    pub tie: u64,
}

impl Eq for QueueKey {}

impl Ord for QueueKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.class
            .cmp(&other.class)
            .then_with(|| self.score.partial_cmp(&other.score).expect("finite score"))
            .then_with(|| self.tie.cmp(&other.tie))
    }
}

impl PartialOrd for QueueKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Static score component: policies whose priority never changes while a
/// job waits. Computed once at enqueue time; valid at any later instant.
///
/// # Panics
///
/// Debug-asserts that `policy` is not time-varying — aging scores must go
/// through [`aging_score`] with an explicit evaluation instant.
pub fn static_score(policy: PolicyKind, spec: &JobSpec) -> f64 {
    debug_assert!(!policy.is_time_varying());
    match policy {
        PolicyKind::Fcfs => spec.submit.as_secs() as f64,
        PolicyKind::Sjf => spec.estimate.as_secs() as f64,
        PolicyKind::Ljf => -(spec.size as f64),
        PolicyKind::Wfp3 => unreachable!("WFP3 is time-varying"),
    }
}

/// Time-varying score component of an aging policy, evaluated at `now`.
/// A `now` earlier than the submit time (a stale key epoch) saturates the
/// wait to zero — harmless, because the index is re-keyed at the current
/// instant before any scheduling pass reads it.
pub fn aging_score(policy: PolicyKind, spec: &JobSpec, now: SimTime) -> f64 {
    debug_assert!(policy.is_time_varying());
    match policy {
        PolicyKind::Wfp3 => {
            let wait = now.since(spec.submit).as_secs() as f64;
            let est = spec.estimate.as_secs().max(1) as f64;
            -((wait / est).powi(3) * spec.size as f64)
        }
        _ => unreachable!("{policy} is static"),
    }
}

/// Compute a job's queue key under `policy`. `od_front` marks arrived
/// on-demand jobs awaiting resources. For static policies `now` is
/// ignored; for aging policies it is the key's epoch.
pub fn queue_key(policy: PolicyKind, spec: &JobSpec, od_front: bool, now: SimTime) -> QueueKey {
    let score = if policy.is_time_varying() {
        aging_score(policy, spec, now)
    } else {
        static_score(policy, spec)
    };
    QueueKey {
        class: if od_front { 0 } else { 1 },
        score,
        tie: spec.id.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hws_sim::SimDuration;
    use hws_workload::job::JobSpecBuilder;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fcfs_orders_by_submit_then_id() {
        let a = JobSpecBuilder::rigid(5).submit_at(t(100)).size(4).build();
        let b = JobSpecBuilder::rigid(2).submit_at(t(200)).size(4).build();
        let c = JobSpecBuilder::rigid(9).submit_at(t(100)).size(4).build();
        let k = |s| queue_key(PolicyKind::Fcfs, s, false, t(1_000));
        assert!(k(&a) < k(&b));
        assert!(k(&a) < k(&c)); // same submit, lower id first
    }

    #[test]
    fn sjf_prefers_short_estimates() {
        let short = JobSpecBuilder::rigid(1)
            .size(4)
            .work(SimDuration::from_secs(50))
            .estimate(SimDuration::from_secs(100))
            .build();
        let long = JobSpecBuilder::rigid(2)
            .size(4)
            .work(SimDuration::from_secs(50))
            .estimate(SimDuration::from_secs(9_000))
            .build();
        let k = |s| queue_key(PolicyKind::Sjf, s, false, t(0));
        assert!(k(&short) < k(&long));
    }

    #[test]
    fn ljf_prefers_large_jobs() {
        let big = JobSpecBuilder::rigid(1).size(512).build();
        let small = JobSpecBuilder::rigid(2).size(16).build();
        let k = |s| queue_key(PolicyKind::Ljf, s, false, t(0));
        assert!(k(&big) < k(&small));
    }

    #[test]
    fn wfp3_rewards_waiting() {
        let spec = JobSpecBuilder::rigid(1)
            .submit_at(t(0))
            .size(64)
            .estimate(SimDuration::from_secs(3_600))
            .build();
        let early = queue_key(PolicyKind::Wfp3, &spec, false, t(100));
        let late = queue_key(PolicyKind::Wfp3, &spec, false, t(100_000));
        assert!(late < early, "priority should grow with waiting time");
    }

    #[test]
    fn od_front_class_beats_any_score() {
        let od = JobSpecBuilder::on_demand(99)
            .submit_at(t(9_999))
            .size(4)
            .build();
        let old = JobSpecBuilder::rigid(1).submit_at(t(0)).size(4).build();
        let k_od = queue_key(PolicyKind::Fcfs, &od, true, t(10_000));
        let k_old = queue_key(PolicyKind::Fcfs, &old, false, t(10_000));
        assert!(k_od < k_old);
    }

    #[test]
    fn policy_names() {
        assert_eq!(PolicyKind::Fcfs.to_string(), "FCFS");
        assert_eq!(PolicyKind::ALL.len(), 4);
    }
}
