//! A counting global allocator for allocation-budget tests (behind the
//! `count-allocs` feature, which production builds never enable).
//!
//! The steady-state per-event replay path is engineered to recycle its
//! buffers — scratch vectors, the job arena's free list, the event queue's
//! ring storage — so heap traffic per event should be a small constant,
//! not a function of queue depth or trace length. The `alloc_budget`
//! integration test installs [`CountingAlloc`] as the global allocator and
//! asserts that budget; a regression that sneaks a per-event allocation
//! into the hot path (a rebuilt `Vec`, a per-pass `HashSet`) moves the
//! measured ratio far more than the assertion's slack.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting `alloc`/`realloc` calls.
/// Install with `#[global_allocator]` in a test binary.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations (plus reallocations) observed so far, process-wide.
/// Meaningful only when [`CountingAlloc`] is the global allocator.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}
