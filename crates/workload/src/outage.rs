//! Deterministic outage schedules: capacity-level fault injection.
//!
//! An [`OutageSchedule`] is an ordered sequence of timestamped capacity
//! events — hard node losses ([`OutageKind::Down`]), graceful drains
//! ([`OutageKind::Drain`]), and service re-entries ([`OutageKind::Rejoin`])
//! — addressed to a `(shard, node)` pair or to a whole shard. The driver
//! (hws-core) injects the schedule through its event queue, so an outage
//! run is bitwise reproducible the same way a failure-injection run is:
//! the schedule is data, not a random process sampled at run time.
//!
//! The text interchange format follows the SWF-codec house style: `;`
//! header comments (`HWS-OutageSchedule`) followed by one event per line —
//! `D,<at>,<shard>,<node|*>` (hard down), `G,…` (graceful drain), `R,…`
//! (rejoin) — so schedules are diffable, greppable, and offline-friendly
//! like every other artifact in this repo.
//!
//! Two synthesizers cover the common cases: [`OutageSchedule::from_mtbf`]
//! walks a per-node alternating up/down renewal process from a counter-
//! based RNG (SplitMix64 over `(seed, node, step)` — order-independent,
//! snapshot-stable), and [`OutageSchedule::maintenance_windows`] expands
//! explicit `[start, end)` windows into drain/rejoin pairs.

use hws_sim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// What happens to the addressed capacity at the event instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutageKind {
    /// Hard loss: resident jobs are evicted (checkpoint-restart for
    /// rigid/on-demand, shrink-away for malleable), reservations on the
    /// node are released. The node leaves service immediately.
    Down,
    /// Graceful drain: no eviction; a free node leaves service now, an
    /// occupied one leaves when its resident releases it.
    Drain,
    /// Re-entry: a down node returns to the free pool. A no-op for nodes
    /// already in service (it also clears a pending drain mark).
    Rejoin,
}

impl OutageKind {
    /// One-letter line tag in the text format.
    pub fn tag(self) -> char {
        match self {
            OutageKind::Down => 'D',
            OutageKind::Drain => 'G',
            OutageKind::Rejoin => 'R',
        }
    }
}

/// One timestamped capacity event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageEvent {
    /// When the event applies (simulation clock).
    pub at: SimTime,
    pub kind: OutageKind,
    /// Which shard the capacity belongs to; `0` on a single machine.
    pub shard: u32,
    /// Node index within the shard, or `None` for the whole shard
    /// (rolling maintenance: every node of the shard at once).
    pub node: Option<u32>,
}

/// An ordered, validated outage schedule. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OutageSchedule {
    events: Vec<OutageEvent>,
}

impl OutageSchedule {
    /// Build and validate a schedule: timestamps must be non-decreasing.
    /// Shard/node indices are validated against the actual machine shape
    /// by the driver at run start (the schedule itself is shape-agnostic).
    ///
    /// # Errors
    ///
    /// Out-of-order timestamps.
    pub fn new(events: Vec<OutageEvent>) -> Result<Self, String> {
        let mut last = SimTime::ZERO;
        for (i, e) in events.iter().enumerate() {
            if e.at < last {
                return Err(format!(
                    "event {i}: timestamp {} precedes predecessor {last}",
                    e.at
                ));
            }
            last = e.at;
        }
        Ok(OutageSchedule { events })
    }

    /// The empty schedule: no capacity events, behaviorally identical to
    /// running without outage injection at all (a property the proptests
    /// pin bitwise).
    pub fn empty() -> Self {
        OutageSchedule::default()
    }

    /// Synthesize per-node hard outages from an alternating renewal
    /// process: each of `nodes` nodes (on shard 0) draws exponential
    /// time-to-failure (mean `mtbf_hours`) and time-to-repair (mean
    /// `mttr_hours`) from a counter-based SplitMix64 stream keyed by
    /// `(seed, node, step)`, walking `Down`/`Rejoin` pairs until
    /// `horizon`. Deterministic for a given `(seed, nodes, rates)`.
    pub fn from_mtbf(
        seed: u64,
        nodes: u32,
        mtbf_hours: f64,
        mttr_hours: f64,
        horizon: SimDuration,
    ) -> Self {
        assert!(mtbf_hours > 0.0 && mttr_hours > 0.0);
        let mut events = Vec::new();
        for node in 0..nodes {
            let mut t = 0u64;
            let mut step = 0u64;
            loop {
                let ttf = exp_draw(seed, node, step, mtbf_hours);
                step += 1;
                t = t.saturating_add(ttf);
                if t >= horizon.as_secs() {
                    break;
                }
                events.push(OutageEvent {
                    at: SimTime::from_secs(t),
                    kind: OutageKind::Down,
                    shard: 0,
                    node: Some(node),
                });
                let ttr = exp_draw(seed, node, step, mttr_hours);
                step += 1;
                t = t.saturating_add(ttr);
                if t >= horizon.as_secs() {
                    break;
                }
                events.push(OutageEvent {
                    at: SimTime::from_secs(t),
                    kind: OutageKind::Rejoin,
                    shard: 0,
                    node: Some(node),
                });
            }
        }
        // Total order: (at, shard, node, kind) — node-index ties are
        // resolved deterministically regardless of generation order.
        events.sort_by_key(|e| (e.at, e.shard, e.node, e.kind));
        OutageSchedule { events }
    }

    /// Expand explicit maintenance windows into drain/rejoin pairs: each
    /// window takes its capacity out at `start` (gracefully unless
    /// `hard`) and returns it at `end`.
    ///
    /// # Errors
    ///
    /// A window with `end <= start`, or any [`OutageSchedule::new`]
    /// validation error after expansion.
    pub fn maintenance_windows(windows: &[MaintenanceWindow]) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, w) in windows.iter().enumerate() {
            if w.end <= w.start {
                return Err(format!(
                    "window {i}: end {} does not follow start {}",
                    w.end, w.start
                ));
            }
            let kind = if w.hard {
                OutageKind::Down
            } else {
                OutageKind::Drain
            };
            events.push(OutageEvent {
                at: w.start,
                kind,
                shard: w.shard,
                node: w.node,
            });
            events.push(OutageEvent {
                at: w.end,
                kind: OutageKind::Rejoin,
                shard: w.shard,
                node: w.node,
            });
        }
        events.sort_by_key(|e| (e.at, e.shard, e.node, e.kind));
        OutageSchedule::new(events)
    }

    pub fn events(&self) -> &[OutageEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Largest shard index any event addresses, or `None` for an empty
    /// schedule (used by the driver's shape check).
    pub fn max_shard(&self) -> Option<u32> {
        self.events.iter().map(|e| e.shard).max()
    }

    /// Serialise to the text interchange format (see the module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(24 * (self.events.len() + 1));
        let _ = writeln!(out, "; HWS-OutageSchedule: 1");
        for e in &self.events {
            let node = match e.node {
                Some(n) => n.to_string(),
                None => "*".to_string(),
            };
            let _ = writeln!(
                out,
                "{},{},{},{}",
                e.kind.tag(),
                e.at.as_secs(),
                e.shard,
                node
            );
        }
        out
    }

    /// Parse the text interchange format produced by
    /// [`OutageSchedule::to_text`], re-running full validation.
    ///
    /// # Errors
    ///
    /// Line-tagged messages for malformed lines, plus every
    /// [`OutageSchedule::new`] validation error.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut tagged = false;
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let ln = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                if let Some(v) = comment.trim().strip_prefix("HWS-OutageSchedule:") {
                    tagged = v.trim() == "1";
                }
                continue;
            }
            if !tagged {
                return Err(format!(
                    "line {ln}: data before the HWS-OutageSchedule header"
                ));
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 4 {
                return Err(format!("line {ln}: event takes 4 fields, got {}", f.len()));
            }
            let kind = match f[0] {
                "D" => OutageKind::Down,
                "G" => OutageKind::Drain,
                "R" => OutageKind::Rejoin,
                other => return Err(format!("line {ln}: unknown event tag {other}")),
            };
            let at = f[1]
                .parse::<u64>()
                .map_err(|e| format!("line {ln}: at: {e}"))?;
            let shard = f[2]
                .parse::<u32>()
                .map_err(|e| format!("line {ln}: shard: {e}"))?;
            let node = match f[3] {
                "*" => None,
                n => Some(
                    n.parse::<u32>()
                        .map_err(|e| format!("line {ln}: node: {e}"))?,
                ),
            };
            events.push(OutageEvent {
                at: SimTime::from_secs(at),
                kind,
                shard,
                node,
            });
        }
        if !tagged {
            return Err("missing HWS-OutageSchedule header".to_string());
        }
        OutageSchedule::new(events)
    }

    /// Write the schedule to a file (text format).
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Read and validate a schedule from a file (text format).
    ///
    /// # Errors
    ///
    /// IO failures and every [`OutageSchedule::from_text`] error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_text(&text)
    }
}

/// One explicit maintenance window for
/// [`OutageSchedule::maintenance_windows`]: the addressed capacity is out
/// of service over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceWindow {
    pub shard: u32,
    /// Node index, or `None` for the whole shard.
    pub node: Option<u32>,
    pub start: SimTime,
    pub end: SimTime,
    /// `true` evicts residents at `start` ([`OutageKind::Down`]); `false`
    /// drains gracefully.
    pub hard: bool,
}

/// SplitMix64 — the same tiny counter-based generator the failure
/// injector uses, keyed here by `(seed, node, step)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential draw with mean `mean_hours`, at least one second, from the
/// `(seed, node, step)` counter key.
fn exp_draw(seed: u64, node: u32, step: u64, mean_hours: f64) -> u64 {
    let h = splitmix64(seed ^ splitmix64(u64::from(node) ^ splitmix64(step)));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE;
    let d = -mean_hours * 3_600.0 * u.ln();
    d.max(1.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: OutageKind, shard: u32, node: Option<u32>) -> OutageEvent {
        OutageEvent {
            at: SimTime::from_secs(at),
            kind,
            shard,
            node,
        }
    }

    #[test]
    fn new_rejects_out_of_order_times() {
        let err = OutageSchedule::new(vec![
            ev(100, OutageKind::Down, 0, Some(1)),
            ev(50, OutageKind::Rejoin, 0, Some(1)),
        ])
        .unwrap_err();
        assert!(err.contains("precedes"), "{err}");
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let s = OutageSchedule::new(vec![
            ev(10, OutageKind::Drain, 0, Some(3)),
            ev(20, OutageKind::Down, 1, None),
            ev(30, OutageKind::Rejoin, 1, None),
            ev(30, OutageKind::Rejoin, 0, Some(3)),
        ])
        .unwrap();
        let text = s.to_text();
        let back = OutageSchedule::from_text(&text).unwrap();
        assert_eq!(s, back);
        // And the rendering itself is stable.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn from_text_rejects_untagged_and_malformed() {
        assert!(OutageSchedule::from_text("D,1,0,0\n").is_err());
        assert!(OutageSchedule::from_text("").is_err());
        let hdr = "; HWS-OutageSchedule: 1\n";
        assert!(OutageSchedule::from_text(&format!("{hdr}X,1,0,0\n")).is_err());
        assert!(OutageSchedule::from_text(&format!("{hdr}D,1,0\n")).is_err());
        assert!(OutageSchedule::from_text(&format!("{hdr}D,nope,0,0\n")).is_err());
        assert!(OutageSchedule::from_text(&format!("{hdr}D,1,0,*\n")).is_ok());
    }

    #[test]
    fn from_mtbf_is_deterministic_and_alternates() {
        let a = OutageSchedule::from_mtbf(7, 4, 100.0, 4.0, SimDuration::from_days(30));
        let b = OutageSchedule::from_mtbf(7, 4, 100.0, 4.0, SimDuration::from_days(30));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = OutageSchedule::from_mtbf(8, 4, 100.0, 4.0, SimDuration::from_days(30));
        assert_ne!(a, c);
        // Per node, events strictly alternate Down/Rejoin starting Down.
        for node in 0..4u32 {
            let seq: Vec<OutageKind> = a
                .events()
                .iter()
                .filter(|e| e.node == Some(node))
                .map(|e| e.kind)
                .collect();
            for (i, k) in seq.iter().enumerate() {
                let want = if i % 2 == 0 {
                    OutageKind::Down
                } else {
                    OutageKind::Rejoin
                };
                assert_eq!(*k, want, "node {node} event {i}");
            }
        }
        // Times are globally non-decreasing (schedule invariant).
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn maintenance_windows_expand_and_validate() {
        let s = OutageSchedule::maintenance_windows(&[
            MaintenanceWindow {
                shard: 0,
                node: Some(2),
                start: SimTime::from_secs(100),
                end: SimTime::from_secs(200),
                hard: false,
            },
            MaintenanceWindow {
                shard: 1,
                node: None,
                start: SimTime::from_secs(150),
                end: SimTime::from_secs(300),
                hard: true,
            },
        ])
        .unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.events()[0].kind, OutageKind::Drain);
        assert_eq!(s.events()[1].kind, OutageKind::Down);
        assert_eq!(s.events()[1].node, None);
        assert_eq!(s.max_shard(), Some(1));
        // Degenerate window rejected.
        assert!(OutageSchedule::maintenance_windows(&[MaintenanceWindow {
            shard: 0,
            node: None,
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(5),
            hard: false,
        }])
        .is_err());
    }

    #[test]
    fn empty_schedule_round_trips() {
        let s = OutageSchedule::empty();
        assert_eq!(OutageSchedule::from_text(&s.to_text()).unwrap(), s);
        assert_eq!(s.max_shard(), None);
    }
}
