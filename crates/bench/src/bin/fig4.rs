//! **Figure 4** — job-type distribution across the randomly generated
//! traces. "The rigid, on-demand, malleable job distributions differ
//! significantly on different traces because different projects have
//! significant differences in sizes and submission patterns."

use hws_bench::{seeds_from_env, TraceSource};
use hws_metrics::Table;
use hws_workload::{stats, TraceConfig};

fn main() {
    let seeds = seeds_from_env();
    let source = TraceSource::from_env_or(TraceConfig::theta_2019());
    let mut t = Table::new(vec!["Trace", "Rigid %", "On-demand %", "Malleable %"]);
    let mut od_range = (f64::MAX, f64::MIN);
    for seed in 0..seeds {
        let trace = source.make_trace(seed);
        let s = stats::type_shares(&trace);
        od_range = (od_range.0.min(s.on_demand), od_range.1.max(s.on_demand));
        t.row(vec![
            format!("T{seed}"),
            format!("{:.1}", s.rigid * 100.0),
            format!("{:.1}", s.on_demand * 100.0),
            format!("{:.1}", s.malleable * 100.0),
        ]);
    }
    println!("FIGURE 4: job type distributions across {seeds} traces");
    println!("{}", t.render());
    println!(
        "on-demand share spans {:.1}%-{:.1}% (paper: \"3%-15% of total workloads\")",
        od_range.0 * 100.0,
        od_range.1 * 100.0
    );
}
