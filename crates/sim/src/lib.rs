//! # hws-sim — discrete-event simulation kernel
//!
//! A small, dependency-free discrete-event simulation (DES) core in the
//! spirit of CQSim's event engine: a virtual clock, a priority queue of
//! timestamped events with deterministic FIFO tie-breaking, lazy event
//! cancellation, and a driver loop.
//!
//! The kernel is generic over the event payload type so it can be reused by
//! any simulator; the hybrid-workload scheduler in `hws-core` instantiates it
//! with its own event enum.
//!
//! ## Determinism
//!
//! Two events scheduled for the same instant are delivered in the order they
//! were scheduled (a monotonically increasing sequence number breaks ties).
//! Given the same initial schedule and a deterministic handler, every run
//! produces an identical event trace — a property the test-suite checks and
//! the multi-seed experiment harness relies on.

pub mod clock;
pub mod engine;
pub mod par;
pub mod queue;
pub mod snap;
pub mod time;

pub use clock::{Clock, VirtualClock, WallClock};
pub use engine::{Engine, EngineStats, Simulation};
pub use par::par_map;
pub use queue::{EventId, EventQueue, QueueSnapshot};
pub use snap::{SnapError, SnapReader, SnapWriter};
pub use time::{SimDuration, SimTime};
