//! Capability/capacity co-scheduling safety nets.
//!
//! * A **regression test pinning zero-capability bitwise parity**: the
//!   capability-aware hooks wrapped around any mechanism must reproduce
//!   the plain two-class path exactly — per-seed metrics *and* engine
//!   counters — when the trace carries no capability jobs. This is the
//!   oracle (same style as `tests/federation.rs`) that keeps every
//!   committed `BENCH_*.json` baseline byte-stable.
//! * A **regression test** that capability jobs are never chosen as
//!   preemption victims under the default capability-aware policy (and
//!   *are* chosen again when shielding is explicitly disabled).
//! * A **property test over the admission-knob edge values** (fraction
//!   0.0/1.0, throttle 0/1/none), mirroring the `SwfImportConfig`
//!   edge-value proptest: no panics, no wedged simulations, starved
//!   capability work stays starved, and the zero-fraction rows stay
//!   bitwise identical to the plain path.

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;
use proptest::prelude::*;

fn quiet_plain(m: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::with_mechanism(m);
    cfg.measure_decisions = false;
    cfg
}

fn quiet_cap(hooks: CapabilityAware) -> SimConfig {
    let mut cfg = SimConfig::with_hooks(hooks);
    cfg.measure_decisions = false;
    cfg
}

#[test]
fn zero_capability_runs_are_bitwise_identical_to_the_plain_path() {
    let tcfg = TraceConfig::small();
    for seed in [0u64, 7] {
        let trace = tcfg.generate(seed);
        assert_eq!(trace.count_class(JobClass::Capability), 0);
        for m in Mechanism::ALL_SIX {
            let plain = Simulator::run_trace(&quiet_plain(m), &trace);
            let wrapped =
                Simulator::run_trace(&quiet_cap(CapabilityAware::for_mechanism(m)), &trace);
            assert_eq!(
                wrapped.metrics,
                plain.metrics,
                "{} seed {seed}: capability-aware hooks diverged on a zero-capability trace",
                m.name()
            );
            assert_eq!(
                wrapped.engine,
                plain.engine,
                "{} seed {seed}: engine stats diverged on a zero-capability trace",
                m.name()
            );
            assert!(wrapped.classes.is_none() && plain.classes.is_none());
        }
    }
}

#[test]
fn zero_capability_parity_holds_with_a_throttle_configured() {
    // The admission knob must be invisible while no capability jobs exist,
    // even at its most aggressive setting.
    let trace = TraceConfig::tiny().generate(3);
    for m in [Mechanism::N_PAA, Mechanism::CUP_SPAA] {
        let plain = Simulator::run_trace(&quiet_plain(m), &trace);
        let throttled = Simulator::run_trace(
            &quiet_cap(CapabilityAware::for_mechanism(m).with_max_running(0)),
            &trace,
        );
        assert_eq!(throttled.metrics, plain.metrics, "{}", m.name());
        assert_eq!(throttled.engine, plain.engine, "{}", m.name());
    }
}

/// Two identical long rigid jobs fill the machine; an on-demand job
/// arrives and must preempt one. Ties break by id, so the *capability*
/// job (id 0) would be the victim — unless the default policy shields it.
fn victim_scenario() -> Trace {
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(50)
            .work(D::from_hours(5))
            .estimate(D::from_hours(6))
            .capability()
            .build(),
        JobSpecBuilder::rigid(1)
            .size(50)
            .work(D::from_hours(5))
            .estimate(D::from_hours(6))
            .build(),
        JobSpecBuilder::on_demand(2)
            .size(50)
            .work(D::from_mins(30))
            .estimate(D::from_hours(1))
            .submit_at(T::from_secs(600))
            .build(),
    ];
    Trace::new(100, D::from_days(2), jobs)
}

#[test]
fn capability_jobs_are_never_preemption_victims_under_the_default_policy() {
    let trace = victim_scenario();
    let out = Simulator::run_trace(
        &quiet_cap(CapabilityAware::for_mechanism(Mechanism::N_PAA)),
        &trace,
    );
    let classes = out.classes.expect("capability jobs present");
    assert_eq!(classes.capability.jobs, 1);
    assert_eq!(
        classes.capability.preempted_jobs, 0,
        "the capability job was preempted despite the default shielding"
    );
    // The on-demand job still got its nodes — from the capacity victim.
    assert_eq!(classes.capacity.preempted_jobs, 1);
    assert_eq!(out.metrics.completed_jobs, 3);
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
}

#[test]
fn disabling_the_shield_restores_the_paper_victim_ordering() {
    // Same scenario, shielding off: overhead ties break by id, so the
    // capability job (id 0) is preempted — proving the shield (not luck)
    // protected it above.
    let trace = victim_scenario();
    let out = Simulator::run_trace(
        &quiet_cap(CapabilityAware::for_mechanism(Mechanism::N_PAA).allow_capability_victims()),
        &trace,
    );
    let classes = out.classes.expect("capability jobs present");
    assert_eq!(classes.capability.preempted_jobs, 1);
    assert_eq!(classes.capacity.preempted_jobs, 0);
}

#[test]
fn capability_jobs_are_shielded_from_cup_planned_preemptions_too() {
    // CUP plans cheap preemptions at notice time; capability candidates
    // must be dropped from that planning as well.
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(50)
            .work(D::from_hours(5))
            .estimate(D::from_hours(6))
            .capability()
            .build(),
        JobSpecBuilder::rigid(1)
            .size(50)
            .work(D::from_hours(5))
            .estimate(D::from_hours(6))
            .build(),
        JobSpecBuilder::on_demand(2)
            .size(50)
            .work(D::from_mins(30))
            .estimate(D::from_hours(1))
            .submit_at(T::from_secs(3_600))
            .notice(T::from_secs(1_800), T::from_secs(3_600))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(2), jobs);
    let out = Simulator::run_trace(
        &quiet_cap(CapabilityAware::for_mechanism(Mechanism::CUP_PAA)),
        &trace,
    );
    let classes = out.classes.expect("capability jobs present");
    assert_eq!(classes.capability.preempted_jobs, 0);
    assert_eq!(out.metrics.completed_jobs, 3);
}

#[test]
fn admission_throttle_serializes_capability_campaigns() {
    // Two capability campaigns that could run side by side: a throttle of
    // one forces them to run back to back, roughly doubling the later
    // one's turnaround. The throttle releasing at all also validates the
    // driver's incremental running-capability counter (a stuck counter
    // would starve the second campaign forever).
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(40)
            .work(D::from_hours(1))
            .estimate(D::from_hours(1))
            .capability()
            .build(),
        JobSpecBuilder::rigid(1)
            .size(40)
            .work(D::from_hours(1))
            .estimate(D::from_hours(1))
            .capability()
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);

    let free = Simulator::run_trace(
        &quiet_cap(CapabilityAware::for_mechanism(Mechanism::CUA_SPAA)),
        &trace,
    );
    assert_eq!(free.metrics.completed_jobs, 2);
    let serial = Simulator::run_trace(
        &quiet_cap(CapabilityAware::for_mechanism(Mechanism::CUA_SPAA).with_max_running(1)),
        &trace,
    );
    assert_eq!(serial.metrics.completed_jobs, 2);
    let f = free.classes.unwrap().capability.avg_turnaround_h;
    let s = serial.classes.unwrap().capability.avg_turnaround_h;
    assert!((f - 1.0).abs() < 0.01, "parallel campaigns: {f} h");
    assert!((s - 1.5).abs() < 0.01, "serialized campaigns: {s} h");
}

#[test]
fn zero_throttle_starves_capability_work_but_not_capacity_work() {
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(60)
            .work(D::from_hours(1))
            .estimate(D::from_hours(1))
            .capability()
            .build(),
        JobSpecBuilder::rigid(1)
            .size(20)
            .work(D::from_mins(30))
            .estimate(D::from_mins(30))
            .build(),
        JobSpecBuilder::malleable(2)
            .size(20)
            .min_size(4)
            .work(D::from_mins(30))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let out = Simulator::run_trace(
        &quiet_cap(CapabilityAware::for_mechanism(Mechanism::CUA_SPAA).with_max_running(0)),
        &trace,
    );
    let classes = out.classes.expect("capability jobs present");
    assert_eq!(classes.capability.completed, 0, "throttle 0 must starve");
    assert_eq!(classes.capability.killed, 0, "starved, not killed");
    // The small capacity jobs backfill behind the blocked head and finish.
    assert_eq!(classes.capacity.completed, 2);
}

// ---------------------------------------------------------------------------
// Property: admission-knob edge values never wedge a run
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ArbJob {
    kind: u8,
    submit: u64,
    size: u32,
    work: u64,
}

fn arb_job() -> impl Strategy<Value = ArbJob> {
    (0..3u8, 0..50_000u64, 1..32u32, 60..6_000u64).prop_map(|(kind, submit, size, work)| ArbJob {
        kind,
        submit,
        size,
        work,
    })
}

fn build_trace(jobs: &[ArbJob], system: u32, capability_frac: f64) -> Trace {
    let specs: Vec<JobSpec> = jobs
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let work = D::from_secs(a.work);
            let b = match a.kind {
                0 => JobSpecBuilder::rigid(i as u64),
                1 => JobSpecBuilder::malleable(i as u64).min_size(1),
                _ => JobSpecBuilder::on_demand(i as u64),
            };
            b.submit_at(T::from_secs(a.submit))
                .size(a.size)
                .work(work)
                .estimate(work + D::from_secs(1_800))
                .build()
        })
        .collect();
    let mut trace = Trace::new(system, D::from_days(30), specs);
    trace.tag_capability(capability_frac);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every corner of the admission knob — fraction 0.0/1.0, throttle
    /// 0/1/unlimited — terminates, keeps starved work starved (never
    /// killed), and reproduces the plain path bitwise at fraction zero.
    #[test]
    fn admission_knob_edge_values_never_wedge(
        jobs in proptest::collection::vec(arb_job(), 1..20),
        frac_sel in 0..3usize,
        throttle_sel in 0..3usize,
    ) {
        const SYSTEM: u32 = 64;
        let frac = [0.0, 1.0, 0.5][frac_sel];
        let throttle = [None, Some(0u32), Some(1u32)][throttle_sel];
        let trace = build_trace(&jobs, SYSTEM, frac);
        prop_assert!(trace.validate().is_ok());
        let n_cap = trace.count_class(JobClass::Capability);
        if frac == 0.0 {
            prop_assert_eq!(n_cap, 0);
        } else if frac == 1.0 {
            prop_assert_eq!(n_cap, trace.count_kind(JobKind::Rigid));
        }

        let mut hooks = CapabilityAware::for_mechanism(Mechanism::CUA_SPAA);
        if let Some(k) = throttle {
            hooks = hooks.with_max_running(k);
        }
        // Paranoid: cross-validates the incremental running-capability
        // counter against a full scan after every event.
        let cfg = quiet_cap(hooks).paranoid();
        let out = Simulator::run_trace(&cfg, &trace);
        let done = out.metrics.completed_jobs + out.metrics.killed_jobs;

        if frac == 0.0 {
            // Bitwise parity with the plain two-class path, regardless of
            // the throttle setting.
            let plain = Simulator::run_trace(&quiet_plain(Mechanism::CUA_SPAA), &trace);
            prop_assert_eq!(out.metrics, plain.metrics);
            prop_assert_eq!(out.engine, plain.engine);
            prop_assert_eq!(done, trace.len(), "feasible two-class runs finish everything");
        } else if let Some(classes) = out.classes {
            prop_assert_eq!(classes.capability.jobs, n_cap);
            match throttle {
                Some(0) => {
                    // Starved, not killed — and the run still terminated.
                    prop_assert_eq!(classes.capability.completed, 0);
                    prop_assert_eq!(classes.capability.killed, 0);
                }
                _ => {
                    // Honest estimates and feasible sizes: every job
                    // reaches a terminal state, none killed.
                    prop_assert_eq!(done, trace.len());
                    prop_assert_eq!(out.metrics.killed_jobs, 0);
                }
            }
            // The default shield holds under arbitrary workloads: any
            // preemption a capability job absorbs can only be a squatter
            // eviction, which implies an on-demand job existed.
            if trace.count_kind(JobKind::OnDemand) == 0 {
                prop_assert_eq!(classes.capability.preempted_jobs, 0);
            }
        }
    }
}
