//! Million-job archive profiles for the streaming replay baseline.
//!
//! The `archive_replay` binary measures the O(active)-memory replay engine
//! at a scale no materialized trace should ever reach: a synthetic
//! million-job, multi-month `theta_full` archive streamed straight off
//! disk. The archives themselves are **generated on demand and never
//! committed** — they are a pure function of `(profile, seed)`, so
//! [`ensure_archive`] rebuilds byte-identical files anywhere.
//!
//! ## Profile calibration
//!
//! Both profiles keep Theta's machine (4,392 nodes), project population,
//! size distribution, burst process, and 0.81 offered load, but compress
//! per-job runtimes so a million jobs fit in 120 days *at the same load*
//! (0.81 × capacity ÷ 10⁶ jobs ≈ 37 k node-seconds per job — about a
//! minute on a mid-sized allocation). The archive is a throughput and
//! memory stress corpus, not a fidelity corpus: fidelity baselines stay
//! with `swf_replay`/`throughput` at the paper's job counts.
//!
//! | profile | jobs | horizon | role |
//! |---|---|---|---|
//! | `quick` | 100,000 | 12 days | CI smoke + parity gate |
//! | `full`  | 1,000,000 | 120 days | committed headline baseline |

use crate::Scale;
use hws_sim::SimDuration;
use hws_workload::{to_swf_writer, SwfExportConfig, TraceConfig};
use std::path::PathBuf;

/// One row of the archive-replay grid: a deterministic `(jobs, horizon)`
/// point on the calibrated theta-shaped stress workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveProfile {
    /// 100 k jobs over 12 days — CI-sized.
    Quick,
    /// 1 M jobs over 120 days — the headline streaming baseline.
    Full,
}

impl ArchiveProfile {
    pub const ALL: [ArchiveProfile; 2] = [ArchiveProfile::Quick, ArchiveProfile::Full];

    /// Profiles exercised at an experiment scale: quick-only for CI
    /// smoke runs, both for the committed baseline.
    pub fn for_scale(scale: Scale) -> &'static [ArchiveProfile] {
        match scale {
            Scale::Quick => &[ArchiveProfile::Quick],
            Scale::Standard | Scale::Full => &Self::ALL,
        }
    }

    /// Stable name used in file names and `BENCH_archive_replay.json` rows.
    pub fn name(self) -> &'static str {
        match self {
            ArchiveProfile::Quick => "quick",
            ArchiveProfile::Full => "full",
        }
    }

    /// The generator configuration (see the module docs for the
    /// calibration rationale). Deterministic per seed, like every
    /// [`TraceConfig`].
    pub fn trace_config(self) -> TraceConfig {
        let (target_jobs, days) = match self {
            ArchiveProfile::Quick => (100_000, 12),
            ArchiveProfile::Full => (1_000_000, 120),
        };
        TraceConfig {
            target_jobs,
            horizon: SimDuration::from_days(days),
            // The million-job budget fixes per-job work at 0.81 × capacity
            // ÷ jobs ≈ 37 k node-seconds. Spending that at Theta's ~700-
            // node mean size leaves only ~5 jobs running at once, and a
            // 5-wide system at 0.81 load queues hundreds of jobs at every
            // fluctuation — measuring queue-depth pathology instead of
            // replay throughput. Shifting the size buckets down one octave
            // (~230-node mean, 64-node floor) restores ~15-wide
            // concurrency and puts the runtime budget at ≈160 s mean
            // (log-normal median ~95 s). The σ is also tightened from
            // Theta's 1.45 — at this scale the original tail gives
            // service times a CV² ≈ 7 with the same queue-explosion
            // effect — and the 10 s floor then clamps almost nothing, so
            // the `target_load` rescale lands realized load ≈ 0.81.
            min_job_size: 64,
            size_bucket_weights: [0.55, 0.25, 0.12, 0.06, 0.02],
            runtime_median_s: 95.0,
            runtime_sigma: 1.0,
            min_runtime: SimDuration::from_secs(10),
            // Advance notices scale with the runtimes (the paper's 15–30
            // minute leads sit at ~0.5× the median runtime; so do these).
            // Leaving them at minutes would keep every on-demand claim
            // collecting nodes for ~30 simulated minutes while hundreds
            // of minute-scale jobs churn through it — a claim-pressure
            // regime the paper never evaluates — and would force the
            // streaming pump to buffer a 30-minute arrival window.
            notice_lead: (SimDuration::from_secs(15), SimDuration::from_secs(30)),
            late_window: SimDuration::from_secs(30),
            // With minute-scale jobs, Theta's diurnal submission swing
            // piles thousands of jobs into the daytime queue (night-time
            // capacity can't be borrowed by a job that only lives a
            // minute), which measures queue-depth pathology instead of
            // replay throughput. A flat arrival process keeps the waiting
            // queue near its steady-state size at the same offered load.
            diurnal: false,
            ..TraceConfig::theta_2019()
        }
    }
}

/// Directory the generated archives live in: `HWS_ARCHIVE_DIR` when set,
/// else `target/archives` under the workspace root (wiped by
/// `cargo clean`, never committed).
pub fn archive_dir() -> PathBuf {
    std::env::var("HWS_ARCHIVE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/archives"))
}

/// Where `(profile, seed)`'s archive lives under [`archive_dir`].
pub fn archive_path(profile: ArchiveProfile, seed: u64) -> PathBuf {
    archive_dir().join(format!("theta_{}_seed{seed}.swf", profile.name()))
}

/// Generate (if absent) and return the embedded-SWF archive for
/// `(profile, seed)`. The trace is materialized once here — generation is
/// the one step allowed to be O(jobs) — and streamed to disk line by line
/// via [`to_swf_writer`]; replay then never holds more than the live
/// window. Existing files are reused verbatim: delete [`archive_dir`] (or
/// `cargo clean`) to force regeneration.
///
/// # Panics
///
/// On IO errors — the archive binaries have no fallback without their
/// corpus.
pub fn ensure_archive(profile: ArchiveProfile, seed: u64) -> PathBuf {
    let path = archive_path(profile, seed);
    if path.exists() {
        return path;
    }
    let dir = archive_dir();
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    let trace = profile.trace_config().generate(seed);
    // Write to a scratch name and rename, so a crash mid-write can't
    // leave a truncated file that a later run would trust.
    let tmp = path.with_extension(format!("swf.tmp{}", std::process::id()));
    let file =
        std::fs::File::create(&tmp).unwrap_or_else(|e| panic!("create {}: {e}", tmp.display()));
    let mut writer = std::io::BufWriter::new(file);
    to_swf_writer(&trace, &SwfExportConfig::default(), &mut writer)
        .and_then(|()| std::io::Write::flush(&mut writer))
        .unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
    drop(writer);
    std::fs::rename(&tmp, &path)
        .unwrap_or_else(|e| panic!("rename {} -> {}: {e}", tmp.display(), path.display()));
    path
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Reset the kernel's peak-RSS watermark to the *current* RSS (writing
/// `5` to `/proc/self/clear_refs`), so a subsequent [`peak_rss_bytes`]
/// reflects only the work in between. Best-effort: silently a no-op where
/// the interface is missing or read-only, in which case the watermark
/// stays cumulative (still an upper bound, never an undercount).
pub fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hws_workload::JobKind;

    #[test]
    fn profiles_are_theta_shaped_and_distinct() {
        let q = ArchiveProfile::Quick.trace_config();
        let f = ArchiveProfile::Full.trace_config();
        for cfg in [&q, &f] {
            assert_eq!(cfg.system_size, 4_392);
            assert_eq!(cfg.target_load, Some(0.81));
        }
        assert_eq!(f.target_jobs, 1_000_000);
        assert_eq!(f.horizon.as_secs() / 86_400, 120);
        // Same per-job work budget at both scales: jobs/day matches.
        assert_eq!(q.target_jobs * 10, f.target_jobs);
        assert_eq!(q.horizon.as_secs() * 10, f.horizon.as_secs());
    }

    /// The calibration claim of the module docs, checked on a scaled-down
    /// variant (same per-job work budget, 200× fewer jobs so the test
    /// stays fast): realized load lands near the 0.81 target rather than
    /// being dragged up by the min-runtime clamp, and the trace is valid
    /// with all three job classes present.
    #[test]
    fn scaled_archive_config_realizes_target_load() {
        let full = ArchiveProfile::Full.trace_config();
        let cfg = TraceConfig {
            target_jobs: full.target_jobs / 200,
            horizon: SimDuration::from_secs(full.horizon.as_secs() / 200),
            ..full
        };
        let trace = cfg.generate(9);
        assert!(trace.validate().is_ok());
        assert!(trace.count_kind(JobKind::OnDemand) > 0);
        assert!(trace.count_kind(JobKind::Malleable) > 0);
        let capacity = f64::from(cfg.system_size) * cfg.horizon.as_secs() as f64;
        let offered: f64 = trace
            .jobs
            .iter()
            .map(|j| j.work_node_seconds() as f64)
            .sum();
        let load = offered / capacity;
        assert!(
            (0.75..0.90).contains(&load),
            "realized load {load:.3} strayed from the 0.81 target"
        );
    }

    #[test]
    fn archive_paths_key_on_profile_and_seed() {
        let a = archive_path(ArchiveProfile::Quick, 0);
        let b = archive_path(ArchiveProfile::Full, 0);
        let c = archive_path(ArchiveProfile::Full, 1);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(a.file_name().unwrap().to_str().unwrap().contains("quick"));
    }

    #[test]
    fn for_scale_gates_the_full_profile_behind_non_quick_scales() {
        assert_eq!(
            ArchiveProfile::for_scale(Scale::Quick),
            &[ArchiveProfile::Quick]
        );
        assert_eq!(ArchiveProfile::for_scale(Scale::Full), &ArchiveProfile::ALL);
    }
}
