//! Streaming replay must be **bitwise-identical** to materialized replay,
//! and resident job state must track the live window, not the trace
//! length — the two contracts of the O(active)-memory replay engine.
//!
//! The property test exercises all six mechanisms over generated traces:
//! each trace is exported to an embedded SWF in memory, streamed back via
//! [`SwfStreamSource`], and replayed with [`Simulator::run_source`]; every
//! metric and engine counter must equal the materialized
//! [`Simulator::run_trace`] result exactly (float equality, not epsilon).

use hws_core::{Mechanism, SimConfig, Simulator};
use hws_sim::SimDuration;
use hws_workload::job::JobSpecBuilder;
use hws_workload::{to_swf, SwfExportConfig, SwfStreamSource, Trace, TraceConfig};
use proptest::prelude::*;

/// Wall-clock decision latencies are the one documented exception to
/// bitwise equality; everything else must match exactly.
fn cfg_for(mechanism: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::with_mechanism(mechanism);
    cfg.measure_decisions = false;
    cfg
}

/// Stream `trace` back out of its own embedded SWF export.
fn stream_of(trace: &Trace) -> SwfStreamSource<std::io::BufReader<&[u8]>> {
    let swf = to_swf(trace, &SwfExportConfig::default());
    let leaked: &'static [u8] = Box::leak(swf.into_bytes().into_boxed_slice());
    SwfStreamSource::from_reader(std::io::BufReader::new(leaked)).expect("own export streams")
}

fn assert_identical(trace: &Trace, mechanism: Mechanism) {
    let cfg = cfg_for(mechanism);
    let materialized = Simulator::run_trace(&cfg, trace);
    let streamed = Simulator::run_source(&cfg, stream_of(trace));
    assert_eq!(
        materialized.metrics, streamed.metrics,
        "metrics diverge for {mechanism:?}"
    );
    assert_eq!(
        materialized.engine, streamed.engine,
        "engine counters diverge for {mechanism:?}"
    );
    assert_eq!(materialized.classes, streamed.classes);
    assert_eq!(
        materialized.peak_resident_jobs, streamed.peak_resident_jobs,
        "resident high-water marks diverge for {mechanism:?}"
    );
    assert_eq!(streamed.admitted_jobs, trace.jobs.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Export → stream → replay equals materialized replay, bitwise, for
    /// every mechanism, across generated workloads.
    #[test]
    fn streaming_replay_is_bitwise_identical(seed in 0..1_000u64, jobs in 30..120u32) {
        let trace = TraceConfig::tiny().with_jobs(jobs).generate(seed);
        for mechanism in Mechanism::ALL_SIX {
            assert_identical(&trace, mechanism);
        }
    }
}

/// The baseline (non-hybrid) configuration must stream identically too —
/// it skips notice events entirely, which exercises the pump's
/// no-lookahead path.
#[test]
fn baseline_streams_identically() {
    let trace = TraceConfig::tiny().generate(7);
    let mut cfg = SimConfig::baseline();
    cfg.measure_decisions = false;
    let materialized = Simulator::run_trace(&cfg, &trace);
    let streamed = Simulator::run_source(&cfg, stream_of(&trace));
    assert_eq!(materialized.metrics, streamed.metrics);
    assert_eq!(materialized.engine, streamed.engine);
}

/// Capability-class jobs survive the stream round-trip with an identical
/// per-class breakdown.
#[test]
fn capability_classes_stream_identically() {
    let trace = TraceConfig::tiny().with_capability_frac(0.2).generate(3);
    for mechanism in Mechanism::ALL_SIX {
        assert_identical(&trace, mechanism);
    }
}

/// O(active) regression: a workload of 2 000 jobs arriving in well-spaced
/// bursts of 100 must never hold more than a couple of bursts' worth of
/// jobs resident. A driver that kept every job materialized would report a
/// peak near the trace length; the arena must stay near the burst size.
#[test]
fn peak_resident_jobs_tracks_live_window_not_trace_length() {
    const BURSTS: u64 = 20;
    const PER_BURST: u64 = 100;
    let mut jobs = Vec::new();
    for b in 0..BURSTS {
        for i in 0..PER_BURST {
            let id = b * PER_BURST + i;
            // One burst per simulated day; each job runs well under an
            // hour, so a burst fully drains before the next arrives.
            jobs.push(
                JobSpecBuilder::rigid(id)
                    .submit_at(hws_sim::SimTime::from_secs(b * 86_400 + i))
                    .size(4)
                    .work(SimDuration::from_secs(600))
                    .estimate(SimDuration::from_secs(1_200))
                    .build(),
            );
        }
    }
    let total = jobs.len() as u64;
    let trace = Trace::new(64, SimDuration::from_days(BURSTS + 1), jobs);

    let cfg = cfg_for(Mechanism::CUA_PAA);
    let materialized = Simulator::run_trace(&cfg, &trace);
    let streamed = Simulator::run_source(&cfg, stream_of(&trace));

    assert_eq!(materialized.metrics, streamed.metrics);
    assert_eq!(streamed.admitted_jobs, total);
    // The bound is one burst plus lookahead slack — far below the trace.
    assert!(
        streamed.peak_resident_jobs <= 150,
        "peak resident {} jobs; expected ~one burst (100), trace has {}",
        streamed.peak_resident_jobs,
        total
    );
    assert_eq!(materialized.peak_resident_jobs, streamed.peak_resident_jobs);
}
