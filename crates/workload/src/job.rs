//! Static job descriptions (§III-A of the paper).
//!
//! A [`JobSpec`] is what the *trace* knows about a job: submission instant,
//! class, size, work requirement, user estimate, setup cost, and — for
//! on-demand jobs — the advance-notice record. Dynamic execution state
//! (remaining work, checkpoints, current size) lives in `hws-core`.

use crate::ids::{JobId, ProjectId};
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_sim::{SimDuration, SimTime};

/// The three application classes the paper co-schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Tightly coupled parallel job with a fixed node count; checkpoints
    /// periodically, loses work past the last checkpoint on preemption.
    Rigid,
    /// Time-critical job that must start as soon as possible after arrival;
    /// never preempted or shrunk once running.
    OnDemand,
    /// Loosely coupled job that can run on any node count in
    /// `[min_size, size]` with linear speedup; shrink/expand are free, and
    /// preemption only costs the 2-minute warning plus a repeated setup.
    Malleable,
}

impl JobKind {
    pub const ALL: [JobKind; 3] = [JobKind::Rigid, JobKind::OnDemand, JobKind::Malleable];

    pub fn label(self) -> &'static str {
        match self {
            JobKind::Rigid => "rigid",
            JobKind::OnDemand => "on-demand",
            JobKind::Malleable => "malleable",
        }
    }
}

impl std::fmt::Display for JobKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The capability/capacity axis (*More for Less*, arXiv:2501.12464),
/// orthogonal to [`JobKind`]: `kind` says how a job *executes*
/// (fixed-size, resizable, time-critical), `class` says what it *is to
/// the machine* — routine capacity work, or one of the large
/// capability-predominant campaigns the system exists for. Capability
/// jobs get their own admission/preemption treatment (they may squat on
/// reservations but are never chosen as preemption victims under the
/// default capability-aware policy); on-demand jobs are always capacity
/// class. Every pre-existing code path sees only [`JobClass::Capacity`],
/// which is why zero-capability traces replay bitwise identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobClass {
    /// Ordinary capacity work (the default; the paper's entire workload).
    #[default]
    Capacity,
    /// Large, deadline-sensitive capability campaign.
    Capability,
}

impl JobClass {
    pub const ALL: [JobClass; 2] = [JobClass::Capacity, JobClass::Capability];

    pub fn label(self) -> &'static str {
        match self {
            JobClass::Capacity => "capacity",
            JobClass::Capability => "capability",
        }
    }

    pub fn is_capability(self) -> bool {
        self == JobClass::Capability
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The four on-demand notice categories of the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoticeCategory {
    /// The job arrives with no advance notice at all.
    NoNotice,
    /// Notice given 15–30 min ahead; the job arrives exactly when predicted.
    Accurate,
    /// Notice given, but the job arrives before its predicted arrival time.
    Early,
    /// Notice given, but the job arrives up to 30 min after the prediction.
    Late,
}

impl NoticeCategory {
    pub const ALL: [NoticeCategory; 4] = [
        NoticeCategory::NoNotice,
        NoticeCategory::Accurate,
        NoticeCategory::Early,
        NoticeCategory::Late,
    ];

    pub fn label(self) -> &'static str {
        match self {
            NoticeCategory::NoNotice => "no-notice",
            NoticeCategory::Accurate => "accurate",
            NoticeCategory::Early => "early",
            NoticeCategory::Late => "late",
        }
    }
}

/// An on-demand job's advance notice: "estimated job arrival time, job size,
/// and job runtime estimate" (§III-A). Size and estimate are those of the
/// job itself; this struct carries the timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoticeSpec {
    /// When the notice reaches the scheduler.
    pub notice_time: SimTime,
    /// The arrival instant announced in the notice.
    pub predicted_arrival: SimTime,
}

/// Immutable description of one job in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub id: JobId,
    pub project: ProjectId,
    pub kind: JobKind,
    /// Actual submission/arrival instant. For on-demand jobs this is the
    /// *actual* arrival (which may differ from the predicted one).
    pub submit: SimTime,
    /// Requested node count; for malleable jobs this is the **maximum**
    /// size (paper §IV-B: "their maximum job size \[is\] their original
    /// requested job size").
    pub size: u32,
    /// Minimum size a malleable job can shrink to (= `size` for rigid and
    /// on-demand jobs).
    pub min_size: u32,
    /// Actual useful work time when running at `size` nodes. Under the
    /// paper's linear-speedup model the job carries
    /// `work × size` node-seconds of work regardless of its running size.
    pub work: SimDuration,
    /// User-provided runtime estimate (`work ≤ estimate`); the scheduler
    /// uses it for backfilling and kills jobs whose work exceeds it.
    pub estimate: SimDuration,
    /// One-time communication/coordination setup paid at every (re)start.
    pub setup: SimDuration,
    /// Advance-notice record, present only for on-demand jobs that gave one.
    pub notice: Option<NoticeSpec>,
    /// Which Fig. 1 category the job belongs to (meaningful for on-demand
    /// jobs; `NoNotice` otherwise).
    pub category: NoticeCategory,
    /// Preferred federation shard (multi-cluster dispatch): an index into
    /// the federation's shard list. `None` — the common case, and the only
    /// value single-cluster runs ever see — lets the placement policy
    /// decide. A hint naming a shard too small for the job is ignored.
    /// In-memory only: the CSV/SWF interchange formats do not carry it.
    pub site_hint: Option<u32>,
    /// Capability/capacity class (see [`JobClass`]). `Capacity` for every
    /// job the two-class model knows; `Capability` only when a generator
    /// knob or [`crate::Trace::tag_capability`] tagged the job. Carried by
    /// the CSV and embedded-SWF interchange formats.
    pub class: JobClass,
}

impl JobSpec {
    /// Total useful work in node-seconds (invariant under malleable
    /// resizing thanks to the linear-speedup assumption).
    pub fn work_node_seconds(&self) -> u64 {
        self.work.as_secs() * u64::from(self.size)
    }

    /// Useful work expressed in node-hours.
    pub fn work_node_hours(&self) -> f64 {
        self.work_node_seconds() as f64 / 3_600.0
    }

    /// Work duration when running on `n` nodes (linear speedup, §III-A:
    /// `t_actual = t_single/n + t_setup`; this returns the work part).
    pub fn work_at_size(&self, n: u32) -> SimDuration {
        assert!(n > 0, "size must be positive");
        SimDuration::from_secs(self.work_node_seconds().div_ceil(u64::from(n)))
    }

    pub fn is_on_demand(&self) -> bool {
        self.kind == JobKind::OnDemand
    }

    pub fn is_malleable(&self) -> bool {
        self.kind == JobKind::Malleable
    }

    pub fn is_rigid(&self) -> bool {
        self.kind == JobKind::Rigid
    }

    pub fn is_capability(&self) -> bool {
        self.class == JobClass::Capability
    }

    /// Basic self-consistency check used by tests and the generator.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant: sizes out of range, `min_size` inconsistencies, zero
    /// work, `estimate < work`, notice/category mismatches, or a
    /// capability-class on-demand job (on-demand traffic is always
    /// capacity class).
    pub fn validate(&self, system_size: u32) -> Result<(), String> {
        if self.class == JobClass::Capability && self.kind == JobKind::OnDemand {
            return Err(format!(
                "{}: on-demand jobs cannot be capability class",
                self.id
            ));
        }
        if self.size == 0 || self.size > system_size {
            return Err(format!("{}: size {} out of range", self.id, self.size));
        }
        if self.min_size == 0 || self.min_size > self.size {
            return Err(format!(
                "{}: min_size {} vs size {}",
                self.id, self.min_size, self.size
            ));
        }
        if self.kind != JobKind::Malleable && self.min_size != self.size {
            return Err(format!(
                "{}: non-malleable job with min_size < size",
                self.id
            ));
        }
        if self.work.is_zero() {
            return Err(format!("{}: zero work", self.id));
        }
        if self.estimate < self.work {
            return Err(format!(
                "{}: estimate {} < work {}",
                self.id, self.estimate, self.work
            ));
        }
        if let Some(n) = &self.notice {
            if self.kind != JobKind::OnDemand {
                return Err(format!("{}: notice on non-on-demand job", self.id));
            }
            if n.notice_time > n.predicted_arrival {
                return Err(format!("{}: notice after predicted arrival", self.id));
            }
            match self.category {
                NoticeCategory::NoNotice => {
                    return Err(format!("{}: notice present but category NoNotice", self.id))
                }
                NoticeCategory::Accurate => {
                    if self.submit != n.predicted_arrival {
                        return Err(format!(
                            "{}: accurate notice but submit != predicted",
                            self.id
                        ));
                    }
                }
                NoticeCategory::Early => {
                    if self.submit > n.predicted_arrival || self.submit < n.notice_time {
                        return Err(format!("{}: early arrival outside notice window", self.id));
                    }
                }
                NoticeCategory::Late => {
                    if self.submit < n.predicted_arrival {
                        return Err(format!("{}: late arrival before predicted", self.id));
                    }
                }
            }
        } else if self.kind == JobKind::OnDemand && self.category != NoticeCategory::NoNotice {
            return Err(format!(
                "{}: category {:?} without notice",
                self.id, self.category
            ));
        }
        Ok(())
    }

    /// Append the spec to a snapshot buffer (every field, including the
    /// in-memory-only `site_hint`; the byte codec is lossless where the
    /// text interchange formats are not).
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.id.0);
        w.put_u32(self.project.0);
        w.put_u8(match self.kind {
            JobKind::Rigid => 0,
            JobKind::OnDemand => 1,
            JobKind::Malleable => 2,
        });
        w.put_u64(self.submit.as_secs());
        w.put_u32(self.size);
        w.put_u32(self.min_size);
        w.put_u64(self.work.as_secs());
        w.put_u64(self.estimate.as_secs());
        w.put_u64(self.setup.as_secs());
        match &self.notice {
            Some(n) => {
                w.put_u8(1);
                w.put_u64(n.notice_time.as_secs());
                w.put_u64(n.predicted_arrival.as_secs());
            }
            None => w.put_u8(0),
        }
        w.put_u8(match self.category {
            NoticeCategory::NoNotice => 0,
            NoticeCategory::Accurate => 1,
            NoticeCategory::Early => 2,
            NoticeCategory::Late => 3,
        });
        w.put_opt_u32(self.site_hint);
        w.put_u8(match self.class {
            JobClass::Capacity => 0,
            JobClass::Capability => 1,
        });
    }

    /// Decode a spec written by [`JobSpec::encode_snap`].
    ///
    /// # Errors
    ///
    /// Truncated input or invalid enum tags — never panics.
    pub fn decode_snap(r: &mut SnapReader<'_>) -> Result<JobSpec, SnapError> {
        let id = JobId(r.get_u64()?);
        let project = ProjectId(r.get_u32()?);
        let kind = match r.get_u8()? {
            0 => JobKind::Rigid,
            1 => JobKind::OnDemand,
            2 => JobKind::Malleable,
            b => return Err(r.err(format!("bad job kind tag {b}"))),
        };
        let submit = SimTime::from_secs(r.get_u64()?);
        let size = r.get_u32()?;
        let min_size = r.get_u32()?;
        let work = SimDuration::from_secs(r.get_u64()?);
        let estimate = SimDuration::from_secs(r.get_u64()?);
        let setup = SimDuration::from_secs(r.get_u64()?);
        let notice = match r.get_u8()? {
            0 => None,
            1 => Some(NoticeSpec {
                notice_time: SimTime::from_secs(r.get_u64()?),
                predicted_arrival: SimTime::from_secs(r.get_u64()?),
            }),
            b => return Err(r.err(format!("bad notice tag {b}"))),
        };
        let category = match r.get_u8()? {
            0 => NoticeCategory::NoNotice,
            1 => NoticeCategory::Accurate,
            2 => NoticeCategory::Early,
            3 => NoticeCategory::Late,
            b => return Err(r.err(format!("bad category tag {b}"))),
        };
        let site_hint = r.get_opt_u32()?;
        let class = match r.get_u8()? {
            0 => JobClass::Capacity,
            1 => JobClass::Capability,
            b => return Err(r.err(format!("bad class tag {b}"))),
        };
        Ok(JobSpec {
            id,
            project,
            kind,
            submit,
            size,
            min_size,
            work,
            estimate,
            setup,
            notice,
            category,
            site_hint,
            class,
        })
    }
}

/// Convenience builder used heavily by tests and examples.
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    pub fn new(id: u64, kind: JobKind) -> Self {
        JobSpecBuilder {
            spec: JobSpec {
                id: JobId(id),
                project: ProjectId(0),
                kind,
                submit: SimTime::ZERO,
                size: 1,
                min_size: 1,
                work: SimDuration::from_hours(1),
                estimate: SimDuration::from_hours(2),
                setup: SimDuration::ZERO,
                notice: None,
                category: NoticeCategory::NoNotice,
                site_hint: None,
                class: JobClass::Capacity,
            },
        }
    }

    pub fn rigid(id: u64) -> Self {
        Self::new(id, JobKind::Rigid)
    }

    pub fn on_demand(id: u64) -> Self {
        Self::new(id, JobKind::OnDemand)
    }

    pub fn malleable(id: u64) -> Self {
        Self::new(id, JobKind::Malleable)
    }

    pub fn project(mut self, p: u32) -> Self {
        self.spec.project = ProjectId(p);
        self
    }

    pub fn submit_at(mut self, t: SimTime) -> Self {
        self.spec.submit = t;
        self
    }

    pub fn size(mut self, n: u32) -> Self {
        self.spec.size = n;
        if self.spec.kind != JobKind::Malleable {
            self.spec.min_size = n;
        }
        self
    }

    pub fn min_size(mut self, n: u32) -> Self {
        assert_eq!(
            self.spec.kind,
            JobKind::Malleable,
            "min_size only for malleable"
        );
        self.spec.min_size = n;
        self
    }

    pub fn work(mut self, d: SimDuration) -> Self {
        self.spec.work = d;
        if self.spec.estimate < d {
            self.spec.estimate = d;
        }
        self
    }

    pub fn estimate(mut self, d: SimDuration) -> Self {
        self.spec.estimate = d;
        self
    }

    pub fn setup(mut self, d: SimDuration) -> Self {
        self.spec.setup = d;
        self
    }

    /// Prefer a federation shard (see [`JobSpec::site_hint`]).
    pub fn site_hint(mut self, shard: u32) -> Self {
        self.spec.site_hint = Some(shard);
        self
    }

    /// Tag the job as a capability-class campaign (see [`JobClass`]).
    ///
    /// # Panics
    ///
    /// Panics for on-demand jobs — on-demand traffic is always capacity
    /// class ([`JobSpec::validate`] enforces the same invariant).
    pub fn capability(mut self) -> Self {
        assert_ne!(
            self.spec.kind,
            JobKind::OnDemand,
            "on-demand jobs cannot be capability class"
        );
        self.spec.class = JobClass::Capability;
        self
    }

    /// Attach an advance notice and derive the category from the timing.
    pub fn notice(mut self, notice_time: SimTime, predicted: SimTime) -> Self {
        assert_eq!(
            self.spec.kind,
            JobKind::OnDemand,
            "notice only for on-demand"
        );
        self.spec.notice = Some(NoticeSpec {
            notice_time,
            predicted_arrival: predicted,
        });
        self.spec.category = if self.spec.submit == predicted {
            NoticeCategory::Accurate
        } else if self.spec.submit < predicted {
            NoticeCategory::Early
        } else {
            NoticeCategory::Late
        };
        self
    }

    pub fn build(self) -> JobSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn work_node_seconds_scale_with_size() {
        let j = JobSpecBuilder::rigid(1).size(128).work(secs(3_600)).build();
        assert_eq!(j.work_node_seconds(), 128 * 3_600);
        assert!((j.work_node_hours() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn malleable_work_rescales_linearly() {
        let j = JobSpecBuilder::malleable(1)
            .size(100)
            .min_size(20)
            .work(secs(1_000))
            .build();
        // 100_000 node-seconds of work.
        assert_eq!(j.work_at_size(100), secs(1_000));
        assert_eq!(j.work_at_size(50), secs(2_000));
        assert_eq!(j.work_at_size(20), secs(5_000));
        // Non-divisible sizes round the duration up (work is conserved).
        assert_eq!(j.work_at_size(33).as_secs(), 3_031); // ceil(100000/33)
    }

    #[test]
    fn validate_accepts_good_specs() {
        let j = JobSpecBuilder::rigid(1).size(128).work(secs(100)).build();
        assert!(j.validate(4_392).is_ok());
    }

    #[test]
    fn validate_rejects_bad_sizes() {
        let j = JobSpecBuilder::rigid(1).size(5_000).work(secs(100)).build();
        assert!(j.validate(4_392).is_err());
    }

    #[test]
    fn validate_rejects_estimate_below_work() {
        let mut j = JobSpecBuilder::rigid(1).size(128).work(secs(100)).build();
        j.estimate = secs(50);
        assert!(j.validate(4_392).is_err());
    }

    #[test]
    fn validate_rejects_min_above_size() {
        let mut j = JobSpecBuilder::malleable(1).size(10).build();
        j.min_size = 20;
        assert!(j.validate(4_392).is_err());
    }

    #[test]
    fn notice_derives_category() {
        let t = SimTime::from_secs;
        let early = JobSpecBuilder::on_demand(1)
            .submit_at(t(500))
            .notice(t(100), t(900))
            .build();
        assert_eq!(early.category, NoticeCategory::Early);
        let accurate = JobSpecBuilder::on_demand(2)
            .submit_at(t(900))
            .notice(t(100), t(900))
            .build();
        assert_eq!(accurate.category, NoticeCategory::Accurate);
        let late = JobSpecBuilder::on_demand(3)
            .submit_at(t(1_000))
            .notice(t(100), t(900))
            .build();
        assert_eq!(late.category, NoticeCategory::Late);
        for j in [early, accurate, late] {
            assert!(j.validate(4_392).is_ok(), "{:?}", j.validate(4_392));
        }
    }

    #[test]
    fn validate_rejects_notice_on_rigid() {
        let mut j = JobSpecBuilder::rigid(1).size(128).build();
        j.notice = Some(NoticeSpec {
            notice_time: SimTime::ZERO,
            predicted_arrival: SimTime::from_secs(10),
        });
        assert!(j.validate(4_392).is_err());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(JobKind::Rigid.to_string(), "rigid");
        assert_eq!(JobKind::OnDemand.label(), "on-demand");
        assert_eq!(NoticeCategory::Late.label(), "late");
        assert_eq!(JobClass::Capability.to_string(), "capability");
        assert_eq!(JobClass::Capacity.label(), "capacity");
    }

    #[test]
    fn default_class_is_capacity() {
        let j = JobSpecBuilder::rigid(1).size(8).build();
        assert_eq!(j.class, JobClass::Capacity);
        assert!(!j.is_capability());
    }

    #[test]
    fn capability_builder_tags_and_validates() {
        let j = JobSpecBuilder::rigid(1).size(64).capability().build();
        assert!(j.is_capability());
        assert!(j.validate(128).is_ok());
        let m = JobSpecBuilder::malleable(2)
            .size(32)
            .min_size(8)
            .capability()
            .build();
        assert!(m.validate(128).is_ok());
    }

    #[test]
    fn validate_rejects_capability_on_demand() {
        let mut j = JobSpecBuilder::on_demand(1).size(8).build();
        j.class = JobClass::Capability;
        let err = j.validate(128).unwrap_err();
        assert!(err.contains("capability"), "{err}");
    }

    #[test]
    #[should_panic(expected = "on-demand jobs cannot be capability")]
    fn capability_builder_rejects_on_demand() {
        let _ = JobSpecBuilder::on_demand(1).capability();
    }

    #[test]
    fn snap_codec_round_trips_every_field() {
        let t = SimTime::from_secs;
        let mut with_hint = JobSpecBuilder::malleable(7)
            .project(42)
            .submit_at(t(1_234))
            .size(100)
            .min_size(20)
            .work(secs(3_600))
            .estimate(secs(7_200))
            .setup(secs(120))
            .site_hint(1)
            .capability()
            .build();
        with_hint.site_hint = Some(3);
        let noticed = JobSpecBuilder::on_demand(8)
            .submit_at(t(900))
            .size(64)
            .notice(t(100), t(900))
            .build();
        let plain = JobSpecBuilder::rigid(9).size(1).build();
        for spec in [with_hint, noticed, plain] {
            let mut w = SnapWriter::new();
            spec.encode_snap(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            let back = JobSpec::decode_snap(&mut r).expect("decode");
            assert!(r.expect_end().is_ok());
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn snap_codec_rejects_truncation_and_bad_tags() {
        let spec = JobSpecBuilder::rigid(1).size(4).build();
        let mut w = SnapWriter::new();
        spec.encode_snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(JobSpec::decode_snap(&mut r).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[12] = 9; // kind tag offset: id (8) + project (4)
        assert!(JobSpec::decode_snap(&mut SnapReader::new(&bad)).is_err());
    }
}
