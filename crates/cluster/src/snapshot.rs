//! Byte-level snapshot support for resource-manager state.
//!
//! The live scheduler service (`hws-core`) checkpoints a running
//! simulation into a versioned byte blob and later restores it — or forks
//! it into speculative what-if futures. This module provides the cluster
//! half: a lossless codec for [`Cluster`] and the [`SnapshotBackend`]
//! trait that lets the driver snapshot any backend generically
//! ([`Federation`] implements it against its [`FederationConfig`]).
//!
//! ## Format notes
//!
//! * Little-endian fixed-width primitives via [`SnapWriter`]; the caller
//!   owns the version byte.
//! * **Order is data.** The free-list stack order and each job's node-list
//!   order feed future allocation decisions, so they are serialized
//!   verbatim; restore-then-continue must be bitwise identical to an
//!   uninterrupted run.
//! * Unordered maps (allocations, reservations) are written in sorted
//!   job-id order so equal states encode to equal bytes.
//! * Derived accounting (splits, squatter index, reserved-idle total) is
//!   *not* serialized; decoding rebuilds it and then runs
//!   [`Cluster::check_invariants`], so a corrupted snapshot fails closed
//!   instead of producing a subtly inconsistent machine.

use crate::node::{NodeId, NodeState};
use crate::{Cluster, ClusterBackend, Federation, FederationConfig, Split};
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_workload::JobId;
use std::collections::{BTreeMap, HashMap};

/// A [`ClusterBackend`] whose full dynamic state can round-trip through
/// the snapshot byte format.
///
/// `Ctx` carries whatever the byte stream deliberately omits because it is
/// code rather than data: nothing for a bare [`Cluster`], the
/// [`FederationConfig`] (placement policy, shard names) for a
/// [`Federation`]. Restoring against a context that does not match the
/// encoder's is an error, not silent misbehavior.
pub trait SnapshotBackend: ClusterBackend + Sized {
    /// Reconstruction context not carried by the byte stream.
    type Ctx;

    /// Append this backend's complete dynamic state to `w`.
    fn snapshot(&self, w: &mut SnapWriter);

    /// Rebuild a backend from bytes written by
    /// [`SnapshotBackend::snapshot`] under the same context.
    fn restore(r: &mut SnapReader<'_>, ctx: &Self::Ctx) -> Result<Self, SnapError>;
}

impl SnapshotBackend for Cluster {
    type Ctx = ();

    fn snapshot(&self, w: &mut SnapWriter) {
        self.encode_snap(w);
    }

    fn restore(r: &mut SnapReader<'_>, _ctx: &()) -> Result<Self, SnapError> {
        Cluster::decode_snap(r)
    }
}

impl SnapshotBackend for Federation {
    type Ctx = FederationConfig;

    fn snapshot(&self, w: &mut SnapWriter) {
        self.encode_snap(w);
    }

    fn restore(r: &mut SnapReader<'_>, cfg: &FederationConfig) -> Result<Self, SnapError> {
        Federation::decode_snap(r, cfg)
    }
}

fn encode_node(st: &NodeState, w: &mut SnapWriter) {
    match *st {
        NodeState::Free => w.put_u8(0),
        NodeState::Busy { job } => {
            w.put_u8(1);
            w.put_u64(job.0);
        }
        NodeState::Reserved { holder } => {
            w.put_u8(2);
            w.put_u64(holder.0);
        }
        NodeState::ReservedBusy { holder, job } => {
            w.put_u8(3);
            w.put_u64(holder.0);
            w.put_u64(job.0);
        }
        NodeState::Down => w.put_u8(4),
    }
}

fn decode_node(r: &mut SnapReader<'_>) -> Result<NodeState, SnapError> {
    Ok(match r.get_u8()? {
        0 => NodeState::Free,
        1 => NodeState::Busy {
            job: JobId(r.get_u64()?),
        },
        2 => NodeState::Reserved {
            holder: JobId(r.get_u64()?),
        },
        3 => NodeState::ReservedBusy {
            holder: JobId(r.get_u64()?),
            job: JobId(r.get_u64()?),
        },
        4 => NodeState::Down,
        t => return Err(r.err(format!("bad node state tag {t}"))),
    })
}

/// Reads one `job → [nodes]` table (allocations or reservations), in
/// strictly sorted job order, validating every node id against `expect`
/// and marking it in the exactly-once occupancy bitmap.
fn decode_node_table(
    r: &mut SnapReader<'_>,
    nodes: &[NodeState],
    seen: &mut [bool],
    what: &str,
    expect: impl Fn(JobId, NodeState) -> bool,
) -> Result<HashMap<JobId, Vec<NodeId>>, SnapError> {
    let n = r.get_len()?;
    let mut table = HashMap::with_capacity(n);
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let job = r.get_u64()?;
        if prev.is_some_and(|p| p >= job) {
            return Err(r.err(format!("{what} table not strictly sorted at job {job}")));
        }
        prev = Some(job);
        let k = r.get_len()?;
        if k == 0 {
            return Err(r.err(format!("empty {what} list for job {job}")));
        }
        let mut list = Vec::with_capacity(k);
        for _ in 0..k {
            let id = r.get_u32()?;
            let Some(&st) = nodes.get(id as usize) else {
                return Err(r.err(format!("{what} node {id} out of range")));
            };
            if !expect(JobId(job), st) {
                return Err(r.err(format!("{what} node {id} for job {job} is in state {st:?}")));
            }
            if std::mem::replace(&mut seen[id as usize], true) {
                return Err(r.err(format!("node {id} listed twice")));
            }
            list.push(NodeId(id));
        }
        table.insert(JobId(job), list);
    }
    Ok(table)
}

impl Cluster {
    /// Serialize the full machine state: per-node states, the free-list
    /// stack in order, and each job's allocation / reservation node lists
    /// in order (jobs sorted by id).
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.total_nodes());
        for st in &self.nodes {
            encode_node(st, w);
        }
        w.put_len(self.free_list.len());
        for id in &self.free_list {
            w.put_u32(id.0);
        }
        let mut jobs: Vec<JobId> = self.alloc.keys().copied().collect();
        jobs.sort();
        w.put_len(jobs.len());
        for job in jobs {
            w.put_u64(job.0);
            let list = &self.alloc[&job];
            w.put_len(list.len());
            for id in list {
                w.put_u32(id.0);
            }
        }
        let mut holders: Vec<JobId> = self.reserved_idle.keys().copied().collect();
        holders.sort();
        w.put_len(holders.len());
        for holder in holders {
            w.put_u64(holder.0);
            let list = &self.reserved_idle[&holder];
            w.put_len(list.len());
            for id in list {
                w.put_u32(id.0);
            }
        }
        // Draining marks (already a sorted set; Down nodes are carried by
        // the per-node states themselves and belong to no list).
        w.put_len(self.draining.len());
        for &id in &self.draining {
            w.put_u32(id);
        }
    }

    /// Decode a cluster written by [`Cluster::encode_snap`]. Every node
    /// must be claimed exactly once across the free list, the allocations,
    /// and the reservations, with a state matching its claimant; the
    /// derived accounting is rebuilt and cross-checked via
    /// [`Cluster::check_invariants`]. Malformed input errors, never
    /// panics.
    pub fn decode_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.get_u32()? as usize;
        if n == 0 {
            return Err(r.err("cluster must have at least one node"));
        }
        if n > r.remaining() {
            // Each node costs at least its one-byte tag.
            return Err(r.err(format!("implausible node count {n}")));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(decode_node(r)?);
        }
        let mut seen = vec![false; n];
        // Down nodes live in no list: claim them straight from the state
        // array so the exactly-once check still covers the whole machine.
        let mut down_count = 0u32;
        for (i, st) in nodes.iter().enumerate() {
            if *st == NodeState::Down {
                seen[i] = true;
                down_count += 1;
            }
        }
        let n_free = r.get_len()?;
        let mut free_list = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let id = r.get_u32()?;
            let Some(&st) = nodes.get(id as usize) else {
                return Err(r.err(format!("free-list node {id} out of range")));
            };
            if st != NodeState::Free {
                return Err(r.err(format!("free-list node {id} is in state {st:?}")));
            }
            if std::mem::replace(&mut seen[id as usize], true) {
                return Err(r.err(format!("node {id} listed twice")));
            }
            free_list.push(NodeId(id));
        }
        let alloc = decode_node_table(r, &nodes, &mut seen, "allocation", |job, st| {
            matches!(st, NodeState::Busy { job: j } if j == job)
                || matches!(st, NodeState::ReservedBusy { job: j, .. } if j == job)
        })?;
        let reserved_idle = decode_node_table(
            r,
            &nodes,
            &mut seen,
            "reservation",
            |holder, st| matches!(st, NodeState::Reserved { holder: h } if h == holder),
        )?;
        if let Some(orphan) = seen.iter().position(|s| !s) {
            return Err(r.err(format!("node {orphan} claimed by no list")));
        }
        let n_draining = r.get_len()?;
        let mut draining = Vec::with_capacity(n_draining);
        let mut prev_drain: Option<u32> = None;
        for _ in 0..n_draining {
            let id = r.get_u32()?;
            if prev_drain.is_some_and(|p| p >= id) {
                return Err(r.err(format!("draining list not strictly sorted at {id}")));
            }
            prev_drain = Some(id);
            if id as usize >= n {
                return Err(r.err(format!("draining node {id} out of range")));
            }
            draining.push(id);
        }
        // Rebuild the derived accounting from the authoritative state.
        let mut splits = HashMap::with_capacity(alloc.len());
        let mut squatter_index: HashMap<JobId, BTreeMap<JobId, u32>> = HashMap::new();
        for (&job, list) in &alloc {
            let mut split = Split::default();
            for id in list {
                match nodes[id.index()] {
                    NodeState::ReservedBusy { holder, .. } => {
                        split.squatted += 1;
                        *squatter_index
                            .entry(holder)
                            .or_default()
                            .entry(job)
                            .or_default() += 1;
                    }
                    _ => split.plain += 1,
                }
            }
            splits.insert(job, split);
        }
        let reserved_idle_total = reserved_idle.values().map(|v| v.len() as u32).sum();
        let cluster = Cluster {
            nodes,
            free_list,
            alloc,
            reserved_idle,
            splits,
            squatter_index,
            reserved_idle_total,
            draining: draining.into_iter().collect(),
            down_count,
            spare: Vec::new(),
        };
        cluster
            .check_invariants()
            .map_err(|e| r.err(format!("restored cluster fails invariants: {e}")))?;
        Ok(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    /// A cluster exercising every node state: running jobs, an on-demand
    /// reservation, and a backfill squatting on part of it.
    fn busy_cluster() -> Cluster {
        let mut c = Cluster::new(24);
        c.allocate(j(1), 5).expect("fits");
        c.allocate(j(3), 2).expect("fits");
        c.reserve(j(9), 8);
        // 9 free + 8 squattable: the backfill squats on 3 reserved nodes.
        c.allocate_backfill(j(2), 12, |_| true).expect("fits");
        c.release(j(1));
        c.check_invariants().expect("sane fixture");
        c
    }

    fn encode(c: &Cluster) -> Vec<u8> {
        let mut w = SnapWriter::new();
        c.encode_snap(&mut w);
        w.into_bytes()
    }

    #[test]
    fn cluster_snapshot_round_trips_bitwise() {
        let c = busy_cluster();
        let bytes = encode(&c);
        let mut r = SnapReader::new(&bytes);
        let back = Cluster::decode_snap(&mut r).expect("decodes");
        r.expect_end().expect("consumed exactly");
        assert_eq!(encode(&back), bytes, "re-encode must reproduce the bytes");
        assert_eq!(back.free_count(), c.free_count());
        assert_eq!(back.total_reserved_idle(), c.total_reserved_idle());
        assert_eq!(back.split_of(j(2)), c.split_of(j(2)));
        assert_eq!(back.squatters(j(9)), c.squatters(j(9)));
    }

    #[test]
    fn restored_cluster_continues_identically() {
        let mut a = busy_cluster();
        let bytes = encode(&a);
        let mut b = Cluster::decode_snap(&mut SnapReader::new(&bytes)).expect("decodes");
        // The same operation sequence must yield identical node choices —
        // the free-list order survived the round trip.
        assert_eq!(a.allocate(j(4), 3).map(<[NodeId]>::to_vec), {
            b.allocate(j(4), 3).map(<[NodeId]>::to_vec)
        });
        assert_eq!(a.release(j(2)), b.release(j(2)));
        assert_eq!(a.release_reservation(j(9)), b.release_reservation(j(9)));
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn corrupt_cluster_snapshots_error_instead_of_panicking() {
        let bytes = encode(&busy_cluster());
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(
                Cluster::decode_snap(&mut r).is_err() || r.expect_end().is_err(),
                "truncation at {cut} must not decode cleanly"
            );
        }
        // A free-list entry pointing at a busy node is caught immediately.
        let mut w = SnapWriter::new();
        w.put_u32(2);
        w.put_u8(1); // node 0: Busy { job 1 }
        w.put_u64(1);
        w.put_u8(0); // node 1: Free
        w.put_len(1);
        w.put_u32(0); // free list claims the busy node
        w.put_len(1);
        w.put_u64(1);
        w.put_len(1);
        w.put_u32(1);
        w.put_len(0);
        let bad = w.into_bytes();
        assert!(Cluster::decode_snap(&mut SnapReader::new(&bad)).is_err());
    }

    #[test]
    fn node_claimed_twice_or_never_is_rejected() {
        // Node 1 in both the free list and an allocation.
        let mut w = SnapWriter::new();
        w.put_u32(2);
        w.put_u8(0);
        w.put_u8(1);
        w.put_u64(7);
        w.put_len(1);
        w.put_u32(0);
        w.put_len(1);
        w.put_u64(7);
        w.put_len(2);
        w.put_u32(1);
        w.put_u32(1);
        w.put_len(0);
        let bytes = w.into_bytes();
        let err = Cluster::decode_snap(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(err.what.contains("twice"), "got: {err}");
        // A node no list claims.
        let mut w = SnapWriter::new();
        w.put_u32(2);
        w.put_u8(0);
        w.put_u8(0);
        w.put_len(1);
        w.put_u32(0);
        w.put_len(0);
        w.put_len(0);
        let bytes = w.into_bytes();
        let err = Cluster::decode_snap(&mut SnapReader::new(&bytes)).unwrap_err();
        assert!(err.what.contains("claimed by no list"), "got: {err}");
    }

    fn sample_specs() -> Vec<hws_workload::JobSpec> {
        use hws_workload::job::JobSpecBuilder;
        vec![
            JobSpecBuilder::rigid(1).size(4).build(),
            JobSpecBuilder::on_demand(9).size(5).build(),
            JobSpecBuilder::malleable(2).size(6).min_size(2).build(),
        ]
    }

    #[test]
    fn federation_snapshot_round_trips_and_continues_identically() {
        let cfg = FederationConfig::even_split(2, 24);
        let specs = sample_specs();
        let mut f = Federation::new(&cfg, 24, &specs);
        assert!(f.try_allocate_with_reserved(j(1), 4));
        assert_eq!(ClusterBackend::reserve(&mut f, j(9), 5), 5);
        f.try_allocate_backfill(j(2), 6, &mut |_| true)
            .expect("fits");
        let mut w = SnapWriter::new();
        f.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = Federation::restore(&mut r, &cfg).expect("decodes");
        r.expect_end().expect("consumed exactly");
        assert_eq!(back.home_of(j(1)), f.home_of(j(1)));
        assert_eq!(back.home_of(j(2)), f.home_of(j(2)));
        let mut w2 = SnapWriter::new();
        back.snapshot(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "re-encode must reproduce the bytes");
        // Continue both with the same ops: placement (meta-driven) and
        // release order must agree.
        assert_eq!(
            ClusterBackend::release(&mut f, j(2)),
            ClusterBackend::release(&mut back, j(2))
        );
        assert!(f.try_allocate_with_reserved(j(9), 5));
        assert!(back.try_allocate_with_reserved(j(9), 5));
        let mut wa = SnapWriter::new();
        let mut wb = SnapWriter::new();
        f.snapshot(&mut wa);
        back.snapshot(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn federation_restore_rejects_mismatched_config() {
        let cfg = FederationConfig::even_split(2, 24);
        let f = Federation::new(&cfg, 24, &[]);
        let mut w = SnapWriter::new();
        f.snapshot(&mut w);
        let bytes = w.into_bytes();
        // Wrong shard count.
        let other = FederationConfig::even_split(3, 24);
        assert!(Federation::restore(&mut SnapReader::new(&bytes), &other).is_err());
        // Right count, wrong shard sizes.
        let skewed = FederationConfig {
            shards: vec![
                crate::ShardSpec {
                    name: "a".into(),
                    nodes: 20,
                },
                crate::ShardSpec {
                    name: "b".into(),
                    nodes: 4,
                },
            ],
            policy: cfg.policy.clone(),
        };
        assert!(Federation::restore(&mut SnapReader::new(&bytes), &skewed).is_err());
    }

    #[test]
    fn note_job_registers_routing_metadata_idempotently() {
        use hws_workload::job::JobSpecBuilder;
        let cfg = FederationConfig::even_split(2, 24);
        // Built with no jobs at all: the live-service path.
        let mut f = Federation::new(&cfg, 24, &[]);
        let hinted = JobSpecBuilder::rigid(5).size(2).site_hint(1).build();
        f.note_job(&hinted);
        assert!(f.try_allocate_with_reserved(j(5), 2));
        assert_eq!(f.home_of(j(5)), Some(1), "hint came from note_job");
        // Re-noting with different metadata keeps the first registration.
        let mut renote = hinted.clone();
        renote.site_hint = Some(0);
        f.note_job(&renote);
        let mut w = SnapWriter::new();
        f.snapshot(&mut w);
        let back =
            Federation::restore(&mut SnapReader::new(&w.into_bytes()), &cfg).expect("decodes");
        assert_eq!(back.home_of(j(5)), Some(1));
        // A bare cluster accepts note_job as a no-op.
        let mut c = Cluster::new(8);
        c.note_job(&hinted);
        assert_eq!(c.free_count(), 8);
    }
}
