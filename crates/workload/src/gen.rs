//! Synthetic Theta-like trace generation.
//!
//! The real 2019 Theta trace is proprietary; this module reproduces every
//! statistic the paper publishes about it (Table I, Fig. 3, Fig. 4, Fig. 5)
//! from first principles:
//!
//! * **Projects.** 211 projects with Zipf-skewed activity. Job *types* are
//!   assigned per project (§IV-B): 10 % of projects submit on-demand jobs,
//!   60 % rigid, 30 % malleable. Because project activity is heavy-tailed,
//!   the per-trace type mix varies strongly across seeds — exactly the
//!   behaviour shown in the paper's Fig. 4.
//! * **Burstiness.** Each project submits in sessions: a session start is
//!   drawn from a diurnal/weekly-weighted distribution over the year and
//!   emits a burst of jobs with exponential gaps. On-demand projects thus
//!   produce the bursty weekly pattern of Fig. 5.
//! * **Sizes.** Power-of-two-leaning sizes in doubling buckets starting at
//!   the 128-node Theta minimum; bucket weights follow Fig. 3 (most jobs
//!   small, core-hours spread to the large buckets).
//! * **Runtimes.** Truncated log-normal, capped at Theta's 1-day limit.
//!   User estimates over-estimate by a uniform factor, rounded up to 30-min
//!   granularity (the classic HPC estimate pattern).
//! * **Notices.** On-demand jobs receive an advance notice 15–30 min before
//!   their predicted arrival; the accuracy category mix is the W1–W5 setting
//!   of Table III.

use crate::dist::LogNormal;
use crate::dist::{weighted_index, Exponential, TruncatedLogNormal, Zipf};
use crate::ids::{JobId, ProjectId};
use crate::job::{JobClass, JobKind, JobSpec, NoticeCategory, NoticeSpec};
use crate::trace::Trace;
use hws_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Advance-notice accuracy mix (Table III). Fractions sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoticeMix {
    pub no_notice: f64,
    pub accurate: f64,
    pub early: f64,
    pub late: f64,
}

impl NoticeMix {
    /// W1: 70 % without advance notice.
    pub const W1: NoticeMix = NoticeMix {
        no_notice: 0.7,
        accurate: 0.1,
        early: 0.1,
        late: 0.1,
    };
    /// W2: 70 % with accurate notice.
    pub const W2: NoticeMix = NoticeMix {
        no_notice: 0.1,
        accurate: 0.7,
        early: 0.1,
        late: 0.1,
    };
    /// W3: 70 % arrive early.
    pub const W3: NoticeMix = NoticeMix {
        no_notice: 0.1,
        accurate: 0.1,
        early: 0.7,
        late: 0.1,
    };
    /// W4: 70 % arrive late.
    pub const W4: NoticeMix = NoticeMix {
        no_notice: 0.1,
        accurate: 0.1,
        early: 0.1,
        late: 0.7,
    };
    /// W5: equal split (also the §IV-B default configuration).
    pub const W5: NoticeMix = NoticeMix {
        no_notice: 0.25,
        accurate: 0.25,
        early: 0.25,
        late: 0.25,
    };

    /// The five workloads of Table III, with their paper names.
    pub const TABLE3: [(&'static str, NoticeMix); 5] = [
        ("W1", Self::W1),
        ("W2", Self::W2),
        ("W3", Self::W3),
        ("W4", Self::W4),
        ("W5", Self::W5),
    ];

    pub fn weights(&self) -> [f64; 4] {
        [self.no_notice, self.accurate, self.early, self.late]
    }

    pub fn validate(&self) -> Result<(), String> {
        let s = self.no_notice + self.accurate + self.early + self.late;
        if (s - 1.0).abs() > 1e-9 {
            return Err(format!("notice mix sums to {s}, expected 1"));
        }
        if self.weights().iter().any(|w| *w < 0.0) {
            return Err("negative notice fraction".into());
        }
        Ok(())
    }
}

impl Default for NoticeMix {
    fn default() -> Self {
        NoticeMix::W5
    }
}

/// All knobs of the synthetic workload. `theta_2019()` reproduces the
/// paper's Table I; `small()`/`tiny()` are scaled-down variants for tests
/// and examples.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total compute nodes (Theta: 4,392).
    pub system_size: u32,
    /// Number of allocation projects (Theta 2019: 211).
    pub n_projects: u32,
    /// Target number of jobs over the horizon (Theta 2019: 37,298).
    pub target_jobs: u32,
    /// Trace horizon (Theta trace: one year).
    pub horizon: SimDuration,
    /// Fraction of *projects* submitting on-demand jobs (§IV-B: 10 %).
    pub od_project_frac: f64,
    /// Fraction of *projects* submitting rigid jobs (§IV-B: 60 %); the rest
    /// submit malleable jobs.
    pub rigid_project_frac: f64,
    /// Advance-notice accuracy mix (Table III).
    pub notice_mix: NoticeMix,
    /// Smallest schedulable allocation (Theta: 128 nodes).
    pub min_job_size: u32,
    /// Sizes are rounded to multiples of this quantum.
    pub size_quantum: u32,
    /// Job-count weights of the doubling size buckets (Fig. 3); the last
    /// weight covers everything up to the full machine.
    pub size_bucket_weights: [f64; 5],
    /// Size-bucket weights for on-demand projects ("real on-demand jobs are
    /// relatively small in size").
    pub od_size_bucket_weights: [f64; 5],
    /// Probability a job re-samples a bucket globally instead of using its
    /// project's characteristic bucket.
    pub bucket_drift: f64,
    /// Log-normal runtime model: median (seconds) and log-space sigma.
    pub runtime_median_s: f64,
    pub runtime_sigma: f64,
    /// Runtime bounds (Theta: jobs up to 1 day).
    pub min_runtime: SimDuration,
    pub max_runtime: SimDuration,
    /// User estimates: `work × U(lo, hi)` rounded up to 30 min.
    pub estimate_factor: (f64, f64),
    /// Fraction of users whose estimate is just the work rounded up.
    pub estimate_exact_frac: f64,
    /// Rigid setup cost as a fraction of work, uniform in this range
    /// (§IV-B: 5–10 %).
    pub rigid_setup_frac: (f64, f64),
    /// Malleable setup cost fraction range (§IV-B: 0–5 %).
    pub malleable_setup_frac: (f64, f64),
    /// Malleable minimum size as a fraction of the requested size
    /// (§IV-B: 20 %).
    pub malleable_min_frac: f64,
    /// Advance-notice lead range (§III-A: 15–30 minutes).
    pub notice_lead: (SimDuration, SimDuration),
    /// Late arrivals land within this window after the prediction (§IV-B:
    /// 30 minutes).
    pub late_window: SimDuration,
    /// Mean jobs per submission session (burstiness).
    pub burst_mean_jobs: f64,
    /// Mean gap between submissions inside a session.
    pub burst_gap_mean: SimDuration,
    /// Zipf exponent for project activity.
    pub zipf_s: f64,
    /// Enable weekday/daytime submission weighting.
    pub diurnal: bool,
    /// When set, linearly rescale all work durations after generation so
    /// the trace's offered load (total work node-seconds over
    /// `system × horizon`) hits this value exactly. Heavy-tailed project
    /// activity otherwise makes the realized load vary strongly across
    /// seeds, whereas the paper evaluates against one fixed real trace.
    pub target_load: Option<f64>,
    /// Fraction of *rigid jobs* tagged as capability-class campaigns
    /// ([`crate::job::JobClass::Capability`]), applied after generation by
    /// [`Trace::tag_capability`] — largest jobs first, RNG-free. The
    /// default `0.0` reproduces the paper's pure two-class workload
    /// bitwise (no random stream is consumed either way).
    pub capability_frac: f64,
}

impl TraceConfig {
    /// Reproduces the published shape of the 2019 Theta workload (Table I).
    /// Runtime/size parameters are calibrated so the offered load supports
    /// the ≈84 % baseline utilisation of Table II.
    pub fn theta_2019() -> Self {
        TraceConfig {
            system_size: 4_392,
            n_projects: 211,
            target_jobs: 37_298,
            horizon: SimDuration::from_days(365),
            od_project_frac: 0.10,
            rigid_project_frac: 0.60,
            notice_mix: NoticeMix::W5,
            min_job_size: 128,
            size_quantum: 64,
            size_bucket_weights: [0.46, 0.20, 0.14, 0.12, 0.08],
            od_size_bucket_weights: [0.80, 0.18, 0.02, 0.0, 0.0],
            bucket_drift: 0.25,
            runtime_median_s: 3_100.0,
            runtime_sigma: 1.45,
            min_runtime: SimDuration::from_mins(10),
            max_runtime: SimDuration::from_days(1),
            estimate_factor: (1.1, 3.0),
            estimate_exact_frac: 0.2,
            rigid_setup_frac: (0.05, 0.10),
            malleable_setup_frac: (0.0, 0.05),
            malleable_min_frac: 0.2,
            notice_lead: (SimDuration::from_mins(15), SimDuration::from_mins(30)),
            late_window: SimDuration::from_mins(30),
            burst_mean_jobs: 12.0,
            burst_gap_mean: SimDuration::from_mins(4),
            zipf_s: 1.05,
            diurnal: true,
            target_load: Some(0.81),
            capability_frac: 0.0,
        }
    }

    /// A month on a 512-node machine — fast enough for integration tests
    /// while still exercising queueing, bursts, and all three job classes.
    pub fn small() -> Self {
        TraceConfig {
            system_size: 512,
            n_projects: 24,
            target_jobs: 900,
            horizon: SimDuration::from_days(30),
            min_job_size: 16,
            size_quantum: 8,
            ..Self::theta_2019()
        }
    }

    /// A week on a 64-node machine — unit-test scale.
    pub fn tiny() -> Self {
        TraceConfig {
            system_size: 64,
            n_projects: 8,
            target_jobs: 150,
            horizon: SimDuration::from_days(7),
            min_job_size: 4,
            size_quantum: 2,
            runtime_median_s: 2_400.0,
            ..Self::theta_2019()
        }
    }

    pub fn with_notice_mix(mut self, mix: NoticeMix) -> Self {
        self.notice_mix = mix;
        self
    }

    pub fn with_jobs(mut self, n: u32) -> Self {
        self.target_jobs = n;
        self
    }

    /// Tag this fraction of rigid jobs (largest first) as
    /// capability-class campaigns; see
    /// [`TraceConfig::capability_frac`].
    pub fn with_capability_frac(mut self, frac: f64) -> Self {
        self.capability_frac = frac;
        self
    }

    /// Doubling size buckets `[lo, hi)` starting at `min_job_size`; the last
    /// bucket is capped at the full machine. At most five buckets (Fig. 3).
    pub fn size_buckets(&self) -> Vec<(u32, u32)> {
        let mut buckets = Vec::new();
        let mut lo = self.min_job_size;
        while buckets.len() < 4 && lo * 2 < self.system_size {
            buckets.push((lo, lo * 2));
            lo *= 2;
        }
        buckets.push((lo, self.system_size + 1));
        buckets
    }

    /// Generate a trace. Deterministic in `(self, seed)`.
    pub fn generate(&self, seed: u64) -> Trace {
        Generator::new(self, seed).run()
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.system_size == 0 || self.min_job_size == 0 || self.min_job_size > self.system_size {
            return Err("bad system/min size".into());
        }
        if self.n_projects == 0 || self.target_jobs == 0 {
            return Err("empty workload".into());
        }
        if !(0.0..=1.0).contains(&self.od_project_frac)
            || !(0.0..=1.0).contains(&self.rigid_project_frac)
            || self.od_project_frac + self.rigid_project_frac > 1.0
        {
            return Err("bad project fractions".into());
        }
        self.notice_mix.validate()?;
        if self.min_runtime >= self.max_runtime {
            return Err("bad runtime bounds".into());
        }
        if !(0.0..=1.0).contains(&self.capability_frac) {
            return Err(format!(
                "capability_frac {} outside 0..=1",
                self.capability_frac
            ));
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::theta_2019()
    }
}

struct Generator<'c> {
    cfg: &'c TraceConfig,
    rng: StdRng,
    buckets: Vec<(u32, u32)>,
    runtime: TruncatedLogNormal,
    gap: Exponential,
}

impl<'c> Generator<'c> {
    fn new(cfg: &'c TraceConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid TraceConfig");
        let runtime = TruncatedLogNormal::new(
            LogNormal::from_median(cfg.runtime_median_s, cfg.runtime_sigma),
            cfg.min_runtime.as_secs() as f64,
            cfg.max_runtime.as_secs() as f64,
        );
        Generator {
            buckets: cfg.size_buckets(),
            runtime,
            gap: Exponential::new(cfg.burst_gap_mean.as_secs().max(1) as f64),
            rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            cfg,
        }
    }

    fn run(mut self) -> Trace {
        let cfg = self.cfg;
        let np = cfg.n_projects as usize;

        // 1. Heavy-tailed project activity.
        let zipf = Zipf::new(np, cfg.zipf_s);
        let mut counts = vec![0u32; np];
        for _ in 0..cfg.target_jobs {
            counts[zipf.sample(&mut self.rng)] += 1;
        }

        // 2. Job type per project (random permutation → first 10 % OD,
        //    next 60 % rigid, rest malleable).
        let mut perm: Vec<usize> = (0..np).collect();
        for i in (1..np).rev() {
            let j = self.rng.random_range(0..=i);
            perm.swap(i, j);
        }
        // A zero fraction means no on-demand projects at all; only a
        // nonzero fraction rounds up to at least one project.
        let n_od = if cfg.od_project_frac > 0.0 {
            ((np as f64) * cfg.od_project_frac).round().max(1.0) as usize
        } else {
            0
        };
        let n_rigid = ((np as f64) * cfg.rigid_project_frac).round() as usize;
        let mut kind_of = vec![JobKind::Malleable; np];
        for (rank, &p) in perm.iter().enumerate() {
            kind_of[p] = if rank < n_od {
                JobKind::OnDemand
            } else if rank < n_od + n_rigid {
                JobKind::Rigid
            } else {
                JobKind::Malleable
            };
        }

        // 3. Per-project characteristic size bucket.
        let nb = self.buckets.len();
        let global_w = &cfg.size_bucket_weights[..nb.min(5)];
        let od_w = &cfg.od_size_bucket_weights[..nb.min(5)];
        let base_bucket: Vec<usize> = (0..np)
            .map(|p| {
                let w = if kind_of[p] == JobKind::OnDemand {
                    od_w
                } else {
                    global_w
                };
                weighted_index(w, &mut self.rng)
            })
            .collect();

        // 4. Emit jobs, project by project, session by session.
        let mut jobs: Vec<JobSpec> = Vec::with_capacity(cfg.target_jobs as usize);
        for p in 0..np {
            let c = counts[p];
            if c == 0 {
                continue;
            }
            let n_sessions = ((c as f64 / cfg.burst_mean_jobs).round() as u32).max(1);
            // Spread c jobs over n_sessions sessions as evenly as possible.
            let base = c / n_sessions;
            let extra = c % n_sessions;
            for s in 0..n_sessions {
                let in_session = base + u32::from(s < extra);
                if in_session == 0 {
                    continue;
                }
                let mut t = self.session_start();
                for _ in 0..in_session {
                    let spec = self.emit_job(p, kind_of[p], base_bucket[p], t);
                    jobs.push(spec);
                    t += SimDuration::from_secs(self.gap.sample(&mut self.rng).ceil() as u64 + 1);
                }
            }
        }

        // 5. Normalize offered load if requested: rescale work (and the
        //    quantities derived from it) so total work node-seconds over
        //    system × horizon equals `target_load`.
        if let Some(target) = cfg.target_load {
            let capacity = u128::from(cfg.system_size) * u128::from(cfg.horizon.as_secs());
            let offered: u128 = jobs.iter().map(|j| u128::from(j.work_node_seconds())).sum();
            if offered > 0 {
                let ratio = target * capacity as f64 / offered as f64;
                for j in &mut jobs {
                    let est_factor = j.estimate.as_secs() as f64 / j.work.as_secs().max(1) as f64;
                    let setup_frac = j.setup.as_secs() as f64 / j.work.as_secs().max(1) as f64;
                    let new_work = (j.work.as_secs() as f64 * ratio).round().clamp(
                        cfg.min_runtime.as_secs() as f64,
                        cfg.max_runtime.as_secs() as f64,
                    ) as u64;
                    j.work = SimDuration::from_secs(new_work.max(60));
                    let est = (j.work.as_secs() as f64 * est_factor) as u64;
                    j.estimate = SimDuration::from_secs(est.div_ceil(1_800) * 1_800)
                        .max(j.work)
                        .min(cfg.max_runtime.max(j.work));
                    j.setup = SimDuration::from_secs(
                        (j.work.as_secs() as f64 * setup_frac).round() as u64,
                    );
                }
            }
        }

        // 6. Sort by submission and relabel ids in submission order.
        jobs.sort_by_key(|j| (j.submit, j.id));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = JobId(i as u64);
        }
        // Burst gaps and late notices can push submissions past the
        // nominal horizon; extend it so the `submit < horizon` invariant
        // holds (Trace::validate enforces it).
        let last_submit = jobs.iter().map(|j| j.submit.as_secs()).max().unwrap_or(0);
        let horizon = cfg.horizon.max(SimDuration::from_secs(last_submit + 1));
        let mut trace = Trace::new(cfg.system_size, horizon, jobs);
        // 7. Capability tagging — deterministic and RNG-free, so a zero
        //    fraction leaves the trace bitwise identical.
        if cfg.capability_frac > 0.0 {
            trace.tag_capability(cfg.capability_frac);
        }
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }

    /// Session starts follow the weekly/diurnal activity of an HPC centre:
    /// weekday working hours dominate, nights and weekends are quieter.
    fn session_start(&mut self) -> SimTime {
        let horizon = self.cfg.horizon.as_secs();
        for _ in 0..32 {
            let t = self.rng.random_range(0..horizon);
            if !self.cfg.diurnal {
                return SimTime::from_secs(t);
            }
            let day = (t / 86_400) % 7;
            let hour = (t % 86_400) / 3_600;
            let w = if day >= 5 {
                0.25
            } else if (8..18).contains(&hour) {
                1.0
            } else {
                0.40
            };
            if self.rng.random_range(0.0..1.0) < w {
                return SimTime::from_secs(t);
            }
        }
        SimTime::from_secs(self.rng.random_range(0..horizon))
    }

    fn sample_size(&mut self, kind: JobKind, base_bucket: usize) -> u32 {
        let cfg = self.cfg;
        let nb = self.buckets.len();
        let bucket = if self.rng.random_range(0.0..1.0) < cfg.bucket_drift {
            let w = if kind == JobKind::OnDemand {
                &cfg.od_size_bucket_weights[..nb.min(5)]
            } else {
                &cfg.size_bucket_weights[..nb.min(5)]
            };
            weighted_index(w, &mut self.rng)
        } else {
            base_bucket
        };
        let (lo, hi) = self.buckets[bucket.min(nb - 1)];
        // Real HPC sizes clump at powers of two: half the jobs sit exactly
        // on the bucket's lower boundary, the rest spread log-uniformly.
        if self.rng.random_range(0.0..1.0) < 0.5 {
            return lo.max(cfg.min_job_size).min(cfg.system_size);
        }
        let (flo, fhi) = (lo as f64, hi as f64);
        let x = (flo.ln() + self.rng.random_range(0.0..1.0) * (fhi.ln() - flo.ln())).exp();
        let q = cfg.size_quantum.max(1);
        let size = ((x / q as f64).round() as u32 * q)
            .clamp(lo.max(cfg.min_job_size), (hi - 1).min(cfg.system_size));
        size.max(cfg.min_job_size)
    }

    fn emit_job(
        &mut self,
        project: usize,
        kind: JobKind,
        base_bucket: usize,
        t_gen: SimTime,
    ) -> JobSpec {
        let cfg = self.cfg;
        let mut kind = kind;
        let mut size = self.sample_size(kind, base_bucket);

        // Paper §IV-A: large on-demand jobs (> half the machine) are
        // reassigned to be rigid or malleable.
        if kind == JobKind::OnDemand && size > cfg.system_size / 2 {
            kind = if self.rng.random_range(0.0..1.0) < 0.5 {
                JobKind::Rigid
            } else {
                JobKind::Malleable
            };
            size = size.min(cfg.system_size);
        }

        let work_s = self.runtime.sample(&mut self.rng).round().max(60.0) as u64;
        let work = SimDuration::from_secs(work_s);

        // Estimates: exact-ish or a uniform over-estimation factor, rounded
        // up to 30-minute granularity, always ≥ work.
        let est_raw = if self.rng.random_range(0.0..1.0) < cfg.estimate_exact_frac {
            work_s
        } else {
            let (lo, hi) = cfg.estimate_factor;
            (work_s as f64 * self.rng.random_range(lo..hi)) as u64
        };
        let est = SimDuration::from_secs(est_raw.div_ceil(1_800) * 1_800).max(work);

        let setup_frac_range = match kind {
            JobKind::Rigid => cfg.rigid_setup_frac,
            JobKind::Malleable => cfg.malleable_setup_frac,
            JobKind::OnDemand => (0.0, 0.0),
        };
        let setup_frac = if setup_frac_range.1 > setup_frac_range.0 {
            self.rng
                .random_range(setup_frac_range.0..setup_frac_range.1)
        } else {
            setup_frac_range.0
        };
        let setup = SimDuration::from_secs((work_s as f64 * setup_frac).round() as u64);

        let min_size = if kind == JobKind::Malleable {
            ((size as f64 * cfg.malleable_min_frac).ceil() as u32).clamp(1, size)
        } else {
            size
        };

        let (submit, notice, category) = if kind == JobKind::OnDemand {
            self.notice_timing(t_gen)
        } else {
            (t_gen, None, NoticeCategory::NoNotice)
        };

        JobSpec {
            // Temporary id; relabelled after the global sort.
            id: JobId(u64::MAX),
            project: ProjectId(project as u32),
            kind,
            submit,
            size,
            min_size,
            work,
            estimate: est,
            setup,
            notice,
            category,
            site_hint: None,
            class: JobClass::Capacity,
        }
    }

    /// Derive (actual arrival, notice, category) for an on-demand job whose
    /// generation instant is `t_gen` (= the notice instant when a notice is
    /// given). See Fig. 1 and §IV-B.
    fn notice_timing(&mut self, t_gen: SimTime) -> (SimTime, Option<NoticeSpec>, NoticeCategory) {
        let cfg = self.cfg;
        let idx = weighted_index(&cfg.notice_mix.weights(), &mut self.rng);
        let lead_s = self
            .rng
            .random_range(cfg.notice_lead.0.as_secs()..=cfg.notice_lead.1.as_secs());
        let lead = SimDuration::from_secs(lead_s);
        let predicted = t_gen + lead;
        match NoticeCategory::ALL[idx] {
            NoticeCategory::NoNotice => (t_gen, None, NoticeCategory::NoNotice),
            NoticeCategory::Accurate => (
                predicted,
                Some(NoticeSpec {
                    notice_time: t_gen,
                    predicted_arrival: predicted,
                }),
                NoticeCategory::Accurate,
            ),
            NoticeCategory::Early => {
                // A zero lead leaves no room to arrive early; degenerate
                // to the notice instant instead of sampling 0..0.
                let early_s = if lead_s > 0 {
                    self.rng.random_range(0..lead_s)
                } else {
                    0
                };
                let arrive = t_gen + SimDuration::from_secs(early_s);
                (
                    arrive,
                    Some(NoticeSpec {
                        notice_time: t_gen,
                        predicted_arrival: predicted,
                    }),
                    NoticeCategory::Early,
                )
            }
            NoticeCategory::Late => {
                // A zero window means "late by nothing": land exactly on
                // the prediction instead of sampling the empty 1..=0.
                let slack = if cfg.late_window.as_secs() > 0 {
                    self.rng.random_range(1..=cfg.late_window.as_secs())
                } else {
                    0
                };
                (
                    predicted + SimDuration::from_secs(slack),
                    Some(NoticeSpec {
                        notice_time: t_gen,
                        predicted_arrival: predicted,
                    }),
                    NoticeCategory::Late,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_target_job_count() {
        let tr = TraceConfig::tiny().generate(1);
        assert_eq!(tr.len(), 150);
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TraceConfig::tiny();
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn theta_preset_matches_table1_shape() {
        let mut cfg = TraceConfig::theta_2019();
        cfg.target_jobs = 4_000; // keep the test quick; shape is unchanged
        let tr = cfg.generate(42);
        assert!(tr.validate().is_ok());
        assert_eq!(tr.system_size, 4_392);
        assert!(tr.jobs.iter().all(|j| j.size >= 128));
        assert!(tr.jobs.iter().all(|j| j.work <= SimDuration::from_days(1)));
        assert!(tr.jobs.iter().all(|j| j.estimate >= j.work));
        let projects: std::collections::HashSet<_> = tr.jobs.iter().map(|j| j.project).collect();
        assert!(
            projects.len() > 50,
            "expected many active projects, got {}",
            projects.len()
        );
    }

    #[test]
    fn job_types_are_uniform_within_project() {
        let tr = TraceConfig::small().generate(3);
        let mut seen: std::collections::HashMap<ProjectId, JobKind> = Default::default();
        for j in &tr.jobs {
            // Reassigned large on-demand jobs may break project purity for
            // on-demand projects, but only toward rigid/malleable.
            let e = seen.entry(j.project).or_insert(j.kind);
            if *e != j.kind {
                assert_eq!(*e, JobKind::OnDemand);
                assert_ne!(j.kind, JobKind::OnDemand);
            }
        }
    }

    #[test]
    fn all_three_kinds_present_across_seeds() {
        // A single small seed may miss a class (heavy-tailed projects); over
        // several seeds all classes must appear.
        let cfg = TraceConfig::small();
        let mut saw = [false; 3];
        for seed in 0..5 {
            let tr = cfg.generate(seed);
            for (i, k) in JobKind::ALL.iter().enumerate() {
                if tr.count_kind(*k) > 0 {
                    saw[i] = true;
                }
            }
        }
        assert_eq!(saw, [true, true, true]);
    }

    #[test]
    fn on_demand_notice_categories_follow_mix() {
        let cfg = TraceConfig {
            target_jobs: 6_000,
            od_project_frac: 1.0,
            rigid_project_frac: 0.0,
            notice_mix: NoticeMix::W2,
            ..TraceConfig::small()
        };
        let tr = cfg.generate(9);
        let od: Vec<_> = tr.iter_kind(JobKind::OnDemand).collect();
        assert!(od.len() > 3_000);
        let frac = |c: NoticeCategory| {
            od.iter().filter(|j| j.category == c).count() as f64 / od.len() as f64
        };
        assert!((frac(NoticeCategory::Accurate) - 0.7).abs() < 0.05);
        assert!((frac(NoticeCategory::NoNotice) - 0.1).abs() < 0.05);
        assert!((frac(NoticeCategory::Early) - 0.1).abs() < 0.05);
        assert!((frac(NoticeCategory::Late) - 0.1).abs() < 0.05);
    }

    #[test]
    fn no_oversized_on_demand_jobs() {
        let cfg = TraceConfig {
            od_project_frac: 1.0,
            rigid_project_frac: 0.0,
            od_size_bucket_weights: [0.0, 0.0, 0.0, 0.2, 0.8], // force large draws
            ..TraceConfig::small()
        };
        let tr = cfg.generate(11);
        for j in tr.iter_kind(JobKind::OnDemand) {
            assert!(
                j.size <= tr.system_size / 2,
                "OD {} too large: {}",
                j.id,
                j.size
            );
        }
        // The reassignment must have produced some rigid/malleable jobs.
        assert!(tr.count_kind(JobKind::Rigid) + tr.count_kind(JobKind::Malleable) > 0);
    }

    #[test]
    fn size_buckets_double_from_min() {
        let cfg = TraceConfig::theta_2019();
        assert_eq!(
            cfg.size_buckets(),
            vec![
                (128, 256),
                (256, 512),
                (512, 1_024),
                (1_024, 2_048),
                (2_048, 4_393)
            ]
        );
        let tiny = TraceConfig::tiny();
        let b = tiny.size_buckets();
        assert_eq!(b.first().unwrap().0, 4);
        assert_eq!(b.last().unwrap().1, 65);
    }

    #[test]
    fn malleable_min_size_is_twenty_percent() {
        let tr = TraceConfig::small().generate(5);
        for j in tr.iter_kind(JobKind::Malleable) {
            assert_eq!(j.min_size, ((j.size as f64) * 0.2).ceil() as u32);
        }
    }

    #[test]
    fn notice_mix_constants_sum_to_one() {
        for (_, m) in NoticeMix::TABLE3 {
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn ids_follow_submission_order() {
        let tr = TraceConfig::tiny().generate(2);
        for (i, j) in tr.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn zero_on_demand_fraction_generates_pure_batch() {
        let cfg = TraceConfig {
            od_project_frac: 0.0,
            rigid_project_frac: 1.0,
            ..TraceConfig::tiny()
        };
        let tr = cfg.generate(2);
        assert_eq!(tr.count_kind(JobKind::OnDemand), 0);
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn degenerate_notice_ranges_do_not_panic() {
        let cfg = TraceConfig {
            od_project_frac: 1.0,
            rigid_project_frac: 0.0,
            notice_lead: (SimDuration::ZERO, SimDuration::ZERO),
            late_window: SimDuration::ZERO,
            ..TraceConfig::tiny()
        };
        for seed in 0..4 {
            let tr = cfg.generate(seed);
            assert!(tr.validate().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn horizon_covers_every_submission() {
        // Burst gaps and late notices can push submits past the nominal
        // horizon; the generator must extend it.
        let cfg = TraceConfig {
            notice_mix: NoticeMix::W4, // 70 % arrive late
            ..TraceConfig::tiny()
        };
        for seed in 0..4 {
            let tr = cfg.generate(seed);
            for j in &tr.jobs {
                assert!(j.submit.as_secs() < tr.horizon.as_secs());
            }
        }
    }

    #[test]
    fn capability_frac_tags_rigid_jobs_deterministically() {
        let base = TraceConfig::small();
        let plain = base.generate(3);
        let tagged = base.clone().with_capability_frac(0.25).generate(3);
        // Same jobs, same RNG stream — only the class tags differ.
        assert_eq!(plain.len(), tagged.len());
        let n_rigid = tagged.count_kind(JobKind::Rigid);
        let n_cap = tagged.count_class(crate::job::JobClass::Capability);
        assert_eq!(n_cap, ((n_rigid as f64) * 0.25).ceil() as usize);
        for (a, b) in plain.jobs.iter().zip(&tagged.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.work, b.work);
            if b.class == crate::job::JobClass::Capability {
                assert_eq!(b.kind, JobKind::Rigid);
            }
        }
        assert!(tagged.validate().is_ok());
    }

    #[test]
    fn zero_capability_frac_is_bitwise_identical() {
        let base = TraceConfig::tiny();
        let explicit_zero = base.clone().with_capability_frac(0.0).generate(9);
        assert_eq!(base.generate(9), explicit_zero);
        assert_eq!(
            explicit_zero.count_class(crate::job::JobClass::Capability),
            0
        );
    }

    #[test]
    fn config_validation_catches_errors() {
        let mut cfg = TraceConfig::tiny();
        cfg.od_project_frac = 0.9;
        cfg.rigid_project_frac = 0.9;
        assert!(cfg.validate().is_err());
        let mut cfg2 = TraceConfig::tiny();
        cfg2.min_job_size = 0;
        assert!(cfg2.validate().is_err());
        let mut cfg3 = TraceConfig::tiny();
        cfg3.capability_frac = 1.5;
        assert!(cfg3.validate().is_err());
    }
}
