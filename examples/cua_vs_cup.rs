//! A micro-scenario reproducing the paper's **Figure 2**: the difference
//! between CUA (passively collect released nodes) and CUP (plan ahead for
//! the predicted arrival, preempting a rigid job right after a checkpoint).
//!
//! Setup (mirroring the figure):
//! * `J1` finishes before the on-demand job's predicted arrival — both
//!   mechanisms collect its nodes for free.
//! * `J2` runs long past the prediction. CUA leaves it alone and must
//!   preempt at arrival (losing work since the last checkpoint); CUP
//!   preempts it right after a checkpoint completes, so the loss is
//!   bounded by one checkpoint interval.
//!
//! ```text
//! cargo run --release --example cua_vs_cup
//! ```

use hybrid_workload_sched::prelude::*;

fn build() -> Trace {
    let t = SimTime::from_secs;
    let d = SimDuration::from_secs;
    let jobs = vec![
        // J1: 40 nodes, done by t=2000 (before the predicted arrival 6000).
        JobSpecBuilder::rigid(0)
            .project(1)
            .submit_at(t(0))
            .size(40)
            .work(d(2_000))
            .estimate(d(2_000))
            .build(),
        // J2: 60 nodes, runs "forever" (far past the prediction).
        JobSpecBuilder::rigid(1)
            .project(1)
            .submit_at(t(0))
            .size(60)
            .work(d(40_000))
            .estimate(d(42_000))
            .setup(d(200))
            .build(),
        // The on-demand job: needs 80 nodes, notice at 4500, predicted 6000.
        JobSpecBuilder::on_demand(2)
            .project(2)
            .submit_at(t(6_000))
            .size(80)
            .work(d(1_000))
            .estimate(d(1_800))
            .notice(t(4_500), t(6_000))
            .build(),
    ];
    Trace::new(100, SimDuration::from_days(1), jobs)
}

fn main() {
    let trace = build();
    // Checkpoint roughly every ~35 min so J2 has boundaries to exploit.
    let mut base = SimConfig::with_mechanism(Mechanism::CUA_PAA);
    base.ckpt.node_mtbf_hours = 12.0;
    base.backfill_on_reserved = false; // keep the timeline easy to read

    println!("Fig. 2 scenario: J1 (40 nodes) ends at t=2000; J2 (60 nodes) runs long;");
    println!("on-demand job (80 nodes) announced at t=4500, predicted & actual arrival t=6000");
    println!(
        "J2 checkpoints every {} (+{} cost)\n",
        base.ckpt.interval(60).unwrap(),
        base.ckpt.cost(60)
    );

    let mut table = Table::new(vec![
        "mechanism",
        "od start delay (s)",
        "J2 preempted",
        "wasted node-s",
        "util %",
    ]);
    for m in [Mechanism::CUA_PAA, Mechanism::CUP_PAA] {
        let mut cfg = base.clone();
        cfg.mechanism = m;
        cfg.record_timeline = true;
        let out = Simulator::run_trace(&cfg, &trace);
        println!("--- {} schedule ---", m.name());
        if let Some(tl) = &out.timeline {
            println!("{}", tl.render_gantt(100));
        }
        let met = &out.metrics;
        let wasted = (met.raw_occupancy - met.utilization) * met.span_hours * 3_600.0 * 100.0;
        table.row(vec![
            m.name().to_string(),
            format!("{:.0}", met.on_demand.avg_turnaround_h * 3_600.0 - 1_000.0),
            if met.rigid.preemption_ratio > 0.4 {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            format!("{wasted:.0}"),
            format!("{:.1}", met.utilization * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("both serve the on-demand job instantly; CUP wastes fewer cycles because J2");
    println!("was stopped right after a checkpoint instead of mid-interval at arrival.");
}
