//! Pure decision logic of the six mechanisms: victim selection (PAA),
//! even-shrink planning (SPAA), and CUP preparation plans. The driver
//! executes these plans against the cluster; keeping them pure makes the
//! "quick decision making" requirement (§II-C, Observation 10) directly
//! benchmarkable.

use crate::config::{ShrinkStrategy, VictimOrder};
use hws_sim::SimTime;
use hws_workload::{JobClass, JobId};
use std::collections::BinaryHeap;

/// A running job that PAA may preempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimInfo {
    pub id: JobId,
    /// Nodes the preemption would release.
    pub nodes: u32,
    /// Wasted node-seconds if preempted now (work past the last checkpoint
    /// for rigid jobs; drain + setup for malleable jobs).
    pub overhead_ns: u64,
    /// Run start (for the `NewestFirst` ablation ordering).
    pub started: SimTime,
    /// Capability/capacity class: the paper's mechanisms ignore it, but
    /// capability-aware hooks shield [`JobClass::Capability`] victims.
    pub class: JobClass,
}

/// PAA: "lists all currently running malleable and rigid jobs in ascending
/// order of their preemption overheads [and preempts] jobs from the front
/// of the running list until the on-demand request is satisfied."
///
/// Returns the selected victims, or `None` when even preempting everything
/// cannot supply `need` nodes (the on-demand job must wait at the front of
/// the queue).
pub fn select_victims(
    mut candidates: Vec<VictimInfo>,
    need: u32,
    order: VictimOrder,
) -> Option<Vec<VictimInfo>> {
    if need == 0 {
        return Some(Vec::new());
    }
    let total: u64 = candidates.iter().map(|v| u64::from(v.nodes)).sum();
    if total < u64::from(need) {
        return None;
    }
    match order {
        VictimOrder::Overhead => candidates.sort_by_key(|v| (v.overhead_ns, v.id)),
        VictimOrder::SizeAscending => candidates.sort_by_key(|v| (v.nodes, v.id)),
        VictimOrder::NewestFirst => {
            candidates.sort_by_key(|v| (std::cmp::Reverse(v.started), v.id))
        }
    }
    let mut selected = Vec::new();
    let mut got = 0u32;
    for v in candidates {
        if got >= need {
            break;
        }
        got = got.saturating_add(v.nodes);
        selected.push(v);
    }
    Some(selected)
}

/// A running malleable job SPAA may shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkInfo {
    pub id: JobId,
    pub cur: u32,
    pub min: u32,
    /// Capability/capacity class (capability-aware hooks may exempt
    /// capability campaigns from shrinking too; the default policy only
    /// shields them from preemption).
    pub class: JobClass,
}

/// SPAA planning: can the running malleable jobs supply `need` nodes by
/// shrinking (each no lower than its minimum)? If yes, distribute the
/// demand; otherwise `None` (fall back to PAA).
///
/// * `EvenWaterFill` (the paper's "shrink their sizes evenly"): repeatedly
///   take one node from the currently largest job, ties broken by id.
/// * `Proportional`: take from each job proportionally to its slack.
pub fn plan_shrinks(
    jobs: &[ShrinkInfo],
    need: u32,
    strategy: ShrinkStrategy,
) -> Option<Vec<(JobId, u32)>> {
    if need == 0 {
        return Some(Vec::new());
    }
    let supply: u64 = jobs
        .iter()
        .map(|j| u64::from(j.cur.saturating_sub(j.min)))
        .sum();
    if supply < u64::from(need) {
        return None;
    }
    match strategy {
        ShrinkStrategy::EvenWaterFill => {
            // Max-heap on (current size, Reverse(id)): take from the
            // largest; among equals, the smallest id.
            let mut heap: BinaryHeap<(u32, std::cmp::Reverse<JobId>)> = BinaryHeap::new();
            let mut take: std::collections::HashMap<JobId, (u32, u32)> =
                jobs.iter().map(|j| (j.id, (j.cur, j.min))).collect();
            for j in jobs {
                if j.cur > j.min {
                    heap.push((j.cur, std::cmp::Reverse(j.id)));
                }
            }
            let mut taken: std::collections::HashMap<JobId, u32> = Default::default();
            let mut remaining = need;
            while remaining > 0 {
                let (cur, std::cmp::Reverse(id)) = heap.pop().expect("supply checked");
                let entry = take.get_mut(&id).expect("known job");
                debug_assert_eq!(entry.0, cur);
                entry.0 -= 1;
                *taken.entry(id).or_default() += 1;
                remaining -= 1;
                if entry.0 > entry.1 {
                    heap.push((entry.0, std::cmp::Reverse(id)));
                }
            }
            let mut out: Vec<(JobId, u32)> = taken.into_iter().collect();
            out.sort_by_key(|(id, _)| *id);
            Some(out)
        }
        ShrinkStrategy::Proportional => {
            let mut out = Vec::new();
            let mut assigned = 0u32;
            // Largest-remainder apportionment over slack.
            let mut fracs: Vec<(JobId, u32, f64)> = jobs
                .iter()
                .filter(|j| j.cur > j.min)
                .map(|j| {
                    let slack = (j.cur - j.min) as f64;
                    let exact = need as f64 * slack / supply as f64;
                    (j.id, j.cur - j.min, exact)
                })
                .collect();
            let mut base: Vec<(JobId, u32)> = fracs
                .iter()
                .map(|(id, slack, exact)| (*id, (exact.floor() as u32).min(*slack)))
                .collect();
            assigned += base.iter().map(|(_, k)| *k).sum::<u32>();
            fracs.sort_by(|a, b| {
                (b.2 - b.2.floor())
                    .partial_cmp(&(a.2 - a.2.floor()))
                    .expect("finite")
                    .then_with(|| a.0.cmp(&b.0))
            });
            let mut i = 0;
            while assigned < need {
                let (id, slack, _) = fracs[i % fracs.len()];
                let b = base.iter_mut().find(|(j, _)| *j == id).expect("present");
                if b.1 < slack {
                    b.1 += 1;
                    assigned += 1;
                }
                i += 1;
            }
            for (id, k) in base {
                if k > 0 {
                    out.push((id, k));
                }
            }
            out.sort_by_key(|(id, _)| *id);
            Some(out)
        }
    }
}

/// CUP preparation plan for one advance notice (§III-B1): which running
/// jobs are *expected* to release enough nodes before the predicted
/// arrival, and which must be preempted (rigid right after their next
/// checkpoint; malleable shortly before the prediction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CupPlan {
    /// Victims to preempt, with the instant each preemption should fire.
    pub planned_preemptions: Vec<(JobId, SimTime)>,
    /// Nodes still uncovered even after planning (left to the arrival
    /// strategy).
    pub uncovered: u32,
}

impl CupPlan {
    /// Plan nothing (the non-CUP notice strategies).
    pub fn none() -> CupPlan {
        CupPlan {
            planned_preemptions: Vec::new(),
            uncovered: 0,
        }
    }
}

/// Candidate information for CUP planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CupCandidate {
    pub id: JobId,
    pub nodes: u32,
    /// Scheduler-estimated completion.
    pub expected_end: SimTime,
    /// Preemption overhead now (for ordering, as in PAA).
    pub overhead_ns: u64,
    /// When this job could be preempted "cheaply" before the prediction:
    /// the next checkpoint completion for rigid jobs (None = no cheap
    /// point), or `predicted − warning` for malleable jobs.
    pub cheap_preempt_at: Option<SimTime>,
    /// Capability/capacity class (capability-aware hooks drop capability
    /// candidates before CUP planning).
    pub class: JobClass,
}

/// Build a CUP plan. `shortfall` is the node count still needed after
/// reserving currently free nodes.
pub fn plan_cup(candidates: &[CupCandidate], shortfall: u32, predicted: SimTime) -> CupPlan {
    if shortfall == 0 {
        return CupPlan {
            planned_preemptions: Vec::new(),
            uncovered: 0,
        };
    }
    // 1. Jobs expected to finish on their own before the prediction cover
    //    the shortfall for free (their releases are collected as they
    //    happen, like CUA).
    let mut remaining = shortfall;
    let mut expected: Vec<&CupCandidate> = candidates
        .iter()
        .filter(|c| c.expected_end <= predicted)
        .collect();
    expected.sort_by_key(|c| (c.expected_end, c.id));
    let mut counted: std::collections::HashSet<JobId> = Default::default();
    for c in expected {
        if remaining == 0 {
            break;
        }
        remaining = remaining.saturating_sub(c.nodes);
        counted.insert(c.id);
    }
    if remaining == 0 {
        return CupPlan {
            planned_preemptions: Vec::new(),
            uncovered: 0,
        };
    }
    // 2. Plan cheap preemptions for the rest, cheapest overhead first.
    let mut preemptable: Vec<&CupCandidate> = candidates
        .iter()
        .filter(|c| !counted.contains(&c.id))
        .filter(|c| matches!(c.cheap_preempt_at, Some(t) if t <= predicted))
        .collect();
    preemptable.sort_by_key(|c| (c.overhead_ns, c.id));
    let mut planned = Vec::new();
    for c in preemptable {
        if remaining == 0 {
            break;
        }
        remaining = remaining.saturating_sub(c.nodes);
        planned.push((c.id, c.cheap_preempt_at.expect("filtered")));
    }
    CupPlan {
        planned_preemptions: planned,
        uncovered: remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn vi(id: u64, nodes: u32, overhead: u64) -> VictimInfo {
        VictimInfo {
            id: j(id),
            nodes,
            overhead_ns: overhead,
            started: t(id * 10),
            class: JobClass::Capacity,
        }
    }

    // ---------------- PAA victim selection ----------------

    #[test]
    fn selects_cheapest_victims_first() {
        let victims = select_victims(
            vec![vi(1, 10, 500), vi(2, 10, 100), vi(3, 10, 300)],
            15,
            VictimOrder::Overhead,
        )
        .expect("feasible");
        assert_eq!(
            victims.iter().map(|v| v.id).collect::<Vec<_>>(),
            vec![j(2), j(3)]
        );
    }

    #[test]
    fn returns_none_when_infeasible() {
        assert_eq!(
            select_victims(vec![vi(1, 4, 0), vi(2, 4, 0)], 9, VictimOrder::Overhead),
            None
        );
    }

    #[test]
    fn zero_need_selects_nothing() {
        assert_eq!(
            select_victims(vec![vi(1, 4, 0)], 0, VictimOrder::Overhead),
            Some(vec![])
        );
    }

    #[test]
    fn exact_fit_takes_exactly_enough() {
        let sel = select_victims(
            vec![vi(1, 5, 1), vi(2, 5, 2), vi(3, 5, 3)],
            10,
            VictimOrder::Overhead,
        )
        .unwrap();
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn size_ordering_ablation() {
        let sel = select_victims(
            vec![vi(1, 100, 1), vi(2, 5, 999)],
            5,
            VictimOrder::SizeAscending,
        )
        .unwrap();
        assert_eq!(sel[0].id, j(2));
    }

    #[test]
    fn newest_first_ordering_ablation() {
        // Started times are id*10, so highest id is newest.
        let sel = select_victims(
            vec![vi(1, 5, 1), vi(9, 5, 999)],
            5,
            VictimOrder::NewestFirst,
        )
        .unwrap();
        assert_eq!(sel[0].id, j(9));
    }

    #[test]
    fn overhead_ties_break_by_id() {
        let sel =
            select_victims(vec![vi(7, 5, 100), vi(3, 5, 100)], 5, VictimOrder::Overhead).unwrap();
        assert_eq!(sel[0].id, j(3));
    }

    // ---------------- SPAA shrink planning ----------------

    fn si(id: u64, cur: u32, min: u32) -> ShrinkInfo {
        ShrinkInfo {
            id: j(id),
            cur,
            min,
            class: JobClass::Capacity,
        }
    }

    #[test]
    fn waterfill_takes_from_largest_first() {
        let plan = plan_shrinks(
            &[si(1, 10, 2), si(2, 6, 2)],
            4,
            ShrinkStrategy::EvenWaterFill,
        )
        .expect("feasible");
        // Water level: take 4 from job 1 (10 → 6) before touching job 2.
        assert_eq!(plan, vec![(j(1), 4)]);
    }

    #[test]
    fn waterfill_levels_sizes() {
        let plan = plan_shrinks(
            &[si(1, 10, 1), si(2, 8, 1)],
            6,
            ShrinkStrategy::EvenWaterFill,
        )
        .expect("feasible");
        // Final sizes should be even-ish: 10,8 minus 6 → 6,6.
        assert_eq!(plan, vec![(j(1), 4), (j(2), 2)]);
    }

    #[test]
    fn waterfill_respects_minimums() {
        let plan = plan_shrinks(
            &[si(1, 5, 4), si(2, 5, 1)],
            5,
            ShrinkStrategy::EvenWaterFill,
        )
        .expect("feasible");
        let take1 = plan
            .iter()
            .find(|(id, _)| *id == j(1))
            .map(|(_, k)| *k)
            .unwrap_or(0);
        assert!(take1 <= 1, "job 1 can only give one node");
        assert_eq!(plan.iter().map(|(_, k)| k).sum::<u32>(), 5);
    }

    #[test]
    fn shrink_infeasible_when_supply_short() {
        assert_eq!(
            plan_shrinks(&[si(1, 5, 4)], 2, ShrinkStrategy::EvenWaterFill),
            None
        );
    }

    #[test]
    fn shrink_zero_need() {
        assert_eq!(
            plan_shrinks(&[si(1, 5, 1)], 0, ShrinkStrategy::EvenWaterFill),
            Some(vec![])
        );
    }

    #[test]
    fn proportional_distributes_by_slack() {
        let plan = plan_shrinks(
            &[si(1, 13, 1), si(2, 7, 1)],
            6,
            ShrinkStrategy::Proportional,
        )
        .expect("feasible");
        // Slack 12 vs 6 → 2:1 split of 6 → 4 and 2.
        assert_eq!(plan, vec![(j(1), 4), (j(2), 2)]);
    }

    #[test]
    fn proportional_total_is_exact() {
        let jobs = [si(1, 9, 2), si(2, 8, 3), si(3, 20, 4)];
        for need in 1..=28 {
            let plan = plan_shrinks(&jobs, need, ShrinkStrategy::Proportional).expect("feasible");
            assert_eq!(
                plan.iter().map(|(_, k)| k).sum::<u32>(),
                need,
                "need {need}"
            );
            for (id, k) in &plan {
                let job = jobs.iter().find(|s| s.id == *id).unwrap();
                assert!(*k <= job.cur - job.min);
            }
        }
    }

    #[test]
    fn waterfill_total_is_exact_property() {
        let jobs = [si(1, 9, 2), si(2, 8, 3), si(3, 20, 4)];
        for need in 1..=28 {
            let plan = plan_shrinks(&jobs, need, ShrinkStrategy::EvenWaterFill).expect("feasible");
            assert_eq!(
                plan.iter().map(|(_, k)| k).sum::<u32>(),
                need,
                "need {need}"
            );
        }
    }

    // ---------------- CUP planning ----------------

    fn cc(
        id: u64,
        nodes: u32,
        expected_end: u64,
        overhead: u64,
        cheap: Option<u64>,
    ) -> CupCandidate {
        CupCandidate {
            id: j(id),
            nodes,
            expected_end: t(expected_end),
            overhead_ns: overhead,
            cheap_preempt_at: cheap.map(t),
            class: JobClass::Capacity,
        }
    }

    #[test]
    fn cup_prefers_natural_completions() {
        // Job 1 ends before the prediction and covers everything: no
        // preemptions planned (the paper's Fig. 2, J1).
        let plan = plan_cup(&[cc(1, 10, 500, 100, Some(400))], 8, t(1_000));
        assert!(plan.planned_preemptions.is_empty());
        assert_eq!(plan.uncovered, 0);
    }

    #[test]
    fn cup_plans_checkpoint_preemption_for_shortfall() {
        // Job 1 ends too late but has a checkpoint boundary at t=400
        // (Fig. 2, J2: "preempted immediately after checkpointing").
        let plan = plan_cup(&[cc(1, 10, 5_000, 100, Some(400))], 8, t(1_000));
        assert_eq!(plan.planned_preemptions, vec![(j(1), t(400))]);
        assert_eq!(plan.uncovered, 0);
    }

    #[test]
    fn cup_skips_victims_without_cheap_point_before_prediction() {
        let plan = plan_cup(
            &[
                cc(1, 10, 5_000, 100, None),
                cc(2, 10, 5_000, 100, Some(2_000)),
            ],
            8,
            t(1_000),
        );
        assert!(plan.planned_preemptions.is_empty());
        assert_eq!(plan.uncovered, 8);
    }

    #[test]
    fn cup_orders_planned_victims_by_overhead() {
        let plan = plan_cup(
            &[
                cc(1, 5, 9_000, 900, Some(500)),
                cc(2, 5, 9_000, 100, Some(600)),
            ],
            8,
            t(1_000),
        );
        assert_eq!(
            plan.planned_preemptions,
            vec![(j(2), t(600)), (j(1), t(500))]
        );
    }

    #[test]
    fn cup_zero_shortfall_is_empty_plan() {
        let plan = plan_cup(&[cc(1, 10, 500, 0, Some(1))], 0, t(100));
        assert!(plan.planned_preemptions.is_empty());
        assert_eq!(plan.uncovered, 0);
    }

    #[test]
    fn cup_does_not_double_count_expected_completions() {
        // Job 1's natural completion is counted; it must not also be
        // planned for preemption.
        let plan = plan_cup(
            &[cc(1, 4, 500, 1, Some(100)), cc(2, 10, 5_000, 5, Some(700))],
            8,
            t(1_000),
        );
        assert_eq!(plan.planned_preemptions, vec![(j(2), t(700))]);
    }
}
