//! Arena-backed job storage: struct-of-arrays columns keyed by dense slot
//! indexes, an open-addressing id→slot map, and a free list recycling the
//! slots of retired jobs.
//!
//! This is what makes streaming replay O(active jobs) instead of O(trace):
//! the driver admits a job's spec+state when its first event is injected
//! and retires both the moment the job reaches a terminal status, so the
//! resident set tracks the live window of the workload, not its length.
//! It is also the per-event hot path — every dispatch resolves at least
//! one `JobId`, and the previous `HashMap<JobId, usize>` paid SipHash plus
//! control-byte probing for ids that are small, dense, and long-lived.
//! The private `JobIndex` replaces that with one multiply and a short
//! linear probe.

use crate::jobstate::JobState;
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_workload::{JobId, JobSpec};

/// Vacant-bucket sentinel. Job ids are validated against it on admit; no
/// real trace carries `u64::MAX` as an id.
const EMPTY: u64 = u64::MAX;

/// Fibonacci-hash open-addressing map from job id to arena slot.
///
/// Linear probing with backward-shift deletion: lookups are a handful of
/// sequential `u64` compares, and removals compact the probe chain in
/// place so no tombstones accumulate over a million admit/retire cycles.
#[derive(Debug, Clone)]
struct JobIndex {
    keys: Box<[u64]>,
    slots: Box<[u32]>,
    /// Buckets = `1 << log2`.
    log2: u32,
    len: usize,
}

impl JobIndex {
    fn with_log2(log2: u32) -> Self {
        let n = 1usize << log2;
        JobIndex {
            keys: vec![EMPTY; n].into_boxed_slice(),
            slots: vec![0; n].into_boxed_slice(),
            log2,
            len: 0,
        }
    }

    /// Home bucket: multiply by ⌊2⁶⁴/φ⌋ and keep the top `log2` bits, so
    /// consecutive ids scatter instead of clustering into one probe chain.
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - self.log2)) as usize
    }

    #[inline]
    fn mask(&self) -> usize {
        (1usize << self.log2) - 1
    }

    #[inline]
    fn get(&self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.slots[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, slot: u32) {
        assert_ne!(key, EMPTY, "job id collides with the vacancy sentinel");
        // Grow at 7/8 load; probes stay short and growth stays rare.
        if (self.len + 1) * 8 > (1usize << self.log2) * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                self.keys[i] = key;
                self.slots[i] = slot;
                self.len += 1;
                return;
            }
            assert_ne!(k, key, "job {key} admitted twice");
            i = (i + 1) & mask;
        }
    }

    fn remove(&mut self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = self.bucket(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return None;
            }
            if k == key {
                break;
            }
            i = (i + 1) & mask;
        }
        let slot = self.slots[i];
        // Backward-shift deletion: pull every displaced follower over the
        // hole so probe chains never cross a vacant bucket.
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let home = self.bucket(k);
            // `k` may fill the hole only if its home bucket is not on the
            // probe path strictly after the hole.
            if hole.wrapping_sub(home) & mask <= j.wrapping_sub(home) & mask {
                self.keys[hole] = k;
                self.slots[hole] = self.slots[j];
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(slot)
    }

    #[cold]
    fn grow(&mut self) {
        let bigger = JobIndex::with_log2(self.log2 + 1);
        let old = std::mem::replace(self, bigger);
        for (i, &k) in old.keys.iter().enumerate() {
            if k != EMPTY {
                self.insert(k, old.slots[i]);
            }
        }
    }
}

/// Arena of live jobs: parallel `specs`/`states` columns indexed by dense
/// slot, with retired slots recycled through a free list. Resident memory
/// is proportional to the **peak live** job count, never the trace length.
#[derive(Debug, Clone)]
pub struct JobTable {
    specs: Vec<JobSpec>,
    states: Vec<JobState>,
    /// Per-slot occupancy (needed because retired slots keep stale
    /// spec/state values until reused).
    occupied: Vec<bool>,
    free: Vec<u32>,
    index: JobIndex,
    n_live: usize,
    peak_live: usize,
    admitted: u64,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTable {
    pub fn new() -> Self {
        JobTable {
            specs: Vec::new(),
            states: Vec::new(),
            occupied: Vec::new(),
            free: Vec::new(),
            index: JobIndex::with_log2(6),
            n_live: 0,
            peak_live: 0,
            admitted: 0,
        }
    }

    /// Admit a job, creating its dynamic state. Returns the slot.
    ///
    /// # Panics
    ///
    /// Panics if the id is already live.
    pub fn admit(&mut self, spec: JobSpec) -> u32 {
        let id = spec.id;
        let slot = match self.free.pop() {
            Some(s) => {
                self.states[s as usize] = JobState::new(id, s as usize, &spec);
                self.specs[s as usize] = spec;
                self.occupied[s as usize] = true;
                s
            }
            None => {
                let s = self.specs.len() as u32;
                self.states.push(JobState::new(id, s as usize, &spec));
                self.specs.push(spec);
                self.occupied.push(true);
                s
            }
        };
        self.index.insert(id.0, slot);
        self.n_live += 1;
        self.peak_live = self.peak_live.max(self.n_live);
        self.admitted += 1;
        slot
    }

    /// Retire a live job, freeing its slot for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the id is not live.
    pub fn retire(&mut self, id: JobId) {
        let slot = self
            .index
            .remove(id.0)
            .unwrap_or_else(|| panic!("{id} retired but not live"));
        self.occupied[slot as usize] = false;
        self.free.push(slot);
        self.n_live -= 1;
    }

    #[inline]
    pub fn is_live(&self, id: JobId) -> bool {
        self.index.get(id.0).is_some()
    }

    #[inline]
    pub fn get_state(&self, id: JobId) -> Option<&JobState> {
        self.index.get(id.0).map(|s| &self.states[s as usize])
    }

    #[inline]
    pub fn spec(&self, id: JobId) -> &JobSpec {
        let slot = self
            .index
            .get(id.0)
            .unwrap_or_else(|| panic!("{id} is not live"));
        &self.specs[slot as usize]
    }

    /// State and spec of a live job in a single index probe — the
    /// scheduler's per-candidate paths pay one lookup instead of two.
    #[inline]
    pub fn state_spec(&self, id: JobId) -> (&JobState, &JobSpec) {
        let slot = self
            .index
            .get(id.0)
            .unwrap_or_else(|| panic!("{id} is not live")) as usize;
        (&self.states[slot], &self.specs[slot])
    }

    #[inline]
    pub fn state(&self, id: JobId) -> &JobState {
        let slot = self
            .index
            .get(id.0)
            .unwrap_or_else(|| panic!("{id} is not live"));
        &self.states[slot as usize]
    }

    #[inline]
    pub fn state_mut(&mut self, id: JobId) -> &mut JobState {
        let slot = self
            .index
            .get(id.0)
            .unwrap_or_else(|| panic!("{id} is not live"));
        &mut self.states[slot as usize]
    }

    /// Visit every live job (slot order — unordered from the caller's
    /// point of view; used by paranoid cross-checks).
    pub fn for_each_live(&self, mut f: impl FnMut(&JobSpec, &JobState)) {
        for (i, &occ) in self.occupied.iter().enumerate() {
            if occ {
                f(&self.specs[i], &self.states[i]);
            }
        }
    }

    /// Live jobs currently resident.
    pub fn live(&self) -> usize {
        self.n_live
    }

    /// High-water mark of co-resident jobs over the run.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total jobs admitted over the run.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Slots allocated (peak arena footprint; `>= peak_live` only until
    /// the free list is warm).
    pub fn capacity(&self) -> usize {
        self.specs.len()
    }

    /// Append the arena to a snapshot buffer. The slot layout and the free
    /// list's stack order are data, not incidentals: future admissions pop
    /// slots in free-list order, so an exact restore keeps every later
    /// `spec_idx` assignment identical to the uninterrupted run.
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        w.put_len(self.specs.len());
        for i in 0..self.specs.len() {
            w.put_bool(self.occupied[i]);
            if self.occupied[i] {
                self.specs[i].encode_snap(w);
                self.states[i].encode_snap(w);
            }
        }
        w.put_len(self.free.len());
        for &s in &self.free {
            w.put_u32(s);
        }
        w.put_len(self.peak_live);
        w.put_u64(self.admitted);
    }

    /// Decode an arena written by [`JobTable::encode_snap`], rebuilding the
    /// id→slot index from the occupied slots.
    ///
    /// # Errors
    ///
    /// Truncated input, free-list entries that are out of range / occupied /
    /// duplicated, a free list that does not cover every vacant slot,
    /// duplicate or sentinel job ids, states whose id or slot index
    /// disagree with their spec, or counters below the live population.
    /// Never panics.
    pub fn decode_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n_slots = r.get_len()?;
        if n_slots > r.remaining() {
            return Err(r.err(format!("implausible slot count {n_slots}")));
        }
        let mut specs = Vec::with_capacity(n_slots);
        let mut states = Vec::with_capacity(n_slots);
        let mut occupied = Vec::with_capacity(n_slots);
        let mut index = JobIndex::with_log2(6);
        let mut n_live = 0usize;
        for slot in 0..n_slots {
            let occ = r.get_bool()?;
            occupied.push(occ);
            if occ {
                let spec = JobSpec::decode_snap(r)?;
                let state = JobState::decode_snap(r)?;
                if state.id != spec.id {
                    return Err(r.err(format!(
                        "slot {slot}: state id {} disagrees with spec id {}",
                        state.id, spec.id
                    )));
                }
                if state.spec_idx != slot {
                    return Err(r.err(format!(
                        "slot {slot}: state carries spec_idx {}",
                        state.spec_idx
                    )));
                }
                if spec.id.0 == EMPTY {
                    return Err(r.err("job id collides with the vacancy sentinel"));
                }
                if index.get(spec.id.0).is_some() {
                    return Err(r.err(format!("duplicate live job {}", spec.id)));
                }
                index.insert(spec.id.0, slot as u32);
                n_live += 1;
                specs.push(spec);
                states.push(state);
            } else {
                // Placeholder values for a vacant slot (never read until the
                // slot is reused, exactly like a post-retire slot).
                let spec = placeholder_spec();
                states.push(JobState::new(spec.id, slot, &spec));
                specs.push(spec);
            }
        }
        let n_free = r.get_len()?;
        if n_free != n_slots - n_live {
            return Err(r.err(format!(
                "free list holds {n_free} slots but {} are vacant",
                n_slots - n_live
            )));
        }
        let mut free = Vec::with_capacity(n_free);
        let mut on_free_list = vec![false; n_slots];
        for _ in 0..n_free {
            let s = r.get_u32()?;
            let Some(seen) = on_free_list.get_mut(s as usize) else {
                return Err(r.err(format!("free slot {s} out of range")));
            };
            if occupied[s as usize] {
                return Err(r.err(format!("free list names occupied slot {s}")));
            }
            if std::mem::replace(seen, true) {
                return Err(r.err(format!("slot {s} on the free list twice")));
            }
            free.push(s);
        }
        let peak_live = r.get_len()?;
        if peak_live < n_live {
            return Err(r.err(format!("peak_live {peak_live} below live count {n_live}")));
        }
        let admitted = r.get_u64()?;
        if admitted < n_live as u64 {
            return Err(r.err(format!("admitted {admitted} below live count {n_live}")));
        }
        Ok(JobTable {
            specs,
            states,
            occupied,
            free,
            index,
            n_live,
            peak_live,
            admitted,
        })
    }
}

/// Filler for vacant arena slots on restore. The values are never read:
/// every lookup goes through the id index, which only knows occupied
/// slots, and a reused slot is overwritten wholesale by `admit`.
fn placeholder_spec() -> JobSpec {
    hws_workload::job::JobSpecBuilder::rigid(0).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hws_sim::SimDuration;
    use hws_workload::job::JobSpecBuilder;

    fn spec(id: u64) -> JobSpec {
        JobSpecBuilder::rigid(id)
            .size(4)
            .work(SimDuration::from_secs(60))
            .estimate(SimDuration::from_secs(120))
            .build()
    }

    #[test]
    fn admit_lookup_retire_roundtrip() {
        let mut t = JobTable::new();
        for id in 0..100u64 {
            t.admit(spec(id));
        }
        assert_eq!(t.live(), 100);
        for id in 0..100u64 {
            assert_eq!(t.spec(JobId(id)).id, JobId(id));
            assert_eq!(t.state(JobId(id)).id, JobId(id));
        }
        for id in 0..100u64 {
            t.retire(JobId(id));
            assert!(!t.is_live(JobId(id)));
        }
        assert_eq!(t.live(), 0);
        assert_eq!(t.peak_live(), 100);
        assert_eq!(t.admitted(), 100);
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = JobTable::new();
        // A sliding window of 8 live jobs over 10k admissions must not
        // grow the arena beyond the window (the O(active) property).
        for id in 0..10_000u64 {
            t.admit(spec(id));
            if id >= 8 {
                t.retire(JobId(id - 8));
            }
        }
        assert_eq!(t.live(), 8);
        assert_eq!(t.peak_live(), 9);
        assert!(t.capacity() <= 9, "arena grew past the live window");
        assert_eq!(t.admitted(), 10_000);
    }

    #[test]
    fn state_mutation_sticks() {
        let mut t = JobTable::new();
        t.admit(spec(7));
        t.state_mut(JobId(7)).epoch = 42;
        assert_eq!(t.state(JobId(7)).epoch, 42);
    }

    #[test]
    #[should_panic(expected = "admitted twice")]
    fn double_admit_panics() {
        let mut t = JobTable::new();
        t.admit(spec(1));
        t.admit(spec(1));
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn retire_unknown_panics() {
        let mut t = JobTable::new();
        t.retire(JobId(3));
    }

    #[test]
    fn backward_shift_deletion_keeps_probe_chains_intact() {
        // Adversarial interleavings of insert/remove across growth; every
        // surviving id must stay findable (a broken backward shift loses
        // entries whose home bucket precedes the hole).
        let mut t = JobTable::new();
        let mut alive: Vec<u64> = Vec::new();
        for round in 0..2_000u64 {
            t.admit(spec(round * 3));
            alive.push(round * 3);
            if round % 5 == 2 {
                let victim = alive.remove((round as usize * 7) % alive.len());
                t.retire(JobId(victim));
            }
            if round % 97 == 0 {
                for &id in &alive {
                    assert!(t.is_live(JobId(id)), "lost id {id} at round {round}");
                }
            }
        }
        for &id in &alive {
            assert!(t.is_live(JobId(id)));
        }
        assert_eq!(t.live(), alive.len());
    }

    #[test]
    fn snapshot_round_trip_preserves_slots_and_free_list_order() {
        let mut t = JobTable::new();
        for id in 0..12u64 {
            t.admit(spec(id));
        }
        // Retire out of order so the free-list stack order is nontrivial.
        for id in [5u64, 2, 9, 7] {
            t.retire(JobId(id));
        }
        t.state_mut(JobId(3)).epoch = 17;
        let mut w = SnapWriter::new();
        t.encode_snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut back = JobTable::decode_snap(&mut r).expect("decode");
        r.expect_end().expect("fully consumed");
        assert_eq!(back.live(), t.live());
        assert_eq!(back.peak_live(), t.peak_live());
        assert_eq!(back.admitted(), t.admitted());
        assert_eq!(back.capacity(), t.capacity());
        assert_eq!(back.state(JobId(3)).epoch, 17);
        for id in [5u64, 2, 9, 7] {
            assert!(!back.is_live(JobId(id)));
        }
        // The free list must pop in the original stack order, so admissions
        // after restore land in the same slots an uninterrupted run would
        // have used.
        let mut live = t.clone();
        for id in 100..104u64 {
            assert_eq!(back.admit(spec(id)), live.admit(spec(id)));
        }
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let mut t = JobTable::new();
        for id in 0..6u64 {
            t.admit(spec(id));
        }
        t.retire(JobId(1));
        let mut w = SnapWriter::new();
        t.encode_snap(&mut w);
        let bytes = w.into_bytes();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(JobTable::decode_snap(&mut r).is_err(), "cut at {cut}");
        }
        // Zeroing the admitted counter's low byte drops it below the live
        // count (6 admitted, 5 live → 0 < 5).
        let mut bad = bytes.clone();
        let tail = bad.len();
        bad[tail - 8] = 0;
        let mut r = SnapReader::new(&bad);
        assert!(JobTable::decode_snap(&mut r).is_err());
    }

    #[test]
    fn for_each_live_sees_exactly_the_live_set() {
        let mut t = JobTable::new();
        for id in 0..10u64 {
            t.admit(spec(id));
        }
        for id in [1u64, 4, 7] {
            t.retire(JobId(id));
        }
        let mut seen: Vec<u64> = Vec::new();
        t.for_each_live(|s, st| {
            assert_eq!(s.id, st.id);
            seen.push(s.id.0);
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2, 3, 5, 6, 8, 9]);
    }
}
