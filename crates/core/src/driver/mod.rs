//! The trace-replay simulator: CQSim-style event loop binding the workload,
//! the cluster, the queue policy, EASY backfilling, and the six hybrid
//! mechanisms together.
//!
//! ## Layer map (see DESIGN.md §1–§3 for the full architecture)
//!
//! * `events` — the [`Ev`] enum and the epoch-guarded dispatch loop.
//! * `alloc` — claims, the `offer_free_nodes` node-routing discipline,
//!   lease settling, and on-demand notice/arrival orchestration.
//! * `preempt` — preempt/shrink/expand/drain/checkpoint mechanics.
//! * `pass` — the FCFS + EASY scheduling pass, shadow computation, and
//!   backfill sizing.
//! * `core` — the slimmed [`SimCore`] state, estimates, run lifecycle —
//!   generic over [`hws_cluster::ClusterBackend`], so the same driver
//!   schedules a single [`hws_cluster::Cluster`] or a multi-shard
//!   [`hws_cluster::Federation`].
//! * [`hooks`] — the [`MechanismHooks`] extension point; the six paper
//!   mechanisms are `{N, CUA, CUP} × {PAA, SPAA}` compositions, and new
//!   mechanisms register via [`SimConfig::with_hooks`] without touching
//!   driver internals.

mod alloc;
mod core;
pub mod environment;
mod events;
pub mod hooks;
mod outage;
mod pass;
mod preempt;
mod service;
mod snapshot;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod tests_hooks;
mod waitq;

pub use self::core::SimCore;
pub use environment::{
    apply_knobs, config_for_knobs, Action, EnvSpec, Environment, EpisodeReport, Observation,
    TunableHooks,
};
pub use events::Ev;
pub use hooks::{
    standard_composition, AdmissionView, ArrivalPlan, ArrivalPolicy, ArrivalView, CapabilityAware,
    CollectUntilArrival, CollectUntilPredicted, Composed, HooksHandle, IgnoreNotices,
    MechanismHooks, NoticeDecision, NoticePolicy, NoticeView, PredictionView, PreemptAtArrival,
    ShrinkThenPreempt,
};
pub use service::{replay_submission_log, CancelOutcome, JobStatus, SchedulerService, SubmitError};

use crate::config::{Mechanism, SimConfig};
use crate::timeline::Timeline;
use hws_cluster::{Cluster, ClusterBackend, Federation};
use hws_metrics::{ClassBreakdown, Metrics, OutageReport, Recorder, ShardStat};
use hws_sim::{Engine, EngineStats};
use hws_workload::{JobSource, MaterializedSource, Trace, TraceConfig};

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    pub metrics: Metrics,
    pub engine: EngineStats,
    pub mechanism: Mechanism,
    /// Present when `SimConfig::record_timeline` was set.
    pub timeline: Option<Timeline>,
    /// Per-shard breakdown, present for federated runs only. Deliberately
    /// *outside* [`Metrics`] so the 1-shard-federation-vs-single-cluster
    /// metric comparison stays bitwise meaningful.
    pub shards: Option<Vec<ShardStat>>,
    /// Capability/capacity breakdown, present only when the trace carried
    /// capability-class jobs. Outside [`Metrics`] for the same reason as
    /// `shards`: zero-capability runs must compare bitwise against the
    /// two-class path.
    pub classes: Option<ClassBreakdown>,
    /// Outage accounting, present only when schedule events actually
    /// applied — outside [`Metrics`] (like `shards`/`classes`) so runs
    /// with no or empty schedules compare bitwise against outage-free
    /// builds.
    pub outages: Option<OutageReport>,
    /// High-water mark of co-resident jobs in the driver's arena — the
    /// O(active) memory claim, measured. For materialized replays this is
    /// still the *live window*, not the trace length: arrivals are
    /// injected lazily and retired jobs leave the arena.
    pub peak_resident_jobs: usize,
    /// Total jobs admitted over the run (equals the trace length).
    pub admitted_jobs: u64,
}

/// Public façade: configure once, replay traces.
pub struct Simulator;

impl Simulator {
    /// Replay `trace` under `cfg` and report the §IV-D metrics. Runs on a
    /// single cluster, or — when `cfg.federation` is set — on a
    /// federation of shards at the same total capacity.
    pub fn run_trace(cfg: &SimConfig, trace: &Trace) -> SimOutcome {
        match &cfg.federation {
            None => Self::run_core(
                SimCore::new(cfg.clone(), trace.system_size),
                MaterializedSource::new(trace),
            ),
            Some(fed) => {
                let backend = Federation::new(fed, trace.system_size, &trace.jobs);
                Self::run_core(
                    SimCore::with_backend(cfg.clone(), backend),
                    MaterializedSource::new(trace),
                )
            }
        }
    }

    /// Replay a streaming [`JobSource`] under `cfg`. This is the O(active
    /// jobs) entry point: arrival events are pulled from the source as
    /// virtual time advances, per-job records fold into the metrics
    /// accumulators as jobs retire, and resident memory tracks the live
    /// window of the workload rather than its length.
    ///
    /// Produces **bitwise-identical** metrics to [`Simulator::run_trace`]
    /// over the materialized equivalent of the same source.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.federation` is set: federated dispatch plans
    /// placement from the full job list up front, which contradicts
    /// streaming. Use [`Simulator::run_trace`] for federations.
    pub fn run_source<S: JobSource>(cfg: &SimConfig, source: S) -> SimOutcome {
        assert!(
            cfg.federation.is_none(),
            "streaming replay does not support federation (placement needs the full job list)"
        );
        let system_size = source.system_size();
        let mut core = SimCore::with_backend(cfg.clone(), Cluster::new(system_size));
        core.rec = Recorder::streaming(system_size, cfg.instant_threshold);
        Self::run_core(core, source)
    }

    /// The backend- and source-generic run loop behind
    /// [`Simulator::run_trace`] and [`Simulator::run_source`].
    ///
    /// ## The arrival pump
    ///
    /// Jobs are injected in source order, but only as far ahead as the
    /// event horizon requires: with `L = source.max_notice_lead()`, a job
    /// is injected once `submit - L <=` the queue's head timestamp (or the
    /// queue is empty). Any job still in the source therefore has every
    /// one of its arrival events strictly after the current head, so the
    /// arrival lane's monotonic watermark is never violated, and same-
    /// instant arrival/dynamic ties resolve exactly as the old pre-seeded
    /// loop did (arrival-lane sequence numbers sort below dynamic ones).
    fn run_core<B: ClusterBackend, S: JobSource>(core: SimCore<B>, mut source: S) -> SimOutcome {
        assert_eq!(
            core.cluster.total_nodes(),
            source.system_size(),
            "backend capacity must match the source's system size"
        );
        let schedule_notices = !core.cfg.mechanism.is_baseline() && core.hooks.uses_notices();
        let mechanism = core.cfg.mechanism;
        let lead = source.max_notice_lead();
        let mut engine = Engine::new(core);
        outage::seed_outages(&mut engine);
        let mut next = source.next_job();
        loop {
            // Pump: admit + schedule arrivals due before (or at) the next
            // event to dispatch.
            while let Some(spec) = next.take() {
                if let Some(head) = engine.queue.peek_time() {
                    if spec.submit.saturating_sub(lead) > head {
                        next = Some(spec);
                        break;
                    }
                }
                let id = spec.id;
                if let (Some(notice), true) = (&spec.notice, schedule_notices) {
                    engine
                        .queue
                        .schedule_arrival(notice.notice_time, Ev::Notice(id));
                }
                engine.queue.schedule_arrival(spec.submit, Ev::Submit(id));
                engine.sim.admit(spec);
                next = source.next_job();
            }
            if !engine.step() {
                debug_assert!(next.is_none(), "source outlived the event queue");
                break;
            }
        }
        let stats = engine.stats();
        let core = engine.into_sim();
        let metrics = Metrics::compute(&core.rec, core.cfg.instant_threshold);
        SimOutcome {
            metrics,
            engine: stats,
            mechanism,
            shards: core.shard_report(),
            // O(1) guard: two-class runs never pay for the breakdown.
            classes: core
                .rec
                .saw_capability()
                .then(|| ClassBreakdown::compute(&core.rec)),
            outages: core.outage_report(),
            peak_resident_jobs: core.jobs().peak_live(),
            admitted_jobs: core.jobs().admitted(),
            timeline: core.cfg.record_timeline.then_some(core.timeline),
        }
    }

    /// Generate one trace per seed and replay each under `cfg`, fanning the
    /// runs across CPU cores with scoped threads. Returns one outcome per
    /// seed, in seed order.
    ///
    /// Every run is an independent simulation over its own trace, so the
    /// per-seed metrics are **bitwise identical** to sequential
    /// [`Simulator::run_trace`] calls (wall-clock decision latencies are the
    /// one legitimate exception; disable `measure_decisions` for strict
    /// equality). The figure/table binaries in `hws-bench` route through
    /// this entry point.
    pub fn run_sweep(cfg: &SimConfig, trace_cfg: &TraceConfig, seeds: &[u64]) -> Vec<SimOutcome> {
        Simulator::run_sweep_with(cfg, seeds, |seed| trace_cfg.generate(seed))
    }

    /// Like [`Simulator::run_sweep`], but over an arbitrary trace factory:
    /// `make_trace(seed)` is called once per seed from the worker threads.
    /// This is how trace sources other than the synthetic generator — SWF
    /// replays, recorded CSV traces — fan across cores with the same
    /// bitwise-deterministic per-seed guarantee (the factory must be a pure
    /// function of the seed).
    pub fn run_sweep_with<F>(cfg: &SimConfig, seeds: &[u64], make_trace: F) -> Vec<SimOutcome>
    where
        F: Fn(u64) -> Trace + Sync,
    {
        hws_sim::par_map(seeds.len(), |i| {
            let trace = make_trace(seeds[i]);
            Simulator::run_trace(cfg, &trace)
        })
    }
}
