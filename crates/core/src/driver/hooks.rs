//! The mechanism extension point: [`MechanismHooks`] and the paper's six
//! mechanisms expressed as N/CUA/CUP × PAA/SPAA policy compositions.
//!
//! The driver owns *when* decisions happen (notice, predicted arrival,
//! actual arrival) and *how* plans execute against the cluster; hooks own
//! *what* the plan is. Hooks are pure planners over snapshot views — they
//! never touch the cluster directly — which keeps every mechanism
//! deterministic, benchmarkable in isolation, and registrable without
//! modifying driver internals (see `examples/custom_policy.rs` for a
//! seventh mechanism).

use crate::config::{Mechanism, NoticeStrategy, ShrinkStrategy, SimConfig, VictimOrder};
use crate::mechanism::{
    plan_cup, plan_shrinks, select_victims, CupCandidate, CupPlan, ShrinkInfo, VictimInfo,
};
use hws_sim::SimTime;
use hws_workload::JobId;
use std::fmt;
use std::sync::Arc;

/// Snapshot handed to [`MechanismHooks::on_notice`]: an advance notice for
/// on-demand job `od` just landed.
#[derive(Debug, Clone, Copy)]
pub struct NoticeView {
    pub od: JobId,
    /// Nodes the on-demand job will need at arrival.
    pub need: u32,
    /// Free nodes available right now.
    pub free: u32,
    pub notice_time: SimTime,
    pub predicted_arrival: SimTime,
    pub now: SimTime,
}

/// What to do with an advance notice.
#[derive(Debug, Clone, Copy)]
pub struct NoticeDecision {
    /// Reserve free nodes now and keep collecting released nodes until the
    /// job arrives (CUA/CUP behavior). `false` ignores the notice entirely
    /// (the N strategies).
    pub collect: bool,
}

/// Snapshot handed to [`MechanismHooks::plan_for_prediction`] when the
/// notice-time reservation fell short: every running non-on-demand job, with
/// its expected completion and the cheapest instant it could be preempted.
#[derive(Debug, Clone, Copy)]
pub struct PredictionView<'a> {
    pub od: JobId,
    /// Nodes still uncovered after reserving the free pool.
    pub shortfall: u32,
    pub predicted: SimTime,
    pub now: SimTime,
    /// Federation shard the job is placed on (`None` on a single
    /// cluster). `candidates` is already restricted to this shard, so
    /// hooks stay backend-generic; shard-aware mechanisms may still
    /// specialize on it.
    pub shard: Option<usize>,
    pub candidates: &'a [CupCandidate],
}

/// Snapshot handed to [`MechanismHooks::on_arrival`] when an on-demand job
/// arrived and free + reserved + raided nodes still fall short.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalView<'a> {
    pub od: JobId,
    /// Nodes still needed beyond everything already secured.
    pub need_extra: u32,
    pub now: SimTime,
    /// Federation shard the job is arriving on (`None` on a single
    /// cluster). The snapshots below are already restricted to it.
    pub shard: Option<usize>,
    /// Running malleable jobs and how far each can shrink (already capped to
    /// the nodes that would actually reach the arriving job).
    pub shrinkable: &'a [ShrinkInfo],
    /// Running rigid/malleable jobs eligible as preemption victims, with the
    /// node count a preemption would actually yield.
    pub victims: &'a [VictimInfo],
}

/// How to source the missing nodes at arrival. The driver executes shrinks
/// first, then preemptions, and records the matching leases (§III-B3).
/// Return an empty plan to let the job wait at the front of the queue.
#[derive(Debug, Clone, Default)]
pub struct ArrivalPlan {
    /// `(job, nodes_to_release)` shrink orders for running malleable jobs.
    pub shrinks: Vec<(JobId, u32)>,
    /// Victims to preempt, in order.
    pub preempt: Vec<VictimInfo>,
}

impl ArrivalPlan {
    /// No sourcing possible: the on-demand job waits at the queue front.
    pub fn wait() -> Self {
        ArrivalPlan::default()
    }
}

/// A scheduling mechanism, as seen by the driver. Implementations must be
/// deterministic pure functions of their views — the multi-seed sweep runs
/// one simulation per thread against a shared hooks instance.
pub trait MechanismHooks: fmt::Debug + Send + Sync {
    /// Display name (used in outcome reports and `HooksHandle`'s `Debug`).
    fn name(&self) -> &str;

    /// Whether advance notices are acted on at all. When `false`, `Notice`
    /// events are neither scheduled nor handled (the N strategies).
    fn uses_notices(&self) -> bool {
        true
    }

    /// An advance notice landed; decide whether to start collecting nodes.
    fn on_notice(&self, view: &NoticeView) -> NoticeDecision {
        let _ = view;
        NoticeDecision {
            collect: self.uses_notices(),
        }
    }

    /// Whether [`MechanismHooks::plan_for_prediction`] does anything.
    /// Building a [`PredictionView`] costs O(running jobs) of completion
    /// and overhead estimation, so the driver skips it entirely when this
    /// returns `false` (keeping CUA decision latency free of CUP-only
    /// work). Defaults to `true` so custom hooks that override
    /// `plan_for_prediction` are consulted without further ceremony.
    fn plans_predictions(&self) -> bool {
        true
    }

    /// The notice-time reservation fell short: plan preemptions so the full
    /// allocation is ready at the predicted arrival (CUP). The default plans
    /// nothing (CUA keeps collecting passively).
    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        let _ = view;
        CupPlan::none()
    }

    /// The job actually arrived and nodes are still missing: decide which
    /// running jobs to shrink and/or preempt.
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan;
}

/// Clonable, debuggable handle carried by [`SimConfig`].
#[derive(Clone)]
pub struct HooksHandle(pub Arc<dyn MechanismHooks>);

impl HooksHandle {
    pub fn new<H: MechanismHooks + 'static>(hooks: H) -> Self {
        HooksHandle(Arc::new(hooks))
    }

    /// The registered mechanism's display name.
    pub fn name(&self) -> &str {
        self.0.name()
    }
}

impl fmt::Debug for HooksHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("HooksHandle").field(&self.0.name()).finish()
    }
}

// ---------------------------------------------------------------------------
// The paper's notice-phase policies (§III-B1)
// ---------------------------------------------------------------------------

/// One of the three advance-notice strategies, as a composable unit.
/// `plans_predictions` defaults to `true` (consult `plan_for_prediction`);
/// policies that provably never plan opt out to spare the driver the
/// candidate-snapshot cost.
pub trait NoticePolicy: fmt::Debug + Send + Sync {
    fn uses_notices(&self) -> bool {
        true
    }

    fn plans_predictions(&self) -> bool {
        true
    }

    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        let _ = view;
        CupPlan::none()
    }
}

/// "Do nothing (N)": notices are ignored, everything happens at arrival.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoreNotices;

impl NoticePolicy for IgnoreNotices {
    fn uses_notices(&self) -> bool {
        false
    }

    fn plans_predictions(&self) -> bool {
        false
    }
}

/// "Collect-until-actual-arrival (CUA)": reserve free nodes at notice time,
/// then passively collect releases until the job arrives.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectUntilArrival;

impl NoticePolicy for CollectUntilArrival {
    fn plans_predictions(&self) -> bool {
        false
    }
}

/// "Collect-until-predicted-arrival (CUP)": CUA plus planned preemptions —
/// rigid victims right after their next checkpoint, malleable victims just
/// before the prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectUntilPredicted;

impl NoticePolicy for CollectUntilPredicted {
    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        plan_cup(view.candidates, view.shortfall, view.predicted)
    }
}

// ---------------------------------------------------------------------------
// The paper's arrival-phase policies (§III-B2)
// ---------------------------------------------------------------------------

/// One of the arrival strategies, as a composable unit.
pub trait ArrivalPolicy: fmt::Debug + Send + Sync {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan;
}

/// "Preempt-at-actual-arrival (PAA)": preempt running jobs in ascending
/// preemption-overhead order (or an ablation ordering) until satisfied.
#[derive(Debug, Clone, Copy)]
pub struct PreemptAtArrival {
    pub order: VictimOrder,
}

impl ArrivalPolicy for PreemptAtArrival {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        match select_victims(view.victims.to_vec(), view.need_extra, self.order) {
            Some(preempt) => ArrivalPlan {
                shrinks: Vec::new(),
                preempt,
            },
            None => ArrivalPlan::wait(),
        }
    }
}

/// "Shrink-preempt-at-actual-arrival (SPAA)": if shrinking every running
/// malleable job to its minimum can supply the demand, shrink evenly;
/// otherwise fall back to PAA.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkThenPreempt {
    pub strategy: ShrinkStrategy,
    pub fallback: PreemptAtArrival,
}

impl ArrivalPolicy for ShrinkThenPreempt {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        if let Some(shrinks) = plan_shrinks(view.shrinkable, view.need_extra, self.strategy) {
            return ArrivalPlan {
                shrinks,
                preempt: Vec::new(),
            };
        }
        self.fallback.on_arrival(view)
    }
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

/// A full mechanism from one notice policy and one arrival policy. The six
/// paper mechanisms are exactly the `{N, CUA, CUP} × {PAA, SPAA}` grid of
/// [`IgnoreNotices`]/[`CollectUntilArrival`]/[`CollectUntilPredicted`] with
/// [`PreemptAtArrival`]/[`ShrinkThenPreempt`].
#[derive(Debug)]
pub struct Composed<N, A> {
    name: String,
    pub notice: N,
    pub arrival: A,
}

impl<N: NoticePolicy, A: ArrivalPolicy> Composed<N, A> {
    pub fn new(name: impl Into<String>, notice: N, arrival: A) -> Self {
        Composed {
            name: name.into(),
            notice,
            arrival,
        }
    }
}

impl<N: NoticePolicy, A: ArrivalPolicy> MechanismHooks for Composed<N, A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn uses_notices(&self) -> bool {
        self.notice.uses_notices()
    }

    fn plans_predictions(&self) -> bool {
        self.notice.plans_predictions()
    }

    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        self.notice.plan_for_prediction(view)
    }

    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        self.arrival.on_arrival(view)
    }
}

/// Build the hooks for a configuration: an explicit [`SimConfig::hooks`]
/// wins; otherwise the mechanism enum maps onto the standard compositions.
pub(crate) fn hooks_for(cfg: &SimConfig) -> Arc<dyn MechanismHooks> {
    if let Some(handle) = &cfg.hooks {
        return Arc::clone(&handle.0);
    }
    let paa = PreemptAtArrival {
        order: cfg.victim_order,
    };
    let spaa = ShrinkThenPreempt {
        strategy: cfg.shrink_strategy,
        fallback: paa,
    };
    let name = cfg.mechanism.name();
    match cfg.mechanism {
        // Baseline never consults hooks (`SimCore::hybrid` gates them), but
        // the slot is non-optional; park an inert composition there.
        Mechanism::Baseline => Arc::new(Composed::new(name, IgnoreNotices, paa)),
        Mechanism::Hybrid { notice, arrival } => {
            use crate::config::ArrivalStrategy as A;
            match (notice, arrival) {
                (NoticeStrategy::None, A::Paa) => Arc::new(Composed::new(name, IgnoreNotices, paa)),
                (NoticeStrategy::None, A::Spaa) => {
                    Arc::new(Composed::new(name, IgnoreNotices, spaa))
                }
                (NoticeStrategy::Cua, A::Paa) => {
                    Arc::new(Composed::new(name, CollectUntilArrival, paa))
                }
                (NoticeStrategy::Cua, A::Spaa) => {
                    Arc::new(Composed::new(name, CollectUntilArrival, spaa))
                }
                (NoticeStrategy::Cup, A::Paa) => {
                    Arc::new(Composed::new(name, CollectUntilPredicted, paa))
                }
                (NoticeStrategy::Cup, A::Spaa) => {
                    Arc::new(Composed::new(name, CollectUntilPredicted, spaa))
                }
            }
        }
        Mechanism::Custom => {
            panic!("Mechanism::Custom requires SimConfig::with_hooks(..)")
        }
    }
}
