//! Knob-vector edge sweep + leaderboard codec property tests.
//!
//! Mirrors the `import_survives_config_edge_values` style of
//! `crates/workload/src/swf.rs`: drive every knob axis to its extreme
//! values — admission throttle `none/0/1/7`, checkpoint multiplier at
//! both clamp bounds, every backfill level, every placement policy over
//! a federated base — materialise the candidate, and run it to
//! completion. The assertion is the run *returning*: no panics, no
//! wedged simulations, and every job accounted for. Invalid vectors
//! must be rejected by `validate` (one regression per rejection arm),
//! and randomly-assembled leaderboards must survive the text codec
//! round trip exactly.

use hws_cluster::FederationConfig;
use hws_core::{config_for_knobs, Mechanism, SimConfig, Simulator};
use hws_search::{Leaderboard, LeaderboardRow};
use hws_workload::{
    BackfillLevel, KnobVector, PlacementChoice, Trace, TraceConfig, CKPT_MULT_MAX, CKPT_MULT_MIN,
};
use proptest::prelude::*;

const THROTTLES: [Option<u32>; 4] = [None, Some(0), Some(1), Some(7)];
const CKPT_MULTS: [f64; 3] = [CKPT_MULT_MIN, 1.0, CKPT_MULT_MAX];
const BACKFILLS: [Option<BackfillLevel>; 4] = [
    None,
    Some(BackfillLevel::Off),
    Some(BackfillLevel::Conservative),
    Some(BackfillLevel::Aggressive),
];
const PLACEMENTS: [Option<PlacementChoice>; 4] = [
    None,
    Some(PlacementChoice::FirstFit),
    Some(PlacementChoice::LeastLoaded),
    Some(PlacementChoice::ClassAffinity),
];

fn edge_trace(seed: u64) -> Trace {
    let mut trace = TraceConfig::tiny().generate(seed);
    trace.tag_capability(0.25);
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Any point on the edge lattice materialises and simulates to
    // completion — the whole sweep is panic- and deadlock-free.
    #[test]
    fn every_edge_knob_vector_simulates_to_completion(
        mech_idx in 0..6usize,
        throttle_idx in 0..THROTTLES.len(),
        ckpt_idx in 0..CKPT_MULTS.len(),
        backfill_idx in 0..BACKFILLS.len(),
        placement_idx in 0..PLACEMENTS.len(),
        seed in 0..16u64,
    ) {
        let knobs = KnobVector {
            admit_throttle: THROTTLES[throttle_idx],
            backfill: BACKFILLS[backfill_idx],
            ckpt_mult: CKPT_MULTS[ckpt_idx],
            placement: PLACEMENTS[placement_idx],
        };
        prop_assert_eq!(knobs.validate(), Ok(()));
        // Text codec is total over valid vectors.
        prop_assert_eq!(&KnobVector::from_text(&knobs.to_text()).unwrap(), &knobs);

        let trace = edge_trace(seed);
        let mut base = SimConfig::baseline()
            .federated(FederationConfig::even_split(2, trace.system_size));
        base.measure_decisions = false;
        let cfg = config_for_knobs(&base, Mechanism::ALL_SIX[mech_idx], &knobs)
            .expect("edge vector must materialise over a federated base");
        let out = Simulator::run_trace(&cfg, &trace);

        // Returning at all is the headline assertion; on top of it,
        // conservation: every admitted job either completed, was killed,
        // or was starved by a zero throttle — never lost.
        prop_assert_eq!(out.admitted_jobs, trace.jobs.len() as u64);
        let finished = (out.metrics.completed_jobs + out.metrics.killed_jobs) as u64;
        prop_assert!(finished <= out.admitted_jobs);
        if knobs.admit_throttle != Some(0) {
            prop_assert_eq!(finished, out.admitted_jobs);
        }
    }

    // Randomly-assembled leaderboards survive the codec exactly.
    #[test]
    fn leaderboard_codec_round_trips_arbitrary_rows(
        n_rows in 0..5usize,
        salt in 0..1024u64,
    ) {
        const SCORES: [f64; 6] = [-123.456, -1.0, 0.0, 0.25, 7e-3, 1e9];
        const MECHS: [&str; 3] = ["N&PAA", "CUA&SPAA", "FCFS/EASY"];
        let rows = (0..n_rows)
            .map(|i| {
                let mix = salt.wrapping_mul(31).wrapping_add(i as u64);
                LeaderboardRow {
                    rank: i + 1,
                    mechanism: MECHS[(mix % 3) as usize].to_string(),
                    knobs: KnobVector {
                        admit_throttle: THROTTLES[(mix % 4) as usize],
                        backfill: BACKFILLS[(mix / 4 % 4) as usize],
                        ckpt_mult: CKPT_MULTS[(mix / 16 % 3) as usize],
                        placement: PLACEMENTS[(mix / 48 % 4) as usize],
                    },
                    seeds: (mix % 7) as usize,
                    mean_reward: SCORES[(mix % 6) as usize],
                    fingerprint: mix.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    scores: (0..(mix % 4))
                        .map(|k| SCORES[((mix + k) % 6) as usize])
                        .collect(),
                }
            })
            .collect();
        let lb = Leaderboard {
            search: "grid".to_string(),
            reward: "neg-bounded-slowdown".to_string(),
            rows,
        };
        let text = lb.to_text();
        let back = Leaderboard::from_text(&text).unwrap();
        prop_assert_eq!(&back, &lb);
        prop_assert_eq!(back.to_text(), text);
    }
}

#[test]
fn placement_knob_requires_a_federated_base() {
    let knobs = KnobVector {
        placement: Some(PlacementChoice::LeastLoaded),
        ..KnobVector::identity()
    };
    let err = config_for_knobs(&SimConfig::baseline(), Mechanism::N_PAA, &knobs).unwrap_err();
    assert!(err.contains("federated"), "{err}");
}

// One regression per `KnobVector::validate` rejection arm, checked at
// this level so a future refactor of the codec cannot silently drop an
// arm from the materialisation path.
#[test]
fn each_validate_rejection_arm_blocks_materialisation() {
    let base = SimConfig::baseline();
    let cases: [(f64, &str); 4] = [
        (f64::NAN, "NaN"),
        (f64::INFINITY, "not finite"),
        (CKPT_MULT_MIN / 2.0, "below minimum"),
        (CKPT_MULT_MAX * 2.0, "above maximum"),
    ];
    for (mult, want) in cases {
        let knobs = KnobVector {
            ckpt_mult: mult,
            ..KnobVector::identity()
        };
        let err = config_for_knobs(&base, Mechanism::N_PAA, &knobs).unwrap_err();
        assert!(err.contains(want), "ckpt_mult {mult}: {err}");
    }
}
