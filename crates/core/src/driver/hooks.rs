//! The mechanism extension point: [`MechanismHooks`] and the paper's six
//! mechanisms expressed as N/CUA/CUP × PAA/SPAA policy compositions.
//!
//! The driver owns *when* decisions happen (notice, predicted arrival,
//! actual arrival) and *how* plans execute against the cluster; hooks own
//! *what* the plan is. Hooks are pure planners over snapshot views — they
//! never touch the cluster directly — which keeps every mechanism
//! deterministic, benchmarkable in isolation, and registrable without
//! modifying driver internals (see `examples/custom_policy.rs` for a
//! seventh mechanism).

use crate::config::{Mechanism, NoticeStrategy, ShrinkStrategy, SimConfig, VictimOrder};
use crate::mechanism::{
    plan_cup, plan_shrinks, select_victims, CupCandidate, CupPlan, ShrinkInfo, VictimInfo,
};
use hws_sim::SimTime;
use hws_workload::{JobClass, JobId, JobKind};
use std::fmt;
use std::sync::Arc;

/// Snapshot handed to [`MechanismHooks::on_notice`]: an advance notice for
/// on-demand job `od` just landed.
#[derive(Debug, Clone, Copy)]
pub struct NoticeView {
    pub od: JobId,
    /// Nodes the on-demand job will need at arrival.
    pub need: u32,
    /// Free nodes available right now.
    pub free: u32,
    pub notice_time: SimTime,
    pub predicted_arrival: SimTime,
    pub now: SimTime,
}

/// What to do with an advance notice.
#[derive(Debug, Clone, Copy)]
pub struct NoticeDecision {
    /// Reserve free nodes now and keep collecting released nodes until the
    /// job arrives (CUA/CUP behavior). `false` ignores the notice entirely
    /// (the N strategies).
    pub collect: bool,
}

/// Snapshot handed to [`MechanismHooks::plan_for_prediction`] when the
/// notice-time reservation fell short: every running non-on-demand job, with
/// its expected completion and the cheapest instant it could be preempted.
#[derive(Debug, Clone, Copy)]
pub struct PredictionView<'a> {
    pub od: JobId,
    /// Nodes still uncovered after reserving the free pool.
    pub shortfall: u32,
    pub predicted: SimTime,
    pub now: SimTime,
    /// Federation shard the job is placed on (`None` on a single
    /// cluster). `candidates` is already restricted to this shard, so
    /// hooks stay backend-generic; shard-aware mechanisms may still
    /// specialize on it.
    pub shard: Option<usize>,
    pub candidates: &'a [CupCandidate],
}

/// Snapshot handed to [`MechanismHooks::on_arrival`] when an on-demand job
/// arrived and free + reserved + raided nodes still fall short.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalView<'a> {
    pub od: JobId,
    /// Nodes still needed beyond everything already secured.
    pub need_extra: u32,
    pub now: SimTime,
    /// Federation shard the job is arriving on (`None` on a single
    /// cluster). The snapshots below are already restricted to it.
    pub shard: Option<usize>,
    /// Running malleable jobs and how far each can shrink (already capped to
    /// the nodes that would actually reach the arriving job).
    pub shrinkable: &'a [ShrinkInfo],
    /// Running rigid/malleable jobs eligible as preemption victims, with the
    /// node count a preemption would actually yield.
    pub victims: &'a [VictimInfo],
}

/// Snapshot handed to [`MechanismHooks::admit`] before the scheduling pass
/// starts (or backfills) a waiting job: the per-class admission knob of
/// capability/capacity co-scheduling. The driver maintains
/// `running_capability` incrementally, so consulting the hook costs O(1)
/// per start attempt.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionView {
    pub job: JobId,
    pub kind: JobKind,
    /// Capability/capacity class of the job asking to start.
    pub class: JobClass,
    /// Requested size (the maximum, for malleable jobs).
    pub size: u32,
    /// Capability-class jobs currently running.
    pub running_capability: u32,
    pub now: SimTime,
}

/// How to source the missing nodes at arrival. The driver executes shrinks
/// first, then preemptions, and records the matching leases (§III-B3).
/// Return an empty plan to let the job wait at the front of the queue.
#[derive(Debug, Clone, Default)]
pub struct ArrivalPlan {
    /// `(job, nodes_to_release)` shrink orders for running malleable jobs.
    pub shrinks: Vec<(JobId, u32)>,
    /// Victims to preempt, in order.
    pub preempt: Vec<VictimInfo>,
}

impl ArrivalPlan {
    /// No sourcing possible: the on-demand job waits at the queue front.
    pub fn wait() -> Self {
        ArrivalPlan::default()
    }
}

/// A scheduling mechanism, as seen by the driver. Implementations must be
/// deterministic pure functions of their views — the multi-seed sweep runs
/// one simulation per thread against a shared hooks instance.
///
/// Only [`MechanismHooks::on_arrival`] is required; every other decision
/// point has a neutral default, so a minimal mechanism is a few lines.
/// Registering it through [`SimConfig::with_hooks`] needs no driver
/// changes:
///
/// ```
/// use hws_core::{ArrivalPlan, ArrivalView, MechanismHooks, SimConfig, Simulator};
/// use hws_workload::TraceConfig;
///
/// /// Never preempt anyone: arriving on-demand jobs just wait at the
/// /// front of the queue until enough nodes free up on their own.
/// #[derive(Debug)]
/// struct Pacifist;
///
/// impl MechanismHooks for Pacifist {
///     fn name(&self) -> &str {
///         "pacifist"
///     }
///
///     fn on_arrival(&self, _view: &ArrivalView<'_>) -> ArrivalPlan {
///         ArrivalPlan::wait()
///     }
/// }
///
/// let trace = TraceConfig::tiny().generate(1);
/// let out = Simulator::run_trace(&SimConfig::with_hooks(Pacifist), &trace);
/// assert!(out.metrics.completed_jobs > 0);
/// ```
pub trait MechanismHooks: fmt::Debug + Send + Sync {
    /// Display name (used in outcome reports and `HooksHandle`'s `Debug`).
    fn name(&self) -> &str;

    /// Whether advance notices are acted on at all. When `false`, `Notice`
    /// events are neither scheduled nor handled (the N strategies).
    fn uses_notices(&self) -> bool {
        true
    }

    /// An advance notice landed; decide whether to start collecting nodes.
    fn on_notice(&self, view: &NoticeView) -> NoticeDecision {
        let _ = view;
        NoticeDecision {
            collect: self.uses_notices(),
        }
    }

    /// Whether [`MechanismHooks::plan_for_prediction`] does anything.
    /// Building a [`PredictionView`] costs O(running jobs) of completion
    /// and overhead estimation, so the driver skips it entirely when this
    /// returns `false` (keeping CUA decision latency free of CUP-only
    /// work). Defaults to `true` so custom hooks that override
    /// `plan_for_prediction` are consulted without further ceremony.
    fn plans_predictions(&self) -> bool {
        true
    }

    /// The notice-time reservation fell short: plan preemptions so the full
    /// allocation is ready at the predicted arrival (CUP). The default plans
    /// nothing (CUA keeps collecting passively).
    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        let _ = view;
        CupPlan::none()
    }

    /// The job actually arrived and nodes are still missing: decide which
    /// running jobs to shrink and/or preempt.
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan;

    /// Per-class admission throttle, consulted by the scheduling pass
    /// before it starts (or backfills) a waiting job. Returning `false`
    /// leaves the job queued: an in-order job blocks as the pass head
    /// (EASY backfills behind it), a backfill candidate is skipped. The
    /// default admits everything, which reproduces the paper's two-class
    /// behavior exactly; capability-aware hooks use it to cap concurrent
    /// capability campaigns (see [`CapabilityAware`]). Not consulted by
    /// the baseline, which never consults hooks at all.
    fn admit(&self, view: &AdmissionView) -> bool {
        let _ = view;
        true
    }
}

/// Clonable, debuggable handle carried by [`SimConfig`].
#[derive(Clone)]
pub struct HooksHandle(pub Arc<dyn MechanismHooks>);

impl HooksHandle {
    pub fn new<H: MechanismHooks + 'static>(hooks: H) -> Self {
        HooksHandle(Arc::new(hooks))
    }

    /// The registered mechanism's display name.
    pub fn name(&self) -> &str {
        self.0.name()
    }
}

impl fmt::Debug for HooksHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("HooksHandle").field(&self.0.name()).finish()
    }
}

// ---------------------------------------------------------------------------
// The paper's notice-phase policies (§III-B1)
// ---------------------------------------------------------------------------

/// One of the three advance-notice strategies, as a composable unit.
/// `plans_predictions` defaults to `true` (consult `plan_for_prediction`);
/// policies that provably never plan opt out to spare the driver the
/// candidate-snapshot cost.
pub trait NoticePolicy: fmt::Debug + Send + Sync {
    fn uses_notices(&self) -> bool {
        true
    }

    fn plans_predictions(&self) -> bool {
        true
    }

    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        let _ = view;
        CupPlan::none()
    }
}

/// "Do nothing (N)": notices are ignored, everything happens at arrival.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoreNotices;

impl NoticePolicy for IgnoreNotices {
    fn uses_notices(&self) -> bool {
        false
    }

    fn plans_predictions(&self) -> bool {
        false
    }
}

/// "Collect-until-actual-arrival (CUA)": reserve free nodes at notice time,
/// then passively collect releases until the job arrives.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectUntilArrival;

impl NoticePolicy for CollectUntilArrival {
    fn plans_predictions(&self) -> bool {
        false
    }
}

/// "Collect-until-predicted-arrival (CUP)": CUA plus planned preemptions —
/// rigid victims right after their next checkpoint, malleable victims just
/// before the prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectUntilPredicted;

impl NoticePolicy for CollectUntilPredicted {
    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        plan_cup(view.candidates, view.shortfall, view.predicted)
    }
}

// ---------------------------------------------------------------------------
// The paper's arrival-phase policies (§III-B2)
// ---------------------------------------------------------------------------

/// One of the arrival strategies, as a composable unit.
pub trait ArrivalPolicy: fmt::Debug + Send + Sync {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan;
}

/// "Preempt-at-actual-arrival (PAA)": preempt running jobs in ascending
/// preemption-overhead order (or an ablation ordering) until satisfied.
#[derive(Debug, Clone, Copy)]
pub struct PreemptAtArrival {
    pub order: VictimOrder,
}

impl ArrivalPolicy for PreemptAtArrival {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        match select_victims(view.victims.to_vec(), view.need_extra, self.order) {
            Some(preempt) => ArrivalPlan {
                shrinks: Vec::new(),
                preempt,
            },
            None => ArrivalPlan::wait(),
        }
    }
}

/// "Shrink-preempt-at-actual-arrival (SPAA)": if shrinking every running
/// malleable job to its minimum can supply the demand, shrink evenly;
/// otherwise fall back to PAA.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkThenPreempt {
    pub strategy: ShrinkStrategy,
    pub fallback: PreemptAtArrival,
}

impl ArrivalPolicy for ShrinkThenPreempt {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        if let Some(shrinks) = plan_shrinks(view.shrinkable, view.need_extra, self.strategy) {
            return ArrivalPlan {
                shrinks,
                preempt: Vec::new(),
            };
        }
        self.fallback.on_arrival(view)
    }
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

/// A full mechanism from one notice policy and one arrival policy. The six
/// paper mechanisms are exactly the `{N, CUA, CUP} × {PAA, SPAA}` grid of
/// [`IgnoreNotices`]/[`CollectUntilArrival`]/[`CollectUntilPredicted`] with
/// [`PreemptAtArrival`]/[`ShrinkThenPreempt`].
#[derive(Debug)]
pub struct Composed<N, A> {
    name: String,
    pub notice: N,
    pub arrival: A,
}

impl<N: NoticePolicy, A: ArrivalPolicy> Composed<N, A> {
    pub fn new(name: impl Into<String>, notice: N, arrival: A) -> Self {
        Composed {
            name: name.into(),
            notice,
            arrival,
        }
    }
}

impl<N: NoticePolicy, A: ArrivalPolicy> MechanismHooks for Composed<N, A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn uses_notices(&self) -> bool {
        self.notice.uses_notices()
    }

    fn plans_predictions(&self) -> bool {
        self.notice.plans_predictions()
    }

    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        self.notice.plan_for_prediction(view)
    }

    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        self.arrival.on_arrival(view)
    }
}

// ---------------------------------------------------------------------------
// Capability-aware composition (capability/capacity co-scheduling)
// ---------------------------------------------------------------------------

/// Capability/capacity co-scheduling as a hooks composition: wraps any
/// inner mechanism and gives [`JobClass::Capability`] jobs their own
/// notice/preemption treatment without touching driver internals.
///
/// * **Victim shielding** (default on): capability jobs are removed from
///   every victim snapshot before the inner mechanism plans — they are
///   never chosen as arrival-time (PAA/SPAA fallback) or CUP-planned
///   preemption victims. They may still squat on notice-phase
///   reservations and be evicted when the holder arrives, exactly like
///   any squatter (squatting is a lease the squatter accepted, not a
///   scheduling decision the policy controls).
/// * **Admission throttle** (off by default): `with_max_running(k)` caps
///   the number of concurrently *running* capability campaigns; further
///   capability jobs block in-order (capacity work backfills behind
///   them). `with_max_running(0)` starves capability work entirely —
///   useful as an experiment control, not as an operating point.
///
/// On a trace with **no capability jobs every decision reduces to the
/// inner mechanism's**, which is what keeps zero-capability runs bitwise
/// identical to the two-class path (pinned by `tests/capability.rs` and
/// the `capability` bench binary).
///
/// ```
/// use hws_core::{CapabilityAware, Mechanism, SimConfig, Simulator};
/// use hws_workload::TraceConfig;
///
/// // CUA&SPAA, but capability campaigns are never preemption victims
/// // and at most two run at once.
/// let hooks = CapabilityAware::for_mechanism(Mechanism::CUA_SPAA).with_max_running(2);
/// let cfg = SimConfig::with_hooks(hooks);
///
/// let mut tcfg = TraceConfig::tiny();
/// tcfg.capability_frac = 0.3; // largest 30 % of rigid jobs
/// let out = Simulator::run_trace(&cfg, &tcfg.generate(1));
/// assert!(out.metrics.completed_jobs > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CapabilityAware {
    name: String,
    inner: Arc<dyn MechanismHooks>,
    protect_victims: bool,
    max_running: Option<u32>,
}

impl CapabilityAware {
    /// Wrap an arbitrary inner mechanism.
    pub fn new(inner: impl MechanismHooks + 'static) -> Self {
        Self::from_arc(Arc::new(inner))
    }

    /// Wrap one of the built-in mechanisms (its standard composition with
    /// the default victim ordering and shrink strategy).
    ///
    /// # Panics
    ///
    /// Panics on [`Mechanism::Custom`], which has no built-in composition
    /// to wrap — use [`CapabilityAware::new`] with the custom hooks.
    pub fn for_mechanism(m: Mechanism) -> Self {
        Self::from_arc(standard_composition(
            m,
            VictimOrder::Overhead,
            ShrinkStrategy::EvenWaterFill,
        ))
    }

    fn from_arc(inner: Arc<dyn MechanismHooks>) -> Self {
        CapabilityAware {
            name: format!("cap[{}]", inner.name()),
            inner,
            protect_victims: true,
            max_running: None,
        }
    }

    /// Cap the number of concurrently running capability campaigns.
    pub fn with_max_running(mut self, cap: u32) -> Self {
        self.max_running = Some(cap);
        self
    }

    /// Let the inner mechanism preempt capability jobs like any other
    /// victim (disables the shielding half of the policy).
    pub fn allow_capability_victims(mut self) -> Self {
        self.protect_victims = false;
        self
    }

    /// Whether capability jobs are shielded from victim selection.
    pub fn protects_victims(&self) -> bool {
        self.protect_victims
    }

    /// The configured concurrency cap, when any.
    pub fn max_running(&self) -> Option<u32> {
        self.max_running
    }
}

impl MechanismHooks for CapabilityAware {
    fn name(&self) -> &str {
        &self.name
    }

    fn uses_notices(&self) -> bool {
        self.inner.uses_notices()
    }

    fn on_notice(&self, view: &NoticeView) -> NoticeDecision {
        self.inner.on_notice(view)
    }

    fn plans_predictions(&self) -> bool {
        self.inner.plans_predictions()
    }

    fn plan_for_prediction(&self, view: &PredictionView<'_>) -> CupPlan {
        if !self.protect_victims
            || view
                .candidates
                .iter()
                .all(|c| c.class != JobClass::Capability)
        {
            return self.inner.plan_for_prediction(view);
        }
        let candidates: Vec<CupCandidate> = view
            .candidates
            .iter()
            .filter(|c| c.class != JobClass::Capability)
            .copied()
            .collect();
        self.inner.plan_for_prediction(&PredictionView {
            candidates: &candidates,
            ..*view
        })
    }

    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        if !self.protect_victims || view.victims.iter().all(|v| v.class != JobClass::Capability) {
            return self.inner.on_arrival(view);
        }
        let victims: Vec<VictimInfo> = view
            .victims
            .iter()
            .filter(|v| v.class != JobClass::Capability)
            .copied()
            .collect();
        self.inner.on_arrival(&ArrivalView {
            victims: &victims,
            ..*view
        })
    }

    fn admit(&self, view: &AdmissionView) -> bool {
        if view.class == JobClass::Capability {
            if let Some(cap) = self.max_running {
                if view.running_capability >= cap {
                    return false;
                }
            }
        }
        self.inner.admit(view)
    }
}

/// The standard composition for one of the built-in mechanisms — the
/// `{N, CUA, CUP} × {PAA, SPAA}` grid, or an inert composition for the
/// baseline (which never consults hooks anyway, but the slot is
/// non-optional). This is the single source of mechanism behavior: both
/// the driver's enum dispatch and wrappers like [`CapabilityAware`] route
/// through it.
///
/// # Panics
///
/// Panics on [`Mechanism::Custom`] — its behavior lives in
/// [`SimConfig::hooks`], not in any built-in composition.
pub fn standard_composition(
    m: Mechanism,
    victim_order: VictimOrder,
    shrink_strategy: ShrinkStrategy,
) -> Arc<dyn MechanismHooks> {
    let paa = PreemptAtArrival {
        order: victim_order,
    };
    let spaa = ShrinkThenPreempt {
        strategy: shrink_strategy,
        fallback: paa,
    };
    let name = m.name();
    match m {
        Mechanism::Baseline => Arc::new(Composed::new(name, IgnoreNotices, paa)),
        Mechanism::Hybrid { notice, arrival } => {
            use crate::config::ArrivalStrategy as A;
            match (notice, arrival) {
                (NoticeStrategy::None, A::Paa) => Arc::new(Composed::new(name, IgnoreNotices, paa)),
                (NoticeStrategy::None, A::Spaa) => {
                    Arc::new(Composed::new(name, IgnoreNotices, spaa))
                }
                (NoticeStrategy::Cua, A::Paa) => {
                    Arc::new(Composed::new(name, CollectUntilArrival, paa))
                }
                (NoticeStrategy::Cua, A::Spaa) => {
                    Arc::new(Composed::new(name, CollectUntilArrival, spaa))
                }
                (NoticeStrategy::Cup, A::Paa) => {
                    Arc::new(Composed::new(name, CollectUntilPredicted, paa))
                }
                (NoticeStrategy::Cup, A::Spaa) => {
                    Arc::new(Composed::new(name, CollectUntilPredicted, spaa))
                }
            }
        }
        Mechanism::Custom => {
            panic!("Mechanism::Custom has no built-in composition")
        }
    }
}

/// Build the hooks for a configuration: an explicit [`SimConfig::hooks`]
/// wins; otherwise the mechanism enum maps onto the standard compositions.
pub(crate) fn hooks_for(cfg: &SimConfig) -> Arc<dyn MechanismHooks> {
    if let Some(handle) = &cfg.hooks {
        return Arc::clone(&handle.0);
    }
    assert!(
        cfg.mechanism != Mechanism::Custom,
        "Mechanism::Custom requires SimConfig::with_hooks(..)"
    );
    standard_composition(cfg.mechanism, cfg.victim_order, cfg.shrink_strategy)
}
