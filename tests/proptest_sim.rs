//! Property tests over the whole stack: arbitrary hand-built workloads
//! replay under every mechanism without violating the simulator's global
//! invariants.

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ArbJob {
    kind: u8,
    submit: u64,
    size: u32,
    work: u64,
    est_slack: u64,
    setup_pct: u64,
    notice_lead: Option<u64>,
}

fn arb_job() -> impl Strategy<Value = ArbJob> {
    (
        0..3u8,
        0..200_000u64,
        1..64u32,
        60..20_000u64,
        0..10_000u64,
        0..10u64,
        proptest::option::of(900..1_800u64),
    )
        .prop_map(
            |(kind, submit, size, work, est_slack, setup_pct, notice_lead)| ArbJob {
                kind,
                submit,
                size,
                work,
                est_slack,
                setup_pct,
                notice_lead,
            },
        )
}

fn build_trace(jobs: Vec<ArbJob>) -> Trace {
    let specs: Vec<JobSpec> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let setup = D::from_secs(a.work * a.setup_pct / 100);
            let mut b = match a.kind {
                0 => JobSpecBuilder::rigid(i as u64),
                1 => JobSpecBuilder::malleable(i as u64),
                _ => JobSpecBuilder::on_demand(i as u64),
            }
            .submit_at(T::from_secs(a.submit))
            .size(a.size)
            .work(D::from_secs(a.work))
            .estimate(D::from_secs(a.work + a.est_slack))
            .setup(setup);
            if a.kind == 1 {
                b = b.min_size((a.size / 5).max(1));
            }
            if a.kind == 2 {
                if let Some(lead) = a.notice_lead {
                    let notice = T::from_secs(a.submit.saturating_sub(lead));
                    // Accurate notice (submit == predicted).
                    b = b.notice(notice, T::from_secs(a.submit));
                }
            }
            b.build()
        })
        .collect();
    Trace::new(64, D::from_days(30), specs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_workloads_satisfy_global_invariants(
        jobs in proptest::collection::vec(arb_job(), 1..40),
        mech_idx in 0..6usize,
    ) {
        let trace = build_trace(jobs);
        prop_assert_eq!(trace.validate(), Ok(()));
        let mechanism = Mechanism::ALL_SIX[mech_idx];
        let cfg = SimConfig::with_mechanism(mechanism).paranoid();
        let out = Simulator::run_trace(&cfg, &trace);
        let m = &out.metrics;

        // Every job terminates (completes; estimates >= work, so no kills).
        prop_assert_eq!(m.completed_jobs + m.killed_jobs, trace.len());
        prop_assert_eq!(m.killed_jobs, 0);
        // Conservation: useful work cannot exceed occupancy or capacity.
        prop_assert!(m.utilization <= m.raw_occupancy + 1e-9);
        prop_assert!(m.utilization <= 1.0 + 1e-9);
        prop_assert!(m.raw_occupancy <= 1.0 + 1e-9);
        // Rates are probabilities.
        for r in [
            m.instant_start_rate,
            m.strict_instant_rate,
            m.rigid.preemption_ratio,
            m.malleable.preemption_ratio,
        ] {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        // Strict instant is at most the thresholded instant rate.
        prop_assert!(m.strict_instant_rate <= m.instant_start_rate + 1e-9);
        // On-demand jobs are never preempted.
        prop_assert_eq!(m.on_demand.preemption_ratio, 0.0);
    }

    #[test]
    fn baseline_turnaround_lower_bounds_runtime(
        jobs in proptest::collection::vec(arb_job(), 1..25),
    ) {
        let trace = build_trace(jobs);
        let out = Simulator::run_trace(&SimConfig::baseline().paranoid(), &trace);
        // Mean turnaround can never be below the mean pure work time
        // (setup only adds to it).
        let mean_work_h = trace
            .jobs
            .iter()
            .map(|j| j.work.as_secs() as f64 / 3_600.0)
            .sum::<f64>()
            / trace.len() as f64;
        prop_assert!(out.metrics.avg_turnaround_h >= mean_work_h - 1e-9);
    }

    #[test]
    fn generated_traces_replay_under_every_mechanism(seed in 0..24u64) {
        let trace = TraceConfig::tiny().generate(seed);
        let mechanism = Mechanism::ALL_SIX[(seed % 6) as usize];
        let out = Simulator::run_trace(&SimConfig::with_mechanism(mechanism).paranoid(), &trace);
        prop_assert_eq!(out.metrics.completed_jobs, trace.len());
    }
}
