//! Virtual time. The simulation clock counts integer **seconds** from an
//! arbitrary epoch (the start of the trace). One-second resolution is exact
//! for every constant in the reproduced paper (15–30 min advance notices,
//! the 2-minute preemption warning, 600/1200 s checkpoint costs, the 10-min
//! reservation timeout) and keeps arithmetic total and overflow-checked.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in seconds since time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s)
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` when `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const SECOND: SimDuration = SimDuration(1);
    pub const MINUTE: SimDuration = SimDuration(60);
    pub const HOUR: SimDuration = SimDuration(3_600);
    pub const DAY: SimDuration = SimDuration(86_400);
    pub const WEEK: SimDuration = SimDuration(7 * 86_400);

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    #[inline]
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * 60)
    }

    #[inline]
    pub fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600)
    }

    #[inline]
    pub fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400)
    }

    #[inline]
    pub fn as_secs(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest second.
    /// Panics (debug) on negative or non-finite factors.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor.is_finite() && factor >= 0.0, "bad factor {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics when `rhs > self`; use [`SimTime::since`] for a saturating
    /// variant.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    /// `d+hh:mm:ss` rendering, e.g. `3+07:15:42`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        let (d, r) = (s / 86_400, s % 86_400);
        write!(
            f,
            "{}+{:02}:{:02}:{:02}",
            d,
            r / 3_600,
            (r % 3_600) / 60,
            r % 60
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 86_400 {
            write!(f, "{:.1}d", s as f64 / 86_400.0)
        } else if s >= 3_600 {
            write!(f, "{:.1}h", s as f64 / 3_600.0)
        } else if s >= 60 {
            write!(f, "{:.1}m", s as f64 / 60.0)
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs(100);
        assert_eq!(t + SimDuration::from_secs(50), SimTime::from_secs(150));
    }

    #[test]
    fn subtract_times() {
        let a = SimTime::from_secs(500);
        let b = SimTime::from_secs(120);
        assert_eq!(a - b, SimDuration::from_secs(380));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtract_times_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn checked_since() {
        assert_eq!(
            SimTime::from_secs(5).checked_since(SimTime::from_secs(7)),
            None
        );
        assert_eq!(
            SimTime::from_secs(7).checked_since(SimTime::from_secs(5)),
            Some(SimDuration::from_secs(2))
        );
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7_200);
        assert_eq!(SimDuration::from_days(1), SimDuration::DAY);
        assert_eq!(SimDuration::WEEK.as_secs(), 604_800);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_secs(100).mul_f64(0.5).as_secs(), 50);
        assert_eq!(SimDuration::from_secs(3).mul_f64(0.5).as_secs(), 2); // 1.5 -> 2
        assert_eq!(SimDuration::from_secs(100).mul_f64(0.0).as_secs(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(90_061).to_string(), "1+01:01:01");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1.5m");
        assert_eq!(SimDuration::from_secs(5_400).to_string(), "1.5h");
        assert_eq!(SimDuration::from_secs(129_600).to_string(), "1.5d");
    }

    #[test]
    fn hours_f64() {
        assert!((SimDuration::from_secs(5_400).as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(9);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let x = SimDuration::from_secs(3);
        let y = SimDuration::from_secs(9);
        assert_eq!(x.min(y), x);
        assert_eq!(x.max(y), y);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_secs(5).saturating_sub(SimDuration::from_secs(9)),
            SimTime::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(5).saturating_sub(SimDuration::from_secs(9)),
            SimDuration::ZERO
        );
    }
}
