//! The [`ClusterBackend`] abstraction: everything the scheduler driver
//! needs from a resource manager, as a trait.
//!
//! [`Cluster`] is the single-machine implementation (the paper's model);
//! [`Federation`](crate::Federation) dispatches over several named
//! `Cluster` shards behind the same contract. The driver
//! (`hws-core`'s `SimCore`) is generic over this trait, so every
//! mechanism, queue policy, and metric works unchanged on either backend.
//!
//! ## Contract (see DESIGN.md §10)
//!
//! * **Jobs never span shards.** Every allocation, reservation, squat,
//!   shrink, and preemption is local to one shard; a multi-shard backend
//!   routes each operation to the job's shard.
//! * **Sticky placement.** Once a job has touched a shard (reservation or
//!   allocation), it stays there across preempt/resume cycles — checkpoint
//!   data is shard-local, so migrating a preempted job would forfeit it.
//! * **Aggregate queries are upper bounds.** [`free_count`] sums over
//!   shards; a job cannot necessarily use that many nodes at once. The
//!   per-job queries ([`avail_for`], [`backfill_avail_for`]) answer the
//!   question the scheduler actually asks — "how many nodes could *this*
//!   job get on one shard right now" — and on a single cluster they reduce
//!   exactly to the classic `free + own-reserved` arithmetic.
//! * **Determinism.** Given the same operation sequence, a backend must
//!   make identical placement decisions; the multi-seed sweep depends on
//!   per-seed bitwise reproducibility.
//!
//! [`free_count`]: ClusterBackend::free_count
//! [`avail_for`]: ClusterBackend::avail_for
//! [`backfill_avail_for`]: ClusterBackend::backfill_avail_for

use crate::node::{NodeId, NodeState};
use crate::{Cluster, ReleaseOutcome};
use hws_workload::{JobId, JobSpec};

/// A resource manager the scheduler driver can run against.
///
/// Object safety is not required (the driver is statically generic), but
/// the squat predicates are `&mut dyn FnMut` so implementations can route
/// them through shard-local scans without monomorphizing per closure.
pub trait ClusterBackend: std::fmt::Debug + Send {
    // ------------------------------------------------------------------
    // Shape
    // ------------------------------------------------------------------

    /// Total nodes across all shards.
    fn total_nodes(&self) -> u32;

    /// Number of shards (1 for a single cluster).
    fn shard_count(&self) -> usize {
        1
    }

    /// Shard names, `None` for a single (unnamed) cluster. `Some` is the
    /// driver's cue to maintain per-shard statistics.
    fn shard_labels(&self) -> Option<Vec<String>> {
        None
    }

    /// Node count of shard `i` (the whole machine for a single cluster).
    fn shard_nodes(&self, i: usize) -> u32 {
        assert_eq!(i, 0, "single cluster has exactly one shard");
        self.total_nodes()
    }

    /// The shard a job is currently placed on (allocation or reservation),
    /// if the backend distinguishes shards at all. A single cluster always
    /// answers `None`: there is nothing to distinguish, and the driver
    /// treats `None` as "no shard filtering".
    fn shard_of(&self, job: JobId) -> Option<usize>;

    /// The shard `job`'s *prospective* availability refers to: its home
    /// when placed, else the shard [`ClusterBackend::avail_for`] answered
    /// for. The driver projects the EASY shadow against this shard only —
    /// releases elsewhere can never reach the job. `None` (the single
    /// cluster) disables the filtering.
    fn placement_shard(&self, job: JobId) -> Option<usize> {
        self.shard_of(job)
    }

    /// The largest node count any single job could ever be granted (the
    /// biggest shard). Jobs above this bound can never start and must be
    /// rejected at submission, or they would wait forever.
    fn max_job_size(&self) -> u32;

    /// Register workload metadata for one job before any placement query
    /// about it. Batch drivers call this for every job up front; the live
    /// scheduler service calls it per `submit`. Idempotent — re-noting a
    /// known job keeps the first registration. A single cluster has no
    /// routing decisions to inform, so the default is a no-op.
    fn note_job(&mut self, _spec: &JobSpec) {}

    // ------------------------------------------------------------------
    // Aggregate accounting (upper bounds across shards)
    // ------------------------------------------------------------------

    /// Plain free nodes across all shards.
    fn free_count(&self) -> u32;

    /// Plain free nodes on shard `i` (the machine-wide count for a
    /// single cluster). Observation-side accounting only — allocation
    /// paths go through the per-job availability queries below.
    fn shard_free_nodes(&self, i: usize) -> u32 {
        assert_eq!(i, 0, "single cluster has exactly one shard");
        self.free_count()
    }

    /// Idle nodes reserved for `holder` (shard-local by construction).
    fn reserved_idle_count(&self, holder: JobId) -> u32;

    /// Idle reserved nodes across all holders and shards. O(shards).
    fn total_reserved_idle(&self) -> u32;

    /// Nodes currently allocated to `job` (0 if not running).
    fn size_of(&self, job: JobId) -> u32;

    fn is_running(&self, job: JobId) -> bool;

    /// Visit every running job, in the backend's internal order. Callers
    /// needing a deterministic order must sort what they collect (job ids
    /// are totally ordered); the driver's victim scans do.
    fn for_each_running(&self, f: &mut dyn FnMut(JobId));

    /// A running job's `(plain busy, squatted)` node split. O(1).
    fn split_of(&self, job: JobId) -> (u32, u32);

    /// Visit every running job with a non-zero *plain* (non-squatted)
    /// node count — the jobs whose release feeds the free pool — yielding
    /// that count, restricted to `shard` when given. Iteration order is
    /// the backend's internal order, as for
    /// [`ClusterBackend::for_each_running`]; the one hot caller (the EASY
    /// shadow projection) sorts what it collects. Concrete backends
    /// override this with a single walk of their split counters instead of
    /// a per-job `split_of` lookup.
    fn for_each_plain_split(&self, shard: Option<usize>, f: &mut dyn FnMut(JobId, u32)) {
        self.for_each_running(&mut |j| {
            if shard.is_some() && self.shard_of(j) != shard {
                return;
            }
            let (plain, _) = self.split_of(j);
            if plain > 0 {
                f(j, plain);
            }
        });
    }

    /// Jobs squatting on `holder`'s reserved nodes, in job-id order.
    fn squatters(&self, holder: JobId) -> Vec<(JobId, u32)>;

    // ------------------------------------------------------------------
    // Per-job availability (the scheduler's fits-checks)
    // ------------------------------------------------------------------

    /// Nodes `job` could start on right now without squatting: free nodes
    /// plus its own idle reservation, co-located on one shard. On a single
    /// cluster this is exactly `free_count() + reserved_idle_count(job)`;
    /// a federation answers for the job's shard (or its best feasible
    /// shard when the job is not yet placed).
    fn avail_for(&self, job: JobId) -> u32;

    /// Like [`ClusterBackend::avail_for`] for a job with no reservation of
    /// its own, additionally counting idle reserved nodes whose holder
    /// satisfies `squat_allowed` (single-shard co-located). On a single
    /// cluster: `free_count() + squattable_idle(squat_allowed)`.
    fn backfill_avail_for(&self, job: JobId, squat_allowed: &mut dyn FnMut(JobId) -> bool) -> u32;

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocate `k` plain free nodes for `job`. Returns success.
    fn try_allocate(&mut self, job: JobId, k: u32) -> bool;

    /// Allocate `k` nodes for `job`, consuming its own idle reservation
    /// first and topping up from the free pool (one shard). Returns
    /// success; on failure nothing changes.
    fn try_allocate_with_reserved(&mut self, job: JobId, k: u32) -> bool;

    /// Allocate `k` nodes for a backfill job, squatting on idle reserved
    /// nodes whose holder satisfies `squat_allowed` when the free pool
    /// falls short (one shard). Returns the holders squatted on.
    fn try_allocate_backfill(
        &mut self,
        job: JobId,
        k: u32,
        squat_allowed: &mut dyn FnMut(JobId) -> bool,
    ) -> Option<Vec<(JobId, u32)>>;

    /// Release all of `job`'s nodes (plain → free pool, squatted → their
    /// holders' reservations).
    fn release(&mut self, job: JobId) -> ReleaseOutcome;

    /// Malleable shrink by `k` nodes, surrendering plain nodes first.
    fn shrink(&mut self, job: JobId, k: u32) -> ReleaseOutcome;

    /// Malleable expand by up to `k` nodes from the job's shard's free
    /// pool. Returns nodes actually added.
    fn expand(&mut self, job: JobId, k: u32) -> u32;

    // ------------------------------------------------------------------
    // Reservations
    // ------------------------------------------------------------------

    /// Move up to `k` free nodes into `holder`'s reservation (pinning the
    /// holder to a shard on first contact). Returns nodes reserved.
    fn reserve(&mut self, holder: JobId, k: u32) -> u32;

    /// Move up to `k` idle reserved nodes from `from` to `to`. Cross-shard
    /// transfers are impossible (nodes cannot change machines) and return
    /// 0. Returns nodes transferred.
    fn transfer_reserved(&mut self, from: JobId, to: JobId, k: u32) -> u32;

    /// Drop `holder`'s reservation; idle reserved nodes return to the free
    /// pool, squatters keep running. Returns nodes freed.
    fn release_reservation(&mut self, holder: JobId) -> u32;

    // ------------------------------------------------------------------
    // Availability (outage engine)
    // ------------------------------------------------------------------

    /// Nodes currently out of service across all shards.
    fn down_nodes(&self) -> u32 {
        0
    }

    /// Nodes in service across all shards.
    fn live_nodes(&self) -> u32 {
        self.total_nodes() - self.down_nodes()
    }

    /// In-service node count of shard `i`.
    fn shard_live_nodes(&self, i: usize) -> u32 {
        assert_eq!(i, 0, "single cluster has exactly one shard");
        self.live_nodes()
    }

    /// The largest node count any single job could be granted at *current*
    /// live capacity (the biggest shard's in-service count). Unlike
    /// [`ClusterBackend::max_job_size`] this moves with outages; the
    /// driver uses it to decide when a blocked oversized job has become
    /// permanently infeasible.
    fn live_max_job_size(&self) -> u32 {
        self.live_nodes()
    }

    /// Authoritative state of node `node` of shard `shard` (`None` when
    /// out of range).
    fn node_state(&self, shard: usize, node: NodeId) -> Option<NodeState>;

    /// Graceful drain: a free node leaves service immediately, an occupied
    /// or reserved one is marked and leaves when next freed. Returns
    /// `true` when the node is down after the call. Idempotent.
    fn drain_node(&mut self, shard: usize, node: NodeId) -> bool;

    /// Hard outage on an idle reserved node: pull it out of `holder`'s
    /// reservation and take it down. Returns `false` if the node is not an
    /// idle reserved node of `holder` on that shard.
    fn down_reserved_node(&mut self, shard: usize, holder: JobId, node: NodeId) -> bool;

    /// Return a down node to service (or cancel a pending drain mark).
    /// Returns `true` when anything changed. Idempotent.
    fn rejoin_node(&mut self, shard: usize, node: NodeId) -> bool;

    /// Remove one specific node from a running job's allocation (malleable
    /// shrink-away from a lost node); the node is disposed through the
    /// normal release path, so a draining mark takes effect.
    fn release_single_node(&mut self, job: JobId, node: NodeId);

    // ------------------------------------------------------------------
    // Arrival orchestration & checks
    // ------------------------------------------------------------------

    /// An on-demand job is arriving: finalize its placement now so the
    /// arrival plan (victim scans, raids, claims) is computed against one
    /// shard. Returns the shard, or `None` when the backend does not
    /// distinguish shards (single cluster — a no-op).
    fn prepare_arrival(&mut self, od: JobId) -> Option<usize>;

    /// Full-scan consistency check (used by `paranoid_checks`).
    fn check_invariants(&self) -> Result<(), String>;
}

impl ClusterBackend for Cluster {
    fn total_nodes(&self) -> u32 {
        Cluster::total_nodes(self)
    }

    fn shard_of(&self, _job: JobId) -> Option<usize> {
        None
    }

    fn max_job_size(&self) -> u32 {
        Cluster::total_nodes(self)
    }

    fn free_count(&self) -> u32 {
        Cluster::free_count(self)
    }

    fn reserved_idle_count(&self, holder: JobId) -> u32 {
        Cluster::reserved_idle_count(self, holder)
    }

    fn total_reserved_idle(&self) -> u32 {
        Cluster::total_reserved_idle(self)
    }

    fn size_of(&self, job: JobId) -> u32 {
        Cluster::size_of(self, job)
    }

    fn is_running(&self, job: JobId) -> bool {
        Cluster::is_running(self, job)
    }

    fn for_each_running(&self, f: &mut dyn FnMut(JobId)) {
        for j in self.running_jobs() {
            f(j);
        }
    }

    fn split_of(&self, job: JobId) -> (u32, u32) {
        Cluster::split_of(self, job)
    }

    fn for_each_plain_split(&self, _shard: Option<usize>, f: &mut dyn FnMut(JobId, u32)) {
        Cluster::for_each_plain_split(self, f)
    }

    fn squatters(&self, holder: JobId) -> Vec<(JobId, u32)> {
        Cluster::squatters(self, holder)
    }

    fn avail_for(&self, job: JobId) -> u32 {
        Cluster::free_count(self) + Cluster::reserved_idle_count(self, job)
    }

    fn backfill_avail_for(&self, _job: JobId, squat_allowed: &mut dyn FnMut(JobId) -> bool) -> u32 {
        Cluster::free_count(self) + self.squattable_idle(squat_allowed)
    }

    fn try_allocate(&mut self, job: JobId, k: u32) -> bool {
        self.allocate(job, k).is_some()
    }

    fn try_allocate_with_reserved(&mut self, job: JobId, k: u32) -> bool {
        self.allocate_with_reserved(job, k).is_some()
    }

    fn try_allocate_backfill(
        &mut self,
        job: JobId,
        k: u32,
        squat_allowed: &mut dyn FnMut(JobId) -> bool,
    ) -> Option<Vec<(JobId, u32)>> {
        self.allocate_backfill(job, k, squat_allowed)
    }

    fn release(&mut self, job: JobId) -> ReleaseOutcome {
        Cluster::release(self, job)
    }

    fn shrink(&mut self, job: JobId, k: u32) -> ReleaseOutcome {
        Cluster::shrink(self, job, k)
    }

    fn expand(&mut self, job: JobId, k: u32) -> u32 {
        Cluster::expand(self, job, k)
    }

    fn reserve(&mut self, holder: JobId, k: u32) -> u32 {
        Cluster::reserve(self, holder, k)
    }

    fn transfer_reserved(&mut self, from: JobId, to: JobId, k: u32) -> u32 {
        Cluster::transfer_reserved(self, from, to, k)
    }

    fn release_reservation(&mut self, holder: JobId) -> u32 {
        Cluster::release_reservation(self, holder)
    }

    fn down_nodes(&self) -> u32 {
        Cluster::down_count(self)
    }

    fn node_state(&self, shard: usize, node: NodeId) -> Option<NodeState> {
        assert_eq!(shard, 0, "single cluster has exactly one shard");
        Cluster::node_state(self, node)
    }

    fn drain_node(&mut self, shard: usize, node: NodeId) -> bool {
        assert_eq!(shard, 0, "single cluster has exactly one shard");
        Cluster::drain_node(self, node)
    }

    fn down_reserved_node(&mut self, shard: usize, holder: JobId, node: NodeId) -> bool {
        assert_eq!(shard, 0, "single cluster has exactly one shard");
        Cluster::down_reserved_node(self, holder, node)
    }

    fn rejoin_node(&mut self, shard: usize, node: NodeId) -> bool {
        assert_eq!(shard, 0, "single cluster has exactly one shard");
        Cluster::rejoin_node(self, node)
    }

    fn release_single_node(&mut self, job: JobId, node: NodeId) {
        Cluster::release_single_node(self, job, node)
    }

    fn prepare_arrival(&mut self, _od: JobId) -> Option<usize> {
        None
    }

    fn check_invariants(&self) -> Result<(), String> {
        Cluster::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    /// The trait impl on `Cluster` must agree with the inherent methods —
    /// the driver's fits-checks go through the trait, the tests and
    /// invariants through the inherent API.
    #[test]
    fn cluster_trait_mirrors_inherent_api() {
        let mut c = Cluster::new(16);
        assert_eq!(ClusterBackend::max_job_size(&c), 16);
        assert_eq!(ClusterBackend::shard_count(&c), 1);
        assert_eq!(ClusterBackend::shard_labels(&c), None);
        assert!(c.try_allocate(j(1), 4));
        assert_eq!(ClusterBackend::shard_of(&c, j(1)), None);
        assert_eq!(ClusterBackend::reserve(&mut c, j(9), 6), 6);
        // avail_for = free + own reservation, exactly the classic sum.
        assert_eq!(ClusterBackend::avail_for(&c, j(9)), 6 + 6);
        assert_eq!(ClusterBackend::avail_for(&c, j(2)), 6);
        assert_eq!(c.backfill_avail_for(j(2), &mut |_| true), 12);
        assert_eq!(c.backfill_avail_for(j(2), &mut |_| false), 6);
        let squat = c
            .try_allocate_backfill(j(2), 8, &mut |_| true)
            .expect("fits with squatting");
        assert_eq!(squat, vec![(j(9), 2)]);
        let mut seen = Vec::new();
        c.for_each_running(&mut |id| seen.push(id));
        seen.sort();
        assert_eq!(seen, vec![j(1), j(2)]);
        assert_eq!(ClusterBackend::split_of(&c, j(2)), (6, 2));
        assert!(ClusterBackend::check_invariants(&c).is_ok());
        // No shard ever materializes on a single cluster.
        assert_eq!(c.prepare_arrival(j(3)), None);
    }
}
