//! Checkpoint model for rigid jobs.
//!
//! The paper (§IV-B): "We assume rigid jobs make regular checkpoints at the
//! optimal frequency defined by Daly. [...] we set each checkpointing
//! overhead to 600 seconds if the job used less than 1K nodes; otherwise, we
//! set it to 1200 seconds." Fig. 7 then sweeps *multiples* of the Daly
//! interval ("50% means rigid jobs makes checkpoints twice as frequent as
//! the optimal checkpointing frequency").
//!
//! Daly's optimum needs a mean-time-between-failures. The paper does not
//! publish Theta's MTBF, so it is a configurable parameter here (default:
//! one node-year, a reasonable figure for the KNL era; only the *relative*
//! Fig. 7 sweep matters for reproduction — see DESIGN.md §4).

use hws_sim::SimDuration;

/// Checkpointing configuration for rigid jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CkptConfig {
    /// Mean time between failures of a single node, in hours. The job-level
    /// MTBF is `node_mtbf_hours / size`.
    pub node_mtbf_hours: f64,
    /// Multiplier on the Daly-optimal interval. `1.0` = Daly optimum;
    /// `0.5` = checkpoints twice as frequent (the paper's "50 %").
    pub interval_factor: f64,
    /// Checkpoint cost for jobs under `large_threshold` nodes (§IV-B: 600 s).
    pub cost_small: SimDuration,
    /// Checkpoint cost for jobs at or above `large_threshold` (§IV-B: 1200 s).
    pub cost_large: SimDuration,
    /// Size boundary between the two costs (§IV-B: "1K nodes").
    pub large_threshold: u32,
    /// Disable checkpointing entirely (ablation).
    pub enabled: bool,
    /// Whether checkpoints extend the job's wall time. The paper replays
    /// *recorded* runtimes (which already contain whatever checkpointing
    /// the real jobs did), so its checkpoint model only sets the rollback
    /// anchor on preemption — that is the default here (`false`). Setting
    /// `true` switches to the physical model where every checkpoint
    /// occupies the nodes for its full cost δ (ablation 6).
    pub extends_walltime: bool,
}

impl Default for CkptConfig {
    fn default() -> Self {
        CkptConfig {
            node_mtbf_hours: 24.0 * 365.0,
            interval_factor: 1.0,
            cost_small: SimDuration::from_secs(600),
            cost_large: SimDuration::from_secs(1_200),
            large_threshold: 1_024,
            enabled: true,
            extends_walltime: false,
        }
    }
}

impl CkptConfig {
    /// Checkpoint cost δ for a job of `size` nodes.
    pub fn cost(&self, size: u32) -> SimDuration {
        if size >= self.large_threshold {
            self.cost_large
        } else {
            self.cost_small
        }
    }

    /// Checkpoint interval τ for a job of `size` nodes: the Daly optimum
    /// for (δ(size), M = node_mtbf/size) scaled by `interval_factor`.
    /// Returns `None` when checkpointing is disabled.
    pub fn interval(&self, size: u32) -> Option<SimDuration> {
        if !self.enabled || size == 0 {
            return None;
        }
        let delta = self.cost(size).as_secs() as f64;
        let mtbf = self.node_mtbf_hours * 3_600.0 / size as f64;
        let tau = daly_higher_order(delta, mtbf) * self.interval_factor;
        // Never checkpoint more often than the checkpoint itself takes.
        Some(SimDuration::from_secs((tau.max(delta)).round() as u64))
    }

    pub fn with_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0);
        self.interval_factor = f;
        self
    }

    pub fn disabled() -> Self {
        CkptConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// The δ that enters the run timeline: the full cost in the physical
    /// model, zero in the paper's replay model (checkpoints are already
    /// inside the recorded runtime; only the rollback anchor matters).
    pub fn timeline_cost(&self, size: u32) -> SimDuration {
        if self.extends_walltime {
            self.cost(size)
        } else {
            SimDuration::ZERO
        }
    }
}

/// Daly's first-order optimum: `sqrt(2 δ M) − δ` (valid for δ ≪ M).
pub fn daly_first_order(delta: f64, mtbf: f64) -> f64 {
    assert!(delta > 0.0 && mtbf > 0.0);
    (2.0 * delta * mtbf).sqrt() - delta
}

/// Daly's higher-order optimum (Daly 2006, eq. 20):
/// `τ = sqrt(2δM)·[1 + (1/3)·sqrt(δ/2M) + (1/9)·(δ/2M)] − δ` for δ < 2M,
/// and `τ = M` otherwise.
pub fn daly_higher_order(delta: f64, mtbf: f64) -> f64 {
    assert!(delta > 0.0 && mtbf > 0.0);
    if delta >= 2.0 * mtbf {
        return mtbf;
    }
    let x = delta / (2.0 * mtbf);
    (2.0 * delta * mtbf).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_matches_formula() {
        // δ = 600 s, M = 10 h = 36000 s → sqrt(2*600*36000) = 6573 s.
        let tau = daly_first_order(600.0, 36_000.0);
        assert!((tau - (6_572.67 - 600.0)).abs() < 1.0, "{tau}");
    }

    #[test]
    fn higher_order_exceeds_first_order() {
        // The correction terms are positive.
        let (d, m) = (600.0, 36_000.0);
        assert!(daly_higher_order(d, m) > daly_first_order(d, m));
    }

    #[test]
    fn higher_order_clamps_to_mtbf_for_huge_delta() {
        assert_eq!(daly_higher_order(100.0, 40.0), 40.0);
    }

    #[test]
    fn cost_switches_at_1k_nodes() {
        let c = CkptConfig::default();
        assert_eq!(c.cost(512), SimDuration::from_secs(600));
        assert_eq!(c.cost(1_024), SimDuration::from_secs(1_200));
        assert_eq!(c.cost(4_096), SimDuration::from_secs(1_200));
    }

    #[test]
    fn interval_shrinks_with_job_size() {
        // Bigger jobs fail more often → checkpoint more frequently.
        let c = CkptConfig::default();
        let small = c.interval(128).unwrap();
        let large = c.interval(512).unwrap();
        assert!(large < small, "{large} !< {small}");
    }

    #[test]
    fn interval_factor_scales() {
        let base = CkptConfig::default();
        let twice = CkptConfig::default().with_factor(0.5);
        let i1 = base.interval(256).unwrap().as_secs() as f64;
        let i2 = twice.interval(256).unwrap().as_secs() as f64;
        assert!((i2 / i1 - 0.5).abs() < 0.05, "{i2} vs {i1}");
    }

    #[test]
    fn interval_never_below_cost() {
        // Extremely aggressive factor still leaves τ ≥ δ.
        let c = CkptConfig::default().with_factor(0.0001);
        let tau = c.interval(2_048).unwrap();
        assert!(tau >= c.cost(2_048));
    }

    #[test]
    fn disabled_config_yields_none() {
        assert_eq!(CkptConfig::disabled().interval(128), None);
    }

    #[test]
    fn theta_scale_interval_is_hours() {
        // A 512-node job with 1-node-year MTBF: M ≈ 17.1 h, δ = 600 s →
        // τ ≈ sqrt(2·600·61594) ≈ 8.6 kscale seconds — order of 2-2.5 h.
        let c = CkptConfig::default();
        let tau = c.interval(512).unwrap().as_secs();
        assert!((5_000..15_000).contains(&tau), "{tau}");
    }
}
