//! Tests for the layered-architecture additions: the `MechanismHooks`
//! extension point and the parallel multi-seed sweep.

use super::hooks::{
    ArrivalPlan, ArrivalPolicy, ArrivalView, CollectUntilArrival, Composed, PreemptAtArrival,
    ShrinkThenPreempt,
};
use super::*;
use crate::config::{Mechanism, ShrinkStrategy, SimConfig, VictimOrder};
use hws_sim::{SimDuration, SimTime};
use hws_workload::job::JobSpecBuilder;
use hws_workload::{JobSpec, Trace, TraceConfig};

fn d(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn trace(system: u32, jobs: Vec<JobSpec>) -> Trace {
    Trace::new(system, SimDuration::from_days(7), jobs)
}

// ---------------------------------------------------------------------------
// Hooks and sweep (the layered-architecture additions)
// ---------------------------------------------------------------------------

#[test]
fn run_sweep_matches_sequential_bitwise() {
    // The acceptance bar: parallel sweeping must not perturb a single bit
    // of any per-seed metric.
    let tcfg = TraceConfig::tiny();
    for mechanism in [Mechanism::Baseline, Mechanism::CUA_SPAA, Mechanism::CUP_PAA] {
        let mut cfg = SimConfig::with_mechanism(mechanism);
        cfg.measure_decisions = false; // wall-clock latencies are not simulated state
        let seeds = [11u64, 12, 13, 14, 15];
        let swept = Simulator::run_sweep(&cfg, &tcfg, &seeds);
        assert_eq!(swept.len(), seeds.len());
        for (out, &seed) in swept.iter().zip(&seeds) {
            let sequential = Simulator::run_trace(&cfg, &tcfg.generate(seed));
            assert_eq!(out.metrics, sequential.metrics, "{mechanism} seed {seed}");
            assert_eq!(out.engine, sequential.engine, "{mechanism} seed {seed}");
        }
    }
}

#[test]
fn run_sweep_empty_seed_list() {
    let out = Simulator::run_sweep(&SimConfig::baseline(), &TraceConfig::tiny(), &[]);
    assert!(out.is_empty());
}

#[test]
fn run_sweep_with_arbitrary_factory_matches_sequential() {
    // The generic sweep must honor the same bitwise guarantee for any
    // trace factory (here: a seed-dependent notice-mix override, standing
    // in for SWF import or other non-generator sources).
    let make = |seed: u64| {
        let mix = if seed.is_multiple_of(2) {
            hws_workload::NoticeMix::W2
        } else {
            hws_workload::NoticeMix::W4
        };
        TraceConfig::tiny().with_notice_mix(mix).generate(seed)
    };
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
    cfg.measure_decisions = false;
    let seeds = [3u64, 4, 5, 6];
    let swept = Simulator::run_sweep_with(&cfg, &seeds, make);
    assert_eq!(swept.len(), seeds.len());
    for (out, &seed) in swept.iter().zip(&seeds) {
        let sequential = Simulator::run_trace(&cfg, &make(seed));
        assert_eq!(out.metrics, sequential.metrics, "seed {seed}");
        assert_eq!(out.engine, sequential.engine, "seed {seed}");
    }
}

#[test]
fn explicit_hooks_match_enum_mechanisms() {
    // Registering the standard compositions through `with_hooks` must be
    // indistinguishable from selecting the mechanism enum.
    let tr = TraceConfig::tiny().generate(21);
    let mut by_enum = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
    by_enum.measure_decisions = false;
    let mut by_hooks = SimConfig::with_hooks(Composed::new(
        "CUA&SPAA",
        CollectUntilArrival,
        ShrinkThenPreempt {
            strategy: ShrinkStrategy::EvenWaterFill,
            fallback: PreemptAtArrival {
                order: VictimOrder::Overhead,
            },
        },
    ));
    by_hooks.measure_decisions = false;
    let a = Simulator::run_trace(&by_enum, &tr);
    let b = Simulator::run_trace(&by_hooks, &tr);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.engine, b.engine);
}

/// A seventh mechanism, registered without touching driver internals:
/// preempt the *youngest* runs first, shrink nothing. Built on the stock
/// `select_victims` kernel (the from-scratch loop variant lives in
/// `examples/custom_policy.rs`).
#[derive(Debug)]
struct YoungestFirst;

impl ArrivalPolicy for YoungestFirst {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        let selected = crate::mechanism::select_victims(
            view.victims.to_vec(),
            view.need_extra,
            VictimOrder::NewestFirst,
        );
        match selected {
            Some(preempt) => ArrivalPlan {
                shrinks: Vec::new(),
                preempt,
            },
            None => ArrivalPlan::wait(),
        }
    }
}

#[test]
fn custom_seventh_mechanism_runs_clean() {
    let tr = TraceConfig::tiny().generate(5);
    let mut cfg = SimConfig::with_hooks(Composed::new(
        "CUA&YoungestFirst",
        CollectUntilArrival,
        YoungestFirst,
    ));
    cfg.paranoid_checks = true;
    let out = Simulator::run_trace(&cfg, &tr);
    assert_eq!(out.mechanism, Mechanism::Custom);
    assert_eq!(
        out.metrics.completed_jobs + out.metrics.killed_jobs,
        tr.len(),
        "custom mechanism must complete every job"
    );
    assert_eq!(out.metrics.killed_jobs, 0);
    // It is a hybrid mechanism: on-demand treatment must beat baseline.
    let base = Simulator::run_trace(&SimConfig::baseline(), &tr);
    assert!(out.metrics.instant_start_rate >= base.metrics.instant_start_rate);
}

#[test]
fn custom_hooks_with_invalid_plan_entries_are_ignored() {
    /// Returns victims that do not exist / are on-demand; the driver must
    /// skip them and let the on-demand job wait instead of panicking.
    #[derive(Debug)]
    struct Bogus;

    impl ArrivalPolicy for Bogus {
        fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
            ArrivalPlan {
                // Shrink orders against a rigid job and a job that is not
                // in the trace at all, preempt orders against the arriving
                // job itself and another unknown id: all must be filtered
                // out without panicking.
                shrinks: vec![(hws_workload::JobId(0), 5), (hws_workload::JobId(999), 5)],
                preempt: vec![
                    crate::mechanism::VictimInfo {
                        id: view.od,
                        nodes: 50,
                        overhead_ns: 0,
                        started: SimTime::ZERO,
                        class: hws_workload::JobClass::Capacity,
                    },
                    crate::mechanism::VictimInfo {
                        id: hws_workload::JobId(12_345),
                        nodes: 50,
                        overhead_ns: 0,
                        started: SimTime::ZERO,
                        class: hws_workload::JobClass::Capacity,
                    },
                ],
            }
        }
    }

    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(100)
                .work(d(5_000))
                .estimate(d(5_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(50)
                .work(d(100))
                .estimate(d(200))
                .submit_at(t(10))
                .build(),
        ],
    );
    let mut cfg = SimConfig::with_hooks(Composed::new("bogus", CollectUntilArrival, Bogus));
    cfg.paranoid_checks = true;
    let out = Simulator::run_trace(&cfg, &tr);
    // Nothing was preempted (the plan was bogus), so the OD job waited.
    assert_eq!(out.metrics.completed_jobs, 2);
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
    assert_eq!(out.metrics.instant_start_rate, 0.0);
}
