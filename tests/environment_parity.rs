//! Differential parity: the `Environment` facade vs. plain batch replay.
//!
//! The tuning environment (DESIGN.md §16) wraps the live
//! `SchedulerService` in an observation/action loop. Its core contract
//! is that the wrapping itself is *invisible*: driving an episode with
//! the identity action ([`Action::hold`]) at every decision point must
//! be **bitwise identical** to `Simulator::run_trace` on the same
//! configuration — for all six mechanisms, the FCFS/EASY baseline,
//! custom hook stacks (`CapabilityAware`), and a two-shard federation.
//! That is what keeps every committed `BENCH_*.json` honest when the
//! policy-search plumbing sits in the same binary.
//!
//! Also covered here: identity parity is independent of the decision
//! cadence (proptest over seed × mechanism × interval), non-identity
//! actions actually steer the simulation, and the mid-episode rejection
//! arms (baseline switch, `Custom` switch, placement change) each
//! return an error instead of silently misbehaving.

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;
use proptest::prelude::*;

fn quiet_plain(m: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::with_mechanism(m);
    cfg.measure_decisions = false;
    cfg
}

fn quiet_cap(hooks: CapabilityAware) -> SimConfig {
    let mut cfg = SimConfig::with_hooks(hooks);
    cfg.measure_decisions = false;
    cfg
}

/// Run `trace` as an identity-action episode and return the report.
fn identity_episode(cfg: &SimConfig, trace: &Trace, interval: D) -> EpisodeReport {
    let spec = EnvSpec::new(cfg.clone()).with_interval(interval);
    Environment::new(spec, trace)
        .expect("open episode")
        .run(|_| Action::hold())
        .expect("identity episode")
}

/// Assert every deterministic slice of two outcomes is identical.
fn assert_outcome_eq(env: &SimOutcome, batch: &SimOutcome, what: &str) {
    assert_eq!(env.metrics, batch.metrics, "{what}: metrics diverged");
    assert_eq!(env.engine, batch.engine, "{what}: engine stats diverged");
    assert_eq!(
        format!("{:?}", env.classes),
        format!("{:?}", batch.classes),
        "{what}: class breakdown diverged"
    );
    assert_eq!(
        format!("{:?}", env.shards),
        format!("{:?}", batch.shards),
        "{what}: shard stats diverged"
    );
    assert_eq!(
        env.admitted_jobs, batch.admitted_jobs,
        "{what}: admitted job count diverged"
    );
    // `peak_resident_jobs` is deliberately not compared: arena residency
    // is a property of the submission pump (the service pre-buffers the
    // whole trace; the batch pump injects lazily), not of the schedule —
    // the same exclusion the service parity contract makes
    // (`crates/core/tests/service_live.rs`).
}

#[test]
fn identity_episode_matches_batch_for_all_six_mechanisms_and_baseline() {
    let tcfg = TraceConfig::tiny();
    for seed in [0u64, 7] {
        let trace = tcfg.generate(seed);
        let mut mechs = Mechanism::ALL_SIX.to_vec();
        mechs.push(Mechanism::Baseline);
        for m in mechs {
            let cfg = quiet_plain(m);
            let batch = Simulator::run_trace(&cfg, &trace);
            let report = identity_episode(&cfg, &trace, D::from_hours(6));
            assert!(
                report.decisions > 0,
                "{} seed {seed}: no decisions",
                m.name()
            );
            assert_outcome_eq(
                &report.outcome,
                &batch,
                &format!("{} seed {seed}", m.name()),
            );
        }
    }
}

#[test]
fn identity_episode_matches_batch_with_capability_hooks() {
    // A custom hook stack (CapabilityAware over the standard
    // composition) on a trace that actually carries capability jobs: the
    // TunableHooks wrapper must delegate transparently.
    let mut trace = TraceConfig::tiny().generate(11);
    let tagged = trace.tag_capability(0.3);
    assert!(tagged > 0, "fixture must carry capability jobs");
    for m in [Mechanism::CUA_PAA, Mechanism::CUP_SPAA] {
        let cfg = quiet_cap(CapabilityAware::for_mechanism(m));
        let batch = Simulator::run_trace(&cfg, &trace);
        assert!(batch.classes.is_some());
        let report = identity_episode(&cfg, &trace, D::from_hours(4));
        assert_outcome_eq(&report.outcome, &batch, &format!("capability {}", m.name()));
        // The reward is the fold over the same metrics the batch saw.
        assert_eq!(
            report.reward,
            RewardSpec::neg_bounded_slowdown().score(&batch.metrics, batch.classes.as_ref()),
            "{}: reward fold diverged",
            m.name()
        );
    }
}

#[test]
fn identity_episode_matches_batch_on_a_two_shard_federation() {
    let trace = TraceConfig::tiny().generate(5);
    for m in [Mechanism::N_SPAA, Mechanism::CUA_SPAA] {
        let cfg = quiet_plain(m).federated(FederationConfig::even_split(2, trace.system_size));
        let batch = Simulator::run_trace(&cfg, &trace);
        assert_eq!(batch.shards.as_ref().map(Vec::len), Some(2));
        let spec = EnvSpec::new(cfg.clone()).with_interval(D::from_hours(6));
        let report = Environment::<Federation>::federated(spec, &trace)
            .expect("open federated episode")
            .run(|_| Action::hold())
            .expect("identity episode");
        assert_outcome_eq(&report.outcome, &batch, &format!("federated {}", m.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Identity parity must be independent of the decision cadence: the
    // observation/step loop only chooses *when* to look, never what
    // happens.
    #[test]
    fn identity_parity_is_cadence_independent(
        seed in 0..48u64,
        mech_idx in 0..6usize,
        interval_idx in 0..3usize,
    ) {
        const INTERVALS_H: [u64; 3] = [1, 5, 23];
        let trace = TraceConfig::tiny().generate(seed);
        let cfg = quiet_plain(Mechanism::ALL_SIX[mech_idx]);
        let batch = Simulator::run_trace(&cfg, &trace);
        let report = identity_episode(&cfg, &trace, D::from_hours(INTERVALS_H[interval_idx]));
        prop_assert_eq!(&report.outcome.metrics, &batch.metrics);
        prop_assert_eq!(&report.outcome.engine, &batch.engine);
        prop_assert_eq!(report.outcome.admitted_jobs, batch.admitted_jobs);
    }
}

#[test]
fn observations_are_coherent_and_reproducible() {
    let trace = TraceConfig::tiny().generate(2);
    let spec = EnvSpec::new(quiet_plain(Mechanism::CUA_SPAA)).with_interval(D::from_hours(2));
    let mut env = Environment::new(spec, &trace).expect("open");
    let first = env.observe();
    assert_eq!(first.now, T::ZERO);
    assert_eq!(first.pending_jobs, trace.jobs.len());
    // Sampling is pure: observing twice at the same instant is identical.
    assert_eq!(env.observe(), first);
    let n_shards = first.shard_free.len();
    assert_eq!(n_shards, 1);
    assert_eq!(first.features().len(), 18 + 2 * n_shards);

    let mut steps = 0usize;
    while !env.done() {
        let obs = env.observe();
        assert_eq!(
            obs.queue_depth,
            obs.queue_by_class[0] + obs.queue_by_class[1]
        );
        assert!(obs.free_nodes <= obs.live_nodes && obs.live_nodes <= obs.total_nodes);
        assert_eq!(
            obs.running_jobs,
            obs.running_by_class[0] + obs.running_by_class[1]
        );
        if obs.queue_depth == 0 {
            assert_eq!(obs.head_slack_s, None);
        }
        env.step(&Action::hold()).expect("step");
        steps += 1;
    }
    assert_eq!(env.decisions(), steps);
}

#[test]
fn throttle_action_actually_steers_the_simulation() {
    // Sanity that non-identity actions are not no-ops: throttling
    // capability admissions to zero must change the outcome on a trace
    // with capability jobs.
    let mut trace = TraceConfig::tiny().generate(9);
    assert!(trace.tag_capability(0.4) > 0);
    let cfg = quiet_cap(CapabilityAware::for_mechanism(Mechanism::CUA_SPAA));

    let held = identity_episode(&cfg, &trace, D::from_hours(4));
    let spec = EnvSpec::new(cfg.clone()).with_interval(D::from_hours(4));
    let choked = Environment::new(spec, &trace)
        .expect("open")
        .run(|_| Action {
            mechanism: None,
            knobs: Some(KnobVector {
                admit_throttle: Some(0),
                ..KnobVector::identity()
            }),
        })
        .expect("throttled episode");

    assert!(
        choked.outcome.metrics != held.outcome.metrics,
        "a zero throttle on a capability-carrying trace must change the metrics"
    );
    assert!(
        choked.outcome.metrics.completed_jobs < held.outcome.metrics.completed_jobs,
        "starved capability jobs cannot complete"
    );
}

#[test]
fn initial_knob_point_matches_the_materialised_search_candidate() {
    // EnvSpec::with_knobs and config_for_knobs are the same ⊕: an
    // episode opened *at* a knob point equals a batch run of the
    // materialised candidate config.
    let mut trace = TraceConfig::tiny().generate(4);
    trace.tag_capability(0.25);
    let knobs = KnobVector {
        admit_throttle: Some(1),
        backfill: Some(BackfillLevel::Conservative),
        ckpt_mult: 2.0,
        placement: None,
    };
    let base = quiet_plain(Mechanism::CUP_PAA);
    let candidate = config_for_knobs(&base, Mechanism::CUP_PAA, &knobs).expect("candidate");
    let batch = Simulator::run_trace(&candidate, &trace);

    let spec = EnvSpec::new(base)
        .with_interval(D::from_hours(6))
        .with_knobs(knobs);
    let report = Environment::new(spec, &trace)
        .expect("open")
        .run(|_| Action::hold())
        .expect("episode");
    assert_outcome_eq(&report.outcome, &batch, "knob-point episode");
}

#[test]
fn mid_episode_rejection_arms_each_error_cleanly() {
    let trace = TraceConfig::tiny().generate(0);
    let open = || {
        Environment::new(
            EnvSpec::new(quiet_plain(Mechanism::N_PAA)).with_interval(D::from_hours(1)),
            &trace,
        )
        .expect("open")
    };

    let err = open()
        .step(&Action {
            mechanism: Some(Mechanism::Baseline),
            knobs: None,
        })
        .unwrap_err();
    assert!(err.contains("baseline"), "{err}");

    let err = open()
        .step(&Action {
            mechanism: Some(Mechanism::Custom),
            knobs: None,
        })
        .unwrap_err();
    assert!(err.contains("Custom"), "{err}");

    let err = open()
        .step(&Action {
            mechanism: None,
            knobs: Some(KnobVector {
                placement: Some(PlacementChoice::LeastLoaded),
                ..KnobVector::identity()
            }),
        })
        .unwrap_err();
    assert!(err.contains("placement"), "{err}");

    let err = open()
        .step(&Action {
            mechanism: None,
            knobs: Some(KnobVector {
                ckpt_mult: f64::NAN,
                ..KnobVector::identity()
            }),
        })
        .unwrap_err();
    assert!(err.contains("NaN"), "{err}");
}

#[test]
fn malformed_specs_are_rejected_at_open() {
    let trace = TraceConfig::tiny().generate(0);

    let err = Environment::new(
        EnvSpec::new(quiet_plain(Mechanism::N_PAA)).with_interval(D::ZERO),
        &trace,
    )
    .err()
    .unwrap();
    assert!(err.contains("interval"), "{err}");

    let fed_cfg =
        quiet_plain(Mechanism::N_PAA).federated(FederationConfig::even_split(2, trace.system_size));
    let err = Environment::new(EnvSpec::new(fed_cfg), &trace)
        .err()
        .unwrap();
    assert!(err.contains("federated"), "{err}");

    let err =
        Environment::<Federation>::federated(EnvSpec::new(quiet_plain(Mechanism::N_PAA)), &trace)
            .err()
            .unwrap();
    assert!(err.contains("federation"), "{err}");

    let err = Environment::new(
        EnvSpec::new(quiet_plain(Mechanism::N_PAA)).with_knobs(KnobVector {
            ckpt_mult: 0.0,
            ..KnobVector::identity()
        }),
        &trace,
    )
    .err()
    .unwrap();
    assert!(err.contains("minimum"), "{err}");
}
