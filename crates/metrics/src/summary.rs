//! Folding raw records into the paper's evaluation metrics, and averaging
//! across seeds.

use crate::record::{JobRecord, Recorder};
use hws_sim::SimDuration;
use hws_workload::{JobKind, NoticeCategory};

/// Per-class statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindStats {
    pub completed: usize,
    pub avg_turnaround_h: f64,
    /// Share of jobs of this class preempted at least once.
    pub preemption_ratio: f64,
}

/// One simulation run's evaluation report (§IV-D).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Mean turnaround over all completed jobs, hours.
    pub avg_turnaround_h: f64,
    pub rigid: KindStats,
    pub on_demand: KindStats,
    pub malleable: KindStats,
    /// Share of on-demand jobs starting within the instant threshold of
    /// their arrival.
    pub instant_start_rate: f64,
    /// Share of on-demand jobs starting at exactly their arrival instant.
    pub strict_instant_rate: f64,
    /// Useful node-time over total elapsed node-time; "excludes wasted
    /// computation due to preemption".
    pub utilization: f64,
    /// Occupancy including waste (for cross-checks and ablations).
    pub raw_occupancy: f64,
    pub completed_jobs: usize,
    pub killed_jobs: usize,
    pub span_hours: f64,
    /// Mean / p99 / max wall-clock cost of a mechanism decision, in
    /// microseconds (Observation 10: must stay far below 10 ms).
    pub decision_mean_us: f64,
    pub decision_p99_us: f64,
    pub decision_max_us: f64,
    /// Mean queueing delay before the first start, hours.
    pub avg_wait_h: f64,
    /// Mean bounded slowdown (10-second runtime floor).
    pub avg_bounded_slowdown: f64,
    /// On-demand instant-start rate per notice category, in the order
    /// [no-notice, accurate, early, late]; NaN-free (0 when empty).
    pub instant_by_category: [f64; 4],
    /// Total failures absorbed (failure-injection extension).
    pub total_failures: u64,
}

/// Incremental fold of per-job records into the scalar state behind
/// [`Metrics`]. Records **must** be pushed in ascending job-id order — the
/// float summation sequence is part of the bitwise-determinism contract,
/// and id order is the one the materialized fold has always used.
///
/// [`Metrics::compute`] drives this for both retention modes: a retaining
/// recorder pushes every record at the end (the classic batch fold), a
/// streaming recorder pushes each record as its job retires and only the
/// stragglers at the end — the per-record operation sequence is identical,
/// so the two modes produce bitwise-equal reports.
#[derive(Debug, Clone)]
pub struct MetricsAcc {
    instant_threshold: SimDuration,
    sum_tat: f64,
    n_completed: usize,
    killed: usize,
    /// Per kind: (tat_sum, completed, preempted, total).
    per: [(f64, usize, usize, usize); 3],
    od_total: usize,
    od_instant: usize,
    od_strict: usize,
    wait_sum: f64,
    wait_n: usize,
    slow_sum: f64,
    slow_n: usize,
    cat_inst: [(usize, usize); 4],
    total_failures: u64,
}

impl MetricsAcc {
    /// `instant_threshold` is the start-delay bound under which an
    /// on-demand start counts as "instant" (the driver passes its
    /// two-minute vacate window).
    pub fn new(instant_threshold: SimDuration) -> Self {
        MetricsAcc {
            instant_threshold,
            sum_tat: 0.0,
            n_completed: 0,
            killed: 0,
            per: [(0.0, 0, 0, 0); 3],
            od_total: 0,
            od_instant: 0,
            od_strict: 0,
            wait_sum: 0.0,
            wait_n: 0,
            slow_sum: 0.0,
            slow_n: 0,
            cat_inst: [(0, 0); 4],
            total_failures: 0,
        }
    }

    pub fn instant_threshold(&self) -> SimDuration {
        self.instant_threshold
    }

    /// Fold one (final) job record.
    pub fn push(&mut self, r: &JobRecord) {
        let idx = match r.kind {
            JobKind::Rigid => 0,
            JobKind::OnDemand => 1,
            JobKind::Malleable => 2,
        };
        self.per[idx].3 += 1;
        if r.preemptions > 0 {
            self.per[idx].2 += 1;
        }
        if r.killed {
            self.killed += 1;
            return;
        }
        self.total_failures += u64::from(r.failures);
        if let Some(tat) = r.turnaround() {
            let h = tat.as_hours_f64();
            self.sum_tat += h;
            self.n_completed += 1;
            self.per[idx].0 += h;
            self.per[idx].1 += 1;
        }
        if let Some(w) = r.wait() {
            self.wait_sum += w.as_hours_f64();
            self.wait_n += 1;
        }
        if let Some(s) = r.bounded_slowdown() {
            self.slow_sum += s;
            self.slow_n += 1;
        }
        if r.kind == JobKind::OnDemand {
            if let Some(delay) = r.start_delay {
                self.od_total += 1;
                let cat = match r.category {
                    NoticeCategory::NoNotice => 0,
                    NoticeCategory::Accurate => 1,
                    NoticeCategory::Early => 2,
                    NoticeCategory::Late => 3,
                };
                self.cat_inst[cat].1 += 1;
                if delay <= self.instant_threshold {
                    self.od_instant += 1;
                    self.cat_inst[cat].0 += 1;
                }
                if delay.is_zero() {
                    self.od_strict += 1;
                }
            }
        }
    }

    /// Combine the folded per-job state with the recorder's run-level
    /// aggregates (span, occupancy, decision latencies) into the report.
    pub fn finish(&self, rec: &Recorder) -> Metrics {
        let instant_by_category = self
            .cat_inst
            .map(|(i, n)| if n > 0 { i as f64 / n as f64 } else { 0.0 });

        let kind_stats = |i: usize| KindStats {
            completed: self.per[i].1,
            avg_turnaround_h: if self.per[i].1 > 0 {
                self.per[i].0 / self.per[i].1 as f64
            } else {
                0.0
            },
            preemption_ratio: if self.per[i].3 > 0 {
                self.per[i].2 as f64 / self.per[i].3 as f64
            } else {
                0.0
            },
        };

        let (span_hours, capacity_ns) = match rec.span() {
            Some((a, b)) if b > a => {
                let span = b - a;
                (
                    span.as_hours_f64(),
                    u128::from(rec.system_size) * u128::from(span.as_secs()),
                )
            }
            _ => (0.0, 0),
        };
        let useful = rec
            .occupied_node_seconds()
            .saturating_sub(rec.wasted_node_seconds());
        let utilization = if capacity_ns > 0 {
            useful as f64 / capacity_ns as f64
        } else {
            0.0
        };
        let raw_occupancy = if capacity_ns > 0 {
            rec.occupied_node_seconds() as f64 / capacity_ns as f64
        } else {
            0.0
        };

        let mut d: Vec<u64> = rec.decision_nanos().to_vec();
        d.sort_unstable();
        let decision_mean_us = if d.is_empty() {
            0.0
        } else {
            d.iter().sum::<u64>() as f64 / d.len() as f64 / 1_000.0
        };
        let decision_p99_us = if d.is_empty() {
            0.0
        } else {
            d[(d.len() - 1).min(d.len() * 99 / 100)] as f64 / 1_000.0
        };
        let decision_max_us = d.last().copied().unwrap_or(0) as f64 / 1_000.0;

        Metrics {
            avg_turnaround_h: if self.n_completed > 0 {
                self.sum_tat / self.n_completed as f64
            } else {
                0.0
            },
            rigid: kind_stats(0),
            on_demand: kind_stats(1),
            malleable: kind_stats(2),
            instant_start_rate: if self.od_total > 0 {
                self.od_instant as f64 / self.od_total as f64
            } else {
                0.0
            },
            strict_instant_rate: if self.od_total > 0 {
                self.od_strict as f64 / self.od_total as f64
            } else {
                0.0
            },
            utilization,
            raw_occupancy,
            completed_jobs: self.n_completed,
            killed_jobs: self.killed,
            span_hours,
            decision_mean_us,
            decision_p99_us,
            decision_max_us,
            avg_wait_h: if self.wait_n > 0 {
                self.wait_sum / self.wait_n as f64
            } else {
                0.0
            },
            avg_bounded_slowdown: if self.slow_n > 0 {
                self.slow_sum / self.slow_n as f64
            } else {
                0.0
            },
            instant_by_category,
            total_failures: self.total_failures,
        }
    }
}

impl Metrics {
    /// Fold a recorder into the report. `instant_threshold` is the
    /// start-delay bound under which an on-demand start counts as
    /// "instant" (the driver passes its two-minute vacate window).
    ///
    /// For a streaming recorder, the retired-and-folded prefix is reused
    /// as-is (its threshold must match) and only unfolded records are
    /// pushed here; the result is bitwise-identical to the retaining fold.
    pub fn compute(rec: &Recorder, instant_threshold: SimDuration) -> Metrics {
        let mut acc = match rec.metrics_acc() {
            Some(a) => {
                assert_eq!(
                    a.instant_threshold(),
                    instant_threshold,
                    "streaming recorder folded with a different instant threshold"
                );
                a.clone()
            }
            None => MetricsAcc::new(instant_threshold),
        };
        // Fold in job-id order so float summation is deterministic across
        // runs (HashMap iteration order is not). A streaming recorder's
        // already-folded prefix covers exactly the ids below every record
        // surfaced here, so the overall sequence stays id-ordered.
        let mut sorted: Vec<_> = rec.unfolded().collect();
        sorted.sort_by_key(|(id, _)| *id);
        for (_, r) in sorted {
            acc.push(r);
        }
        acc.finish(rec)
    }

    /// One-line human summary (examples, quick experiments).
    pub fn one_line(&self) -> String {
        format!(
            "TAT {:.1} h | util {:.1}% | instant {:.1}% | preempt r/m {:.1}%/{:.1}%",
            self.avg_turnaround_h,
            self.utilization * 100.0,
            self.instant_start_rate * 100.0,
            self.rigid.preemption_ratio * 100.0,
            self.malleable.preemption_ratio * 100.0,
        )
    }
}

/// Streaming average of [`Metrics`] across seeds (the paper repeats each
/// experiment on ten randomly generated traces and averages).
#[derive(Debug, Clone, Default)]
pub struct MetricsAvg {
    n: usize,
    sums: Vec<f64>,
}

impl MetricsAvg {
    pub fn new() -> Self {
        Self::default()
    }

    fn fields(m: &Metrics) -> Vec<f64> {
        vec![
            m.avg_turnaround_h,
            m.rigid.avg_turnaround_h,
            m.on_demand.avg_turnaround_h,
            m.malleable.avg_turnaround_h,
            m.instant_start_rate,
            m.strict_instant_rate,
            m.utilization,
            m.raw_occupancy,
            m.rigid.preemption_ratio,
            m.malleable.preemption_ratio,
            m.completed_jobs as f64,
            m.killed_jobs as f64,
            m.span_hours,
            m.decision_mean_us,
            m.decision_p99_us,
            m.decision_max_us,
            m.rigid.completed as f64,
            m.on_demand.completed as f64,
            m.malleable.completed as f64,
            m.on_demand.preemption_ratio,
            m.avg_wait_h,
            m.avg_bounded_slowdown,
            m.instant_by_category[0],
            m.instant_by_category[1],
            m.instant_by_category[2],
            m.instant_by_category[3],
            m.total_failures as f64,
        ]
    }

    pub fn push(&mut self, m: &Metrics) {
        let f = Self::fields(m);
        if self.sums.is_empty() {
            self.sums = vec![0.0; f.len()];
        }
        for (s, v) in self.sums.iter_mut().zip(f) {
            *s += v;
        }
        self.n += 1;
    }

    pub fn count(&self) -> usize {
        self.n
    }

    /// The averaged report.
    ///
    /// # Panics
    ///
    /// Panics when no samples were pushed.
    pub fn mean(&self) -> Metrics {
        assert!(self.n > 0, "no samples");
        let a: Vec<f64> = self.sums.iter().map(|s| s / self.n as f64).collect();
        Metrics {
            avg_turnaround_h: a[0],
            rigid: KindStats {
                completed: a[16] as usize,
                avg_turnaround_h: a[1],
                preemption_ratio: a[8],
            },
            on_demand: KindStats {
                completed: a[17] as usize,
                avg_turnaround_h: a[2],
                preemption_ratio: a[19],
            },
            malleable: KindStats {
                completed: a[18] as usize,
                avg_turnaround_h: a[3],
                preemption_ratio: a[9],
            },
            instant_start_rate: a[4],
            strict_instant_rate: a[5],
            utilization: a[6],
            raw_occupancy: a[7],
            completed_jobs: a[10] as usize,
            killed_jobs: a[11] as usize,
            span_hours: a[12],
            decision_mean_us: a[13],
            decision_p99_us: a[14],
            decision_max_us: a[15],
            avg_wait_h: a[20],
            avg_bounded_slowdown: a[21],
            instant_by_category: [a[22], a[23], a[24], a[25]],
            total_failures: a[26] as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hws_sim::SimTime;
    use hws_workload::JobId;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn threshold() -> SimDuration {
        SimDuration::from_secs(120)
    }

    #[test]
    fn turnaround_and_instant_rates() {
        let mut rec = Recorder::new(100);
        // Rigid job: 2 h turnaround.
        rec.job_submitted(JobId(1), JobKind::Rigid, 10, t(0));
        rec.job_started(JobId(1), t(600));
        rec.job_finished(JobId(1), t(7_200));
        // OD job: starts instantly.
        rec.job_submitted(JobId(2), JobKind::OnDemand, 10, t(100));
        rec.job_started(JobId(2), t(100));
        rec.job_finished(JobId(2), t(3_700));
        // OD job: starts after 10 minutes (not instant).
        rec.job_submitted(JobId(3), JobKind::OnDemand, 10, t(200));
        rec.job_started(JobId(3), t(800));
        rec.job_finished(JobId(3), t(4_400));
        rec.add_occupancy(100, SimDuration::from_secs(7_200));

        let m = Metrics::compute(&rec, threshold());
        assert_eq!(m.completed_jobs, 3);
        assert!((m.instant_start_rate - 0.5).abs() < 1e-9);
        assert!((m.strict_instant_rate - 0.5).abs() < 1e-9);
        assert!((m.rigid.avg_turnaround_h - 2.0).abs() < 1e-9);
        assert!((m.on_demand.avg_turnaround_h - 1.0833).abs() < 1e-3);
    }

    #[test]
    fn utilization_excludes_waste() {
        let mut rec = Recorder::new(10);
        rec.job_submitted(JobId(1), JobKind::Rigid, 10, t(0));
        rec.job_started(JobId(1), t(0));
        rec.job_finished(JobId(1), t(1_000));
        // Fully occupied for the whole 1000 s span, 2000 node-s wasted.
        rec.add_occupancy(10, SimDuration::from_secs(1_000));
        rec.add_waste(2, SimDuration::from_secs(1_000));
        let m = Metrics::compute(&rec, threshold());
        assert!((m.raw_occupancy - 1.0).abs() < 1e-9);
        assert!((m.utilization - 0.8).abs() < 1e-9);
    }

    #[test]
    fn preemption_ratio_counts_jobs_not_events() {
        let mut rec = Recorder::new(10);
        for id in 0..4u64 {
            rec.job_submitted(JobId(id), JobKind::Rigid, 1, t(0));
            rec.job_started(JobId(id), t(0));
            rec.job_finished(JobId(id), t(100));
        }
        rec.job_preempted(JobId(0));
        rec.job_preempted(JobId(0)); // double preemption still one job
        let m = Metrics::compute(&rec, threshold());
        assert!((m.rigid.preemption_ratio - 0.25).abs() < 1e-9);
    }

    #[test]
    fn killed_jobs_excluded_from_turnaround() {
        let mut rec = Recorder::new(10);
        rec.job_submitted(JobId(1), JobKind::Rigid, 1, t(0));
        rec.job_started(JobId(1), t(0));
        rec.job_killed(JobId(1), t(100));
        rec.job_submitted(JobId(2), JobKind::Rigid, 1, t(0));
        rec.job_started(JobId(2), t(0));
        rec.job_finished(JobId(2), t(3_600));
        let m = Metrics::compute(&rec, threshold());
        assert_eq!(m.killed_jobs, 1);
        assert_eq!(m.completed_jobs, 1);
        assert!((m.avg_turnaround_h - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_yields_zeroes() {
        let rec = Recorder::new(10);
        let m = Metrics::compute(&rec, threshold());
        assert_eq!(m.completed_jobs, 0);
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.instant_start_rate, 0.0);
    }

    #[test]
    fn decision_percentiles() {
        let mut rec = Recorder::new(10);
        for us in 1..=100u64 {
            rec.add_decision(std::time::Duration::from_micros(us));
        }
        let m = Metrics::compute(&rec, threshold());
        assert!((m.decision_mean_us - 50.5).abs() < 1e-9);
        assert!((m.decision_max_us - 100.0).abs() < 1e-9);
        assert!(m.decision_p99_us >= 99.0);
    }

    #[test]
    fn averaging_across_runs() {
        let mut rec1 = Recorder::new(10);
        rec1.job_submitted(JobId(1), JobKind::Rigid, 1, t(0));
        rec1.job_started(JobId(1), t(0));
        rec1.job_finished(JobId(1), t(3_600));
        rec1.add_occupancy(10, SimDuration::from_secs(3_600));
        let m1 = Metrics::compute(&rec1, threshold());

        let mut rec2 = Recorder::new(10);
        rec2.job_submitted(JobId(1), JobKind::Rigid, 1, t(0));
        rec2.job_started(JobId(1), t(0));
        rec2.job_finished(JobId(1), t(10_800));
        rec2.add_occupancy(5, SimDuration::from_secs(10_800));
        let m2 = Metrics::compute(&rec2, threshold());

        let mut avg = MetricsAvg::new();
        avg.push(&m1);
        avg.push(&m2);
        assert_eq!(avg.count(), 2);
        let m = avg.mean();
        assert!((m.avg_turnaround_h - 2.0).abs() < 1e-9); // (1 + 3) / 2
        assert!((m.utilization - 0.75).abs() < 1e-9); // (1.0 + 0.5) / 2
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn mean_of_empty_average_panics() {
        MetricsAvg::new().mean();
    }

    #[test]
    fn one_line_renders() {
        let rec = Recorder::new(10);
        let m = Metrics::compute(&rec, threshold());
        assert!(m.one_line().contains("util"));
    }
}
