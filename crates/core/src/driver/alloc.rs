//! Node routing: claims (node collectors), the free-pool offer discipline,
//! lease settling, and the on-demand notice/arrival orchestration.
//!
//! ## Node routing discipline
//!
//! Whenever nodes reach the free pool, [`SimCore::offer_free_nodes`] first
//! feeds **arrived** on-demand jobs still assembling their allocation, then
//! pre-arrival collectors (CUA/CUP reservations) in advance-notice order —
//! "the released nodes are assigned to the on-demand job with the earliest
//! advance notice" (§III-B1) — and only then the ordinary queue.

use super::core::SimCore;
use super::events::Ev;
use super::hooks::{ArrivalView, NoticeView, PredictionView};
use crate::jobstate::{next_checkpoint_completion, Status};
use crate::mechanism::{CupCandidate, ShrinkInfo, VictimInfo};
use hws_cluster::ClusterBackend;
use hws_sim::{EventQueue, SimTime};
use hws_workload::{JobId, JobKind};

/// A node collector: an on-demand job assembling its allocation.
#[derive(Debug, Clone, Copy)]
pub(super) struct Claim {
    pub(super) od: JobId,
    /// Total nodes wanted in the job's reservation.
    pub(super) target: u32,
    /// Collection priority: arrived jobs (phase 0) before notice-phase
    /// collectors (phase 1); then earliest notice/arrival first.
    pub(super) phase: u8,
    pub(super) since: SimTime,
}

impl Claim {
    /// Collection priority, total over distinct on-demand jobs.
    #[inline]
    pub(super) fn key(&self) -> (u8, SimTime, JobId) {
        (self.phase, self.since, self.od)
    }
}

impl<B: ClusterBackend> SimCore<B> {
    // ------------------------------------------------------------------
    // Node routing
    // ------------------------------------------------------------------

    /// Register a collector, keeping `claims` sorted by `(phase, since,
    /// od)` so [`SimCore::offer_free_nodes`] never re-sorts. Claims are
    /// immutable after insertion, so the order is maintained for free.
    pub(super) fn insert_claim(&mut self, c: Claim) {
        let at = self.claims.partition_point(|x| x.key() < c.key());
        self.claims.insert(at, c);
    }

    /// Feed newly free nodes to collectors: arrived on-demand jobs first
    /// (by arrival), then notice-phase collectors (by notice time). The
    /// claims list is kept in that order by [`SimCore::insert_claim`].
    pub(super) fn offer_free_nodes(&mut self, _now: SimTime) {
        if self.claims.is_empty() {
            return;
        }
        debug_assert!(self.claims.windows(2).all(|w| w[0].key() <= w[1].key()));
        let mut i = 0;
        while i < self.claims.len() {
            if self.cluster.free_count() == 0 {
                break;
            }
            let c = self.claims[i];
            let have = self.cluster.reserved_idle_count(c.od);
            let want = c.target.saturating_sub(have);
            if want > 0 {
                self.cluster
                    .reserve(c.od, want.min(self.cluster.free_count()));
            }
            i += 1;
        }
        // Drop satisfied notice-phase collectors; arrived collectors are
        // removed at launch.
        let cluster = &self.cluster;
        self.claims
            .retain(|c| cluster.reserved_idle_count(c.od) < c.target || c.phase == 0);
    }

    pub(super) fn remove_claim(&mut self, od: JobId) {
        self.claims.retain(|c| c.od != od);
    }

    /// §III-B3: return leased nodes to lenders, in lease order.
    pub(super) fn settle_leases(&mut self, od: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        for lease in self.leases.settle(od) {
            let lender = lease.lender;
            let status = self.st(lender).status;
            if lease.by_preemption {
                // A still-waiting preempted lender gets a private
                // reservation it can combine with free nodes to resume
                // (source of the Obs. 2 starvation effect).
                if status == Status::Waiting || status == Status::Draining {
                    self.cluster
                        .reserve(lender, lease.nodes.min(self.cluster.free_count()));
                }
            } else if status == Status::Running {
                // Shrunk lender expands back toward its original size.
                let owed = self.st(lender).owed_expansion.min(lease.nodes);
                if owed > 0 {
                    self.expand_job(lender, owed, now, q);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // On-demand handling
    // ------------------------------------------------------------------

    /// Advance notice (§III-B1), routed through the mechanism hooks: if the
    /// hooks collect, reserve free nodes and register a collector; the
    /// hooks' prediction plan (CUP) schedules cheap preemptions.
    pub(super) fn on_notice(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let started = std::time::Instant::now();
        let spec = self.spec(j).clone();
        let notice = spec.notice.expect("notice event without notice spec");
        debug_assert_eq!(self.st(j).status, Status::Announced);
        let need = spec.size;
        let view = NoticeView {
            od: j,
            need,
            free: self.cluster.free_count(),
            notice_time: notice.notice_time,
            predicted_arrival: notice.predicted_arrival,
            now,
        };
        if !self.hooks.on_notice(&view).collect {
            return;
        }
        self.cluster.reserve(j, need.min(self.cluster.free_count()));
        self.noticed.insert(j);
        if self.cfg.backfill_on_reserved {
            self.squattable.insert(j);
        }
        let shortfall = need.saturating_sub(self.cluster.reserved_idle_count(j));
        if shortfall > 0 {
            self.insert_claim(Claim {
                od: j,
                target: need,
                phase: 1,
                since: notice.notice_time,
            });
            // The candidate snapshot costs O(running jobs); skip it for
            // hooks that never plan, so CUA decision latency stays free of
            // CUP-only estimation work. Snapshots build in the recycled
            // scratch buffers — notices are frequent enough under CUP that
            // per-notice allocation shows up in replay throughput.
            if self.hooks.plans_predictions() {
                let predicted = notice.predicted_arrival;
                // Plan only against the od's shard: preempting a victim on
                // another shard can never feed this reservation. (A single
                // cluster reports no shard, so nothing is filtered.)
                let shard = self.cluster.shard_of(j);
                let mut ids = std::mem::take(&mut self.scratch.victim_ids);
                let mut candidates = std::mem::take(&mut self.scratch.candidates);
                self.fill_running_victim_ids(&mut ids, shard);
                self.fill_prediction_candidates(&ids, &mut candidates, predicted, now);
                let plan = self.hooks.plan_for_prediction(&PredictionView {
                    od: j,
                    shortfall,
                    predicted,
                    now,
                    shard,
                    candidates: &candidates,
                });
                ids.clear();
                self.scratch.victim_ids = ids;
                candidates.clear();
                self.scratch.candidates = candidates;
                let mut evs = Vec::new();
                for (victim, at) in plan.planned_preemptions {
                    let epoch = self.st(victim).epoch;
                    evs.push(q.schedule(
                        at.max(now),
                        Ev::PlannedPreempt {
                            victim,
                            od: j,
                            epoch,
                        },
                    ));
                }
                if !evs.is_empty() {
                    self.cup_plans.insert(j, evs);
                }
            }
        }
        let ev = q.schedule(
            notice.predicted_arrival + self.cfg.reservation_timeout,
            Ev::ReservationTimeout(j),
        );
        self.timeout_ev.insert(j, ev);
        if self.cfg.measure_decisions {
            self.rec.add_decision(started.elapsed());
        }
    }

    /// Running jobs eligible as preemption victims (never on-demand jobs,
    /// never draining jobs), in job-id order, appended to `out` (a scratch
    /// buffer recycled across decisions). `shard` restricts the scan to
    /// one shard of a federated backend (`None` — no filtering).
    pub(super) fn fill_running_victim_ids(&self, out: &mut Vec<JobId>, shard: Option<usize>) {
        self.cluster.for_each_running(&mut |j| {
            if shard.is_some() && self.cluster.shard_of(j) != shard {
                return;
            }
            if self.spec(j).kind != JobKind::OnDemand && self.st(j).status == Status::Running {
                out.push(j);
            }
        });
        out.sort();
    }

    /// Candidate snapshot for
    /// [`super::hooks::MechanismHooks::plan_for_prediction`], appended to
    /// `out` (a scratch buffer recycled across decisions).
    fn fill_prediction_candidates(
        &self,
        ids: &[JobId],
        out: &mut Vec<CupCandidate>,
        predicted: SimTime,
        now: SimTime,
    ) {
        out.extend(ids.iter().map(|&v| {
            let run = self.st(v).run.as_ref().expect("running");
            let cheap = match self.spec(v).kind {
                JobKind::Malleable => {
                    let at = predicted.saturating_sub(self.cfg.malleable_warning);
                    (at >= now).then_some(at)
                }
                _ => next_checkpoint_completion(run, now).filter(|t| *t >= now),
            };
            CupCandidate {
                id: v,
                nodes: run.size,
                expected_end: self.expected_end(v, now),
                overhead_ns: self.preemption_overhead(v, now),
                cheap_preempt_at: cheap,
                class: self.spec(v).class,
            }
        }));
    }

    /// Shrink snapshot for [`super::hooks::MechanismHooks::on_arrival`]:
    /// running malleable jobs, with minimums raised so that only *plain*
    /// nodes — the ones that actually reach the arriving job through the
    /// free pool — count as supply. `ids` is the shared
    /// [`Self::fill_running_victim_ids`] scan (computed once per arrival).
    fn arrival_shrinkables(&self, ids: &[JobId]) -> Vec<ShrinkInfo> {
        ids.iter()
            .copied()
            .filter(|&v| self.spec(v).kind == JobKind::Malleable)
            .map(|v| {
                let cur = self.st(v).cur_size;
                let min = self.spec(v).min_size.min(cur);
                let (plain, _) = self.cluster.split_of(v);
                ShrinkInfo {
                    id: v,
                    cur,
                    min: min.max(cur.saturating_sub(plain)),
                    class: self.spec(v).class,
                }
            })
            .collect()
    }

    /// Victim snapshot for [`super::hooks::MechanismHooks::on_arrival`]:
    /// counts only the nodes a preemption actually yields to the arriving
    /// job (plain nodes reach the free pool; squatted nodes return to their
    /// own reservation holders).
    fn arrival_victims(&self, ids: &[JobId], now: SimTime) -> Vec<VictimInfo> {
        ids.iter()
            .copied()
            .map(|v| {
                let (plain, _) = self.cluster.split_of(v);
                VictimInfo {
                    id: v,
                    nodes: plain,
                    overhead_ns: self.preemption_overhead(v, now),
                    started: self.st(v).run.as_ref().expect("running").start,
                    class: self.spec(v).class,
                }
            })
            .filter(|v| v.nodes > 0)
            .collect()
    }

    /// Actual arrival of an on-demand job (§III-B2).
    pub(super) fn on_od_arrival(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let started = std::time::Instant::now();
        let spec = self.spec(j).clone();
        let need = spec.size;

        // Pin the job's placement now, so raids, victim scans, and claims
        // all target one shard (a single cluster reports no shard and
        // nothing below filters).
        let shard = self.cluster.prepare_arrival(j);

        // Close the notice phase: stop collection/planning, stop squatting.
        if let Some(ev) = self.timeout_ev.remove(&j) {
            q.cancel(ev);
        }
        if let Some(evs) = self.cup_plans.remove(&j) {
            for ev in evs {
                q.cancel(ev);
            }
        }
        self.remove_claim(j);
        self.squattable.remove(&j);
        self.noticed.remove(&j);

        // Evict squatters from this job's reserved nodes ("once the
        // on-demand job arrives, all these backfilled jobs have to be
        // preempted immediately").
        let squatters = self.cluster.squatters(j);
        let mut promised: u32 = 0; // nodes arriving via drains
        for (sq, on_mine) in squatters {
            let kind = self.spec(sq).kind;
            // Only the squatter's plain nodes and the nodes on *this*
            // reservation reach this job; nodes squatted on other holders'
            // reservations return to those holders.
            let (plain, _) = self.cluster.split_of(sq);
            if self.st(sq).status == Status::Draining {
                // Already serving an earlier preemption's two-minute
                // warning; its nodes arrive at drain end regardless.
                promised += plain + on_mine;
                continue;
            }
            self.preempt_job(sq, now, q);
            if kind == JobKind::Malleable {
                promised += plain + on_mine;
            }
        }
        self.offer_free_nodes(now); // rigid squatters' plain nodes

        let mut have = self.cluster.avail_for(j) + promised;

        // An *arrived* on-demand job outranks reservations held for merely
        // predicted ones: raid notice-phase reservations, robbing the most
        // recent notice first so the earliest notice keeps its collection
        // priority (§III-B1).
        if have < need && !self.noticed.is_empty() {
            let mut holders: Vec<JobId> = self.noticed.iter().copied().collect();
            holders.sort_by_key(|&h| {
                let n = self.spec(h).notice.expect("noticed job has a notice");
                std::cmp::Reverse((n.notice_time, h))
            });
            for h in holders {
                if have >= need {
                    break;
                }
                let moved = self.cluster.transfer_reserved(h, j, need - have);
                have += moved;
            }
        }

        // Still short: ask the mechanism hooks how to source the rest.
        if have < need {
            let need_extra = need - have;
            // One scan serves both snapshots. Arrival decisions are rare
            // (one per on-demand arrival), so handing every hook a uniform
            // view is worth the one extra snapshot over the old
            // strategy-specialized paths.
            let mut ids = std::mem::take(&mut self.scratch.victim_ids);
            self.fill_running_victim_ids(&mut ids, shard);
            let shrinkable = self.arrival_shrinkables(&ids);
            let victims = self.arrival_victims(&ids, now);
            ids.clear();
            self.scratch.victim_ids = ids;
            let plan = self.hooks.on_arrival(&ArrivalView {
                od: j,
                need_extra,
                now,
                shard,
                shrinkable: &shrinkable,
                victims: &victims,
            });
            self.execute_arrival_plan(j, need_extra, plan, now, q);
        }

        // Register as an arrived collector and try to launch.
        self.insert_claim(Claim {
            od: j,
            target: need,
            phase: 0,
            since: now,
        });
        self.st_mut(j).status = Status::Waiting;
        // Front-of-queue class: `od_front` membership must be final
        // before the enqueue so the index files the job under class 0.
        self.od_front.insert(j);
        self.enqueue_waiting(j);
        self.offer_free_nodes(now);
        self.request_pass(now, q);
        if self.cfg.measure_decisions {
            self.rec.add_decision(started.elapsed());
        }
    }

    /// Execute an arrival plan: shrinks first, then preemptions, recording
    /// the matching leases. Entries that are no longer valid (custom hooks
    /// may return arbitrary jobs) are skipped rather than trusted.
    fn execute_arrival_plan(
        &mut self,
        od: JobId,
        need_extra: u32,
        plan: super::hooks::ArrivalPlan,
        now: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        let mut supplied = 0u32;
        for (victim, k) in plan.shrinks {
            if victim == od
                || !self.live(victim)
                || self.spec(victim).kind != JobKind::Malleable
                || self.st(victim).status != Status::Running
            {
                continue;
            }
            let cur = self.st(victim).cur_size;
            // Clamp against the same effective minimum `ArrivalView`
            // advertises: only plain nodes reach the arriving job, so a
            // shrink below `cur - plain` would count squatted nodes (which
            // return to their reservation holders) as supplied.
            let (plain, _) = self.cluster.split_of(victim);
            let floor = self
                .spec(victim)
                .min_size
                .min(cur)
                .max(cur.saturating_sub(plain));
            let k = k.min(cur - floor);
            if k == 0 {
                continue;
            }
            self.shrink_job(victim, k, now, q);
            self.leases.record(od, victim, k, false);
            supplied += k;
        }
        let mut outstanding = need_extra.saturating_sub(supplied);
        for v in plan.preempt {
            if v.id == od
                || !self.live(v.id)
                || self.spec(v.id).kind == JobKind::OnDemand
                || self.st(v.id).status != Status::Running
            {
                continue;
            }
            let lease = outstanding.min(v.nodes);
            self.preempt_job(v.id, now, q);
            self.leases.record(od, v.id, lease, true);
            outstanding = outstanding.saturating_sub(v.nodes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Mechanism, SimConfig};
    use hws_sim::SimDuration;
    use hws_workload::job::JobSpecBuilder;
    use proptest::prelude::*;

    /// Build a core with `n` admitted on-demand jobs (ids `0..n`) on a
    /// `system`-node machine, with `busy` nodes occupied by a running job.
    fn core_with_claims(system: u32, busy: u32, claims: &[(u64, u32, u8, u64)]) -> SimCore {
        let mut core = SimCore::new(SimConfig::with_mechanism(Mechanism::CUA_PAA), system);
        for &(id, target, _, _) in claims {
            core.admit(
                JobSpecBuilder::on_demand(id)
                    .size(target.min(system))
                    .work(SimDuration::from_secs(600))
                    .estimate(SimDuration::from_secs(1_200))
                    .build(),
            );
        }
        let filler_id = claims.iter().map(|c| c.0).max().unwrap_or(0) + 1;
        core.admit(
            JobSpecBuilder::rigid(filler_id)
                .size(system)
                .work(SimDuration::from_secs(3_600))
                .estimate(SimDuration::from_secs(7_200))
                .build(),
        );
        // Occupy `busy` nodes so the free pool is scarce.
        if busy > 0 {
            assert!(core.cluster.allocate(JobId(filler_id), busy).is_some());
        }
        for &(id, target, phase, since) in claims {
            core.insert_claim(Claim {
                od: JobId(id),
                target,
                phase,
                since: SimTime::from_secs(since),
            });
        }
        core
    }

    /// Greedy reference model of the §III-B1 discipline: serve claims in
    /// (phase, since, id) order from a single free pool.
    fn expected_grants(free: u32, claims: &[(u64, u32, u8, u64)]) -> Vec<(u64, u32)> {
        let mut order: Vec<_> = claims.to_vec();
        order.sort_by_key(|&(id, _, phase, since)| (phase, since, id));
        let mut left = free;
        let mut grants = Vec::new();
        for (id, target, _, _) in order {
            let got = target.min(left);
            left -= got;
            grants.push((id, got));
        }
        grants.sort_by_key(|&(id, _)| id);
        grants
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// `offer_free_nodes` always serves phase-0 (arrived) claims before
        /// phase-1 (notice) collectors, ordered by earliest notice, across
        /// random claim sets.
        #[test]
        fn offer_free_nodes_follows_routing_discipline(
            system in 8..200u32,
            busy_frac in 0..100u32,
            raw_claims in proptest::collection::vec(
                (1..64u32, 0..2u32, 0..10_000u64),
                1..8,
            ),
        ) {
            let busy = system * busy_frac / 100;
            let claims: Vec<(u64, u32, u8, u64)> = raw_claims
                .iter()
                .enumerate()
                .map(|(i, &(target, phase, since))| {
                    (i as u64, target.min(system), phase as u8, since)
                })
                .collect();
            let mut core = core_with_claims(system, busy, &claims);
            let free = core.cluster.free_count();
            core.offer_free_nodes(SimTime::from_secs(20_000));

            for (id, want) in expected_grants(free, &claims) {
                let got = core.cluster.reserved_idle_count(JobId(id));
                prop_assert_eq!(
                    got,
                    want,
                    "claim {} (free {}, claims {:?})",
                    id,
                    free,
                    claims
                );
            }
            // Satisfied notice-phase collectors are dropped; arrived
            // collectors persist until launch.
            for c in &core.claims {
                let keep = core.cluster.reserved_idle_count(c.od) < c.target || c.phase == 0;
                prop_assert!(keep, "stale satisfied claim {:?}", c);
            }
            prop_assert_eq!(core.cluster.check_invariants(), Ok(()));
        }
    }
}
