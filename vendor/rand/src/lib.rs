//! Offline stand-in for the crates.io `rand` crate (see DESIGN.md §5).
//!
//! The build environment has no network access, so the workspace vendors the
//! *subset* of the `rand` 0.9 API it actually uses: [`SeedableRng`],
//! [`rngs::StdRng`], and [`Rng::random_range`] over integer and float
//! ranges. Everything downstream (distributions, the trace generator) is
//! written against this uniform source only.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — not the
//! ChaCha12 stream of upstream `StdRng`, so traces differ numerically from
//! ones produced with crates.io `rand`; within this workspace everything is
//! deterministic in the seed, which is the property the experiments rely on.

/// Uniform random source: the only primitive the workspace draws from.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a uniform sample of `T`. Mirroring upstream,
/// this is a single blanket impl over [`SampleUniform`] so that type
/// inference can unify `T` with the range's element type.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types that support uniform sampling from a range.
pub trait SampleUniform: PartialOrd + Sized {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Lemire-style unbiased bounded sampling on a 128-bit widening multiply.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "empty range");
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                // Rounding may land exactly on `hi`; fold it back inside.
                if v as $t >= hi {
                    lo
                } else {
                    v as $t
                }
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Offline stand-in for `rand::rngs::StdRng`: xoshiro256++ with
    /// SplitMix64 seed expansion. Deterministic in the seed, passes the
    /// usual empirical-moment checks used by this workspace's tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16)
                .map(|_| r.random_range(0..1_000_000u64))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = r.random_range(5..17u32);
            assert!((5..17).contains(&a));
            let b = r.random_range(3..=9usize);
            assert!((3..=9).contains(&b));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut r = StdRng::seed_from_u64(4);
        assert_eq!(r.random_range(42..=42u64), 42);
    }
}
