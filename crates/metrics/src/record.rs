//! Raw per-job and system-level measurements, populated by the simulation
//! driver through narrow callbacks.

use crate::classes::ClassAcc;
use crate::summary::MetricsAcc;
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_sim::{SimDuration, SimTime};
use hws_workload::{JobClass, JobId, JobKind, NoticeCategory};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Everything measured about one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    pub kind: JobKind,
    /// Capability/capacity class (orthogonal to `kind`; `Capacity` for
    /// every job of the paper's two-class workload).
    pub class: JobClass,
    /// Requested size (the maximum for malleable jobs).
    pub size: u32,
    pub submit: SimTime,
    pub first_start: Option<SimTime>,
    pub finish: Option<SimTime>,
    /// Times this job was preempted (kills for rigid, warnings for
    /// malleable, squatter evictions included).
    pub preemptions: u32,
    /// Shrink operations applied while running.
    pub shrinks: u32,
    /// Expand operations applied while running.
    pub expands: u32,
    /// For on-demand jobs: `first_start - submit`.
    pub start_delay: Option<SimDuration>,
    /// Advance-notice category (meaningful for on-demand jobs).
    pub category: NoticeCategory,
    /// True when the job exceeded its runtime estimate and was killed.
    pub killed: bool,
    /// Node failures this job absorbed (failure-injection extension).
    pub failures: u32,
}

impl JobRecord {
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.finish.map(|f| f.since(self.submit))
    }

    /// Queueing delay before the first start.
    pub fn wait(&self) -> Option<SimDuration> {
        self.first_start.map(|s| s.since(self.submit))
    }

    /// Bounded slowdown with the conventional 10-second runtime floor:
    /// `max(turnaround / max(runtime, 10 s), 1)`.
    pub fn bounded_slowdown(&self) -> Option<f64> {
        let tat = self.turnaround()?.as_secs() as f64;
        let run = self.finish?.since(self.first_start?).as_secs().max(10) as f64;
        Some((tat / run).max(1.0))
    }

    pub fn completed(&self) -> bool {
        self.finish.is_some() && !self.killed
    }

    fn encode_snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self.kind {
            JobKind::Rigid => 0,
            JobKind::OnDemand => 1,
            JobKind::Malleable => 2,
        });
        w.put_u8(match self.class {
            JobClass::Capacity => 0,
            JobClass::Capability => 1,
        });
        w.put_u32(self.size);
        w.put_u64(self.submit.0);
        w.put_opt_u64(self.first_start.map(|t| t.0));
        w.put_opt_u64(self.finish.map(|t| t.0));
        w.put_u32(self.preemptions);
        w.put_u32(self.shrinks);
        w.put_u32(self.expands);
        w.put_opt_u64(self.start_delay.map(|d| d.0));
        w.put_u8(match self.category {
            NoticeCategory::NoNotice => 0,
            NoticeCategory::Accurate => 1,
            NoticeCategory::Early => 2,
            NoticeCategory::Late => 3,
        });
        w.put_bool(self.killed);
        w.put_u32(self.failures);
    }

    fn decode_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let kind = match r.get_u8()? {
            0 => JobKind::Rigid,
            1 => JobKind::OnDemand,
            2 => JobKind::Malleable,
            t => return Err(r.err(format!("bad job kind tag {t}"))),
        };
        let class = match r.get_u8()? {
            0 => JobClass::Capacity,
            1 => JobClass::Capability,
            t => return Err(r.err(format!("bad job class tag {t}"))),
        };
        let size = r.get_u32()?;
        let submit = SimTime(r.get_u64()?);
        let first_start = r.get_opt_u64()?.map(SimTime);
        let finish = r.get_opt_u64()?.map(SimTime);
        let preemptions = r.get_u32()?;
        let shrinks = r.get_u32()?;
        let expands = r.get_u32()?;
        let start_delay = r.get_opt_u64()?.map(SimDuration);
        let category = match r.get_u8()? {
            0 => NoticeCategory::NoNotice,
            1 => NoticeCategory::Accurate,
            2 => NoticeCategory::Early,
            3 => NoticeCategory::Late,
            t => return Err(r.err(format!("bad notice category tag {t}"))),
        };
        let killed = r.get_bool()?;
        let failures = r.get_u32()?;
        Ok(JobRecord {
            kind,
            class,
            size,
            submit,
            first_start,
            finish,
            preemptions,
            shrinks,
            expands,
            start_delay,
            category,
            killed,
            failures,
        })
    }
}

/// What happens to a job's record once the job retires.
// One `Retention` lives per `Recorder` (one per run), so the unused
// bytes a `Retain`-mode recorder carries for the `Stream` payload are
// irrelevant; boxing would only add an indirection on the fold path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Retention {
    /// Keep every record for the run's lifetime (the classic mode: CSV
    /// export, per-job inspection, batch metric folds).
    Retain,
    /// Fold records into the metric accumulators as jobs retire, in job-id
    /// order, and drop them — O(active jobs) resident memory.
    ///
    /// Bitwise equality with [`Retention::Retain`] rests on two facts:
    /// submissions arrive in ascending id order (asserted), and a record
    /// is folded only once every smaller id has been folded — so the float
    /// summation sequence is exactly the batch fold's id-ordered sequence.
    Stream {
        acc: MetricsAcc,
        classes: ClassAcc,
        /// Retired records waiting for every smaller id to retire.
        done: BTreeMap<JobId, JobRecord>,
        /// Submitted-but-not-retired ids; the minimum blocks the fold.
        live: BTreeSet<JobId>,
        /// Largest id submitted so far (ascending-order assert).
        last_id: Option<JobId>,
        /// Records folded and dropped so far.
        folded: u64,
    },
}

/// Collects measurements during one simulation run.
#[derive(Debug, Clone)]
pub struct Recorder {
    pub system_size: u32,
    retention: Retention,
    records: HashMap<JobId, JobRecord>,
    /// Node-seconds any job occupied (work + setup + checkpoint + drain).
    occupied_node_seconds: u128,
    /// Node-seconds of computation discarded because of preemption.
    wasted_node_seconds: u128,
    first_submit: Option<SimTime>,
    last_finish: Option<SimTime>,
    /// Wall-clock cost of each scheduler decision (Observation 10).
    decision_nanos: Vec<u64>,
    /// Any capability-class job submitted? Lets two-class runs skip the
    /// per-class breakdown entirely.
    saw_capability: bool,
}

impl Recorder {
    pub fn new(system_size: u32) -> Self {
        Recorder {
            system_size,
            retention: Retention::Retain,
            records: HashMap::new(),
            occupied_node_seconds: 0,
            wasted_node_seconds: 0,
            first_submit: None,
            last_finish: None,
            decision_nanos: Vec::new(),
            saw_capability: false,
        }
    }

    /// A recorder that folds each job's record into the metric
    /// accumulators when the job [retires](Recorder::retire) and drops it,
    /// keeping resident memory O(active jobs). `instant_threshold` must
    /// match the one later passed to `Metrics::compute`.
    ///
    /// Requires submissions in ascending job-id order (asserted) — the
    /// order traces are numbered in. Per-job queries (`get`, `jobs_csv`)
    /// only see jobs not yet folded.
    pub fn streaming(system_size: u32, instant_threshold: SimDuration) -> Self {
        let mut r = Recorder::new(system_size);
        r.retention = Retention::Stream {
            acc: MetricsAcc::new(instant_threshold),
            classes: ClassAcc::default(),
            done: BTreeMap::new(),
            live: BTreeSet::new(),
            last_id: None,
            folded: 0,
        };
        r
    }

    /// Declare `id`'s record final: no further callback will reference it.
    /// A no-op when retaining; in streaming mode the record folds into the
    /// accumulators as soon as every smaller id has also retired.
    pub fn retire(&mut self, id: JobId) {
        if let Retention::Stream {
            acc,
            classes,
            done,
            live,
            folded,
            ..
        } = &mut self.retention
        {
            let r = self
                .records
                .remove(&id)
                .unwrap_or_else(|| panic!("{id} retired but never submitted"));
            live.remove(&id);
            done.insert(id, r);
            // Fold the ready prefix: everything below the smallest live id
            // (all smaller ids were submitted earlier and have retired).
            while let Some(entry) = done.first_entry() {
                if live.first().is_some_and(|l| l < entry.key()) {
                    break;
                }
                let (_, r) = entry.remove_entry();
                acc.push(&r);
                classes.push(&r);
                *folded += 1;
            }
        }
    }

    /// The streaming fold of retired records, when in streaming mode.
    pub(crate) fn metrics_acc(&self) -> Option<&MetricsAcc> {
        match &self.retention {
            Retention::Stream { acc, .. } => Some(acc),
            Retention::Retain => None,
        }
    }

    /// The streaming per-class fold, when in streaming mode.
    pub(crate) fn class_acc(&self) -> Option<&ClassAcc> {
        match &self.retention {
            Retention::Stream { classes, .. } => Some(classes),
            Retention::Retain => None,
        }
    }

    /// Records not yet folded into the streaming accumulators: all records
    /// when retaining; live jobs plus the fold's waiting buffer when
    /// streaming. Unordered — callers sort by id.
    pub(crate) fn unfolded(&self) -> impl Iterator<Item = (JobId, &JobRecord)> {
        let pending = match &self.retention {
            Retention::Stream { done, .. } => Some(done),
            Retention::Retain => None,
        };
        self.records.iter().map(|(id, r)| (*id, r)).chain(
            pending
                .into_iter()
                .flat_map(|d| d.iter().map(|(id, r)| (*id, r))),
        )
    }

    pub fn job_submitted(&mut self, id: JobId, kind: JobKind, size: u32, t: SimTime) {
        self.job_submitted_with_category(id, kind, size, t, NoticeCategory::NoNotice);
    }

    pub fn job_submitted_with_category(
        &mut self,
        id: JobId,
        kind: JobKind,
        size: u32,
        t: SimTime,
        category: NoticeCategory,
    ) {
        self.job_submitted_full(id, kind, JobClass::Capacity, size, t, category);
    }

    /// Full submission record, including the capability/capacity class.
    /// The narrower `job_submitted*` entry points default to
    /// [`JobClass::Capacity`].
    pub fn job_submitted_full(
        &mut self,
        id: JobId,
        kind: JobKind,
        class: JobClass,
        size: u32,
        t: SimTime,
        category: NoticeCategory,
    ) {
        self.first_submit = Some(self.first_submit.map_or(t, |f| f.min(t)));
        self.saw_capability |= class == JobClass::Capability;
        if let Retention::Stream { live, last_id, .. } = &mut self.retention {
            assert!(
                last_id.is_none_or(|p| p < id),
                "streaming recorder requires ascending job-id submissions ({id} after {last_id:?})"
            );
            *last_id = Some(id);
            live.insert(id);
        }
        self.records.entry(id).or_insert(JobRecord {
            kind,
            class,
            size,
            submit: t,
            first_start: None,
            finish: None,
            preemptions: 0,
            shrinks: 0,
            expands: 0,
            start_delay: None,
            category,
            killed: false,
            failures: 0,
        });
    }

    pub fn job_failed(&mut self, id: JobId) {
        self.rec(id).failures += 1;
    }

    pub fn job_started(&mut self, id: JobId, t: SimTime) {
        let r = self.rec(id);
        if r.first_start.is_none() {
            r.first_start = Some(t);
            let delay = t.since(r.submit);
            if r.kind == JobKind::OnDemand {
                r.start_delay = Some(delay);
            }
        }
    }

    pub fn job_preempted(&mut self, id: JobId) {
        self.rec(id).preemptions += 1;
    }

    pub fn job_shrunk(&mut self, id: JobId) {
        self.rec(id).shrinks += 1;
    }

    pub fn job_expanded(&mut self, id: JobId) {
        self.rec(id).expands += 1;
    }

    pub fn job_finished(&mut self, id: JobId, t: SimTime) {
        self.rec(id).finish = Some(t);
        self.last_finish = Some(self.last_finish.map_or(t, |f| f.max(t)));
    }

    pub fn job_killed(&mut self, id: JobId, t: SimTime) {
        let r = self.rec(id);
        r.finish = Some(t);
        r.killed = true;
        self.last_finish = Some(self.last_finish.map_or(t, |f| f.max(t)));
    }

    /// Account `nodes × dur` of node occupancy.
    pub fn add_occupancy(&mut self, nodes: u32, dur: SimDuration) {
        self.occupied_node_seconds += u128::from(nodes) * u128::from(dur.as_secs());
    }

    /// Account computation discarded due to preemption.
    pub fn add_waste(&mut self, nodes: u32, dur: SimDuration) {
        self.wasted_node_seconds += u128::from(nodes) * u128::from(dur.as_secs());
    }

    /// Record the wall-clock cost of one mechanism decision.
    pub fn add_decision(&mut self, elapsed: std::time::Duration) {
        self.decision_nanos.push(elapsed.as_nanos() as u64);
    }

    fn rec(&mut self, id: JobId) -> &mut JobRecord {
        self.records
            .get_mut(&id)
            .unwrap_or_else(|| panic!("{id} was never submitted"))
    }

    pub fn get(&self, id: JobId) -> Option<&JobRecord> {
        self.records.get(&id)
    }

    pub fn records(&self) -> impl Iterator<Item = (&JobId, &JobRecord)> {
        self.records.iter()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn occupied_node_seconds(&self) -> u128 {
        self.occupied_node_seconds
    }

    pub fn wasted_node_seconds(&self) -> u128 {
        self.wasted_node_seconds
    }

    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        Some((self.first_submit?, self.last_finish?))
    }

    pub fn decision_nanos(&self) -> &[u64] {
        &self.decision_nanos
    }

    /// Whether any capability-class job was submitted — an O(1) guard so
    /// two-class runs never pay for a per-class breakdown.
    pub fn saw_capability(&self) -> bool {
        self.saw_capability
    }

    /// Serialize a **retaining** recorder: every record (sorted by job
    /// id), the occupancy/waste accumulators, the run span, and the
    /// decision-cost samples, byte-exact. Streaming recorders hold partial
    /// float folds that cannot round-trip losslessly mid-stream, so the
    /// live scheduler service (the snapshot consumer) always retains.
    ///
    /// # Panics
    ///
    /// Panics when the recorder is in streaming mode.
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        assert!(
            matches!(self.retention, Retention::Retain),
            "snapshotting a streaming recorder is not supported"
        );
        w.put_u32(self.system_size);
        let mut ids: Vec<JobId> = self.records.keys().copied().collect();
        ids.sort();
        w.put_len(ids.len());
        for id in ids {
            w.put_u64(id.0);
            self.records[&id].encode_snap(w);
        }
        w.put_u64(self.occupied_node_seconds as u64);
        w.put_u64((self.occupied_node_seconds >> 64) as u64);
        w.put_u64(self.wasted_node_seconds as u64);
        w.put_u64((self.wasted_node_seconds >> 64) as u64);
        w.put_opt_u64(self.first_submit.map(|t| t.0));
        w.put_opt_u64(self.last_finish.map(|t| t.0));
        w.put_len(self.decision_nanos.len());
        for n in &self.decision_nanos {
            w.put_u64(*n);
        }
        w.put_bool(self.saw_capability);
    }

    /// Decode a recorder written by [`Recorder::encode_snap`]. Malformed
    /// input errors, never panics.
    pub fn decode_snap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let system_size = r.get_u32()?;
        let n = r.get_len()?;
        let mut records = HashMap::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = r.get_u64()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(r.err(format!("job records not strictly sorted at {id}")));
            }
            prev = Some(id);
            records.insert(JobId(id), JobRecord::decode_snap(r)?);
        }
        let occupied = u128::from(r.get_u64()?) | (u128::from(r.get_u64()?) << 64);
        let wasted = u128::from(r.get_u64()?) | (u128::from(r.get_u64()?) << 64);
        let first_submit = r.get_opt_u64()?.map(SimTime);
        let last_finish = r.get_opt_u64()?.map(SimTime);
        let n_dec = r.get_len()?;
        if n_dec > r.remaining() / 8 {
            return Err(r.err(format!("implausible decision count {n_dec}")));
        }
        let mut decision_nanos = Vec::with_capacity(n_dec);
        for _ in 0..n_dec {
            decision_nanos.push(r.get_u64()?);
        }
        let saw_capability = r.get_bool()?;
        Ok(Recorder {
            system_size,
            retention: Retention::Retain,
            records,
            occupied_node_seconds: occupied,
            wasted_node_seconds: wasted,
            first_submit,
            last_finish,
            decision_nanos,
            saw_capability,
        })
    }

    /// Export one CSV row per job (sorted by id) for external analysis.
    pub fn jobs_csv(&self) -> String {
        let mut rows: Vec<(&JobId, &JobRecord)> = self.records.iter().collect();
        rows.sort_by_key(|(id, _)| **id);
        let mut out = String::from(
            "id,kind,category,size,submit,first_start,finish,wait_s,turnaround_s,\
preemptions,shrinks,expands,failures,killed,class\n",
        );
        for (id, r) in rows {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                id.0,
                r.kind.label(),
                r.category.label(),
                r.size,
                r.submit.as_secs(),
                r.first_start
                    .map_or(String::new(), |t| t.as_secs().to_string()),
                r.finish.map_or(String::new(), |t| t.as_secs().to_string()),
                r.wait().map_or(String::new(), |d| d.as_secs().to_string()),
                r.turnaround()
                    .map_or(String::new(), |d| d.as_secs().to_string()),
                r.preemptions,
                r.shrinks,
                r.expands,
                r.failures,
                r.killed,
                r.class.label(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lifecycle_is_tracked() {
        let mut r = Recorder::new(100);
        r.job_submitted(JobId(1), JobKind::Rigid, 10, t(100));
        r.job_started(JobId(1), t(200));
        r.job_preempted(JobId(1));
        r.job_started(JobId(1), t(400)); // restart does not move first_start
        r.job_finished(JobId(1), t(900));
        let rec = r.get(JobId(1)).unwrap();
        assert_eq!(rec.first_start, Some(t(200)));
        assert_eq!(rec.preemptions, 1);
        assert_eq!(rec.turnaround(), Some(SimDuration::from_secs(800)));
        assert!(rec.completed());
        assert_eq!(r.span(), Some((t(100), t(900))));
    }

    #[test]
    fn on_demand_start_delay() {
        let mut r = Recorder::new(100);
        r.job_submitted(JobId(2), JobKind::OnDemand, 10, t(1_000));
        r.job_started(JobId(2), t(1_090));
        assert_eq!(
            r.get(JobId(2)).unwrap().start_delay,
            Some(SimDuration::from_secs(90))
        );
    }

    #[test]
    fn rigid_jobs_have_no_start_delay_metric() {
        let mut r = Recorder::new(100);
        r.job_submitted(JobId(3), JobKind::Rigid, 10, t(0));
        r.job_started(JobId(3), t(50));
        assert_eq!(r.get(JobId(3)).unwrap().start_delay, None);
    }

    #[test]
    fn occupancy_and_waste_accumulate() {
        let mut r = Recorder::new(100);
        r.add_occupancy(10, SimDuration::from_secs(100));
        r.add_occupancy(5, SimDuration::from_secs(10));
        r.add_waste(3, SimDuration::from_secs(7));
        assert_eq!(r.occupied_node_seconds(), 1_050);
        assert_eq!(r.wasted_node_seconds(), 21);
    }

    #[test]
    fn killed_jobs_are_not_completed() {
        let mut r = Recorder::new(100);
        r.job_submitted(JobId(4), JobKind::Rigid, 10, t(0));
        r.job_started(JobId(4), t(1));
        r.job_killed(JobId(4), t(100));
        let rec = r.get(JobId(4)).unwrap();
        assert!(rec.killed);
        assert!(!rec.completed());
        assert!(rec.finish.is_some());
    }

    #[test]
    #[should_panic(expected = "never submitted")]
    fn starting_unknown_job_panics() {
        let mut r = Recorder::new(1);
        r.job_started(JobId(9), t(0));
    }

    #[test]
    fn jobs_csv_exports_rows() {
        let mut r = Recorder::new(10);
        r.job_submitted(JobId(1), JobKind::Rigid, 4, t(100));
        r.job_started(JobId(1), t(200));
        r.job_finished(JobId(1), t(500));
        r.job_submitted(JobId(0), JobKind::OnDemand, 2, t(50));
        let csv = r.jobs_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("id,kind,category"));
        // Sorted by id: job 0 first, never started → empty fields.
        assert!(lines[1].starts_with("0,on-demand,no-notice,2,50,,"));
        assert!(lines[2].starts_with("1,rigid,no-notice,4,100,200,500,100,400,"));
    }

    #[test]
    fn decisions_recorded() {
        let mut r = Recorder::new(1);
        r.add_decision(std::time::Duration::from_micros(5));
        assert_eq!(r.decision_nanos(), &[5_000]);
    }

    fn busy_recorder() -> Recorder {
        let mut r = Recorder::new(128);
        r.job_submitted_full(
            JobId(3),
            JobKind::OnDemand,
            JobClass::Capability,
            16,
            t(50),
            NoticeCategory::Early,
        );
        r.job_submitted(JobId(7), JobKind::Malleable, 32, t(60));
        r.job_started(JobId(3), t(55));
        r.job_started(JobId(7), t(80));
        r.job_shrunk(JobId(7));
        r.job_expanded(JobId(7));
        r.job_preempted(JobId(7));
        r.job_failed(JobId(7));
        r.job_finished(JobId(3), t(500));
        r.job_killed(JobId(7), t(700));
        r.add_occupancy(16, SimDuration::from_secs(445));
        r.add_waste(4, SimDuration::from_secs(20));
        r.add_decision(std::time::Duration::from_nanos(1234));
        r
    }

    fn encode(r: &Recorder) -> Vec<u8> {
        let mut w = hws_sim::SnapWriter::new();
        r.encode_snap(&mut w);
        w.into_bytes()
    }

    #[test]
    fn snap_codec_round_trips_every_field() {
        let r = busy_recorder();
        let bytes = encode(&r);
        let mut rd = hws_sim::SnapReader::new(&bytes);
        let back = Recorder::decode_snap(&mut rd).expect("decodes");
        rd.expect_end().expect("consumed exactly");
        assert_eq!(back.system_size, r.system_size);
        assert_eq!(back.get(JobId(3)), r.get(JobId(3)));
        assert_eq!(back.get(JobId(7)), r.get(JobId(7)));
        assert_eq!(back.occupied_node_seconds(), r.occupied_node_seconds());
        assert_eq!(back.wasted_node_seconds(), r.wasted_node_seconds());
        assert_eq!(back.span(), r.span());
        assert_eq!(back.decision_nanos(), r.decision_nanos());
        assert_eq!(back.saw_capability(), r.saw_capability());
        assert_eq!(encode(&back), bytes, "re-encode must reproduce the bytes");
        assert_eq!(back.jobs_csv(), r.jobs_csv());
    }

    #[test]
    fn snap_decode_rejects_truncation() {
        let bytes = encode(&busy_recorder());
        for cut in 0..bytes.len() {
            let mut rd = hws_sim::SnapReader::new(&bytes[..cut]);
            assert!(
                Recorder::decode_snap(&mut rd).is_err() || rd.expect_end().is_err(),
                "truncation at {cut} must not decode cleanly"
            );
        }
    }

    #[test]
    #[should_panic(expected = "streaming recorder")]
    fn snapshotting_streaming_recorder_panics() {
        let r = Recorder::streaming(10, SimDuration::from_secs(60));
        let mut w = hws_sim::SnapWriter::new();
        r.encode_snap(&mut w);
    }
}
