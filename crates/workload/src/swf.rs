//! Import of the **Standard Workload Format** (SWF) used by the Parallel
//! Workloads Archive — the de-facto interchange format for real HPC traces
//! (the Theta trace the paper uses is Cobalt-native, but its published
//! statistics line up with what an SWF export would carry).
//!
//! An SWF line has 18 whitespace-separated fields; this importer consumes
//! the ones the hybrid-scheduling model needs:
//!
//! | # | field | use |
//! |---|-------|-----|
//! | 1 | job number | id (re-labelled in submit order) |
//! | 2 | submit time (s) | `submit` |
//! | 4 | run time (s) | `work` |
//! | 5 | allocated processors | `size` (fallback: field 8) |
//! | 8 | requested processors | `size` when field 5 is absent |
//! | 9 | requested time (s) | `estimate` |
//! | 11 | status | skip non-completed jobs (configurable) |
//! | 13 | group id | project (fallback: field 12, user id) |
//!
//! SWF traces do not record job *types* — real systems treat everything as
//! rigid batch — so the importer applies the paper's §IV-A protocol: group
//! jobs by project, assign whole projects to on-demand / rigid / malleable
//! classes at the configured ratios, reassign oversized on-demand jobs,
//! and synthesise advance notices from the requested mix. All of it is
//! deterministic in the import seed.

use crate::gen::NoticeMix;
use crate::ids::{JobId, ProjectId};
use crate::job::{JobKind, JobSpec, NoticeCategory, NoticeSpec};
use crate::trace::Trace;
use hws_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Import options.
#[derive(Debug, Clone)]
pub struct SwfImportConfig {
    /// Total nodes of the target system. Jobs wider than this are clamped.
    pub system_size: u32,
    /// Processors per node (SWF counts processors; Theta-style scheduling
    /// is node-granular). Sizes are divided by this and rounded up.
    pub procs_per_node: u32,
    /// Drop jobs whose SWF status is not 1 (completed).
    pub completed_only: bool,
    /// Fraction of projects assigned to each class (paper §IV-B defaults).
    pub od_project_frac: f64,
    pub rigid_project_frac: f64,
    /// Advance-notice mix for the synthesised on-demand notices.
    pub notice_mix: NoticeMix,
    /// Notice lead range.
    pub notice_lead: (SimDuration, SimDuration),
    /// Late-arrival window.
    pub late_window: SimDuration,
    /// Malleable minimum-size fraction.
    pub malleable_min_frac: f64,
    /// Setup-cost fractions (rigid / malleable), sampled uniformly.
    pub rigid_setup_frac: (f64, f64),
    pub malleable_setup_frac: (f64, f64),
    /// Seed for the type/notice assignment.
    pub seed: u64,
}

impl Default for SwfImportConfig {
    fn default() -> Self {
        SwfImportConfig {
            system_size: 4_392,
            procs_per_node: 1,
            completed_only: true,
            od_project_frac: 0.10,
            rigid_project_frac: 0.60,
            notice_mix: NoticeMix::W5,
            notice_lead: (SimDuration::from_mins(15), SimDuration::from_mins(30)),
            late_window: SimDuration::from_mins(30),
            malleable_min_frac: 0.2,
            rigid_setup_frac: (0.05, 0.10),
            malleable_setup_frac: (0.0, 0.05),
            seed: 0,
        }
    }
}

/// Import errors carry the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

struct RawJob {
    submit: u64,
    runtime: u64,
    size: u32,
    estimate: u64,
    project: u32,
}

/// Parse SWF text into a [`Trace`], applying the paper's type-assignment
/// protocol. Comment lines (`;`) are skipped; malformed lines are errors.
pub fn import_swf(text: &str, cfg: &SwfImportConfig) -> Result<Trace, SwfError> {
    let mut raws: Vec<RawJob> = Vec::new();
    let mut horizon = 0u64;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 13 {
            return Err(SwfError {
                line: ln + 1,
                message: format!("expected ≥13 fields, got {}", f.len()),
            });
        }
        let num = |i: usize, what: &str| -> Result<i64, SwfError> {
            f[i].parse::<f64>().map(|v| v as i64).map_err(|e| SwfError {
                line: ln + 1,
                message: format!("{what}: {e}"),
            })
        };
        let status = num(10, "status")?;
        if cfg.completed_only && status != 1 && status != -1 {
            continue;
        }
        let submit = num(1, "submit")?.max(0) as u64;
        let runtime = num(3, "runtime")?;
        if runtime <= 0 {
            continue; // cancelled before start
        }
        let alloc = num(4, "allocated procs")?;
        let req = num(7, "requested procs")?;
        let procs = if alloc > 0 { alloc } else { req };
        if procs <= 0 {
            continue;
        }
        let estimate = num(8, "requested time")?;
        let gid = num(12, "group id")?;
        let uid = num(11, "user id")?;
        let project = if gid > 0 { gid } else { uid.max(0) } as u32;
        let size = ((procs as u64).div_ceil(u64::from(cfg.procs_per_node.max(1))) as u32)
            .clamp(1, cfg.system_size);
        raws.push(RawJob {
            submit,
            runtime: runtime as u64,
            size,
            estimate: if estimate > 0 {
                estimate as u64
            } else {
                runtime as u64
            },
            project,
        });
        horizon = horizon.max(submit);
    }

    // Assign classes per project (§IV-A protocol).
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5DEE_CE66);
    let mut projects: Vec<u32> = {
        let mut set: Vec<u32> = raws.iter().map(|r| r.project).collect();
        set.sort_unstable();
        set.dedup();
        set
    };
    for i in (1..projects.len()).rev() {
        let j = rng.random_range(0..=i);
        projects.swap(i, j);
    }
    let n_od = ((projects.len() as f64) * cfg.od_project_frac)
        .round()
        .max(1.0) as usize;
    let n_rigid = ((projects.len() as f64) * cfg.rigid_project_frac).round() as usize;
    let kind_of: HashMap<u32, JobKind> = projects
        .iter()
        .enumerate()
        .map(|(rank, &p)| {
            let kind = if rank < n_od {
                JobKind::OnDemand
            } else if rank < n_od + n_rigid {
                JobKind::Rigid
            } else {
                JobKind::Malleable
            };
            (p, kind)
        })
        .collect();

    let mut jobs: Vec<JobSpec> = Vec::with_capacity(raws.len());
    for (i, r) in raws.into_iter().enumerate() {
        let mut kind = kind_of.get(&r.project).copied().unwrap_or(JobKind::Rigid);
        if kind == JobKind::OnDemand && r.size > cfg.system_size / 2 {
            kind = if rng.random_range(0.0..1.0) < 0.5 {
                JobKind::Rigid
            } else {
                JobKind::Malleable
            };
        }
        let setup_range = match kind {
            JobKind::Rigid => cfg.rigid_setup_frac,
            JobKind::Malleable => cfg.malleable_setup_frac,
            JobKind::OnDemand => (0.0, 0.0),
        };
        let frac = if setup_range.1 > setup_range.0 {
            rng.random_range(setup_range.0..setup_range.1)
        } else {
            setup_range.0
        };
        let min_size = if kind == JobKind::Malleable {
            ((r.size as f64 * cfg.malleable_min_frac).ceil() as u32).clamp(1, r.size)
        } else {
            r.size
        };
        let (submit, notice, category) = if kind == JobKind::OnDemand {
            synthesize_notice(&mut rng, cfg, SimTime::from_secs(r.submit))
        } else {
            (SimTime::from_secs(r.submit), None, NoticeCategory::NoNotice)
        };
        jobs.push(JobSpec {
            id: JobId(i as u64),
            project: ProjectId(r.project),
            kind,
            submit,
            size: r.size,
            min_size,
            work: SimDuration::from_secs(r.runtime),
            estimate: SimDuration::from_secs(r.estimate.max(r.runtime)),
            setup: SimDuration::from_secs((r.runtime as f64 * frac).round() as u64),
            notice,
            category,
        });
    }
    jobs.sort_by_key(|j| (j.submit, j.id));
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = JobId(i as u64);
    }
    Ok(Trace::new(
        cfg.system_size,
        SimDuration::from_secs(horizon + 1),
        jobs,
    ))
}

fn synthesize_notice(
    rng: &mut StdRng,
    cfg: &SwfImportConfig,
    t_gen: SimTime,
) -> (SimTime, Option<NoticeSpec>, NoticeCategory) {
    let idx = crate::dist::weighted_index(&cfg.notice_mix.weights(), rng);
    let lead_s = rng.random_range(cfg.notice_lead.0.as_secs()..=cfg.notice_lead.1.as_secs());
    let predicted = t_gen + SimDuration::from_secs(lead_s);
    let spec = |pred| {
        Some(NoticeSpec {
            notice_time: t_gen,
            predicted_arrival: pred,
        })
    };
    match NoticeCategory::ALL[idx] {
        NoticeCategory::NoNotice => (t_gen, None, NoticeCategory::NoNotice),
        NoticeCategory::Accurate => (predicted, spec(predicted), NoticeCategory::Accurate),
        NoticeCategory::Early => {
            let arrive = t_gen + SimDuration::from_secs(rng.random_range(0..lead_s));
            (arrive, spec(predicted), NoticeCategory::Early)
        }
        NoticeCategory::Late => {
            let slack = rng.random_range(1..=cfg.late_window.as_secs());
            (
                predicted + SimDuration::from_secs(slack),
                spec(predicted),
                NoticeCategory::Late,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three jobs in classic SWF: the second failed (status 0), the third
    /// uses requested procs because allocated is -1.
    const SAMPLE: &str = "\
; SWF sample
; UnixStartTime: 0
  1   100  10  3600  128 -1 -1  128  7200 -1 1 7 3 1 1 -1 -1 -1
  2   200   5  1800   64 -1 -1   64  3600 -1 0 8 4 1 1 -1 -1 -1
  3   300  20  5400   -1 -1 -1  256  5400 -1 1 9 5 1 1 -1 -1 -1
";

    fn cfg() -> SwfImportConfig {
        SwfImportConfig {
            system_size: 512,
            ..Default::default()
        }
    }

    #[test]
    fn parses_completed_jobs_only() {
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        assert_eq!(tr.len(), 2); // job 2 failed
        assert_eq!(tr.system_size, 512);
        assert!(tr.validate().is_ok());
    }

    #[test]
    fn keeps_failed_jobs_when_asked() {
        let mut c = cfg();
        c.completed_only = false;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn field_mapping_is_correct() {
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        // First job (SWF #1): submit 100, 128 procs, 3600 s run, 7200 est.
        let j = tr
            .jobs
            .iter()
            .find(|j| j.work.as_secs() == 3_600)
            .expect("present");
        assert_eq!(j.size, 128);
        assert_eq!(j.estimate.as_secs(), 7_200);
        // Third job: allocated -1 → requested 256 used.
        let k = tr
            .jobs
            .iter()
            .find(|j| j.work.as_secs() == 5_400)
            .expect("present");
        assert_eq!(k.size, 256);
    }

    #[test]
    fn procs_per_node_scales_sizes() {
        let mut c = cfg();
        c.procs_per_node = 64;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        let j = tr
            .jobs
            .iter()
            .find(|j| j.work.as_secs() == 3_600)
            .expect("present");
        assert_eq!(j.size, 2); // ceil(128/64)
    }

    #[test]
    fn estimate_never_below_runtime() {
        // Job 3 requests exactly its runtime; importer keeps est ≥ work.
        let tr = import_swf(SAMPLE, &cfg()).expect("parse");
        for j in &tr.jobs {
            assert!(j.estimate >= j.work);
        }
    }

    #[test]
    fn type_assignment_is_deterministic_in_seed() {
        let a = import_swf(SAMPLE, &cfg()).expect("parse");
        let b = import_swf(SAMPLE, &cfg()).expect("parse");
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = import_swf("1 2 3\n", &cfg()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("fields"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let tr = import_swf("; just a comment\n\n", &cfg()).expect("parse");
        assert!(tr.is_empty());
    }

    #[test]
    fn imported_trace_replays() {
        // End-to-end sanity: an imported trace runs through the validator
        // (the full scheduler replay is covered by integration tests).
        let mut c = cfg();
        c.od_project_frac = 1.0;
        c.rigid_project_frac = 0.0;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        assert!(tr.validate().is_ok());
        // All projects on-demand → both jobs are on-demand (none oversized).
        assert_eq!(tr.count_kind(JobKind::OnDemand), 2);
    }

    #[test]
    fn oversized_on_demand_jobs_are_reassigned() {
        let mut c = cfg();
        c.system_size = 300; // 256-proc job is > half of 300
        c.od_project_frac = 1.0;
        c.rigid_project_frac = 0.0;
        let tr = import_swf(SAMPLE, &c).expect("parse");
        let big = tr.jobs.iter().find(|j| j.size == 256).expect("present");
        assert_ne!(big.kind, JobKind::OnDemand);
    }
}
