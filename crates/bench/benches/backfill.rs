//! Microbench of the EASY backfilling kernel (shadow computation and
//! admission tests) at realistic queue depths — part of the §II-C "quick
//! decision making" requirement alongside `decision_latency`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hws_core::backfill::{compute_shadow, may_backfill};
use hws_sim::SimTime;
use std::hint::black_box;

fn releases(n: usize) -> Vec<(SimTime, u32)> {
    (0..n)
        .map(|i| {
            (
                SimTime::from_secs(
                    ((i as u64).wrapping_mul(6_364_136_223_846_793_005) % 86_400) + 1,
                ),
                8 + (i as u32 * 31) % 256,
            )
        })
        .collect()
}

fn bench_backfill(c: &mut Criterion) {
    let mut g = c.benchmark_group("backfill");

    for n in [64usize, 400, 1_000] {
        g.bench_function(format!("compute_shadow/{n}_running"), |b| {
            let r = releases(n);
            b.iter_batched(
                || r.clone(),
                |mut r| black_box(compute_shadow(&mut r, 256, 2_048)),
                BatchSize::SmallInput,
            )
        });
    }

    g.bench_function("admission_test/1000_candidates", |b| {
        let mut r = releases(400);
        let shadow = compute_shadow(&mut r, 256, 2_048);
        b.iter(|| {
            let mut admitted = 0u32;
            for i in 0..1_000u32 {
                if may_backfill(
                    8 + (i * 13) % 512,
                    SimTime::from_secs(u64::from(i) * 97 % 90_000),
                    1_024,
                    shadow,
                ) {
                    admitted += 1;
                }
            }
            black_box(admitted)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_backfill);
criterion_main!(benches);
