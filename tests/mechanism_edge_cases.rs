//! Edge-case integration tests for the notice/arrival machinery: early
//! arrivals cancelling CUP plans, late arrivals after the reservation
//! timeout, partial expand-backs, and baseline semantics.

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;

fn t(s: u64) -> T {
    T::from_secs(s)
}

fn d(s: u64) -> D {
    D::from_secs(s)
}

#[test]
fn early_arrival_cancels_cup_plans() {
    // CUP plans to preempt the rigid job right before the predicted
    // arrival; the job arrives much earlier, while plenty of nodes are
    // free — the planned preemption must not fire afterwards.
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(60)
            .work(d(40_000))
            .estimate(d(40_000))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(t(2_100)) // early: predicted is 3_600
            .size(40)
            .work(d(500))
            .estimate(d(1_000))
            .notice(t(2_000), t(3_600))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let out = Simulator::run_trace(
        &SimConfig::with_mechanism(Mechanism::CUP_PAA).paranoid(),
        &trace,
    );
    assert_eq!(out.metrics.completed_jobs, 2);
    // 40 free nodes at notice time covered the request: no preemption.
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
    assert!((out.metrics.strict_instant_rate - 1.0).abs() < 1e-9);
}

#[test]
fn late_arrival_after_timeout_is_handled_as_fresh() {
    // Arrival 45 min after the prediction — past the 10-minute timeout.
    // The reservation must have been released in between (a batch job uses
    // the machine), and the late arrival is still served by preemption.
    let jobs = vec![
        JobSpecBuilder::on_demand(0)
            .submit_at(t(10_000)) // predicted 1_000, arrives at 10_000
            .size(80)
            .work(d(600))
            .estimate(d(1_200))
            .notice(t(400), t(1_000))
            .build(),
        JobSpecBuilder::rigid(1)
            .submit_at(t(2_000)) // submitted after the timeout (1_600)
            .size(100)
            .work(d(30_000))
            .estimate(d(30_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA).paranoid();
    cfg.backfill_on_reserved = false;
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, 2);
    // The rigid job started at the timeout → it was running when the OD
    // arrived → it got preempted (fresh-arrival PAA path).
    assert!((out.metrics.rigid.preemption_ratio - 1.0).abs() < 1e-9);
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
}

#[test]
fn expand_back_is_partial_when_machine_is_busy() {
    // The shrunk lender can only reclaim what is actually free when the
    // on-demand job completes: here a backfill job grabbed part of the
    // machine in the meantime.
    let jobs = vec![
        JobSpecBuilder::malleable(0)
            .size(100)
            .min_size(20)
            .work(d(40_000))
            .estimate(d(40_000))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(t(1_000))
            .size(50)
            .work(d(5_000))
            .estimate(d(6_000))
            .build(),
        // Fits exactly into the shrunk gap… and outlives the OD job.
        JobSpecBuilder::rigid(2)
            .submit_at(t(1_100))
            .size(30)
            .work(d(30_000))
            .estimate(d(30_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(2), jobs);
    let out = Simulator::run_trace(
        &SimConfig::with_mechanism(Mechanism::N_SPAA).paranoid(),
        &trace,
    );
    assert_eq!(out.metrics.completed_jobs, 3);
    // Everything completed; the malleable job must have expanded at least
    // partially after the OD finished (else its tail would be much longer).
    let rec = &out.metrics;
    assert!(rec.malleable.avg_turnaround_h > 0.0);
}

#[test]
fn baseline_runs_malleable_at_full_size() {
    // In baseline mode a malleable job behaves rigidly: it waits for its
    // full (maximum) size even when its minimum would fit now.
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .size(60)
            .work(d(10_000))
            .estimate(d(10_000))
            .build(),
        JobSpecBuilder::malleable(1)
            .submit_at(t(10))
            .size(80)
            .min_size(16)
            .work(d(1_000))
            .estimate(d(1_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let base = Simulator::run_trace(&SimConfig::baseline().paranoid(), &trace).metrics;
    // Baseline: malleable waits 10_000 s for 80 nodes → TAT ≈ 10_990 s.
    assert!(
        base.malleable.avg_turnaround_h > 3.0,
        "{}",
        base.malleable.avg_turnaround_h
    );

    let hybrid = Simulator::run_trace(
        &SimConfig::with_mechanism(Mechanism::N_PAA).paranoid(),
        &trace,
    )
    .metrics;
    // Hybrid: starts immediately on the 40 free nodes (min 16 ≤ 40): the
    // work stretches (80_000 node-s / 40 = 2_000 s) but no 10_000 s wait.
    assert!(
        hybrid.malleable.avg_turnaround_h < 1.0,
        "{}",
        hybrid.malleable.avg_turnaround_h
    );
}

#[test]
fn wfp3_policy_reorders_queue() {
    // Sanity: the WFP3 policy is exercised end-to-end without violating
    // any invariant and completes everything.
    let trace = TraceConfig::tiny().generate(13);
    let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA)
        .policy(PolicyKind::Wfp3)
        .paranoid();
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, trace.len());
}

#[test]
fn timeline_records_full_lifecycle() {
    let jobs = vec![
        JobSpecBuilder::malleable(0)
            .size(80)
            .min_size(20)
            .work(d(20_000))
            .estimate(d(20_000))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(t(1_000))
            .size(50)
            .work(d(1_000))
            .estimate(d(2_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::N_SPAA).paranoid();
    cfg.record_timeline = true;
    let out = Simulator::run_trace(&cfg, &trace);
    let tl = out.timeline.expect("timeline was requested");
    use hws_core::TimelineEvent as E;
    let kinds: Vec<&E> = tl.entries.iter().map(|(_, _, e)| e).collect();
    assert!(kinds.iter().any(|e| matches!(e, E::Submitted)));
    assert!(kinds.iter().any(|e| matches!(e, E::Started { .. })));
    assert!(
        kinds.iter().any(|e| matches!(e, E::Shrunk { .. })),
        "SPAA must shrink"
    );
    assert!(
        kinds.iter().any(|e| matches!(e, E::Expanded { .. })),
        "lease return must expand"
    );
    assert!(kinds.iter().any(|e| matches!(e, E::Finished)));
    // And the Gantt renders without panicking.
    assert!(tl.render_gantt(80).contains("J0"));
}

#[test]
fn zero_warning_makes_malleable_preemption_instantaneous() {
    let jobs = vec![
        JobSpecBuilder::malleable(0)
            .size(100)
            .min_size(90) // shrink cannot satisfy → preempt
            .work(d(20_000))
            .estimate(d(20_000))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(t(1_000))
            .size(50)
            .work(d(500))
            .estimate(d(1_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::N_SPAA).paranoid();
    cfg.malleable_warning = D::from_secs(0);
    let out = Simulator::run_trace(&cfg, &trace);
    assert_eq!(out.metrics.completed_jobs, 2);
    // With no warning the OD start is strictly immediate.
    assert!((out.metrics.strict_instant_rate - 1.0).abs() < 1e-9);
}
