//! **Federated dispatch** — the six mechanisms over 1/2/4-shard splits of
//! the same 4,392-node capacity, on the synthetic quick-scale trace and
//! the bundled `theta_quick.swf` fixture.
//!
//! The 1-shard rows are the refactor-safety oracle: a one-shard federation
//! must reproduce the single-cluster run **bitwise** — every per-seed
//! metric and engine counter is asserted equal against a plain
//! (`federation: None`) replay, for all six mechanisms on both sources.
//! Any divergence aborts non-zero, which is what CI keys on.
//!
//! Multi-shard rows exercise the real federation behavior: shard-local
//! preemption/squatting, sticky placement, cross-shard transfer refusal,
//! and rejection of jobs larger than the largest shard (reported via the
//! `killed_jobs` column — neither source kills jobs any other way at quick
//! scale). The 4-shard split additionally runs under all three built-in
//! placement policies.
//!
//! Writes `BENCH_federated.json` at the workspace root (override with
//! `HWS_FEDERATED_JSON=path`). Every recorded field is deterministic (no
//! wall-clock numbers), so the CI `baseline-parity` job compares the file
//! byte-for-byte. The committed baseline is recorded at `HWS_SCALE=quick`
//! with the default 10 seeds.
//!
//! ```text
//! HWS_SCALE=quick cargo run --release -p hws-bench --bin federated
//! ```

use hws_bench::{bundled_swf_fixture, metrics_fingerprint, seeds_from_env, Scale, TraceSource};
use hws_cluster::{ClassAffinity, FederationConfig, LeastLoaded, PlacementPolicy};
use hws_core::{Mechanism, SimConfig, SimOutcome, Simulator};
use hws_metrics::Table;
use hws_workload::{SwfImportConfig, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

const SYSTEM: u32 = 4_392;

struct Row {
    source: &'static str,
    shards: usize,
    policy: String,
    mechanism: Mechanism,
    seeds: u64,
    metrics_fingerprint: u64,
    avg_turnaround_h: f64,
    utilization: f64,
    completed_jobs: usize,
    killed_jobs: usize,
    /// Seed-0 shard breakdown (deterministic): job starts per shard.
    shard_starts: Vec<u64>,
    /// Seed-0 occupancy share of each shard's capacity over the run span.
    shard_occupancy: Vec<f64>,
}

fn policy_of(fed: &FederationConfig) -> String {
    fed.policy.name().to_string()
}

/// One (source × federation × mechanism) cell: parallel sweep, sequential
/// bitwise verification, and — for 1-shard federations — the bitwise
/// single-cluster parity oracle.
fn run_cell(
    m: Mechanism,
    source: &'static str,
    traces: &[Trace],
    fed: &FederationConfig,
    seeds: u64,
) -> Row {
    let mut cfg = SimConfig::with_mechanism(m);
    // Wall-clock decision latencies are the one non-simulated metric; drop
    // them so parallel == sequential == single-cluster holds bitwise.
    cfg.measure_decisions = false;
    let fed_cfg = cfg.clone().federated(fed.clone());

    let swept = Simulator::run_sweep_with(&fed_cfg, &(0..seeds).collect::<Vec<_>>(), |s| {
        traces[s as usize].clone()
    });
    let sequential: Vec<SimOutcome> = traces
        .iter()
        .map(|tr| Simulator::run_trace(&fed_cfg, tr))
        .collect();
    for (i, (p, s)) in swept.iter().zip(&sequential).enumerate() {
        assert_eq!(
            p.metrics,
            s.metrics,
            "{} on {source} ({} shards) seed {i}: parallel sweep diverged",
            m.name(),
            fed.shards.len()
        );
        assert_eq!(
            p.engine,
            s.engine,
            "{} seed {i}: engine stats diverged",
            m.name()
        );
    }

    if fed.shards.len() == 1 {
        // The key oracle: one shard ≡ the single-cluster path, bitwise.
        for (i, (tr, f)) in traces.iter().zip(&sequential).enumerate() {
            let plain = Simulator::run_trace(&cfg, tr);
            assert_eq!(
                f.metrics,
                plain.metrics,
                "{} on {source} seed {i}: 1-shard federation diverged from the single-cluster path",
                m.name()
            );
            assert_eq!(
                f.engine,
                plain.engine,
                "{} on {source} seed {i}: engine stats diverged from the single-cluster path",
                m.name()
            );
            assert!(plain.shards.is_none() && f.shards.is_some());
        }
    }

    let shards0 = sequential[0].shards.as_ref().expect("federated run");
    let span_secs = (sequential[0].metrics.span_hours * 3_600.0).round() as u64;
    Row {
        source,
        shards: fed.shards.len(),
        policy: policy_of(fed),
        mechanism: m,
        seeds,
        metrics_fingerprint: metrics_fingerprint(&sequential),
        avg_turnaround_h: sequential[0].metrics.avg_turnaround_h,
        utilization: sequential[0].metrics.utilization,
        completed_jobs: sequential[0].metrics.completed_jobs,
        killed_jobs: sequential[0].metrics.killed_jobs,
        shard_starts: shards0.iter().map(|s| s.jobs_started).collect(),
        shard_occupancy: shards0.iter().map(|s| s.occupancy(span_secs)).collect(),
    }
}

fn main() {
    let seeds = seeds_from_env();
    let synthetic = TraceSource::Synthetic(Scale::Quick.trace_config());
    let fixture = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default());
    let sources: [(&'static str, TraceSource); 2] =
        [("synthetic", synthetic), ("theta_quick.swf", fixture)];

    // 1/2/4-shard even splits under first-fit, plus the alternative
    // placement policies on the widest split.
    let mut federations: Vec<FederationConfig> = vec![
        FederationConfig::even_split(1, SYSTEM),
        FederationConfig::even_split(2, SYSTEM),
        FederationConfig::even_split(4, SYSTEM),
    ];
    for policy in [
        Arc::new(LeastLoaded) as Arc<dyn PlacementPolicy>,
        Arc::new(ClassAffinity) as Arc<dyn PlacementPolicy>,
    ] {
        let mut f = FederationConfig::even_split(4, SYSTEM);
        f.policy = policy;
        federations.push(f);
    }

    let mut rows: Vec<Row> = Vec::new();
    for (label, source) in &sources {
        let traces: Vec<Trace> = (0..seeds).map(|s| source.make_trace(s)).collect();
        eprintln!(
            "federated: {label} ({}), {} jobs x {seeds} seeds",
            source.describe(),
            traces[0].len()
        );
        for fed in &federations {
            for m in Mechanism::ALL_SIX {
                let row = run_cell(m, label, &traces, fed, seeds);
                eprintln!(
                    "  {:>1} shard(s) {:<13} {:<8} fp {:016x}  done {:>5}  rejected {:>3}{}",
                    row.shards,
                    row.policy,
                    m.name(),
                    row.metrics_fingerprint,
                    row.completed_jobs,
                    row.killed_jobs,
                    if row.shards == 1 {
                        "  1-shard == single-cluster OK"
                    } else {
                        ""
                    }
                );
                rows.push(row);
            }
        }
    }

    let mut t = Table::new(vec![
        "source",
        "shards",
        "policy",
        "mechanism",
        "TAT (h)",
        "util %",
        "done",
        "rejected",
        "starts/shard",
    ]);
    for r in &rows {
        t.row(vec![
            r.source.to_string(),
            r.shards.to_string(),
            r.policy.clone(),
            r.mechanism.name().to_string(),
            format!("{:.1}", r.avg_turnaround_h),
            format!("{:.1}", r.utilization * 100.0),
            r.completed_jobs.to_string(),
            r.killed_jobs.to_string(),
            format!("{:?}", r.shard_starts),
        ]);
    }
    println!("FEDERATED DISPATCH ({seeds} seeds, 1-shard bitwise-verified vs single cluster)");
    println!("{}", t.render());

    let json_path = std::env::var("HWS_FEDERATED_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    match std::fs::write(&json_path, rows_to_json(&rows)) {
        Ok(()) => println!("wrote {} rows to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Workspace root, next to the other `BENCH_*.json` baselines.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_federated.json")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let occ: Vec<String> = r.shard_occupancy.iter().map(|&x| json_f64(x)).collect();
        let _ = writeln!(
            out,
            "  {{\"source\": \"{}\", \"shards\": {}, \"policy\": \"{}\", \"mechanism\": \"{}\", \
             \"seeds\": {}, \"metrics_fingerprint\": \"{:016x}\", \
             \"avg_turnaround_h\": {}, \"utilization\": {}, \
             \"completed_jobs\": {}, \"killed_jobs\": {}, \
             \"shard_starts\": {:?}, \"shard_occupancy\": [{}]}}{comma}",
            r.source,
            r.shards,
            r.policy,
            r.mechanism.name(),
            r.seeds,
            r.metrics_fingerprint,
            json_f64(r.avg_turnaround_h),
            json_f64(r.utilization),
            r.completed_jobs,
            r.killed_jobs,
            r.shard_starts,
            occ.join(", "),
        );
    }
    out.push_str("]\n");
    out
}
