//! Whole-simulation snapshot/restore: the byte format behind
//! [`super::SchedulerService::snapshot`].
//!
//! ## Format (version 1)
//!
//! One version byte, then the engine scalars (`now`, `delivered`), the
//! event queue (entries sorted by `(time, seq)` plus the dynamic-lane
//! flag ring), and the full [`SimCore`]: job arena, backend (via
//! [`SnapshotBackend`]), scheduler collections, recorder, and timeline.
//! Every unordered collection is serialized in sorted order so identical
//! states produce identical bytes regardless of hash-map history.
//!
//! Two things are deliberately **not** in the stream:
//!
//! * the mechanism/config — restore takes a [`SimConfig`] as context, and
//!   the what-if forecaster exploits this by restoring one snapshot under
//!   each candidate mechanism;
//! * the hooks object — code, not data; rebuilt by
//!   [`hooks_for`](super::hooks::hooks_for) from the restore config.
//!
//! The contract tested here and in the service layer: restore followed by
//! draining the simulation is bitwise-identical (metrics fingerprint) to
//! never having snapshotted at all.

use super::core::{Scratch, SimCore};
use super::events::Ev;
use super::hooks::hooks_for;
use crate::config::SimConfig;
use crate::timeline::{Timeline, TimelineEvent};
use hws_cluster::{LeaseLedger, SnapshotBackend};
use hws_metrics::Recorder;
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_sim::{Engine, EventId, EventQueue, QueueSnapshot, SimTime};
use hws_workload::JobId;
use std::collections::{BTreeSet, HashMap};

/// Format version; bump on any layout change. Version 2 added the outage
/// engine: the `Ev::Outage` tag and the outage-state section between the
/// shard accumulators and the recorder. Version 3 switched the waiting
/// queue to the maintained ordered index (`driver::waitq`): the section
/// now stores the waiting ids in priority order followed by the key
/// epoch, and restore *rebuilds* the index by recomputing every key from
/// the restored specs, `od_front`, and that epoch — a byte fixed point,
/// because recomputed keys reproduce the recorded order exactly.
const SNAP_VERSION: u8 = 3;

// ---------------------------------------------------------------------
// Event codec.
// ---------------------------------------------------------------------

fn encode_ev(ev: &Ev, w: &mut SnapWriter) {
    match *ev {
        Ev::Submit(j) => {
            w.put_u8(0);
            w.put_u64(j.0);
        }
        Ev::Notice(j) => {
            w.put_u8(1);
            w.put_u64(j.0);
        }
        Ev::ReservationTimeout(j) => {
            w.put_u8(2);
            w.put_u64(j.0);
        }
        Ev::Finish { job, epoch } => {
            w.put_u8(3);
            w.put_u64(job.0);
            w.put_u64(epoch);
        }
        Ev::Kill { job, epoch } => {
            w.put_u8(4);
            w.put_u64(job.0);
            w.put_u64(epoch);
        }
        Ev::DrainEnd { job, epoch } => {
            w.put_u8(5);
            w.put_u64(job.0);
            w.put_u64(epoch);
        }
        Ev::PlannedPreempt { victim, od, epoch } => {
            w.put_u8(6);
            w.put_u64(victim.0);
            w.put_u64(od.0);
            w.put_u64(epoch);
        }
        Ev::Fail { job, epoch } => {
            w.put_u8(7);
            w.put_u64(job.0);
            w.put_u64(epoch);
        }
        Ev::Pass => w.put_u8(8),
        Ev::Outage { idx } => {
            w.put_u8(9);
            w.put_u32(idx);
        }
    }
}

fn decode_ev(r: &mut SnapReader<'_>) -> Result<Ev, SnapError> {
    Ok(match r.get_u8()? {
        0 => Ev::Submit(JobId(r.get_u64()?)),
        1 => Ev::Notice(JobId(r.get_u64()?)),
        2 => Ev::ReservationTimeout(JobId(r.get_u64()?)),
        3 => Ev::Finish {
            job: JobId(r.get_u64()?),
            epoch: r.get_u64()?,
        },
        4 => Ev::Kill {
            job: JobId(r.get_u64()?),
            epoch: r.get_u64()?,
        },
        5 => Ev::DrainEnd {
            job: JobId(r.get_u64()?),
            epoch: r.get_u64()?,
        },
        6 => Ev::PlannedPreempt {
            victim: JobId(r.get_u64()?),
            od: JobId(r.get_u64()?),
            epoch: r.get_u64()?,
        },
        7 => Ev::Fail {
            job: JobId(r.get_u64()?),
            epoch: r.get_u64()?,
        },
        8 => Ev::Pass,
        9 => Ev::Outage { idx: r.get_u32()? },
        b => return Err(r.err(format!("bad event tag {b}"))),
    })
}

// ---------------------------------------------------------------------
// Timeline codec.
// ---------------------------------------------------------------------

fn encode_timeline_ev(ev: &TimelineEvent, w: &mut SnapWriter) {
    match *ev {
        TimelineEvent::Submitted => w.put_u8(0),
        TimelineEvent::NoticeReceived => w.put_u8(1),
        TimelineEvent::Started { size } => {
            w.put_u8(2);
            w.put_u32(size);
        }
        TimelineEvent::Preempted => w.put_u8(3),
        TimelineEvent::DrainStarted => w.put_u8(4),
        TimelineEvent::Shrunk { from, to } => {
            w.put_u8(5);
            w.put_u32(from);
            w.put_u32(to);
        }
        TimelineEvent::Expanded { from, to } => {
            w.put_u8(6);
            w.put_u32(from);
            w.put_u32(to);
        }
        TimelineEvent::Finished => w.put_u8(7),
        TimelineEvent::Failed => w.put_u8(8),
        TimelineEvent::Killed => w.put_u8(9),
    }
}

fn decode_timeline_ev(r: &mut SnapReader<'_>) -> Result<TimelineEvent, SnapError> {
    Ok(match r.get_u8()? {
        0 => TimelineEvent::Submitted,
        1 => TimelineEvent::NoticeReceived,
        2 => TimelineEvent::Started { size: r.get_u32()? },
        3 => TimelineEvent::Preempted,
        4 => TimelineEvent::DrainStarted,
        5 => TimelineEvent::Shrunk {
            from: r.get_u32()?,
            to: r.get_u32()?,
        },
        6 => TimelineEvent::Expanded {
            from: r.get_u32()?,
            to: r.get_u32()?,
        },
        7 => TimelineEvent::Finished,
        8 => TimelineEvent::Failed,
        9 => TimelineEvent::Killed,
        b => return Err(r.err(format!("bad timeline tag {b}"))),
    })
}

// ---------------------------------------------------------------------
// Engine + SimCore snapshot.
// ---------------------------------------------------------------------

/// Serialize a paused engine (event queue + full simulation state) into a
/// standalone byte image.
///
/// # Panics
///
/// Panics if called between events (the scratch buffers are non-empty
/// only *inside* a dispatch) or with a streaming recorder; the service
/// layer can never trigger either.
pub(super) fn snapshot_engine<B: SnapshotBackend>(engine: &Engine<SimCore<B>>) -> Vec<u8> {
    let core = &engine.sim;
    assert!(
        core.scratch.ordered.is_empty()
            && core.scratch.keys.is_empty()
            && core.scratch.releases.is_empty()
            && core.scratch.victim_ids.is_empty()
            && core.scratch.candidates.is_empty(),
        "snapshot taken mid-dispatch (scratch buffers in use)"
    );
    let mut w = SnapWriter::with_capacity(4096);
    w.put_u8(SNAP_VERSION);
    w.put_u64(engine.now().as_secs());
    w.put_u64(engine.delivered());

    let qs = engine.queue.to_snapshot();
    w.put_len(qs.entries.len());
    for (t, seq, ev) in &qs.entries {
        w.put_u64(t.as_secs());
        w.put_u64(*seq);
        encode_ev(ev, &mut w);
    }
    w.put_bytes(&qs.flags);
    w.put_u64(qs.flag_base);
    w.put_u64(qs.next_seq);
    w.put_u64(qs.next_arrival_seq);
    w.put_u64(qs.watermark.as_secs());
    w.put_u64(qs.n_cancelled_popped);

    core.table.encode_snap(&mut w);
    core.cluster.snapshot(&mut w);

    // Waiting ids in index (priority) order, then the key epoch. The keys
    // themselves are derivable — restore recomputes them — so only the
    // membership and the epoch go into the stream.
    w.put_len(core.queue.len());
    for &(_, j) in core.queue.iter() {
        w.put_u64(j.0);
    }
    w.put_u64(core.queue.epoch().as_secs());
    put_id_set(&mut w, &core.od_front);
    w.put_len(core.claims.len());
    for c in &core.claims {
        w.put_u64(c.od.0);
        w.put_u32(c.target);
        w.put_u8(c.phase);
        w.put_u64(c.since.as_secs());
    }
    core.leases.encode_snap(&mut w);
    put_id_set(&mut w, &core.squattable);
    put_id_set(&mut w, &core.noticed);

    let mut timeouts: Vec<(JobId, EventId)> =
        core.timeout_ev.iter().map(|(&j, &e)| (j, e)).collect();
    timeouts.sort_by_key(|&(j, _)| j);
    w.put_len(timeouts.len());
    for (j, e) in timeouts {
        w.put_u64(j.0);
        w.put_u64(e.raw());
    }
    let mut plans: Vec<(&JobId, &Vec<EventId>)> = core.cup_plans.iter().collect();
    plans.sort_by_key(|&(j, _)| *j);
    w.put_len(plans.len());
    for (j, evs) in plans {
        w.put_u64(j.0);
        w.put_len(evs.len());
        for e in evs {
            w.put_u64(e.raw());
        }
    }

    w.put_bool(core.pass_pending);
    w.put_u32(core.cap_running);
    w.put_len(core.shard_occ.len());
    for &occ in &core.shard_occ {
        w.put_u64(occ as u64);
        w.put_u64((occ >> 64) as u64);
    }
    w.put_len(core.shard_starts.len());
    for &s in &core.shard_starts {
        w.put_u64(s);
    }

    match &core.outage {
        None => w.put_bool(false),
        Some(o) => {
            w.put_bool(true);
            w.put_u32(o.applied);
            w.put_u64(o.downs);
            w.put_u64(o.drains);
            w.put_u64(o.rejoins);
            w.put_u64(o.interrupted_jobs);
            w.put_u64(o.shrunk_jobs);
            w.put_u64(o.infeasible_killed);
            w.put_u64(o.lost_node_seconds as u64);
            w.put_u64((o.lost_node_seconds >> 64) as u64);
            w.put_u64(o.degraded_wall_seconds);
            w.put_u64(o.last_accrual.as_secs());
            // BTreeMap: already id-sorted.
            w.put_len(o.evicted_at.len());
            for (j, t) in &o.evicted_at {
                w.put_u64(j.0);
                w.put_u64(t.as_secs());
            }
            w.put_u64(o.recoveries);
            w.put_u64(o.recovery_latency_total);
        }
    }

    core.rec.encode_snap(&mut w);
    w.put_len(core.timeline.entries.len());
    for (t, j, ev) in &core.timeline.entries {
        w.put_u64(t.as_secs());
        w.put_u64(j.0);
        encode_timeline_ev(ev, &mut w);
    }
    w.into_bytes()
}

fn put_id_set(w: &mut SnapWriter, set: &BTreeSet<JobId>) {
    w.put_len(set.len());
    for j in set {
        w.put_u64(j.0);
    }
}

fn get_id_set(r: &mut SnapReader<'_>) -> Result<BTreeSet<JobId>, SnapError> {
    let n = r.get_len()?;
    let mut set = BTreeSet::new();
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let id = r.get_u64()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(r.err(format!("id set not strictly ascending at {id}")));
        }
        prev = Some(id);
        set.insert(JobId(id));
    }
    Ok(set)
}

/// Rebuild a paused engine from bytes written by [`snapshot_engine`].
///
/// `cfg` must describe the same scheduling setup the encoder ran (same
/// policy knobs; the *mechanism* may differ — that is the what-if hook),
/// and `ctx` is the backend's reconstruction context
/// ([`SnapshotBackend::Ctx`]). Malformed or truncated bytes error
/// cleanly; this function never panics on bad input.
pub(super) fn restore_engine<B: SnapshotBackend>(
    bytes: &[u8],
    cfg: &SimConfig,
    ctx: &B::Ctx,
) -> Result<Engine<SimCore<B>>, SnapError> {
    let mut r = SnapReader::new(bytes);
    let version = r.get_u8()?;
    if version != SNAP_VERSION {
        return Err(r.err(format!(
            "snapshot version {version} (this build reads {SNAP_VERSION})"
        )));
    }
    let now = SimTime::from_secs(r.get_u64()?);
    let delivered = r.get_u64()?;

    let n_entries = r.get_len()?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let t = SimTime::from_secs(r.get_u64()?);
        let seq = r.get_u64()?;
        let ev = decode_ev(&mut r)?;
        entries.push((t, seq, ev));
    }
    let flags = r.get_bytes()?.to_vec();
    let qs = QueueSnapshot {
        entries,
        flags,
        flag_base: r.get_u64()?,
        next_seq: r.get_u64()?,
        next_arrival_seq: r.get_u64()?,
        watermark: SimTime::from_secs(r.get_u64()?),
        n_cancelled_popped: r.get_u64()?,
    };
    let queue_pos = r.pos();
    let equeue = EventQueue::from_snapshot(qs).map_err(|e| SnapError::new(queue_pos, e))?;

    let table = crate::jobtable::JobTable::decode_snap(&mut r)?;
    let cluster = B::restore(&mut r, ctx)?;

    let wait_pos = r.pos();
    let n_queue = r.get_len()?;
    let mut wait_ids = Vec::with_capacity(n_queue);
    for _ in 0..n_queue {
        wait_ids.push(JobId(r.get_u64()?));
    }
    let wait_epoch = SimTime::from_secs(r.get_u64()?);
    let od_front = get_id_set(&mut r)?;
    let n_claims = r.get_len()?;
    let mut claims = Vec::with_capacity(n_claims);
    for _ in 0..n_claims {
        claims.push(super::alloc::Claim {
            od: JobId(r.get_u64()?),
            target: r.get_u32()?,
            phase: r.get_u8()?,
            since: SimTime::from_secs(r.get_u64()?),
        });
    }
    let leases = LeaseLedger::decode_snap(&mut r)?;
    let squattable = get_id_set(&mut r)?;
    let noticed = get_id_set(&mut r)?;

    let n_timeouts = r.get_len()?;
    let mut timeout_ev = HashMap::with_capacity(n_timeouts);
    for _ in 0..n_timeouts {
        let j = JobId(r.get_u64()?);
        let e = EventId::from_raw(r.get_u64()?);
        if timeout_ev.insert(j, e).is_some() {
            return Err(r.err(format!("duplicate timeout entry for {j}")));
        }
    }
    let n_plans = r.get_len()?;
    let mut cup_plans = HashMap::with_capacity(n_plans);
    for _ in 0..n_plans {
        let j = JobId(r.get_u64()?);
        let n_evs = r.get_len()?;
        let mut evs = Vec::with_capacity(n_evs);
        for _ in 0..n_evs {
            evs.push(EventId::from_raw(r.get_u64()?));
        }
        if cup_plans.insert(j, evs).is_some() {
            return Err(r.err(format!("duplicate CUP plan for {j}")));
        }
    }

    let pass_pending = r.get_bool()?;
    let cap_running = r.get_u32()?;
    let n_occ = r.get_len()?;
    let mut shard_occ = Vec::with_capacity(n_occ);
    for _ in 0..n_occ {
        let lo = r.get_u64()?;
        let hi = r.get_u64()?;
        shard_occ.push((u128::from(hi) << 64) | u128::from(lo));
    }
    let n_starts = r.get_len()?;
    let mut shard_starts = Vec::with_capacity(n_starts);
    for _ in 0..n_starts {
        shard_starts.push(r.get_u64()?);
    }
    let track_shards = cluster.shard_labels().is_some();
    let want = if track_shards {
        cluster.shard_count()
    } else {
        0
    };
    if shard_occ.len() != want || shard_starts.len() != want {
        return Err(r.err(format!(
            "shard accumulators sized {}/{} for a backend with {want} tracked shards",
            shard_occ.len(),
            shard_starts.len()
        )));
    }

    let outage = if r.get_bool()? {
        if cfg.outages.is_none() {
            return Err(r.err(
                "snapshot carries outage state but the restore config has no schedule".to_string(),
            ));
        }
        let applied = r.get_u32()?;
        let downs = r.get_u64()?;
        let drains = r.get_u64()?;
        let rejoins = r.get_u64()?;
        let interrupted_jobs = r.get_u64()?;
        let shrunk_jobs = r.get_u64()?;
        let infeasible_killed = r.get_u64()?;
        let lost_lo = r.get_u64()?;
        let lost_hi = r.get_u64()?;
        let degraded_wall_seconds = r.get_u64()?;
        let last_accrual = SimTime::from_secs(r.get_u64()?);
        let n_evicted = r.get_len()?;
        let mut evicted_at = std::collections::BTreeMap::new();
        for _ in 0..n_evicted {
            let j = JobId(r.get_u64()?);
            let t = SimTime::from_secs(r.get_u64()?);
            if evicted_at.insert(j, t).is_some() {
                return Err(r.err(format!("duplicate evicted entry for {j}")));
            }
        }
        Some(super::outage::OutageState {
            applied,
            downs,
            drains,
            rejoins,
            interrupted_jobs,
            shrunk_jobs,
            infeasible_killed,
            lost_node_seconds: (u128::from(lost_hi) << 64) | u128::from(lost_lo),
            degraded_wall_seconds,
            last_accrual,
            evicted_at,
            recoveries: r.get_u64()?,
            recovery_latency_total: r.get_u64()?,
        })
    } else {
        if cfg.outages.is_some() {
            return Err(r.err(
                "restore config carries an outage schedule but the snapshot has no outage state"
                    .to_string(),
            ));
        }
        None
    };

    let rec = Recorder::decode_snap(&mut r)?;
    let n_tl = r.get_len()?;
    let mut timeline = Timeline::new();
    for _ in 0..n_tl {
        let t = SimTime::from_secs(r.get_u64()?);
        let j = JobId(r.get_u64()?);
        let ev = decode_timeline_ev(&mut r)?;
        timeline.record(t, j, ev);
    }
    r.expect_end()?;

    let mut core = SimCore {
        hooks: hooks_for(cfg),
        cfg: cfg.clone(),
        table,
        cluster,
        queue: super::waitq::WaitQueue::new(),
        od_front,
        claims,
        leases,
        squattable,
        noticed,
        timeout_ev,
        cup_plans,
        pass_pending,
        cap_running,
        scratch: Scratch::default(),
        tau_memo: std::cell::RefCell::new(Vec::new()),
        shard_occ,
        shard_starts,
        track_shards,
        outage,
        rec,
        timeline,
    };
    // Rebuild the waiting-queue index: recompute each key from the
    // restored spec, od_front membership, and the recorded epoch. Every
    // collection the keys derive from is restored above, so the rebuilt
    // order reproduces the recorded one — re-snapshotting is a byte fixed
    // point. Validation (not trusting the stream): every id must name a
    // live job in `Waiting` status, exactly once.
    core.queue.set_epoch(wait_epoch);
    for j in wait_ids {
        if core
            .table
            .get_state(j)
            .is_none_or(|st| st.status != crate::jobstate::Status::Waiting)
        {
            return Err(SnapError::new(
                wait_pos,
                format!("waiting queue lists {j}, which is not a live waiting job"),
            ));
        }
        let key = core.wait_key(j);
        if !core.queue.insert(key, j) {
            return Err(SnapError::new(
                wait_pos,
                format!("waiting queue lists {j} twice"),
            ));
        }
    }
    Ok(Engine::from_parts(core, equeue, now, delivered))
}
