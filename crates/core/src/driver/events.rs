//! Simulator events and the epoch-guarded dispatch loop.
//!
//! ## Event anatomy
//!
//! * `Submit` — a job arrives (for on-demand jobs: the *actual* arrival).
//! * `Notice` — an on-demand advance notice lands (15–30 min early).
//! * `ReservationTimeout` — a noticed job failed to arrive 10 min past its
//!   prediction; its reservation is released (§III-B4).
//! * `Finish` / `Kill` — a run completes (or exceeds its estimate). Both
//!   carry the job's *epoch*; preemption/shrink/expand bump the epoch so
//!   stale events are ignored — the classic DES invalidation pattern.
//! * `DrainEnd` — a malleable job's two-minute warning expired; its nodes
//!   release now.
//! * `PlannedPreempt` — a CUP-planned preemption fires (rigid victims right
//!   after a checkpoint, malleable victims just before the prediction).
//! * `Pass` — coalesced scheduling pass (FCFS + EASY over the queue).

use super::core::SimCore;
use crate::jobstate::Status;
use crate::timeline::TimelineEvent;
use hws_cluster::ClusterBackend;
use hws_sim::{EventQueue, SimTime, Simulation};
use hws_workload::{JobId, JobKind};

/// Simulator events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    Submit(JobId),
    Notice(JobId),
    ReservationTimeout(JobId),
    Finish {
        job: JobId,
        epoch: u64,
    },
    Kill {
        job: JobId,
        epoch: u64,
    },
    DrainEnd {
        job: JobId,
        epoch: u64,
    },
    PlannedPreempt {
        victim: JobId,
        od: JobId,
        epoch: u64,
    },
    /// A node of the job's allocation failed (failure-injection extension).
    Fail {
        job: JobId,
        epoch: u64,
    },
    /// Apply entry `idx` of the configured outage schedule (capacity-fault
    /// extension); the handler chains `idx + 1`.
    Outage {
        idx: u32,
    },
    Pass,
}

impl<B: ClusterBackend> Simulation for SimCore<B> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        // Lost-capacity integral: the down count is constant between
        // events, so accruing at every dispatch entry is exact. A single
        // `Option` check on outage-free runs.
        self.accrue_outage(now);
        match ev {
            Ev::Submit(j) => {
                // Arrival-lane events are not cancellable, so a live-service
                // cancel of a still-announced job retires the job and lets
                // its pending Submit land here; batch replays never hit this
                // guard (every admitted job is live at its submit).
                if !self.live(j) {
                    return;
                }
                let spec = self.spec(j).clone();
                self.rec.job_submitted_full(
                    j,
                    spec.kind,
                    spec.class,
                    spec.size,
                    now,
                    spec.category,
                );
                self.log(now, j, TimelineEvent::Submitted);
                // While outage events are still pending, oversized jobs
                // block (a rejoin may restore the capacity); once the
                // schedule's horizon has passed, lost capacity is lost for
                // good and the live cap applies.
                let cap = if self.outage_horizon_passed() {
                    self.cluster
                        .max_job_size()
                        .min(self.cluster.live_max_job_size())
                } else {
                    self.cluster.max_job_size()
                };
                if spec.size > cap {
                    // No shard can ever host it; queueing it would wait
                    // forever. Impossible on a single cluster (the trace
                    // validates size ≤ system size), real on federations
                    // whose largest shard is smaller than the machine.
                    // Terminal on arrival, so retire the slot right away.
                    let st = self.st_mut(j);
                    st.status = Status::Killed;
                    self.rec.job_killed(j, now);
                    self.log(now, j, TimelineEvent::Killed);
                    self.retire(j);
                } else if spec.kind == JobKind::OnDemand && self.hybrid() {
                    self.on_od_arrival(j, now, q);
                } else {
                    self.st_mut(j).status = Status::Waiting;
                    self.enqueue_waiting(j);
                    self.request_pass(now, q);
                }
            }
            Ev::Notice(j) => {
                if self.hybrid()
                    && self.hooks.uses_notices()
                    && self
                        .st_if_live(j)
                        .is_some_and(|st| st.status == Status::Announced)
                    && self.spec(j).size <= self.cluster.max_job_size()
                {
                    self.log(now, j, TimelineEvent::NoticeReceived);
                    self.on_notice(j, now, q);
                    self.request_pass(now, q);
                }
            }
            Ev::ReservationTimeout(j) => {
                if self
                    .st_if_live(j)
                    .is_some_and(|st| st.status == Status::Announced)
                {
                    self.timeout_ev.remove(&j);
                    if let Some(evs) = self.cup_plans.remove(&j) {
                        for ev in evs {
                            q.cancel(ev);
                        }
                    }
                    self.remove_claim(j);
                    self.squattable.remove(&j);
                    self.noticed.remove(&j);
                    self.cluster.release_reservation(j);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Finish { job, epoch } => {
                if self
                    .st_if_live(job)
                    .is_some_and(|st| st.status == Status::Running && st.epoch == epoch)
                {
                    self.finish_job(job, now, false, q);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Kill { job, epoch } => {
                if self
                    .st_if_live(job)
                    .is_some_and(|st| st.status == Status::Running && st.epoch == epoch)
                {
                    self.finish_job(job, now, true, q);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::DrainEnd { job, epoch } => {
                if self
                    .st_if_live(job)
                    .is_some_and(|st| st.status == Status::Draining && st.epoch == epoch)
                {
                    self.finish_drain(job, now);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::PlannedPreempt { victim, od, epoch } => {
                // Valid only while the on-demand job is still expected and
                // the victim's run is unchanged.
                if self
                    .st_if_live(od)
                    .is_some_and(|st| st.status == Status::Announced)
                    && self
                        .st_if_live(victim)
                        .is_some_and(|st| st.status == Status::Running && st.epoch == epoch)
                {
                    let nodes = self.st(victim).run.as_ref().expect("running").size;
                    let outstanding = self
                        .spec(od)
                        .size
                        .saturating_sub(self.cluster.reserved_idle_count(od));
                    self.preempt_job(victim, now, q);
                    self.leases.record(od, victim, outstanding.min(nodes), true);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Fail { job, epoch } => {
                if self
                    .st_if_live(job)
                    .is_some_and(|st| st.status == Status::Running && st.epoch == epoch)
                {
                    self.fail_job(job, now, q);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Outage { idx } => {
                self.apply_outage(idx, now, q);
            }
            Ev::Pass => {
                self.pass_pending = false;
                self.schedule_pass(now, q);
            }
        }
        if self.cfg.paranoid_checks {
            self.cluster.check_invariants().expect("cluster invariants");
            self.check_cap_running_invariant();
            self.check_waitq_invariant();
            // Down capacity must never be visible to scheduling queries.
            let live = self.cluster.live_nodes();
            assert!(
                self.cluster.free_count() <= live,
                "free pool exceeds live capacity"
            );
            for c in &self.claims {
                assert!(
                    self.cluster.avail_for(c.od) <= live,
                    "avail_for({}) sees down capacity",
                    c.od
                );
            }
        }
    }
}
