//! **SWF replay** — the six mechanisms on a real-trace-shaped SWF log
//! instead of per-seed synthetic traces (ROADMAP: "SWF replay at scale").
//!
//! The raw jobs are fixed by the log; the seed drives the §IV-A
//! class/notice assignment, mirroring the paper's ten-trace averaging
//! protocol on one real workload. Every sweep is routed through
//! `Simulator::run_sweep_with`, and each per-seed outcome is verified
//! **bitwise identical** to a sequential `run_trace` replay before the
//! averages are reported.
//!
//! Writes `BENCH_swf_replay.json` next to `BENCH_decision_latency.json`
//! at the workspace root (override with `HWS_SWF_REPLAY_JSON=path`;
//! decision-latency measurement is disabled so the recorded baseline is
//! deterministic).
//!
//! ```text
//! cargo run --release -p hws-bench --bin swf_replay             # bundled fixture
//! HWS_SWF=theta.swf HWS_SWF_PPN=64 cargo run --release -p hws-bench --bin swf_replay
//! ```

use hws_bench::{bundled_swf_fixture, seeds_from_env, TraceSource};
use hws_core::{Mechanism, SimConfig, Simulator};
use hws_metrics::{Metrics, MetricsAvg, Table};
use hws_workload::SwfImportConfig;
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let seeds = seeds_from_env();
    let source = TraceSource::swf_from_env()
        .unwrap_or_else(|| TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default()));
    let probe = source.make_trace(0);
    eprintln!(
        "swf_replay: {}, {} jobs on {} nodes, {} seeds x 6 mechanisms (parallel + sequential verification)",
        source.describe(),
        probe.len(),
        probe.system_size,
        seeds
    );

    let seed_list: Vec<u64> = (0..seeds).collect();
    let mut rows: Vec<(Mechanism, Metrics)> = Vec::new();
    for m in Mechanism::ALL_SIX {
        let mut cfg = SimConfig::with_mechanism(m);
        // Wall-clock decision latencies are the one non-simulated metric;
        // drop them so parallel == sequential holds bitwise and the JSON
        // baseline is machine-independent.
        cfg.measure_decisions = false;
        let swept = Simulator::run_sweep_with(&cfg, &seed_list, |s| source.make_trace(s));
        let mut avg = MetricsAvg::new();
        for (outcome, &seed) in swept.iter().zip(&seed_list) {
            let sequential = Simulator::run_trace(&cfg, &source.make_trace(seed));
            assert_eq!(
                outcome.metrics,
                sequential.metrics,
                "{} seed {seed}: parallel sweep diverged from sequential replay",
                m.name()
            );
            avg.push(&outcome.metrics);
        }
        rows.push((m, avg.mean()));
        eprintln!("  {:<8} verified {} seeds bitwise", m.name(), seeds);
    }

    let mut t = Table::new(vec![
        "mechanism",
        "TAT (h)",
        "rigid TAT (h)",
        "OD TAT (h)",
        "util %",
        "instant %",
        "preempt r/m %",
    ]);
    for (m, x) in &rows {
        t.row(vec![
            m.name().to_string(),
            format!("{:.1}", x.avg_turnaround_h),
            format!("{:.1}", x.rigid.avg_turnaround_h),
            format!("{:.2}", x.on_demand.avg_turnaround_h),
            format!("{:.1}", x.utilization * 100.0),
            format!("{:.1}", x.instant_start_rate * 100.0),
            format!(
                "{:.1}/{:.1}",
                x.rigid.preemption_ratio * 100.0,
                x.malleable.preemption_ratio * 100.0
            ),
        ]);
    }
    println!("SWF REPLAY: six mechanisms on {}", source.describe());
    println!("{}", t.render());

    let json_path = std::env::var("HWS_SWF_REPLAY_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    // Record the file name, not the absolute path, so the committed
    // baseline is machine-independent.
    let label = match &source {
        TraceSource::SwfFile { path, .. } => path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| source.describe()),
        _ => source.describe(),
    };
    let json = results_to_json(&label, probe.len(), seeds, &rows);
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {} mechanisms to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Workspace root, two levels up from the crate: next to
/// `BENCH_decision_latency.json`.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_swf_replay.json")
}

fn results_to_json(label: &str, jobs: usize, seeds: u64, rows: &[(Mechanism, Metrics)]) -> String {
    let mut out = String::from("[\n");
    for (i, (m, x)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"mechanism\": \"{}\", \"source\": \"{}\", \"jobs\": {jobs}, \"seeds\": {seeds}, \
             \"avg_turnaround_h\": {:.6}, \"rigid_turnaround_h\": {:.6}, \
             \"on_demand_turnaround_h\": {:.6}, \"malleable_turnaround_h\": {:.6}, \
             \"utilization\": {:.6}, \"instant_start_rate\": {:.6}, \
             \"rigid_preemption_ratio\": {:.6}, \"malleable_preemption_ratio\": {:.6}, \
             \"completed_jobs\": {:.1}}}{comma}",
            m.name(),
            label.replace('"', "'"),
            x.avg_turnaround_h,
            x.rigid.avg_turnaround_h,
            x.on_demand.avg_turnaround_h,
            x.malleable.avg_turnaround_h,
            x.utilization,
            x.instant_start_rate,
            x.rigid.preemption_ratio,
            x.malleable.preemption_ratio,
            x.completed_jobs as f64,
        );
    }
    out.push_str("]\n");
    out
}
