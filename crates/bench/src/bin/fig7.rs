//! **Figure 7** — impact of the rigid jobs' checkpointing frequency on
//! scheduling performance. The x-axis follows the paper's convention:
//! "50% means rigid jobs makes checkpoints twice as frequent as the
//! optimal checkpointing frequency" — i.e. the label is the interval
//! multiplier on the Daly optimum.
//!
//! Expected shape (Observation 13): more frequent checkpoints than Daly
//! reduce rigid turnaround and improve utilization for every mechanism,
//! because preemptions (not failures) dominate interruptions.

use hws_bench::{run_averaged_source, seeds_from_env, Scale, TraceSource};
use hws_core::{Mechanism, SimConfig};
use hws_metrics::{Metrics, Table};

fn main() {
    let scale = Scale::from_env();
    let seeds = seeds_from_env();
    let source = TraceSource::from_env(scale);
    let factors = [0.25, 0.5, 1.0, 2.0];
    eprintln!(
        "fig7: scale {scale:?}, {}, {seeds} seeds x {} factors x 6 mechanisms",
        source.describe(),
        factors.len()
    );

    let mut results: Vec<(f64, Mechanism, Metrics)> = Vec::new();
    for &f in &factors {
        for m in Mechanism::ALL_SIX {
            let cfg = SimConfig::with_mechanism(m).ckpt_factor(f);
            results.push((f, m, run_averaged_source(&cfg, &source, seeds)));
        }
    }

    type Panel = (&'static str, fn(&Metrics) -> String);
    let panels: [Panel; 4] = [
        ("rigid turnaround (h)", |m| {
            format!("{:.1}", m.rigid.avg_turnaround_h)
        }),
        ("avg turnaround (h)", |m| {
            format!("{:.1}", m.avg_turnaround_h)
        }),
        ("system utilization (%)", |m| {
            format!("{:.1}", m.utilization * 100.0)
        }),
        ("rigid preemption ratio (%)", |m| {
            format!("{:.1}", m.rigid.preemption_ratio * 100.0)
        }),
    ];
    for (title, fmt) in panels {
        let mut t = Table::new(vec![
            "ckpt interval",
            "N&PAA",
            "N&SPAA",
            "CUA&PAA",
            "CUA&SPAA",
            "CUP&PAA",
            "CUP&SPAA",
        ]);
        for &f in &factors {
            let mut cells = vec![format!("{:.0}% of Daly", f * 100.0)];
            for m in Mechanism::ALL_SIX {
                let cell = results
                    .iter()
                    .find(|(ff, mm, _)| *ff == f && *mm == m)
                    .map(|(_, _, metrics)| fmt(metrics))
                    .expect("grid complete");
                cells.push(cell);
            }
            t.row(cells);
        }
        println!("FIGURE 7 panel: {title}");
        println!("{}", t.render());
    }

    // Observation 13 check: for each mechanism, the 50%-interval rigid
    // turnaround should not exceed the 200%-interval one.
    let rigid_at = |f: f64, m: Mechanism| {
        results
            .iter()
            .find(|(ff, mm, _)| *ff == f && *mm == m)
            .map(|(_, _, x)| x.rigid.avg_turnaround_h)
            .expect("present")
    };
    let ok = Mechanism::ALL_SIX
        .iter()
        .filter(|&&m| rigid_at(0.5, m) <= rigid_at(2.0, m) + 0.3)
        .count();
    println!("Obs 13: more frequent checkpoints help rigid turnaround for {ok}/6 mechanisms");
}
