//! The slimmed simulation model: per-run state, scheduler-visible
//! estimates, and the run lifecycle (start, finish, occupancy accrual).
//!
//! The surrounding layers live in sibling modules: event dispatch in
//! [`super::events`], node routing and on-demand handling in
//! [`super::alloc`], preempt/shrink/expand/drain mechanics in
//! [`super::preempt`], and the FCFS + EASY pass in [`super::pass`].

use super::alloc::Claim;
use super::events::Ev;
use super::hooks::{hooks_for, MechanismHooks};
use super::outage::OutageState;
use super::waitq::WaitQueue;
use crate::config::SimConfig;
use crate::failure::time_to_failure;
use crate::jobstate::{
    malleable_finish, malleable_progress_ns, rigid_progress, rigid_wall_time, JobState, Run, Status,
};
use crate::jobtable::JobTable;
use crate::policy::QueueKey;
use crate::timeline::{Timeline, TimelineEvent};
use hws_cluster::{Cluster, ClusterBackend, LeaseLedger};
use hws_metrics::{Recorder, ShardStat};
use hws_sim::{EventId, EventQueue, SimDuration, SimTime};
use hws_workload::{JobClass, JobId, JobKind, JobSpec};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The simulation model (per-run state), generic over the resource
/// manager: a single [`Cluster`] (the default, and the paper's model) or
/// any other [`ClusterBackend`] such as a
/// [`Federation`](hws_cluster::Federation) of shards. Mechanism hooks are
/// backend-generic by construction — they plan over snapshot views and
/// never touch the backend directly.
///
/// The core holds **no reference to a trace**: jobs are admitted into the
/// arena-backed [`JobTable`] as the driver's streaming pump injects their
/// arrival events, and retired the moment they reach a terminal status, so
/// resident job state is O(active jobs) regardless of replay length (see
/// [`super::Simulator::run_source`]).
pub struct SimCore<B: ClusterBackend = Cluster> {
    pub cfg: SimConfig,
    pub(super) hooks: Arc<dyn MechanismHooks>,
    pub(super) table: JobTable,
    pub(super) cluster: B,
    /// Waiting jobs, maintained in priority order across events: a
    /// `BTreeSet<(QueueKey, JobId)>` updated only on priority-relevant
    /// transitions, so a scheduling pass reads the order instead of
    /// re-sorting O(Q log Q) per pass (see [`super::waitq`]).
    pub(super) queue: WaitQueue,
    /// Arrived on-demand jobs that could not start instantly ("front of
    /// the queue", §III-B2). Index set: O(log n) membership tests from the
    /// queue-key computation, no linear `contains`/`retain` per event.
    pub(super) od_front: BTreeSet<JobId>,
    /// Node collectors, kept sorted by `(phase, since, od)` on insert so
    /// [`SimCore::offer_free_nodes`] never re-sorts (see
    /// [`SimCore::insert_claim`]).
    pub(super) claims: Vec<Claim>,
    pub(super) leases: LeaseLedger,
    /// On-demand holders whose reservations may host backfill squatters
    /// (notice-phase reservations only). Index set: membership is probed
    /// once per reservation holder inside `squattable_idle` filters.
    pub(super) squattable: BTreeSet<JobId>,
    /// On-demand jobs in the notice phase (announced, not yet arrived).
    pub(super) noticed: BTreeSet<JobId>,
    pub(super) timeout_ev: HashMap<JobId, EventId>,
    pub(super) cup_plans: HashMap<JobId, Vec<EventId>>,
    pub(super) pass_pending: bool,
    /// Capability-class jobs currently running, maintained incrementally
    /// at the four run-state transitions (start, finish, fail, preempt)
    /// so [`super::hooks::MechanismHooks::admit`] sees an O(1) snapshot.
    /// Stays 0 — and costs nothing — on two-class traces.
    pub(super) cap_running: u32,
    /// Reusable hot-path buffers (see [`super::pass`]).
    pub(super) scratch: Scratch,
    /// Memoized Daly checkpoint intervals by job size. `CkptConfig` is
    /// fixed for the core's lifetime, so the sqrt-heavy formula is pure in
    /// the size — evaluated once per distinct size instead of per backfill
    /// probe. Derived cache: never snapshotted, rebuilt on demand.
    pub(super) tau_memo: RefCell<Vec<Option<Option<SimDuration>>>>,
    /// Per-shard accumulation, active only for sharded backends
    /// ([`ClusterBackend::shard_labels`] is `Some`): occupancy
    /// node-seconds and job starts, indexed by shard.
    pub(super) shard_occ: Vec<u128>,
    pub(super) shard_starts: Vec<u64>,
    pub(super) track_shards: bool,
    /// Outage-injection bookkeeping; `Some` exactly when the config
    /// carries an [`hws_workload::OutageSchedule`] (see [`super::outage`]).
    pub(super) outage: Option<OutageState>,
    pub rec: Recorder,
    pub timeline: Timeline,
}

/// Scratch buffers recycled across scheduling passes so the hot path does
/// not allocate per event: the ordered queue snapshot, the shadow release
/// profile, and the victim/candidate snapshots of notice handling.
/// Callers `mem::take` a buffer, use it, clear it, and put it back via
/// [`Scratch::stow`] (the buffers are empty between passes).
#[derive(Debug, Default)]
pub(super) struct Scratch {
    pub(super) ordered: Vec<JobId>,
    pub(super) keys: Vec<(QueueKey, JobId)>,
    pub(super) releases: Vec<(SimTime, u32)>,
    pub(super) victim_ids: Vec<JobId>,
    pub(super) candidates: Vec<crate::mechanism::CupCandidate>,
}

/// Entries a recycled scratch buffer may keep capacity for between
/// passes. A one-off queue spike (an outage dumping thousands of jobs
/// back into the queue, say) must not pin its high-water allocation for
/// the rest of a million-job replay.
pub(super) const SCRATCH_RETAIN: usize = 1024;

impl Scratch {
    /// Clear a taken buffer and put it back, capping retained capacity at
    /// [`SCRATCH_RETAIN`] entries.
    pub(super) fn stow<T>(slot: &mut Vec<T>, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > SCRATCH_RETAIN {
            buf.shrink_to(SCRATCH_RETAIN);
        }
        *slot = buf;
    }
}

impl SimCore {
    /// Single-cluster construction (the paper's model).
    pub fn new(cfg: SimConfig, system_size: u32) -> Self {
        SimCore::with_backend(cfg, Cluster::new(system_size))
    }
}

impl<B: ClusterBackend> SimCore<B> {
    /// Run the same driver against any resource-manager backend; the
    /// backend's total capacity is the system size.
    pub fn with_backend(cfg: SimConfig, backend: B) -> Self {
        let track_shards = backend.shard_labels().is_some();
        let n_shards = backend.shard_count();
        let outage = cfg.outages.as_ref().map(|_| OutageState::default());
        let queue = WaitQueue::new();
        SimCore {
            rec: Recorder::new(backend.total_nodes()),
            cluster: backend,
            hooks: hooks_for(&cfg),
            cfg,
            table: JobTable::new(),
            queue,
            od_front: BTreeSet::new(),
            claims: Vec::new(),
            leases: LeaseLedger::new(),
            squattable: BTreeSet::new(),
            noticed: BTreeSet::new(),
            timeout_ev: HashMap::new(),
            cup_plans: HashMap::new(),
            pass_pending: false,
            cap_running: 0,
            scratch: Scratch::default(),
            tau_memo: RefCell::new(Vec::new()),
            shard_occ: vec![0; if track_shards { n_shards } else { 0 }],
            shard_starts: vec![0; if track_shards { n_shards } else { 0 }],
            track_shards,
            outage,
            timeline: Timeline::new(),
        }
    }

    /// The active mechanism hooks.
    pub fn hooks(&self) -> &dyn MechanismHooks {
        &*self.hooks
    }

    /// Capability-class jobs currently running (the incremental count the
    /// admission hook sees; cross-validated against a full job scan after
    /// every event under `paranoid_checks`).
    pub fn running_capability(&self) -> u32 {
        self.cap_running
    }

    /// Paranoid cross-check: the incremental [`Self::cap_running`] counter
    /// must equal a full scan over the live jobs (retired jobs are never
    /// running, so the live set is the complete population).
    pub(super) fn check_cap_running_invariant(&self) {
        let mut scan = 0u32;
        self.table.for_each_live(|spec, st| {
            if spec.class == JobClass::Capability && st.status == Status::Running {
                scan += 1;
            }
        });
        assert_eq!(
            scan, self.cap_running,
            "incremental cap_running counter drifted from the scan oracle"
        );
    }

    /// A capability job left the running state; called at every such
    /// transition (finish, kill, fail, preempt).
    pub(super) fn note_run_stopped(&mut self, j: JobId) {
        if self.spec(j).class == JobClass::Capability {
            self.cap_running -= 1;
        }
    }

    /// The resource-manager backend (read-only; tests and reporting).
    pub fn backend(&self) -> &B {
        &self.cluster
    }

    /// Per-shard breakdown of the run so far; `None` for backends that do
    /// not distinguish shards (a bare [`Cluster`]).
    pub fn shard_report(&self) -> Option<Vec<ShardStat>> {
        let labels = self.cluster.shard_labels()?;
        Some(
            labels
                .into_iter()
                .enumerate()
                .map(|(i, name)| ShardStat {
                    name,
                    nodes: self.cluster.shard_nodes(i),
                    jobs_started: self.shard_starts[i],
                    occupied_node_seconds: self.shard_occ[i],
                })
                .collect(),
        )
    }

    /// Record occupancy both federation-wide and (when tracking) on the
    /// job's shard.
    pub(super) fn add_occ(&mut self, j: JobId, size: u32, dur: SimDuration) {
        self.rec.add_occupancy(size, dur);
        if self.track_shards {
            if let Some(s) = self.cluster.shard_of(j) {
                self.shard_occ[s] += u128::from(size) * u128::from(dur.as_secs());
            }
        }
    }

    #[inline]
    pub(super) fn log(&mut self, t: SimTime, j: JobId, ev: TimelineEvent) {
        if self.cfg.record_timeline {
            self.timeline.record(t, j, ev);
        }
    }

    /// Admit a job into the arena. The driver pump calls this exactly when
    /// it injects the job's arrival events, so a job's state exists from
    /// its first event (its notice, for noticed on-demand jobs) onwards.
    pub fn admit(&mut self, spec: JobSpec) {
        self.table.admit(spec);
    }

    /// Retire a terminal (finished/killed) job: fold its measurement
    /// record into the streaming metrics accumulator (a no-op for the
    /// retained recorder) and free its arena slot. Late events referencing
    /// the id — stale failure draws, CUP preemption plans — are dropped by
    /// the liveness guards in [`super::events`].
    pub(super) fn retire(&mut self, j: JobId) {
        if let Some(o) = self.outage.as_mut() {
            // A job retired mid-recovery (cancelled, or swept as
            // infeasible) closes its latency window without a recovery.
            o.evicted_at.remove(&j);
        }
        self.rec.retire(j);
        self.table.retire(j);
    }

    /// Whether `j` is still resident (admitted and not yet retired).
    #[inline]
    pub(super) fn live(&self, j: JobId) -> bool {
        self.table.is_live(j)
    }

    /// Liveness-aware state lookup for event guards: `None` for retired
    /// jobs, whose stale events must be ignored.
    #[inline]
    pub(super) fn st_if_live(&self, j: JobId) -> Option<&JobState> {
        self.table.get_state(j)
    }

    /// The arena itself (read-only; reporting and tests).
    pub fn jobs(&self) -> &JobTable {
        &self.table
    }

    pub(super) fn spec(&self, j: JobId) -> &JobSpec {
        self.table.spec(j)
    }

    pub(super) fn st(&self, j: JobId) -> &JobState {
        self.table.state(j)
    }

    pub(super) fn st_mut(&mut self, j: JobId) -> &mut JobState {
        self.table.state_mut(j)
    }

    pub(super) fn hybrid(&self) -> bool {
        !self.cfg.mechanism.is_baseline()
    }

    /// Request a scheduling pass at `now`. Same-tick requests coalesce:
    /// the first request schedules one `Ev::Pass` (which, carrying the
    /// latest dynamic sequence number, is delivered *after* every
    /// already-queued event at this tick), and further requests while it
    /// is pending are no-ops — one pass per tick of state updates. The
    /// hidden [`SimConfig::pass_per_event`] oracle disables the dedup so
    /// the equivalence proptest can compare both ways bitwise.
    pub(super) fn request_pass(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        if !self.pass_pending || self.cfg.pass_per_event {
            self.pass_pending = true;
            q.schedule(now, Ev::Pass);
        }
    }

    // ------------------------------------------------------------------
    // Scheduler-visible estimates
    // ------------------------------------------------------------------

    /// Remaining *estimated* work of a job (scheduler view; the user
    /// estimate minus preserved progress). Always ≥ the actual remainder.
    pub(super) fn est_remaining_work_of(spec: &JobSpec, st: &JobState) -> SimDuration {
        let done = spec.work.saturating_sub(st.remaining_work);
        spec.estimate.saturating_sub(done).max(SimDuration::SECOND)
    }

    /// [`Self::est_remaining_work_of`] by job id (one table probe).
    pub(super) fn est_remaining_work(&self, j: JobId) -> SimDuration {
        let (st, spec) = self.table.state_spec(j);
        Self::est_remaining_work_of(spec, st)
    }

    /// Estimated wall occupancy if the job started now at `size` nodes.
    pub(super) fn est_wall_of(&self, spec: &JobSpec, st: &JobState, size: u32) -> SimDuration {
        match spec.kind {
            JobKind::Malleable => {
                let est_total_ns = spec.estimate.as_secs() * u64::from(spec.size);
                let done_ns = spec.work_node_seconds().saturating_sub(st.remaining_ns);
                let rem = est_total_ns.saturating_sub(done_ns).max(1);
                spec.setup + SimDuration::from_secs(rem.div_ceil(u64::from(size.max(1))))
            }
            _ => {
                let est_rem = Self::est_remaining_work_of(spec, st);
                let tau = if spec.kind == JobKind::Rigid {
                    self.ckpt_tau(size)
                } else {
                    None
                };
                rigid_wall_time(est_rem, spec.setup, tau, self.cfg.ckpt.timeline_cost(size))
            }
        }
    }

    /// [`CkptConfig::interval`] through the per-size memo (see
    /// [`Self::tau_memo`]).
    pub(super) fn ckpt_tau(&self, size: u32) -> Option<SimDuration> {
        let mut memo = self.tau_memo.borrow_mut();
        let i = size as usize;
        if memo.len() <= i {
            memo.resize(i + 1, None);
        }
        *memo[i].get_or_insert_with(|| self.cfg.ckpt.interval(size))
    }

    /// Scheduler-estimated completion of a *running or draining* job.
    pub(super) fn expected_end(&self, j: JobId, now: SimTime) -> SimTime {
        let (st, spec) = self.table.state_spec(j);
        Self::expected_end_of(spec, st, now)
    }

    /// [`Self::expected_end`] on already-resolved state (the shadow
    /// projection resolves each running job once for its status check and
    /// reuses the refs here).
    pub(super) fn expected_end_of(spec: &JobSpec, st: &JobState, now: SimTime) -> SimTime {
        if let Some(until) = st.drain_until {
            return until;
        }
        let run = st.run.as_ref().expect("expected_end of non-running job");
        match spec.kind {
            JobKind::Malleable => {
                let est_total_ns = spec.estimate.as_secs() * u64::from(spec.size);
                let done_now = spec.work_node_seconds().saturating_sub(st.remaining_ns)
                    + malleable_progress_ns(run, now);
                let rem = est_total_ns.saturating_sub(done_now).max(1);
                let from = now.max(run.setup_end);
                from + SimDuration::from_secs(rem.div_ceil(u64::from(run.size.max(1))))
            }
            _ => {
                let est_at_start = {
                    let done_before = spec.work.saturating_sub(run.work_at_start);
                    spec.estimate
                        .saturating_sub(done_before)
                        .max(SimDuration::SECOND)
                };
                run.start + rigid_wall_time(est_at_start, spec.setup, run.tau, run.delta)
            }
        }
    }

    // ------------------------------------------------------------------
    // Run lifecycle
    // ------------------------------------------------------------------

    /// Start `j` on `size` nodes. `backfill` selects the allocation path
    /// (possibly squatting on notice-phase reservations). Returns false if
    /// allocation failed (caller logic error — checked upstream).
    pub(super) fn start_job(
        &mut self,
        j: JobId,
        size: u32,
        backfill: bool,
        now: SimTime,
        q: &mut EventQueue<Ev>,
    ) -> bool {
        let spec = self.spec(j).clone();
        debug_assert!(size >= spec.min_size && size <= spec.size);
        let own_reserved = self.cluster.reserved_idle_count(j);
        let ok = if !backfill || own_reserved > 0 || !self.cfg.backfill_on_reserved {
            self.cluster.try_allocate_with_reserved(j, size)
        } else {
            let squattable = &self.squattable;
            self.cluster
                .try_allocate_backfill(j, size, &mut |h| squattable.contains(&h))
                .is_some()
        };
        if !ok {
            return false;
        }
        // Leftover private reservation returns to the pool.
        if self.cluster.reserved_idle_count(j) > 0 {
            self.cluster.release_reservation(j);
        }
        if self.track_shards {
            if let Some(s) = self.cluster.shard_of(j) {
                self.shard_starts[s] += 1;
            }
        }
        let (tau, delta) = if spec.kind == JobKind::Rigid {
            (self.ckpt_tau(size), self.cfg.ckpt.timeline_cost(size))
        } else {
            (None, self.cfg.ckpt.timeline_cost(size))
        };
        if spec.class == JobClass::Capability {
            self.cap_running += 1;
        }
        let st = self.st_mut(j);
        st.status = Status::Running;
        st.cur_size = size;
        let epoch = st.bump_epoch();
        let remaining_work = st.remaining_work;
        let remaining_ns = st.remaining_ns;
        st.run = Some(Run {
            start: now,
            size,
            setup_end: now + spec.setup,
            occ_anchor: now,
            work_anchor: now + spec.setup,
            tau,
            delta,
            work_at_start: remaining_work,
        });
        self.rec.job_started(j, now);
        self.note_outage_recovery(j, now);
        self.log(now, j, TimelineEvent::Started { size });

        // Schedule completion (or a kill when the estimate is exceeded —
        // impossible for generated traces, possible for hand-built ones).
        match spec.kind {
            JobKind::Malleable => {
                let run = self.st(j).run.as_ref().expect("just set");
                let est_total_ns = spec.estimate.as_secs() * u64::from(spec.size);
                let done_ns = spec.work_node_seconds().saturating_sub(remaining_ns);
                let allowed_ns = est_total_ns.saturating_sub(done_ns);
                if remaining_ns <= allowed_ns {
                    let at = malleable_finish(run, remaining_ns);
                    q.schedule(at, Ev::Finish { job: j, epoch });
                } else {
                    let at = malleable_finish(run, allowed_ns);
                    q.schedule(at, Ev::Kill { job: j, epoch });
                }
            }
            _ => {
                let est_rem = self.est_remaining_work(j);
                if remaining_work <= est_rem {
                    let at = now + rigid_wall_time(remaining_work, spec.setup, tau, delta);
                    q.schedule(at, Ev::Finish { job: j, epoch });
                } else {
                    let at = now + rigid_wall_time(est_rem, spec.setup, tau, delta);
                    q.schedule(at, Ev::Kill { job: j, epoch });
                }
            }
        }
        self.schedule_failure(j, now, q);
        true
    }

    /// Draw a time-to-failure for the job's current run epoch and schedule
    /// the failure event (failure injection; no-op when disabled).
    pub(super) fn schedule_failure(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let st = self.st(j);
        let Some(run) = st.run.as_ref() else { return };
        if let Some(ttf) = time_to_failure(&self.cfg.failures, j, st.epoch, run.size) {
            q.schedule(
                now + ttf,
                Ev::Fail {
                    job: j,
                    epoch: st.epoch,
                },
            );
        }
    }

    /// Account occupancy for a running job up to `now`.
    pub(super) fn accrue_occupancy(&mut self, j: JobId, now: SimTime) {
        let Some((size, dur)) = ({
            let st = self.st_mut(j);
            st.run.as_mut().map(|run| {
                let dur = now.since(run.occ_anchor);
                run.occ_anchor = now;
                (run.size, dur)
            })
        }) else {
            return;
        };
        if !dur.is_zero() {
            self.add_occ(j, size, dur);
        }
    }

    /// Accrue a malleable run's work progress up to `now`.
    pub(super) fn accrue_malleable(&mut self, j: JobId, now: SimTime) {
        let st = self.st_mut(j);
        if let Some(run) = st.run.as_mut() {
            let progressed = malleable_progress_ns(run, now);
            st.remaining_ns = st.remaining_ns.saturating_sub(progressed);
            run.work_anchor = now.max(run.setup_end);
        }
    }

    /// A node failure interrupts the run: rigid (and on-demand) jobs fall
    /// back to their last checkpoint and resubmit; malleable jobs lose only
    /// their setup (finished tasks survive) and resubmit immediately.
    pub(super) fn fail_job(&mut self, j: JobId, now: SimTime, _q: &mut EventQueue<Ev>) {
        let spec = self.spec(j).clone();
        let size = self.st(j).run.as_ref().expect("running").size;
        self.accrue_occupancy(j, now);
        self.rec.job_failed(j);
        self.note_run_stopped(j);
        self.log(now, j, TimelineEvent::Failed);
        match spec.kind {
            JobKind::Malleable => {
                self.accrue_malleable(j, now);
                let st = self.st_mut(j);
                let run = st.run.take().expect("running");
                let setup_spent = now.since(run.start).min(spec.setup);
                st.status = Status::Waiting;
                st.cur_size = spec.size;
                st.bump_epoch();
                if !setup_spent.is_zero() {
                    self.rec.add_waste(size, setup_spent);
                }
                self.cluster.release(j);
                self.enqueue_waiting(j);
            }
            _ => {
                let st = self.st_mut(j);
                let run = st.run.take().expect("running");
                let p = rigid_progress(
                    now.since(run.start),
                    spec.setup,
                    run.tau,
                    run.delta,
                    run.work_at_start,
                );
                st.remaining_work = run.work_at_start - p.checkpointed;
                st.status = Status::Waiting;
                st.bump_epoch();
                let waste = now.since(run.start) - p.anchor_elapsed;
                if !waste.is_zero() {
                    self.rec.add_waste(size, waste);
                }
                self.cluster.release(j);
                // A failed on-demand job re-enters at the queue front —
                // `od_front` membership must be final before the enqueue
                // so the job is indexed under the front class.
                if spec.kind == JobKind::OnDemand {
                    self.od_front.insert(j);
                    self.insert_claim(Claim {
                        od: j,
                        target: spec.size,
                        phase: 0,
                        since: now,
                    });
                }
                self.enqueue_waiting(j);
            }
        }
    }

    /// Complete a job: release nodes, settle leases if on-demand.
    pub(super) fn finish_job(
        &mut self,
        j: JobId,
        now: SimTime,
        killed: bool,
        q: &mut EventQueue<Ev>,
    ) {
        self.accrue_occupancy(j, now);
        self.note_run_stopped(j);
        let spec_kind = self.spec(j).kind;
        let st = self.st_mut(j);
        let run = st.run.take().expect("finishing job had a run");
        st.status = if killed {
            Status::Killed
        } else {
            Status::Finished
        };
        st.remaining_work = SimDuration::ZERO;
        st.remaining_ns = 0;
        st.bump_epoch();
        if killed {
            // A killed run contributed nothing that survives.
            self.rec.add_waste(run.size, now.since(run.start));
            self.rec.job_killed(j, now);
            self.log(now, j, TimelineEvent::Killed);
        } else {
            self.rec.job_finished(j, now);
            self.log(now, j, TimelineEvent::Finished);
        }
        self.cluster.release(j);
        self.leases.forget_lender(j);
        if spec_kind == JobKind::OnDemand {
            self.remove_claim(j);
            self.od_front.remove(&j);
            self.settle_leases(j, now, q);
            self.cluster.release_reservation(j);
        }
        // Terminal status reached and all bookkeeping settled: free the
        // arena slot so resident state stays O(active jobs).
        self.retire(j);
    }
}
