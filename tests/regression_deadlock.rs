//! Regression: a reservation deadlock found by the whole-stack property
//! test (`proptest_sim.rs`). Sequence distilled from the minimal failing
//! input:
//!
//! 1. On-demand J1 (57 nodes) preempts rigid J0 (40 nodes) and finishes at
//!    t=68,696 — the *same instant* on-demand J3 (32 nodes) arrives.
//! 2. J3's `Submit` is processed first (lower event sequence number): only
//!    7 nodes are free, the only running job is an on-demand job (never a
//!    victim), so J3 waits at the queue front with a partial claim.
//! 3. J1's `Finish` then settles its lease: 33 nodes go back to J0 as a
//!    private reservation, and J3's claim collects the remaining free
//!    nodes — J0 holds 33, J3 holds 31, zero free, **nothing running, no
//!    event pending**: a deadlock, two jobs hoarding the whole machine.
//!
//! The fix: reservations are subordinate to queue priority — a blocked
//! head may raid lower-ranked waiting jobs' private reservations
//! (DESIGN.md §2, "Deadlock avoidance").

use hws_sim::{SimDuration as D, SimTime as T};
use hybrid_workload_sched::prelude::*;

#[test]
fn reservation_hoarding_cannot_deadlock() {
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .submit_at(T::from_secs(7_926))
            .size(40)
            .work(D::from_secs(17_880))
            .estimate(D::from_secs(17_880))
            .setup(D::from_secs(536))
            .build(),
        JobSpecBuilder::on_demand(1)
            .submit_at(T::from_secs(56_537))
            .size(57)
            .work(D::from_secs(11_259))
            .estimate(D::from_secs(11_259))
            .setup(D::from_secs(900))
            .build(),
        JobSpecBuilder::on_demand(2)
            .submit_at(T::from_secs(201))
            .size(25)
            .work(D::from_secs(17_294))
            .estimate(D::from_secs(24_510))
            .setup(D::from_secs(1_210))
            .build(),
        JobSpecBuilder::on_demand(3)
            .submit_at(T::from_secs(68_696))
            .size(32)
            .work(D::from_secs(2_980))
            .estimate(D::from_secs(8_421))
            .setup(D::from_secs(208))
            .notice(T::from_secs(66_911), T::from_secs(68_696))
            .build(),
        JobSpecBuilder::on_demand(4)
            .submit_at(T::from_secs(37_121))
            .size(51)
            .work(D::from_secs(7_939))
            .estimate(D::from_secs(9_489))
            .setup(D::from_secs(396))
            .notice(T::from_secs(35_446), T::from_secs(37_121))
            .build(),
    ];
    let trace = Trace::new(64, D::from_days(30), jobs);
    // The original failure was under N&SPAA; check every mechanism.
    for mechanism in Mechanism::ALL_SIX {
        let cfg = SimConfig::with_mechanism(mechanism).paranoid();
        let out = Simulator::run_trace(&cfg, &trace);
        assert_eq!(
            out.metrics.completed_jobs, 5,
            "{mechanism}: all five jobs must complete (deadlock?)"
        );
    }
}

#[test]
fn two_preempted_lenders_cannot_deadlock_each_other() {
    // Symmetric variant: two big rigid jobs both preempted by on-demand
    // jobs; their private lease returns together cover the machine but
    // neither alone can restart.
    let jobs = vec![
        JobSpecBuilder::rigid(0)
            .submit_at(T::from_secs(0))
            .size(60)
            .work(D::from_secs(30_000))
            .estimate(D::from_secs(30_000))
            .build(),
        JobSpecBuilder::rigid(1)
            .submit_at(T::from_secs(10))
            .size(40)
            .work(D::from_secs(30_000))
            .estimate(D::from_secs(30_000))
            .build(),
        JobSpecBuilder::on_demand(2)
            .submit_at(T::from_secs(5_000))
            .size(55)
            .work(D::from_secs(2_000))
            .estimate(D::from_secs(3_000))
            .build(),
        JobSpecBuilder::on_demand(3)
            .submit_at(T::from_secs(5_100))
            .size(35)
            .work(D::from_secs(2_000))
            .estimate(D::from_secs(3_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(7), jobs);
    for mechanism in [Mechanism::N_PAA, Mechanism::CUA_SPAA] {
        let cfg = SimConfig::with_mechanism(mechanism).paranoid();
        let out = Simulator::run_trace(&cfg, &trace);
        assert_eq!(out.metrics.completed_jobs, 4, "{mechanism}");
    }
}
