//! # hws-workload — job model and synthetic Theta-like workload generator
//!
//! The paper evaluates on a proprietary one-year Cobalt trace from Theta
//! (ALCF, 2019): 4,392 KNL nodes, 37,298 jobs, 211 projects, runtimes up to
//! one day, sizes of at least 128 nodes. That trace is not public, so this
//! crate builds a **calibrated synthetic equivalent** (see `DESIGN.md` §4):
//!
//! * project-structured submissions with Zipf-skewed activity,
//! * bursty per-project sessions (reproducing the paper's Fig. 5 on-demand
//!   burst pattern),
//! * the published size mix (Fig. 3) and runtime bounds (Table I),
//! * job-type assignment *by project* (10 % on-demand / 60 % rigid / 30 %
//!   malleable projects, §IV-B) with large on-demand jobs reassigned,
//! * the four advance-notice categories of Fig. 1 mixed per Table III
//!   (workloads W1–W5).
//!
//! Everything is deterministic given a seed.

pub mod dist;
pub mod gen;
pub mod ids;
pub mod job;
pub mod knobs;
pub mod outage;
pub mod source;
pub mod stats;
pub mod sublog;
pub mod swf;
pub mod trace;

pub use gen::{NoticeMix, TraceConfig};
pub use ids::{JobId, ProjectId};
pub use job::{JobClass, JobKind, JobSpec, NoticeCategory, NoticeSpec};
pub use knobs::{BackfillLevel, KnobVector, PlacementChoice, CKPT_MULT_MAX, CKPT_MULT_MIN};
pub use outage::{MaintenanceWindow, OutageEvent, OutageKind, OutageSchedule};
pub use source::{JobSource, MaterializedSource, SwfStreamSource};
pub use sublog::{earliest_event, LiveSource, LogEntry, SubmissionLog, SubmitOp};
pub use swf::{
    import_swf, import_swf_reader, to_swf, to_swf_writer, SwfError, SwfExportConfig,
    SwfImportConfig,
};
pub use trace::Trace;
