//! Microbench of the arena-backed job table: the sliding admit/retire
//! window streaming replay runs a million times per archive, plus the
//! id-to-slot lookups every event handler performs. Companion to the
//! allocation-freedom proofs in `hws-core`'s `alloc_budget` tests.

use criterion::{criterion_group, criterion_main, Criterion};
use hws_core::JobTable;
use hws_sim::SimDuration;
use hws_workload::job::JobSpecBuilder;
use hws_workload::JobId;
use std::hint::black_box;

fn spec(id: u64) -> hws_workload::JobSpec {
    JobSpecBuilder::rigid(id)
        .size(64)
        .work(SimDuration::from_secs(600))
        .estimate(SimDuration::from_secs(1_200))
        .build()
}

fn bench_job_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("job_table");

    for window in [64u64, 512, 4_096] {
        g.bench_function(format!("admit_retire_window/{window}_live"), |b| {
            // Hold `window` jobs live; each iteration admits one and
            // retires the oldest, recycling one arena slot — the
            // steady-state of streaming replay at that live-set size.
            let mut t = JobTable::new();
            for id in 0..window {
                t.admit(spec(id));
            }
            let mut next = window;
            b.iter(|| {
                t.admit(spec(next));
                t.retire(JobId(next - window));
                next += 1;
                black_box(t.live())
            });
        });
    }

    g.bench_function("state_lookup/1024_live", |b| {
        let mut t = JobTable::new();
        for id in 0..1_024u64 {
            t.admit(spec(id));
        }
        let mut i = 0u64;
        b.iter(|| {
            // Stride through the id space so the open-addressed index is
            // probed at varied offsets, not one hot slot.
            i = (i + 631) % 1_024;
            black_box(t.state(JobId(i)).id)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_job_table);
criterion_main!(benches);
