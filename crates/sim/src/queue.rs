//! The future-event list: a binary heap of timestamped events with
//! deterministic FIFO tie-breaking and O(1) lazy cancellation.
//!
//! Cancellation matters for this simulator: a scheduled job-finish event
//! becomes stale when the job is preempted or shrunk, and a planned
//! checkpoint-triggered preemption (CUP) is dropped when its on-demand job
//! arrives early. Cancelled entries stay in the heap and are skipped on pop.
//!
//! ## Two sequence lanes
//!
//! Entries are ordered by `(time, seq)`. The queue hands out sequence
//! numbers from two disjoint lanes:
//!
//! * the **arrival lane** ([`EventQueue::schedule_arrival`]) counts up from
//!   0 and is reserved for externally ordered trace arrivals (submits and
//!   advance notices) injected lazily by a streaming driver;
//! * the **dynamic lane** ([`EventQueue::schedule`]) counts up from
//!   [`DYN_SEQ_BASE`] and carries everything the simulation schedules while
//!   running.
//!
//! Because every arrival seq is below every dynamic seq, a same-instant tie
//! always delivers trace arrivals before dynamic events — exactly the order
//! a driver gets by pre-seeding the whole trace into a fresh queue before
//! its first dynamic `schedule`. That makes lazily injected arrivals
//! bitwise-indistinguishable from pre-seeded ones, which is the invariant
//! the streaming replay path is built on.
//!
//! ## Cancellation flags
//!
//! Dynamic-lane cancellation state lives in a ring of per-seq flags (a
//! `VecDeque<u8>` indexed by `seq - flag_base`) instead of hash sets: one
//! array read per cancel/pop check, no hashing on the hot path. Arrival-lane
//! events are never cancellable (the trace is immutable), so they carry no
//! flag at all.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// First sequence number of the dynamic lane; everything below it belongs
/// to the arrival lane.
pub const DYN_SEQ_BASE: u64 = 1 << 62;

/// Opaque handle for a scheduled event, used to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number, for serialization. Pair with
    /// [`EventId::from_raw`]; ids are only meaningful against the queue
    /// snapshot they were taken with.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from its raw sequence number (snapshot restore).
    pub fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Reverse ordering => BinaryHeap becomes a min-heap on (time, seq).
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

/// Per-seq lifecycle of a dynamic-lane event.
const FLAG_PENDING: u8 = 0;
const FLAG_DELIVERED: u8 = 1;
const FLAG_CANCELLED: u8 = 2;
const FLAG_RECLAIMED: u8 = 3;

/// Future-event list with stable ordering and lazy cancellation.
///
/// Two bookkeeping guarantees keep long replays bounded:
///
/// * cancelling an already-delivered (or unknown) id is a true no-op, so
///   stale cancels can never leak tombstones;
/// * when cancelled tombstones outnumber live entries, the heap is
///   compacted in O(heap) — epoch-bumped Finish/Kill events accumulating
///   under heavy preemption can never dominate the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Dynamic-lane flags, indexed by `seq - flag_base`. The front is
    /// trimmed as soon as it is no longer `FLAG_PENDING`, so the ring spans
    /// only the oldest-undelivered..newest window.
    flags: VecDeque<u8>,
    /// Sequence number of `flags[0]`.
    flag_base: u64,
    /// Next dynamic-lane sequence number.
    next_seq: u64,
    /// Next arrival-lane sequence number.
    next_arrival_seq: u64,
    /// Cancelled entries still buried in the heap.
    live_cancelled: usize,
    /// High-water mark of delivered time; scheduling before it is a logic
    /// error caught in debug builds.
    watermark: SimTime,
    n_cancelled_popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            flags: VecDeque::new(),
            flag_base: DYN_SEQ_BASE,
            next_seq: DYN_SEQ_BASE,
            next_arrival_seq: 0,
            live_cancelled: 0,
            watermark: SimTime::ZERO,
            n_cancelled_popped: 0,
        }
    }

    /// Schedule `event` at absolute time `t`. Returns a handle for
    /// cancellation. Scheduling in the causal past (before the last popped
    /// event) is a bug in the caller and panics in debug builds; in release
    /// the event is clamped to the watermark so the simulation stays
    /// monotone.
    pub fn schedule(&mut self, t: SimTime, event: E) -> EventId {
        debug_assert!(
            t >= self.watermark,
            "scheduled event at {t} before watermark {}",
            self.watermark
        );
        let t = t.max(self.watermark);
        let seq = self.next_seq;
        self.heap.push(Entry {
            time: t,
            seq,
            event,
        });
        self.flags.push_back(FLAG_PENDING);
        self.next_seq += 1;
        EventId(seq)
    }

    /// Schedule a trace arrival (submit / advance notice) on the low
    /// sequence lane. Same-instant ties deliver arrival-lane events before
    /// every dynamic one, and earlier arrivals before later ones — the
    /// caller must therefore inject arrivals in trace order. Arrival events
    /// cannot be cancelled.
    pub fn schedule_arrival(&mut self, t: SimTime, event: E) -> EventId {
        debug_assert!(
            t >= self.watermark,
            "arrival scheduled at {t} before watermark {}",
            self.watermark
        );
        debug_assert!(
            self.next_arrival_seq < DYN_SEQ_BASE,
            "arrival lane exhausted"
        );
        let t = t.max(self.watermark);
        let seq = self.next_arrival_seq;
        self.heap.push(Entry {
            time: t,
            seq,
            event,
        });
        self.next_arrival_seq += 1;
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an already-delivered,
    /// already-cancelled, arrival-lane, or unknown event is a true no-op
    /// (returns `false`) — no tombstone is recorded, so stale cancels
    /// cannot grow state on long replays.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(idx) = id.0.checked_sub(self.flag_base) else {
            return false; // arrival lane or already trimmed (delivered)
        };
        match self.flags.get_mut(idx as usize) {
            Some(f) if *f == FLAG_PENDING => *f = FLAG_CANCELLED,
            _ => return false,
        }
        self.live_cancelled += 1;
        // Tombstone compaction: when cancelled entries outnumber the live
        // ones, rebuild the heap without them. O(heap), amortized O(1) per
        // cancel; keeps epoch-bumped Finish/Kill tombstones from dominating
        // the heap under heavy preemption.
        if self.live_cancelled * 2 > self.heap.len() {
            self.compact();
        }
        true
    }

    /// Trim delivered/reclaimed flags off the ring front so it only spans
    /// the oldest-undelivered..newest window.
    #[inline]
    fn trim_flags(&mut self) {
        while let Some(&f) = self.flags.front() {
            if f == FLAG_PENDING || f == FLAG_CANCELLED {
                break;
            }
            self.flags.pop_front();
            self.flag_base += 1;
        }
    }

    /// Drop every cancelled entry from the heap in one pass. Cold: at most
    /// one compaction per `heap/2` cancels, and most replays never cancel
    /// enough to trigger it at all.
    #[cold]
    #[inline(never)]
    fn compact(&mut self) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let flag_base = self.flag_base;
        let flags = &mut self.flags;
        let live: Vec<Entry<E>> = entries
            .into_iter()
            .filter(|e| {
                let cancelled = e
                    .seq
                    .checked_sub(flag_base)
                    .and_then(|i| flags.get_mut(i as usize))
                    .filter(|f| **f == FLAG_CANCELLED);
                if let Some(f) = cancelled {
                    *f = FLAG_RECLAIMED;
                    self.live_cancelled -= 1;
                    self.n_cancelled_popped += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        debug_assert_eq!(self.live_cancelled, 0);
        self.heap = BinaryHeap::from(live);
        self.trim_flags();
    }

    /// Pop the next live event, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            if entry.seq >= DYN_SEQ_BASE {
                let idx = (entry.seq - self.flag_base) as usize;
                let f = &mut self.flags[idx];
                if *f == FLAG_CANCELLED {
                    *f = FLAG_RECLAIMED;
                    self.live_cancelled -= 1;
                    self.n_cancelled_popped += 1;
                    if idx == 0 {
                        self.trim_flags();
                    }
                    continue;
                }
                debug_assert_eq!(*f, FLAG_PENDING);
                *f = FLAG_DELIVERED;
                if idx == 0 {
                    self.trim_flags();
                }
            }
            self.watermark = entry.time;
            return Some((entry.time, EventId(entry.seq), entry.event));
        }
        None
    }

    /// Timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head = self.heap.peek()?;
            let cancelled = head.seq >= DYN_SEQ_BASE
                && self.flags[(head.seq - self.flag_base) as usize] == FLAG_CANCELLED;
            if cancelled {
                let e = self.heap.pop().expect("peeked entry exists");
                let idx = (e.seq - self.flag_base) as usize;
                self.flags[idx] = FLAG_RECLAIMED;
                self.live_cancelled -= 1;
                self.n_cancelled_popped += 1;
                if idx == 0 {
                    self.trim_flags();
                }
                continue;
            }
            return Some(head.time);
        }
    }

    /// Number of entries in the heap, *including* not-yet-skipped cancelled
    /// ones (cheap upper bound).
    pub fn len_upper_bound(&self) -> usize {
        self.heap.len()
    }

    /// Exact number of live (non-cancelled) events.
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.live_cancelled
    }

    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Total events ever scheduled, across both lanes.
    pub fn scheduled_total(&self) -> u64 {
        (self.next_seq - DYN_SEQ_BASE) + self.next_arrival_seq
    }

    /// Cancelled entries reclaimed so far (skipped during pops or dropped
    /// by tombstone compaction).
    pub fn cancelled_skipped(&self) -> u64 {
        self.n_cancelled_popped
    }

    /// Cancelled entries still buried in the heap (not yet reclaimed).
    pub fn cancelled_pending(&self) -> usize {
        self.live_cancelled
    }

    /// The delivery high-water mark (time of the most recent pop).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Rebuild a queue from snapshot state, validating internal
    /// consistency. `live_cancelled` is not part of the snapshot — it is
    /// recomputed from the flags — so a corrupt value cannot be smuggled
    /// in. Errors (never panics) on inconsistent input.
    pub fn from_snapshot(snap: QueueSnapshot<E>) -> Result<Self, String> {
        let QueueSnapshot {
            entries,
            flags,
            flag_base,
            next_seq,
            next_arrival_seq,
            watermark,
            n_cancelled_popped,
        } = snap;
        if flag_base < DYN_SEQ_BASE {
            return Err(format!("flag_base {flag_base} below dynamic lane base"));
        }
        if flag_base.checked_add(flags.len() as u64) != Some(next_seq) {
            return Err(format!(
                "flag ring [{flag_base}; {}] inconsistent with next_seq {next_seq}",
                flags.len()
            ));
        }
        if next_arrival_seq > DYN_SEQ_BASE {
            return Err(format!("arrival lane overflow: {next_arrival_seq}"));
        }
        let mut live_cancelled = 0usize;
        for (i, &f) in flags.iter().enumerate() {
            if f > FLAG_RECLAIMED {
                return Err(format!("bad flag byte {f} at ring index {i}"));
            }
            if f == FLAG_CANCELLED {
                live_cancelled += 1;
            }
        }
        let mut heap_cancelled = 0usize;
        let mut prev: Option<(SimTime, u64)> = None;
        for &(t, seq, _) in &entries {
            if t < watermark {
                return Err(format!("entry at {t} precedes watermark {watermark}"));
            }
            if let Some(p) = prev {
                if (t, seq) <= p {
                    return Err("entries not strictly sorted by (time, seq)".into());
                }
            }
            prev = Some((t, seq));
            if seq >= DYN_SEQ_BASE {
                let Some(idx) = seq
                    .checked_sub(flag_base)
                    .filter(|&i| i < flags.len() as u64)
                else {
                    return Err(format!("dynamic entry seq {seq} outside flag ring"));
                };
                match flags[idx as usize] {
                    FLAG_PENDING => {}
                    FLAG_CANCELLED => heap_cancelled += 1,
                    f => return Err(format!("heap entry seq {seq} has non-live flag {f}")),
                }
            } else if seq >= next_arrival_seq {
                return Err(format!(
                    "arrival entry seq {seq} beyond next_arrival_seq {next_arrival_seq}"
                ));
            }
        }
        if heap_cancelled != live_cancelled {
            return Err(format!(
                "cancelled flags ({live_cancelled}) disagree with cancelled heap entries \
                 ({heap_cancelled})"
            ));
        }
        let heap = BinaryHeap::from(
            entries
                .into_iter()
                .map(|(time, seq, event)| Entry { time, seq, event })
                .collect::<Vec<_>>(),
        );
        Ok(EventQueue {
            heap,
            flags: flags.into(),
            flag_base,
            next_seq,
            next_arrival_seq,
            live_cancelled,
            watermark,
            n_cancelled_popped,
        })
    }
}

impl<E: Clone> EventQueue<E> {
    /// Export the queue's full state. Entries are sorted by `(time, seq)` —
    /// the total delivery order — so the export is deterministic even
    /// though `BinaryHeap` iteration order is not.
    pub fn to_snapshot(&self) -> QueueSnapshot<E> {
        let mut entries: Vec<_> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, e.event.clone()))
            .collect();
        entries.sort_by_key(|&(t, s, _)| (t, s));
        QueueSnapshot {
            entries,
            flags: self.flags.iter().copied().collect(),
            flag_base: self.flag_base,
            next_seq: self.next_seq,
            next_arrival_seq: self.next_arrival_seq,
            watermark: self.watermark,
            n_cancelled_popped: self.n_cancelled_popped,
        }
    }
}

/// Deterministic export of an [`EventQueue`]'s complete state, produced by
/// [`EventQueue::to_snapshot`] and consumed by [`EventQueue::from_snapshot`].
///
/// The round trip is exact: the restored queue delivers the identical
/// `(time, EventId, event)` stream and reports identical counters. Flag
/// bytes are exported verbatim (they encode the pending/cancelled state of
/// the undelivered dynamic-lane window); `live_cancelled` is intentionally
/// absent and recomputed on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot<E> {
    /// Undelivered entries, sorted ascending by `(time, seq)`.
    pub entries: Vec<(SimTime, u64, E)>,
    /// Dynamic-lane flag ring, front first (`flags[0]` is seq `flag_base`).
    pub flags: Vec<u8>,
    /// Sequence number of `flags[0]`.
    pub flag_base: u64,
    /// Next dynamic-lane sequence number.
    pub next_seq: u64,
    /// Next arrival-lane sequence number.
    pub next_arrival_seq: u64,
    /// Delivery high-water mark.
    pub watermark: SimTime,
    /// Cancelled entries reclaimed so far.
    pub n_cancelled_popped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, _, e)| e), None);
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        assert!(!q.cancel(EventId(DYN_SEQ_BASE + 42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.live_len(), 1);
    }

    #[test]
    fn watermark_advances() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        q.pop();
        assert_eq!(q.watermark(), t(7));
        // Scheduling at the watermark is allowed (same-instant cascades).
        q.schedule(t(7), ());
        assert_eq!(q.pop().map(|(ts, _, _)| ts), Some(t(7)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before watermark")]
    fn schedule_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_skipped(), 1);
    }

    #[test]
    fn is_empty_after_draining() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_pop_leaks_no_tombstone() {
        // Regression: cancelling an already-delivered event used to insert
        // its id into `cancelled` with no heap entry left to reclaim it,
        // growing the set unboundedly on long replays.
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("a"));
        assert!(!q.cancel(a), "stale cancel must be a no-op");
        assert_eq!(q.cancelled_pending(), 0, "no tombstone for delivered id");
        // Repeated stale cancels still leak nothing.
        for _ in 0..100 {
            q.cancel(a);
        }
        assert_eq!(q.cancelled_pending(), 0);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert!(!q.cancel(b));
        assert_eq!(q.cancelled_pending(), 0);
    }

    #[test]
    fn compaction_bounds_heap_under_cancel_heavy_workload() {
        // Epoch-bump churn: most scheduled events are cancelled before
        // delivery. Compaction must keep the heap from filling up with
        // tombstones: whenever cancelled entries outnumber live ones the
        // heap is rebuilt, so `len_upper_bound` stays within 2x the live
        // count.
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..128).map(|i| q.schedule(t(1 + i), i)).collect();
        for id in &ids[..100] {
            assert!(q.cancel(*id));
            assert!(
                q.cancelled_pending() * 2 <= q.len_upper_bound(),
                "tombstones exceed half the heap"
            );
        }
        assert_eq!(q.live_len(), 28);
        assert!(
            q.len_upper_bound() <= 2 * q.live_len(),
            "heap {} not compacted (live {})",
            q.len_upper_bound(),
            q.live_len()
        );
        // Delivery order and content are unaffected by compaction.
        let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(survivors, (100..128).collect::<Vec<_>>());
        assert_eq!(q.cancelled_pending(), 0);
        // Conservation: every scheduled event was delivered or reclaimed.
        assert_eq!(q.scheduled_total(), 128);
        assert_eq!(q.cancelled_skipped(), 100);
    }

    #[test]
    fn flag_ring_stays_bounded_by_undelivered_window() {
        // Delivering in order trims the ring front, so steady-state churn
        // (schedule one, pop one) keeps the flag ring at O(live) even
        // though sequence numbers grow without bound.
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(t(i), i);
            q.pop();
        }
        assert!(q.flags.len() <= 1, "flag ring grew: {}", q.flags.len());
    }

    // ------------------------------------------------------------------
    // Arrival lane
    // ------------------------------------------------------------------

    #[test]
    fn arrival_lane_wins_same_time_ties() {
        // A dynamic event scheduled *before* the arrival still loses the
        // same-instant tie: arrival seqs are below every dynamic seq, so
        // lazy injection is indistinguishable from pre-seeding the trace
        // into a fresh queue.
        let mut q = EventQueue::new();
        q.schedule(t(5), "dyn0");
        q.schedule_arrival(t(5), "arr0");
        q.schedule_arrival(t(5), "arr1");
        q.schedule(t(5), "dyn1");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["arr0", "arr1", "dyn0", "dyn1"]);
    }

    #[test]
    fn arrival_lane_orders_by_injection_sequence() {
        let mut q = EventQueue::new();
        q.schedule_arrival(t(3), "n1");
        q.schedule_arrival(t(3), "s1");
        q.schedule_arrival(t(7), "s2");
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("n1"));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("s1"));
        // Interleave a dynamic event between arrivals.
        q.schedule(t(5), "dyn");
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("dyn"));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("s2"));
    }

    #[test]
    fn arrival_events_are_not_cancellable() {
        let mut q = EventQueue::new();
        let a = q.schedule_arrival(t(1), "a");
        assert!(!q.cancel(a));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("a"));
    }

    #[test]
    fn scheduled_total_counts_both_lanes() {
        let mut q = EventQueue::new();
        q.schedule_arrival(t(1), ());
        q.schedule(t(1), ());
        q.schedule_arrival(t(2), ());
        assert_eq!(q.scheduled_total(), 3);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn lazy_injection_matches_preseeded_order() {
        // The invariant the streaming driver relies on: injecting arrivals
        // lane-by-lane as time advances yields the same delivery order as
        // pre-seeding everything up front, including same-time ties with
        // dynamic events scheduled mid-run.
        let arrivals = [(1u64, "a0"), (4, "a1"), (4, "a2"), (9, "a3")];
        // Pre-seeded run.
        let mut pre = EventQueue::new();
        for (ts, e) in arrivals {
            pre.schedule_arrival(t(ts), e);
        }
        let mut pre_order = vec![];
        while let Some((ts, _, e)) = pre.pop() {
            pre_order.push(e);
            if e == "a0" {
                pre.schedule(t(4), "dyn@4");
            }
            let _ = ts;
        }
        // Lazily injected run: each arrival goes in only when the virtual
        // clock is about to reach it.
        let mut lazy = EventQueue::new();
        let mut pending = arrivals.iter().peekable();
        let mut lazy_order = vec![];
        loop {
            while let Some(&&(ts, e)) = pending.peek() {
                let head = lazy.peek_time();
                if head.is_none() || t(ts) <= head.unwrap() {
                    lazy.schedule_arrival(t(ts), e);
                    pending.next();
                } else {
                    break;
                }
            }
            match lazy.pop() {
                Some((_, _, e)) => {
                    lazy_order.push(e);
                    if e == "a0" {
                        lazy.schedule(t(4), "dyn@4");
                    }
                }
                None => break,
            }
        }
        assert_eq!(pre_order, lazy_order);
        assert_eq!(pre_order, vec!["a0", "a1", "a2", "dyn@4", "a3"]);
    }

    // ------------------------------------------------------------------
    // Snapshot round trip
    // ------------------------------------------------------------------

    /// A queue mid-flight: some delivered, some cancelled (one reclaimed,
    /// one still buried), arrivals interleaved.
    fn busy_queue() -> EventQueue<&'static str> {
        let mut q = EventQueue::new();
        q.schedule_arrival(t(1), "arr0");
        q.schedule_arrival(t(6), "arr1");
        let a = q.schedule(t(2), "dyn-cancel-reclaim");
        q.schedule(t(3), "dyn-live");
        let b = q.schedule(t(4), "dyn-cancel-buried");
        q.schedule(t(6), "dyn@6");
        q.cancel(a);
        q.cancel(b);
        q.pop(); // arr0 @1; reclaims a on the way at t2? no — pops arr0
        q.pop(); // skips reclaimed/cancelled as needed, delivers dyn-live
        q
    }

    #[test]
    fn snapshot_round_trip_preserves_delivery_and_counters() {
        let mut orig = busy_queue();
        let snap = orig.to_snapshot();
        let mut restored = EventQueue::from_snapshot(snap).expect("valid snapshot");

        assert_eq!(restored.live_len(), orig.live_len());
        assert_eq!(restored.cancelled_pending(), orig.cancelled_pending());
        assert_eq!(restored.scheduled_total(), orig.scheduled_total());
        assert_eq!(restored.cancelled_skipped(), orig.cancelled_skipped());
        assert_eq!(restored.watermark(), orig.watermark());

        // Identical remaining delivery stream, ids included.
        let drain =
            |q: &mut EventQueue<&'static str>| std::iter::from_fn(|| q.pop()).collect::<Vec<_>>();
        assert_eq!(drain(&mut restored), drain(&mut orig));
        assert_eq!(restored.cancelled_skipped(), orig.cancelled_skipped());

        // The restored queue keeps functioning: new ids continue the lanes.
        let id = restored.schedule(t(100), "later");
        assert_eq!(orig.schedule(t(100), "later"), id);
    }

    #[test]
    fn snapshot_of_fresh_queue_round_trips() {
        let q: EventQueue<u32> = EventQueue::new();
        let mut restored = EventQueue::from_snapshot(q.to_snapshot()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.scheduled_total(), 0);
    }

    #[test]
    fn corrupt_snapshots_error_instead_of_panicking() {
        let q = busy_queue();
        let good = q.to_snapshot();

        let mut bad = good.clone();
        bad.flags.push(FLAG_PENDING); // ring length disagrees with next_seq
        assert!(EventQueue::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        if let Some(f) = bad.flags.first_mut() {
            *f = 7; // invalid flag byte
            assert!(EventQueue::from_snapshot(bad).is_err());
        }

        let mut bad = good.clone();
        bad.watermark = t(1_000_000); // entries precede watermark
        assert!(EventQueue::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        bad.entries.reverse(); // violates sorted order
        assert!(EventQueue::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        if !bad.entries.is_empty() {
            bad.entries[0].1 = DYN_SEQ_BASE + 999_999; // seq outside ring
            assert!(EventQueue::from_snapshot(bad).is_err());
        }

        let mut bad = good;
        bad.flag_base = DYN_SEQ_BASE - 1; // below lane base
        assert!(EventQueue::from_snapshot(bad).is_err());
    }

    #[test]
    fn event_id_raw_round_trip() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(1), ());
        assert_eq!(EventId::from_raw(id.raw()), id);
    }
}
