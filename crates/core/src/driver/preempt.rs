//! Preemption mechanics: preempt/shrink/expand for running jobs, the
//! malleable two-minute drain, and checkpoint-aware overhead accounting.

use super::core::SimCore;
use super::events::Ev;
use crate::jobstate::{rigid_progress, Status};
use crate::timeline::TimelineEvent;
use hws_cluster::ClusterBackend;
use hws_sim::{EventQueue, SimTime};
use hws_workload::{JobId, JobKind};

impl<B: ClusterBackend> SimCore<B> {
    /// Preemption overhead (wasted node-seconds) of preempting `j` now:
    /// work past the last checkpoint for rigid jobs; spent setup plus the
    /// warning window for malleable jobs.
    pub(super) fn preemption_overhead(&self, j: JobId, now: SimTime) -> u64 {
        let st = self.st(j);
        let run = st.run.as_ref().expect("overhead of non-running job");
        let spec = self.spec(j);
        match spec.kind {
            JobKind::Malleable => {
                let setup_spent = now.since(run.start).min(spec.setup);
                (setup_spent + self.cfg.malleable_warning).as_secs() * u64::from(run.size)
            }
            _ => {
                let p = rigid_progress(
                    now.since(run.start),
                    spec.setup,
                    run.tau,
                    run.delta,
                    run.work_at_start,
                );
                (now.since(run.start) - p.anchor_elapsed).as_secs() * u64::from(run.size)
            }
        }
    }

    /// Preempt a running job. Rigid victims are killed instantly and lose
    /// everything past their last checkpoint; malleable victims get the
    /// two-minute warning (they hold their nodes, make no progress, then
    /// release). Returns the number of nodes that will be released (now or
    /// at drain end).
    pub(super) fn preempt_job(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) -> u32 {
        debug_assert_eq!(self.st(j).status, Status::Running);
        let spec = self.spec(j).clone();
        let size = self.st(j).run.as_ref().expect("running").size;
        self.accrue_occupancy(j, now);
        self.note_run_stopped(j);
        self.rec.job_preempted(j);
        self.log(now, j, TimelineEvent::Preempted);

        match spec.kind {
            JobKind::Malleable => {
                self.accrue_malleable(j, now);
                let warning = self.cfg.malleable_warning;
                let st = self.st_mut(j);
                let run = st.run.as_ref().expect("running");
                let setup_spent = now.since(run.start).min(spec.setup);
                st.status = Status::Draining;
                st.preempt_count += 1;
                let epoch = st.bump_epoch();
                st.drain_until = Some(now + warning);
                q.schedule(now + warning, Ev::DrainEnd { job: j, epoch });
                self.log(now, j, TimelineEvent::DrainStarted);
                // The spent setup is wasted (it will be repeated).
                if !setup_spent.is_zero() {
                    self.rec.add_waste(size, setup_spent);
                }
                size
            }
            _ => {
                let st = self.st_mut(j);
                let run = st.run.take().expect("running");
                let p = rigid_progress(
                    now.since(run.start),
                    spec.setup,
                    run.tau,
                    run.delta,
                    run.work_at_start,
                );
                st.remaining_work = run.work_at_start - p.checkpointed;
                st.status = Status::Waiting;
                st.preempt_count += 1;
                st.bump_epoch();
                let waste = now.since(run.start) - p.anchor_elapsed;
                if !waste.is_zero() {
                    self.rec.add_waste(size, waste);
                }
                self.cluster.release(j);
                // Resubmission keeps the original submit time (§III-B2) —
                // the queue key is derived from the spec, so the job simply
                // re-enters the index under its original priority.
                self.enqueue_waiting(j);
                size
            }
        }
    }

    /// Drain window expired: the malleable job's nodes release now.
    pub(super) fn finish_drain(&mut self, j: JobId, _now: SimTime) {
        let full_size = self.spec(j).size;
        let st = self.st_mut(j);
        debug_assert_eq!(st.status, Status::Draining);
        let run = st.run.take().expect("draining holds a run");
        st.status = Status::Waiting;
        st.drain_until = None;
        st.cur_size = full_size; // next start re-chooses a size
        let size = run.size;
        // Warning window: occupied, zero progress → pure waste.
        let warning = self.cfg.malleable_warning;
        self.add_occ(j, size, warning);
        self.rec.add_waste(size, warning);
        self.cluster.release(j);
        self.enqueue_waiting(j);
    }

    /// Grow a running malleable job by up to `k` nodes.
    pub(super) fn expand_job(&mut self, j: JobId, k: u32, now: SimTime, q: &mut EventQueue<Ev>) {
        debug_assert_eq!(self.spec(j).kind, JobKind::Malleable);
        self.accrue_occupancy(j, now);
        self.accrue_malleable(j, now);
        let granted = self.cluster.expand(j, k);
        if granted == 0 {
            return;
        }
        let st = self.st_mut(j);
        st.owed_expansion = st.owed_expansion.saturating_sub(granted);
        st.cur_size += granted;
        let epoch = st.bump_epoch();
        let remaining_ns = st.remaining_ns;
        let run = st.run.as_mut().expect("running");
        run.size += granted;
        let at = crate::jobstate::malleable_finish(run, remaining_ns);
        let (from, to) = (run.size - granted, run.size);
        self.rec.job_expanded(j);
        q.schedule(at.max(now), Ev::Finish { job: j, epoch });
        self.log(now, j, TimelineEvent::Expanded { from, to });
        self.schedule_failure(j, now, q);
    }

    /// Shrink a running malleable job by `k` nodes (free, instantaneous).
    pub(super) fn shrink_job(&mut self, j: JobId, k: u32, now: SimTime, q: &mut EventQueue<Ev>) {
        debug_assert_eq!(self.spec(j).kind, JobKind::Malleable);
        self.accrue_occupancy(j, now);
        self.accrue_malleable(j, now);
        self.cluster.shrink(j, k);
        let st = self.st_mut(j);
        st.cur_size -= k;
        st.owed_expansion += k;
        let epoch = st.bump_epoch();
        let remaining_ns = st.remaining_ns;
        let run = st.run.as_mut().expect("running");
        run.size -= k;
        let at = crate::jobstate::malleable_finish(run, remaining_ns);
        let (from, to) = (run.size + k, run.size);
        self.rec.job_shrunk(j);
        q.schedule(at.max(now), Ev::Finish { job: j, epoch });
        self.log(now, j, TimelineEvent::Shrunk { from, to });
        self.schedule_failure(j, now, q);
    }
}
