//! Federated multi-cluster dispatch: several named [`Cluster`] shards
//! behind one [`ClusterBackend`], with a pluggable [`PlacementPolicy`]
//! deciding which shard a job lands on.
//!
//! The paper schedules one machine; its mechanisms ({N,CUA,CUP}×{PAA,SPAA})
//! are cluster-agnostic in spirit, so lifting the resource manager behind
//! [`ClusterBackend`] lets the same driver schedule a *federation* — the
//! shape of capability/capacity co-scheduling (*More for Less*,
//! arXiv:2501.12464) and hybrid AI-HPC runtimes (arXiv:2509.20819).
//!
//! ## Shard-locality rules
//!
//! * A job runs entirely on one shard; preemption, squatting, shrinking,
//!   and checkpoint accounting never cross shards.
//! * Placement is **sticky**: the first reservation or allocation pins the
//!   job's *home* shard, and preempt/resume cycles stay there (checkpoints
//!   are shard-local data).
//! * Reserved nodes cannot migrate between shards:
//!   [`ClusterBackend::transfer_reserved`] across homes returns 0.
//! * A job larger than the largest shard can never run
//!   ([`ClusterBackend::max_job_size`]); the driver rejects it at
//!   submission.
//!
//! A one-shard federation is behaviorally *identical* to a bare
//! [`Cluster`] — the refactor-safety oracle the `federated` bench binary
//! and the federation proptests pin bitwise.

use crate::backend::ClusterBackend;
use crate::node::{NodeId, NodeState};
use crate::{Cluster, ReleaseOutcome};
use hws_sim::snap::{SnapError, SnapReader, SnapWriter};
use hws_workload::{JobId, JobKind, JobSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// One member machine of a federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    pub name: String,
    pub nodes: u32,
}

/// What a [`PlacementPolicy`] sees about each shard when choosing.
#[derive(Debug, Clone, Copy)]
pub struct ShardView {
    pub index: usize,
    /// Nodes currently *in service* on this shard (down nodes excluded) —
    /// the capacity a placement decision can actually count on.
    pub nodes: u32,
    pub free: u32,
    pub reserved_idle: u32,
    pub running_jobs: u32,
}

/// What a [`PlacementPolicy`] knows about the job being placed.
#[derive(Debug, Clone, Copy)]
pub struct PlaceReq {
    pub job: JobId,
    pub kind: JobKind,
    /// The job's full requested size (its maximum, for malleable jobs).
    pub size: u32,
    /// Workload-provided shard preference (already validated for
    /// feasibility by the federation before the policy is consulted).
    pub site_hint: Option<u32>,
}

/// The federation's extension point: given the job and per-shard state,
/// pick a home shard. `shards` lists only *feasible* shards (total nodes ≥
/// the job's size), in index order; returning `None` or an index not in
/// the list falls back to the first feasible shard.
///
/// Implementations must be deterministic pure functions of their inputs —
/// the multi-seed sweep shares one policy instance across worker threads.
///
/// A custom policy is a few lines and plugs into a
/// [`FederationConfig`] without any driver changes:
///
/// ```
/// use hws_cluster::{FederationConfig, PlaceReq, PlacementPolicy, ShardView};
///
/// /// Send every job to the *last* feasible shard (e.g. drain the first
/// /// shards for maintenance).
/// #[derive(Debug)]
/// struct LastFeasible;
///
/// impl PlacementPolicy for LastFeasible {
///     fn name(&self) -> &str {
///         "last-feasible"
///     }
///
///     fn choose(&self, _req: &PlaceReq, shards: &[ShardView]) -> Option<usize> {
///         shards.last().map(|s| s.index)
///     }
/// }
///
/// let fed = FederationConfig::even_split(4, 4_392).with_policy(LastFeasible);
/// assert_eq!(fed.policy.name(), "last-feasible");
/// assert_eq!(fed.total_nodes(), 4_392);
/// ```
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    fn name(&self) -> &str;
    fn choose(&self, req: &PlaceReq, shards: &[ShardView]) -> Option<usize>;
}

/// First shard with enough free nodes right now, else the first feasible
/// shard (so reservations start collecting where the job can eventually
/// run).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &str {
        "first-fit"
    }

    fn choose(&self, req: &PlaceReq, shards: &[ShardView]) -> Option<usize> {
        shards
            .iter()
            .find(|s| s.free >= req.size)
            .or_else(|| shards.first())
            .map(|s| s.index)
    }
}

/// The feasible shard with the most free nodes (ties → lowest index):
/// spreads load, which keeps per-shard queues short.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn choose(&self, _req: &PlaceReq, shards: &[ShardView]) -> Option<usize> {
        shards
            .iter()
            .max_by_key(|s| (s.free, std::cmp::Reverse(s.index)))
            .map(|s| s.index)
    }
}

/// Segregate classes onto preferred shards — on-demand traffic to the
/// first shard, rigid batch to the next, malleable elastic work to the
/// last — falling back to the first feasible shard with room. This is the
/// capability/capacity split of *More for Less* in miniature.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassAffinity;

impl PlacementPolicy for ClassAffinity {
    fn name(&self) -> &str {
        "class-affinity"
    }

    fn choose(&self, req: &PlaceReq, shards: &[ShardView]) -> Option<usize> {
        let n = shards.len();
        if n == 0 {
            return None;
        }
        let preferred = match req.kind {
            JobKind::OnDemand => 0,
            JobKind::Rigid => n / 2,
            JobKind::Malleable => n - 1,
        };
        // Scan from the preferred shard, wrapping, for one with room now.
        (0..n)
            .map(|off| &shards[(preferred + off) % n])
            .find(|s| s.free >= req.size)
            .map(|s| s.index)
            .or(Some(shards[preferred].index))
    }
}

/// Configuration of a federation, carried by the simulator config.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    pub shards: Vec<ShardSpec>,
    pub policy: Arc<dyn PlacementPolicy>,
}

impl FederationConfig {
    /// Split `total` nodes into `n` shards as evenly as possible (the
    /// remainder goes to the earliest shards), named `shard0..shardN-1`,
    /// under first-fit placement. Preserves the total node count exactly —
    /// the federation-vs-single-cluster comparisons depend on it.
    pub fn even_split(n: usize, total: u32) -> Self {
        assert!(n > 0, "federation needs at least one shard");
        assert!(total >= n as u32, "fewer nodes than shards");
        let base = total / n as u32;
        let extra = (total % n as u32) as usize;
        let shards = (0..n)
            .map(|i| ShardSpec {
                name: format!("shard{i}"),
                nodes: base + u32::from(i < extra),
            })
            .collect();
        FederationConfig {
            shards,
            policy: Arc::new(FirstFit),
        }
    }

    pub fn with_policy<P: PlacementPolicy + 'static>(mut self, policy: P) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    pub fn total_nodes(&self) -> u32 {
        self.shards.iter().map(|s| s.nodes).sum()
    }
}

/// Per-job placement metadata the federation consults when routing.
#[derive(Debug, Clone, Copy)]
struct JobMeta {
    kind: JobKind,
    size: u32,
    site_hint: Option<u32>,
}

/// N named [`Cluster`] shards behind one [`ClusterBackend`].
#[derive(Debug)]
pub struct Federation {
    shards: Vec<Cluster>,
    names: Vec<String>,
    policy: Arc<dyn PlacementPolicy>,
    /// Sticky job → shard assignment (first contact pins it).
    home: HashMap<JobId, usize>,
    /// Trace-wide job metadata registered at construction, so routing
    /// decisions need no driver-side plumbing.
    meta: HashMap<JobId, JobMeta>,
    max_shard: u32,
    /// Total capacity fixed at construction; `check_invariants` verifies
    /// the live shard sizes still sum to it.
    configured_total: u32,
}

impl Federation {
    /// Build a federation for a trace. Panics unless the shard sizes sum
    /// to exactly `system_size` — federation experiments compare against
    /// the single-cluster run at the *same* total capacity.
    pub fn new(cfg: &FederationConfig, system_size: u32, jobs: &[JobSpec]) -> Self {
        assert!(
            !cfg.shards.is_empty(),
            "federation needs at least one shard"
        );
        assert_eq!(
            cfg.total_nodes(),
            system_size,
            "federation shards must sum to the trace's system size"
        );
        let meta = jobs
            .iter()
            .map(|s| {
                (
                    s.id,
                    JobMeta {
                        kind: s.kind,
                        size: s.size,
                        site_hint: s.site_hint,
                    },
                )
            })
            .collect();
        Federation {
            shards: cfg.shards.iter().map(|s| Cluster::new(s.nodes)).collect(),
            names: cfg.shards.iter().map(|s| s.name.clone()).collect(),
            policy: Arc::clone(&cfg.policy),
            home: HashMap::new(),
            meta,
            max_shard: cfg.shards.iter().map(|s| s.nodes).max().unwrap_or(0),
            configured_total: system_size,
        }
    }

    /// The shard `job` is pinned to, if any.
    pub fn home_of(&self, job: JobId) -> Option<usize> {
        self.home.get(&job).copied()
    }

    pub fn shard(&self, i: usize) -> &Cluster {
        &self.shards[i]
    }

    fn meta_of(&self, job: JobId) -> JobMeta {
        self.meta.get(&job).copied().unwrap_or(JobMeta {
            kind: JobKind::Rigid,
            size: 1,
            site_hint: None,
        })
    }

    /// Feasibility is judged against *live* capacity: a shard drained for
    /// maintenance (or with enough nodes down) stops attracting jobs it
    /// can no longer host, and recovers its attractiveness on rejoin.
    fn views_for(&self, size: u32) -> Vec<ShardView> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, c)| c.live_nodes() >= size)
            .map(|(i, c)| ShardView {
                index: i,
                nodes: c.live_nodes(),
                free: c.free_count(),
                reserved_idle: c.total_reserved_idle(),
                running_jobs: c.running_job_count(),
            })
            .collect()
    }

    /// The shard an *unplaced* job's fits-checks should be computed
    /// against: the feasible shard with the most free nodes (ties →
    /// lowest index). Must stay consistent with the unplaced arm of
    /// [`ClusterBackend::avail_for`], which reports this shard's free
    /// count.
    fn best_unplaced_shard(&self, job: JobId) -> Option<usize> {
        let size = self.meta_of(job).size;
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, c)| c.live_nodes() >= size)
            .max_by(|(ia, a), (ib, b)| a.free_count().cmp(&b.free_count()).then(ib.cmp(ia)))
            .map(|(i, _)| i)
    }

    /// The sticky home pin, *unless* the whole home shard has left service
    /// and the job holds no state there — then the pin is released so the
    /// job can be re-placed on a surviving shard (it would otherwise wait
    /// on a machine that may never come back).
    fn sticky_home(&mut self, job: JobId) -> Option<usize> {
        let &s = self.home.get(&job)?;
        if self.shards[s].live_nodes() == 0
            && !self.shards[s].is_running(job)
            && self.shards[s].reserved_idle_count(job) == 0
        {
            self.home.remove(&job);
            return None;
        }
        Some(s)
    }

    /// Pick (and pin) a home shard for `job`. A feasible `site_hint` wins;
    /// otherwise the policy chooses among feasible shards; an infeasible
    /// or absent answer falls back to the first feasible shard. Returns
    /// `None` only when no shard can ever host the job.
    fn pin(&mut self, job: JobId) -> Option<usize> {
        if let Some(s) = self.sticky_home(job) {
            return Some(s);
        }
        let m = self.meta_of(job);
        let chosen = match m.site_hint {
            Some(h)
                if (h as usize) < self.shards.len()
                    && self.shards[h as usize].live_nodes() >= m.size =>
            {
                Some(h as usize)
            }
            _ => {
                let views = self.views_for(m.size);
                if views.is_empty() {
                    return None;
                }
                let req = PlaceReq {
                    job,
                    kind: m.kind,
                    size: m.size,
                    site_hint: m.site_hint,
                };
                let first = views[0].index;
                Some(
                    self.policy
                        .choose(&req, &views)
                        .filter(|i| views.iter().any(|v| v.index == *i))
                        .unwrap_or(first),
                )
            }
        };
        if let Some(s) = chosen {
            self.home.insert(job, s);
        }
        chosen
    }
}

impl ClusterBackend for Federation {
    fn total_nodes(&self) -> u32 {
        self.shards.iter().map(|c| c.total_nodes()).sum()
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_labels(&self) -> Option<Vec<String>> {
        Some(self.names.clone())
    }

    fn shard_nodes(&self, i: usize) -> u32 {
        self.shards[i].total_nodes()
    }

    fn shard_of(&self, job: JobId) -> Option<usize> {
        self.home_of(job)
    }

    fn max_job_size(&self) -> u32 {
        self.max_shard
    }

    fn note_job(&mut self, spec: &JobSpec) {
        self.meta.entry(spec.id).or_insert(JobMeta {
            kind: spec.kind,
            size: spec.size,
            site_hint: spec.site_hint,
        });
    }

    fn free_count(&self) -> u32 {
        self.shards.iter().map(|c| c.free_count()).sum()
    }

    fn reserved_idle_count(&self, holder: JobId) -> u32 {
        match self.home_of(holder) {
            Some(s) => self.shards[s].reserved_idle_count(holder),
            None => 0,
        }
    }

    fn total_reserved_idle(&self) -> u32 {
        self.shards.iter().map(|c| c.total_reserved_idle()).sum()
    }

    fn size_of(&self, job: JobId) -> u32 {
        match self.home_of(job) {
            Some(s) => self.shards[s].size_of(job),
            None => 0,
        }
    }

    fn is_running(&self, job: JobId) -> bool {
        self.home_of(job)
            .is_some_and(|s| self.shards[s].is_running(job))
    }

    fn for_each_running(&self, f: &mut dyn FnMut(JobId)) {
        for c in &self.shards {
            for j in c.running_jobs() {
                f(j);
            }
        }
    }

    fn split_of(&self, job: JobId) -> (u32, u32) {
        match self.home_of(job) {
            Some(s) => self.shards[s].split_of(job),
            None => (0, 0),
        }
    }

    fn for_each_plain_split(&self, shard: Option<usize>, f: &mut dyn FnMut(JobId, u32)) {
        match shard {
            // A placed job's home shard holds exactly the running jobs
            // whose `shard_of` is that shard — the other shards need not
            // be walked at all.
            Some(s) => self.shards[s].for_each_plain_split(f),
            None => {
                for c in &self.shards {
                    c.for_each_plain_split(f);
                }
            }
        }
    }

    fn squatters(&self, holder: JobId) -> Vec<(JobId, u32)> {
        match self.home_of(holder) {
            Some(s) => self.shards[s].squatters(holder),
            None => Vec::new(),
        }
    }

    fn avail_for(&self, job: JobId) -> u32 {
        match self.home_of(job) {
            Some(s) => self.shards[s].free_count() + self.shards[s].reserved_idle_count(job),
            // Unplaced: the best any one feasible shard offers now (the
            // same shard `placement_shard` reports for shadow projection).
            None => self
                .best_unplaced_shard(job)
                .map(|s| self.shards[s].free_count())
                .unwrap_or(0),
        }
    }

    fn placement_shard(&self, job: JobId) -> Option<usize> {
        self.home_of(job).or_else(|| self.best_unplaced_shard(job))
    }

    fn backfill_avail_for(&self, job: JobId, squat_allowed: &mut dyn FnMut(JobId) -> bool) -> u32 {
        match self.home_of(job) {
            Some(s) => {
                self.shards[s].free_count() + self.shards[s].squattable_idle(&mut *squat_allowed)
            }
            None => {
                let size = self.meta_of(job).size;
                self.shards
                    .iter()
                    .filter(|c| c.live_nodes() >= size)
                    .map(|c| c.free_count() + c.squattable_idle(&mut *squat_allowed))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    fn try_allocate(&mut self, job: JobId, k: u32) -> bool {
        match self.placement_for(job, k, |c, kk| c.free_count() >= kk) {
            Some(s) => self.shards[s].allocate(job, k).is_some(),
            None => false,
        }
    }

    fn try_allocate_with_reserved(&mut self, job: JobId, k: u32) -> bool {
        match self.placement_for(job, k, |c, kk| c.free_count() >= kk) {
            Some(s) => self.shards[s].allocate_with_reserved(job, k).is_some(),
            None => false,
        }
    }

    fn try_allocate_backfill(
        &mut self,
        job: JobId,
        k: u32,
        squat_allowed: &mut dyn FnMut(JobId) -> bool,
    ) -> Option<Vec<(JobId, u32)>> {
        let s = match self.home_of(job) {
            Some(s) => s,
            None => {
                // Backfill is opportunistic: take the first shard that can
                // host the job now (free + squattable), in index order.
                // Feasibility is judged at the job's full requested size,
                // not the (possibly smaller) backfill size — pinning a
                // malleable job to a shard below its maximum would cap it
                // there forever.
                let full = self.meta_of(job).size.max(k);
                let s = self.shards.iter().position(|c| {
                    c.live_nodes() >= full
                        && c.free_count() + c.squattable_idle(&mut *squat_allowed) >= k
                })?;
                self.home.insert(job, s);
                s
            }
        };
        self.shards[s].allocate_backfill(job, k, squat_allowed)
    }

    fn release(&mut self, job: JobId) -> ReleaseOutcome {
        match self.home_of(job) {
            Some(s) => self.shards[s].release(job),
            None => ReleaseOutcome::default(),
        }
    }

    fn shrink(&mut self, job: JobId, k: u32) -> ReleaseOutcome {
        let s = self.home_of(job).expect("shrink of unplaced job");
        self.shards[s].shrink(job, k)
    }

    fn expand(&mut self, job: JobId, k: u32) -> u32 {
        let s = self.home_of(job).expect("expand of unplaced job");
        self.shards[s].expand(job, k)
    }

    fn reserve(&mut self, holder: JobId, k: u32) -> u32 {
        match self.pin(holder) {
            Some(s) => self.shards[s].reserve(holder, k),
            None => 0,
        }
    }

    fn transfer_reserved(&mut self, from: JobId, to: JobId, k: u32) -> u32 {
        let Some(sf) = self.home_of(from) else {
            return 0;
        };
        let st = match self.home_of(to) {
            Some(s) => s,
            // The nodes cannot move, so an unplaced recipient adopts the
            // donor's shard — but only if it can ever run there, and only
            // as part of actually acquiring the reservation. Pinning it
            // anywhere else (or on a zero-yield transfer) would strand it.
            None => {
                if self.shards[sf].live_nodes() < self.meta_of(to).size
                    || self.shards[sf].reserved_idle_count(from) == 0
                    || k == 0
                {
                    return 0;
                }
                self.home.insert(to, sf);
                sf
            }
        };
        if sf != st {
            return 0; // nodes cannot change machines
        }
        self.shards[sf].transfer_reserved(from, to, k)
    }

    fn release_reservation(&mut self, holder: JobId) -> u32 {
        match self.home_of(holder) {
            Some(s) => self.shards[s].release_reservation(holder),
            None => 0,
        }
    }

    fn prepare_arrival(&mut self, od: JobId) -> Option<usize> {
        self.pin(od)
    }

    fn down_nodes(&self) -> u32 {
        self.shards.iter().map(|c| c.down_count()).sum()
    }

    fn shard_live_nodes(&self, i: usize) -> u32 {
        self.shards[i].live_nodes()
    }

    fn shard_free_nodes(&self, i: usize) -> u32 {
        self.shards[i].free_count()
    }

    fn live_max_job_size(&self) -> u32 {
        self.shards
            .iter()
            .map(|c| c.live_nodes())
            .max()
            .unwrap_or(0)
    }

    fn node_state(&self, shard: usize, node: NodeId) -> Option<NodeState> {
        self.shards.get(shard).and_then(|c| c.node_state(node))
    }

    fn drain_node(&mut self, shard: usize, node: NodeId) -> bool {
        self.shards[shard].drain_node(node)
    }

    fn down_reserved_node(&mut self, shard: usize, holder: JobId, node: NodeId) -> bool {
        self.shards[shard].down_reserved_node(holder, node)
    }

    fn rejoin_node(&mut self, shard: usize, node: NodeId) -> bool {
        self.shards[shard].rejoin_node(node)
    }

    fn release_single_node(&mut self, job: JobId, node: NodeId) {
        let s = self
            .home_of(job)
            .expect("release_single_node of unplaced job");
        self.shards[s].release_single_node(job, node);
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut total = 0u32;
        for (i, c) in self.shards.iter().enumerate() {
            c.check_invariants()
                .map_err(|e| format!("shard {i} ({}): {e}", self.names[i]))?;
            total += c.total_nodes();
            // Shard-locality: every running job on this shard is homed here.
            for j in c.running_jobs() {
                if self.home_of(j) != Some(i) {
                    return Err(format!("job {j} runs on shard {i} but is homed elsewhere"));
                }
            }
        }
        if total != self.configured_total {
            return Err(format!(
                "shard sizes sum to {total}, configured total is {}",
                self.configured_total
            ));
        }
        // No job may hold state on a shard other than its home.
        for (&j, &s) in &self.home {
            for (i, c) in self.shards.iter().enumerate() {
                if i != s && (c.is_running(j) || c.reserved_idle_count(j) > 0) {
                    return Err(format!("job {j} homed on {s} but has state on {i}"));
                }
            }
        }
        Ok(())
    }
}

impl Federation {
    /// Serialize the federation's dynamic state: every shard's node state
    /// plus the sticky `home` pins and the per-job routing metadata, both
    /// in sorted job-id order. The placement policy and shard names are
    /// deliberately *not* serialized (a policy is arbitrary code); decoding
    /// re-supplies them via the same [`FederationConfig`].
    pub fn encode_snap(&self, w: &mut SnapWriter) {
        w.put_len(self.shards.len());
        for c in &self.shards {
            c.encode_snap(w);
        }
        let mut homes: Vec<(JobId, usize)> = self.home.iter().map(|(&j, &s)| (j, s)).collect();
        homes.sort();
        w.put_len(homes.len());
        for (job, shard) in homes {
            w.put_u64(job.0);
            w.put_u32(shard as u32);
        }
        let mut metas: Vec<(JobId, JobMeta)> = self.meta.iter().map(|(&j, &m)| (j, m)).collect();
        metas.sort_by_key(|(j, _)| *j);
        w.put_len(metas.len());
        for (job, m) in metas {
            w.put_u64(job.0);
            w.put_u8(match m.kind {
                JobKind::Rigid => 0,
                JobKind::OnDemand => 1,
                JobKind::Malleable => 2,
            });
            w.put_u32(m.size);
            w.put_opt_u32(m.site_hint);
        }
    }

    /// Decode a federation written by [`Federation::encode_snap`] against
    /// the same [`FederationConfig`] it was built from. The config must
    /// match the encoded shard shapes exactly; afterwards
    /// [`ClusterBackend::check_invariants`] re-validates the whole state.
    pub fn decode_snap(r: &mut SnapReader<'_>, cfg: &FederationConfig) -> Result<Self, SnapError> {
        let n_shards = r.get_len()?;
        if n_shards != cfg.shards.len() {
            return Err(r.err(format!(
                "snapshot has {n_shards} shards, config has {}",
                cfg.shards.len()
            )));
        }
        let mut shards = Vec::with_capacity(n_shards);
        for (i, spec) in cfg.shards.iter().enumerate() {
            let c = Cluster::decode_snap(r)?;
            if c.total_nodes() != spec.nodes {
                return Err(r.err(format!(
                    "shard {i} ({}) has {} nodes in the snapshot, {} in the config",
                    spec.name,
                    c.total_nodes(),
                    spec.nodes
                )));
            }
            shards.push(c);
        }
        let n_homes = r.get_len()?;
        let mut home = HashMap::with_capacity(n_homes);
        let mut prev: Option<u64> = None;
        for _ in 0..n_homes {
            let job = r.get_u64()?;
            if prev.is_some_and(|p| p >= job) {
                return Err(r.err(format!("home pins not strictly sorted at job {job}")));
            }
            prev = Some(job);
            let shard = r.get_u32()? as usize;
            if shard >= n_shards {
                return Err(r.err(format!("job {job} pinned to nonexistent shard {shard}")));
            }
            home.insert(JobId(job), shard);
        }
        let n_meta = r.get_len()?;
        let mut meta = HashMap::with_capacity(n_meta);
        let mut prev: Option<u64> = None;
        for _ in 0..n_meta {
            let job = r.get_u64()?;
            if prev.is_some_and(|p| p >= job) {
                return Err(r.err(format!("job metadata not strictly sorted at job {job}")));
            }
            prev = Some(job);
            let kind = match r.get_u8()? {
                0 => JobKind::Rigid,
                1 => JobKind::OnDemand,
                2 => JobKind::Malleable,
                t => return Err(r.err(format!("bad job kind tag {t}"))),
            };
            let size = r.get_u32()?;
            let site_hint = r.get_opt_u32()?;
            meta.insert(
                JobId(job),
                JobMeta {
                    kind,
                    size,
                    site_hint,
                },
            );
        }
        let fed = Federation {
            shards,
            names: cfg.shards.iter().map(|s| s.name.clone()).collect(),
            policy: Arc::clone(&cfg.policy),
            home,
            meta,
            max_shard: cfg.shards.iter().map(|s| s.nodes).max().unwrap_or(0),
            configured_total: cfg.total_nodes(),
        };
        fed.check_invariants()
            .map_err(|e| r.err(format!("restored federation fails invariants: {e}")))?;
        Ok(fed)
    }

    /// Resolve where an allocation of `k` nodes for `job` should go: the
    /// sticky home when pinned, else a fresh policy decision restricted to
    /// shards that pass `can_host` right now. Pins the job on success.
    fn placement_for(
        &mut self,
        job: JobId,
        k: u32,
        can_host: impl Fn(&Cluster, u32) -> bool,
    ) -> Option<usize> {
        if let Some(s) = self.sticky_home(job) {
            return Some(s);
        }
        let m = self.meta_of(job);
        // A feasible explicit hint outranks the policy, mirroring `pin`.
        if let Some(h) = m.site_hint {
            let h = h as usize;
            if h < self.shards.len()
                && self.shards[h].live_nodes() >= m.size
                && can_host(&self.shards[h], k)
            {
                self.home.insert(job, h);
                return Some(h);
            }
        }
        let views: Vec<ShardView> = self
            .views_for(m.size)
            .into_iter()
            .filter(|v| can_host(&self.shards[v.index], k))
            .collect();
        let first = views.first()?.index;
        let req = PlaceReq {
            job,
            kind: m.kind,
            size: m.size,
            site_hint: m.site_hint,
        };
        let s = self
            .policy
            .choose(&req, &views)
            .filter(|i| views.iter().any(|v| v.index == *i))
            .unwrap_or(first);
        self.home.insert(job, s);
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    fn spec(id: u64, kind: JobKind, size: u32) -> JobSpec {
        use hws_workload::job::JobSpecBuilder;
        let b = match kind {
            JobKind::Rigid => JobSpecBuilder::rigid(id),
            JobKind::OnDemand => JobSpecBuilder::on_demand(id),
            JobKind::Malleable => JobSpecBuilder::malleable(id),
        };
        b.size(size).build()
    }

    fn fed(n: usize, total: u32, jobs: &[JobSpec]) -> Federation {
        Federation::new(&FederationConfig::even_split(n, total), total, jobs)
    }

    #[test]
    fn even_split_conserves_total() {
        let cfg = FederationConfig::even_split(4, 4393);
        let sizes: Vec<u32> = cfg.shards.iter().map(|s| s.nodes).collect();
        assert_eq!(sizes, vec![1099, 1098, 1098, 1098]);
        assert_eq!(cfg.total_nodes(), 4393);
    }

    #[test]
    fn placement_is_sticky_across_preempt_resume() {
        let jobs = [spec(1, JobKind::Rigid, 4)];
        let mut f = fed(2, 16, &jobs);
        assert!(f.try_allocate_with_reserved(j(1), 4));
        let home = f.home_of(j(1)).expect("pinned");
        f.release(j(1));
        assert!(f.try_allocate_with_reserved(j(1), 4));
        assert_eq!(f.home_of(j(1)), Some(home), "resume must stay home");
        assert!(f.check_invariants().is_ok());
    }

    #[test]
    fn feasible_site_hint_wins_over_policy() {
        let mut spec1 = spec(1, JobKind::Rigid, 2);
        spec1.site_hint = Some(1);
        let mut f = fed(2, 16, &[spec1]);
        assert!(f.try_allocate_with_reserved(j(1), 2));
        assert_eq!(f.home_of(j(1)), Some(1));
    }

    #[test]
    fn infeasible_site_hint_is_ignored() {
        let mut spec1 = spec(1, JobKind::Rigid, 2);
        spec1.site_hint = Some(9); // no such shard
        let mut f = fed(2, 16, &[spec1]);
        assert!(f.try_allocate_with_reserved(j(1), 2));
        assert_eq!(f.home_of(j(1)), Some(0));
    }

    #[test]
    fn oversized_job_is_unplaceable() {
        let jobs = [spec(1, JobKind::Rigid, 12)];
        let mut f = fed(2, 16, &jobs); // shards of 8
        assert_eq!(f.max_job_size(), 8);
        assert!(!f.try_allocate_with_reserved(j(1), 12));
        assert_eq!(f.reserve(j(1), 12), 0, "no reservation without a home");
        assert!(f.home_of(j(1)).is_none());
    }

    #[test]
    fn cross_shard_transfer_is_refused() {
        let jobs = [spec(1, JobKind::OnDemand, 4), spec(2, JobKind::OnDemand, 4)];
        let mut f = fed(2, 16, &jobs);
        assert_eq!(f.reserve(j(1), 4), 4);
        // Force job 2 onto the other shard via its hint.
        f.meta.get_mut(&j(2)).unwrap().site_hint = Some(1);
        assert_eq!(f.reserve(j(2), 4), 4);
        assert_ne!(f.home_of(j(1)), f.home_of(j(2)));
        assert_eq!(f.transfer_reserved(j(1), j(2), 4), 0);
        assert_eq!(f.reserved_idle_count(j(1)), 4);
        assert!(f.check_invariants().is_ok());
    }

    #[test]
    fn zero_yield_transfer_does_not_pin_recipient() {
        let jobs = [spec(1, JobKind::OnDemand, 4), spec(2, JobKind::Rigid, 4)];
        let mut f = fed(2, 16, &jobs);
        // Donor holds no reservation: nothing moves, nothing gets pinned —
        // a stranded home would confine the recipient's fits-checks to a
        // shard it never acquired a node on.
        assert_eq!(f.transfer_reserved(j(1), j(2), 4), 0);
        assert!(f.home_of(j(2)).is_none());
        // With a real donor reservation the unplaced recipient adopts the
        // donor's shard as part of acquiring the nodes.
        assert_eq!(ClusterBackend::reserve(&mut f, j(1), 4), 4);
        assert_eq!(f.transfer_reserved(j(1), j(2), 3), 3);
        assert_eq!(f.home_of(j(2)), f.home_of(j(1)));
        assert_eq!(f.reserved_idle_count(j(2)), 3);
        assert!(f.check_invariants().is_ok());
    }

    #[test]
    fn backfill_never_pins_a_malleable_below_its_full_size() {
        // Shards [8, 8]; a malleable job with max size 12 fits nowhere at
        // full size, so even a small backfill must not pin it.
        let mut m = spec(2, JobKind::Malleable, 12);
        m.min_size = 2;
        let mut f = fed(2, 16, &[m]);
        assert!(f.try_allocate_backfill(j(2), 2, &mut |_| true).is_none());
        assert!(f.home_of(j(2)).is_none());
    }

    #[test]
    fn least_loaded_spreads_jobs() {
        let jobs = [spec(1, JobKind::Rigid, 4), spec(2, JobKind::Rigid, 4)];
        let cfg = FederationConfig::even_split(2, 16).with_policy(LeastLoaded);
        let mut f = Federation::new(&cfg, 16, &jobs);
        assert!(f.try_allocate_with_reserved(j(1), 4));
        assert!(f.try_allocate_with_reserved(j(2), 4));
        assert_ne!(f.home_of(j(1)), f.home_of(j(2)));
        assert!(f.check_invariants().is_ok());
    }

    #[test]
    fn class_affinity_segregates_kinds() {
        let jobs = [
            spec(1, JobKind::OnDemand, 2),
            spec(2, JobKind::Rigid, 2),
            spec(3, JobKind::Malleable, 2),
        ];
        let cfg = FederationConfig::even_split(3, 12).with_policy(ClassAffinity);
        let mut f = Federation::new(&cfg, 12, &jobs);
        assert!(f.try_allocate_with_reserved(j(1), 2));
        assert!(f.try_allocate_with_reserved(j(2), 2));
        assert!(f.try_allocate_with_reserved(j(3), 2));
        assert_eq!(f.home_of(j(1)), Some(0));
        assert_eq!(f.home_of(j(2)), Some(1));
        assert_eq!(f.home_of(j(3)), Some(2));
    }

    #[test]
    fn backfill_squats_only_on_home_shard_reservations() {
        let jobs = [
            spec(9, JobKind::OnDemand, 6),
            spec(2, JobKind::Malleable, 8),
        ];
        let mut f = fed(2, 16, &jobs); // shards of 8
        assert_eq!(f.reserve(j(9), 6), 6);
        let holder_shard = f.home_of(j(9)).unwrap();
        // 8 > free on the holder's shard (2) but fits with squatting.
        let squat = f
            .try_allocate_backfill(j(2), 8, &mut |_| true)
            .expect("fits via squatting");
        assert_eq!(squat, vec![(j(9), 6)]);
        assert_eq!(f.home_of(j(2)), Some(holder_shard));
        assert_eq!(f.split_of(j(2)), (2, 6));
        assert!(f.check_invariants().is_ok());
        // Releasing returns the squatted nodes to the reservation.
        let out = f.release(j(2));
        assert_eq!(out.to_reservations, vec![(j(9), 6)]);
        assert_eq!(f.reserved_idle_count(j(9)), 6);
    }

    #[test]
    fn single_shard_federation_mirrors_bare_cluster() {
        // Operation-level parity: the end-to-end bitwise oracle lives in
        // the `federated` bench binary and tests/federation.rs.
        let jobs = [
            spec(1, JobKind::Rigid, 4),
            spec(2, JobKind::Malleable, 6),
            spec(9, JobKind::OnDemand, 5),
        ];
        let mut f = fed(1, 16, &jobs);
        let mut c = Cluster::new(16);
        assert!(f.try_allocate_with_reserved(j(1), 4) && c.try_allocate_with_reserved(j(1), 4));
        assert_eq!(ClusterBackend::reserve(&mut f, j(9), 5), c.reserve(j(9), 5));
        let fs = f.try_allocate_backfill(j(2), 6, &mut |_| true);
        let cs = c.try_allocate_backfill(j(2), 6, &mut |_| true);
        assert_eq!(fs, cs);
        assert_eq!(ClusterBackend::avail_for(&f, j(9)), c.avail_for(j(9)));
        assert_eq!(ClusterBackend::split_of(&f, j(2)), c.split_of(j(2)));
        assert_eq!(
            ClusterBackend::release(&mut f, j(2)),
            ClusterBackend::release(&mut c, j(2))
        );
        assert_eq!(f.release_reservation(j(9)), c.release_reservation(j(9)));
        assert_eq!(ClusterBackend::free_count(&f), c.free_count());
        assert!(f.check_invariants().is_ok());
    }
}
