//! The trace-replay simulator: CQSim-style event loop binding the workload,
//! the cluster, the queue policy, EASY backfilling, and the six hybrid
//! mechanisms together.
//!
//! ## Event anatomy
//!
//! * `Submit` — a job arrives (for on-demand jobs: the *actual* arrival).
//! * `Notice` — an on-demand advance notice lands (15–30 min early).
//! * `ReservationTimeout` — a noticed job failed to arrive 10 min past its
//!   prediction; its reservation is released (§III-B4).
//! * `Finish` / `Kill` — a run completes (or exceeds its estimate). Both
//!   carry the job's *epoch*; preemption/shrink/expand bump the epoch so
//!   stale events are ignored — the classic DES invalidation pattern.
//! * `DrainEnd` — a malleable job's two-minute warning expired; its nodes
//!   release now.
//! * `PlannedPreempt` — a CUP-planned preemption fires (rigid victims right
//!   after a checkpoint, malleable victims just before the prediction).
//! * `Pass` — coalesced scheduling pass (FCFS + EASY over the queue).
//!
//! ## Node routing discipline
//!
//! Whenever nodes reach the free pool, [`SimCore::offer_free_nodes`] first
//! feeds **arrived** on-demand jobs still assembling their allocation, then
//! pre-arrival collectors (CUA/CUP reservations) in advance-notice order —
//! "the released nodes are assigned to the on-demand job with the earliest
//! advance notice" (§III-B1) — and only then the ordinary queue.

use crate::backfill::{compute_shadow, may_backfill, Shadow};
use crate::config::{ArrivalStrategy, Mechanism, NoticeStrategy, SimConfig};
use crate::failure::time_to_failure;
use crate::jobstate::{
    malleable_finish, malleable_progress_ns, next_checkpoint_completion, n_checkpoints,
    rigid_progress, rigid_wall_time, JobState, Run, Status,
};
use crate::mechanism::{plan_cup, plan_shrinks, select_victims, CupCandidate, ShrinkInfo, VictimInfo};
use crate::policy::queue_key;
use crate::timeline::{Timeline, TimelineEvent};
use hws_cluster::{Cluster, LeaseLedger};
use hws_metrics::{Metrics, Recorder};
use hws_sim::{Engine, EngineStats, EventId, EventQueue, SimDuration, SimTime, Simulation};
use hws_workload::{JobId, JobKind, JobSpec, Trace};
use std::collections::HashMap;

/// Simulator events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    Submit(JobId),
    Notice(JobId),
    ReservationTimeout(JobId),
    Finish { job: JobId, epoch: u64 },
    Kill { job: JobId, epoch: u64 },
    DrainEnd { job: JobId, epoch: u64 },
    PlannedPreempt { victim: JobId, od: JobId, epoch: u64 },
    /// A node of the job's allocation failed (failure-injection extension).
    Fail { job: JobId, epoch: u64 },
    Pass,
}

/// A node collector: an on-demand job assembling its allocation.
#[derive(Debug, Clone, Copy)]
struct Claim {
    od: JobId,
    /// Total nodes wanted in the job's reservation.
    target: u32,
    /// Collection priority: arrived jobs (phase 0) before notice-phase
    /// collectors (phase 1); then earliest notice/arrival first.
    phase: u8,
    since: SimTime,
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    pub metrics: Metrics,
    pub engine: EngineStats,
    pub mechanism: Mechanism,
    /// Present when `SimConfig::record_timeline` was set.
    pub timeline: Option<Timeline>,
}

/// Public façade: configure once, replay traces.
pub struct Simulator;

impl Simulator {
    /// Replay `trace` under `cfg` and report the §IV-D metrics.
    pub fn run_trace(cfg: &SimConfig, trace: &Trace) -> SimOutcome {
        let core = SimCore::new(cfg.clone(), trace);
        let mut engine = Engine::new(core);
        for (idx, spec) in trace.jobs.iter().enumerate() {
            let id = spec.id;
            debug_assert_eq!(engine.sim.idx_of[&id], idx);
            if let (Some(notice), false) = (&spec.notice, cfg.mechanism.is_baseline()) {
                if cfg.mechanism.notice() != Some(NoticeStrategy::None) {
                    engine.queue.schedule(notice.notice_time, Ev::Notice(id));
                }
            }
            engine.queue.schedule(spec.submit, Ev::Submit(id));
        }
        let stats = engine.run_to_completion();
        let core = engine.into_sim();
        let metrics = Metrics::compute(&core.rec, core.cfg.instant_threshold);
        SimOutcome {
            metrics,
            engine: stats,
            mechanism: cfg.mechanism,
            timeline: core.cfg.record_timeline.then_some(core.timeline),
        }
    }
}

/// The simulation model (per-run state).
pub struct SimCore<'t> {
    pub cfg: SimConfig,
    trace: &'t Trace,
    idx_of: HashMap<JobId, usize>,
    jobs: Vec<JobState>,
    cluster: Cluster,
    /// Waiting jobs (unordered; sorted per pass by the queue policy).
    queue: Vec<JobId>,
    /// Arrived on-demand jobs that could not start instantly ("front of
    /// the queue", §III-B2).
    od_front: Vec<JobId>,
    claims: Vec<Claim>,
    leases: LeaseLedger,
    /// On-demand holders whose reservations may host backfill squatters
    /// (notice-phase reservations only).
    squattable: Vec<JobId>,
    /// On-demand jobs in the notice phase (announced, not yet arrived).
    noticed: Vec<JobId>,
    timeout_ev: HashMap<JobId, EventId>,
    cup_plans: HashMap<JobId, Vec<EventId>>,
    pass_pending: bool,
    pub rec: Recorder,
    pub timeline: Timeline,
}

impl<'t> SimCore<'t> {
    pub fn new(cfg: SimConfig, trace: &'t Trace) -> Self {
        let mut idx_of = HashMap::with_capacity(trace.jobs.len());
        let mut jobs = Vec::with_capacity(trace.jobs.len());
        for (i, spec) in trace.jobs.iter().enumerate() {
            idx_of.insert(spec.id, i);
            jobs.push(JobState::new(spec.id, i, spec));
        }
        SimCore {
            cluster: Cluster::new(trace.system_size),
            rec: Recorder::new(trace.system_size),
            cfg,
            trace,
            idx_of,
            jobs,
            queue: Vec::new(),
            od_front: Vec::new(),
            claims: Vec::new(),
            leases: LeaseLedger::new(),
            squattable: Vec::new(),
            noticed: Vec::new(),
            timeout_ev: HashMap::new(),
            cup_plans: HashMap::new(),
            pass_pending: false,
            timeline: Timeline::new(),
        }
    }

    #[inline]
    fn log(&mut self, t: SimTime, j: JobId, ev: TimelineEvent) {
        if self.cfg.record_timeline {
            self.timeline.record(t, j, ev);
        }
    }

    fn spec(&self, j: JobId) -> &JobSpec {
        &self.trace.jobs[self.idx_of[&j]]
    }

    fn st(&self, j: JobId) -> &JobState {
        &self.jobs[self.idx_of[&j]]
    }

    fn st_mut(&mut self, j: JobId) -> &mut JobState {
        let i = self.idx_of[&j];
        &mut self.jobs[i]
    }

    fn hybrid(&self) -> bool {
        !self.cfg.mechanism.is_baseline()
    }

    // ------------------------------------------------------------------
    // Scheduler-visible estimates
    // ------------------------------------------------------------------

    /// Remaining *estimated* work of a job (scheduler view; the user
    /// estimate minus preserved progress). Always ≥ the actual remainder.
    fn est_remaining_work(&self, j: JobId) -> SimDuration {
        let spec = self.spec(j);
        let st = self.st(j);
        let done = spec.work.saturating_sub(st.remaining_work);
        spec.estimate.saturating_sub(done).max(SimDuration::SECOND)
    }

    /// Estimated wall occupancy if `j` started now at `size` nodes.
    fn est_wall(&self, j: JobId, size: u32) -> SimDuration {
        let spec = self.spec(j);
        match spec.kind {
            JobKind::Malleable => {
                let st = self.st(j);
                let est_total_ns = spec.estimate.as_secs() * u64::from(spec.size);
                let done_ns = spec.work_node_seconds().saturating_sub(st.remaining_ns);
                let rem = est_total_ns.saturating_sub(done_ns).max(1);
                spec.setup + SimDuration::from_secs(rem.div_ceil(u64::from(size.max(1))))
            }
            _ => {
                let est_rem = self.est_remaining_work(j);
                let tau = if spec.kind == JobKind::Rigid {
                    self.cfg.ckpt.interval(size)
                } else {
                    None
                };
                rigid_wall_time(est_rem, spec.setup, tau, self.cfg.ckpt.timeline_cost(size))
            }
        }
    }

    /// Scheduler-estimated completion of a *running or draining* job.
    fn expected_end(&self, j: JobId, now: SimTime) -> SimTime {
        let st = self.st(j);
        if let Some(until) = st.drain_until {
            return until;
        }
        let run = st.run.as_ref().expect("expected_end of non-running job");
        let spec = self.spec(j);
        match spec.kind {
            JobKind::Malleable => {
                let est_total_ns = spec.estimate.as_secs() * u64::from(spec.size);
                let done_now = spec.work_node_seconds().saturating_sub(st.remaining_ns)
                    + malleable_progress_ns(run, now);
                let rem = est_total_ns.saturating_sub(done_now).max(1);
                let from = now.max(run.setup_end);
                from + SimDuration::from_secs(rem.div_ceil(u64::from(run.size.max(1))))
            }
            _ => {
                let est_at_start = {
                    let done_before = spec.work.saturating_sub(run.work_at_start);
                    spec.estimate.saturating_sub(done_before).max(SimDuration::SECOND)
                };
                run.start + rigid_wall_time(est_at_start, spec.setup, run.tau, run.delta)
            }
        }
    }

    /// Preemption overhead (wasted node-seconds) of preempting `j` now.
    fn preemption_overhead(&self, j: JobId, now: SimTime) -> u64 {
        let st = self.st(j);
        let run = st.run.as_ref().expect("overhead of non-running job");
        let spec = self.spec(j);
        match spec.kind {
            JobKind::Malleable => {
                let setup_spent = now.since(run.start).min(spec.setup);
                (setup_spent + self.cfg.malleable_warning).as_secs() * u64::from(run.size)
            }
            _ => {
                let p = rigid_progress(
                    now.since(run.start),
                    spec.setup,
                    run.tau,
                    run.delta,
                    run.work_at_start,
                );
                (now.since(run.start) - p.anchor_elapsed).as_secs() * u64::from(run.size)
            }
        }
    }

    // ------------------------------------------------------------------
    // Node routing
    // ------------------------------------------------------------------

    /// Feed newly free nodes to collectors: arrived on-demand jobs first
    /// (by arrival), then notice-phase collectors (by notice time).
    fn offer_free_nodes(&mut self, _now: SimTime) {
        if self.claims.is_empty() {
            return;
        }
        self.claims.sort_by_key(|c| (c.phase, c.since, c.od));
        let mut i = 0;
        while i < self.claims.len() {
            if self.cluster.free_count() == 0 {
                break;
            }
            let c = self.claims[i];
            let have = self.cluster.reserved_idle_count(c.od);
            let want = c.target.saturating_sub(have);
            if want > 0 {
                self.cluster.reserve(c.od, want.min(self.cluster.free_count()));
            }
            i += 1;
        }
        // Drop satisfied notice-phase collectors; arrived collectors are
        // removed at launch.
        let cluster = &self.cluster;
        self.claims
            .retain(|c| cluster.reserved_idle_count(c.od) < c.target || c.phase == 0);
    }

    fn remove_claim(&mut self, od: JobId) {
        self.claims.retain(|c| c.od != od);
    }

    fn request_pass(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        if !self.pass_pending {
            self.pass_pending = true;
            q.schedule(now, Ev::Pass);
        }
    }

    // ------------------------------------------------------------------
    // Run lifecycle
    // ------------------------------------------------------------------

    /// Start `j` on `size` nodes. `backfill` selects the allocation path
    /// (possibly squatting on notice-phase reservations). Returns false if
    /// allocation failed (caller logic error — checked upstream).
    fn start_job(&mut self, j: JobId, size: u32, backfill: bool, now: SimTime, q: &mut EventQueue<Ev>) -> bool {
        let spec = self.spec(j).clone();
        debug_assert!(size >= spec.min_size && size <= spec.size);
        let own_reserved = self.cluster.reserved_idle_count(j);
        let ok = if !backfill || own_reserved > 0 || !self.cfg.backfill_on_reserved {
            self.cluster.allocate_with_reserved(j, size).is_some()
        } else {
            let squattable = self.squattable.clone();
            self.cluster
                .allocate_backfill(j, size, |h| squattable.contains(&h))
                .is_some()
        };
        if !ok {
            return false;
        }
        // Leftover private reservation returns to the pool.
        if self.cluster.reserved_idle_count(j) > 0 {
            self.cluster.release_reservation(j);
        }
        let (tau, delta) = if spec.kind == JobKind::Rigid {
            (self.cfg.ckpt.interval(size), self.cfg.ckpt.timeline_cost(size))
        } else {
            (None, self.cfg.ckpt.timeline_cost(size))
        };
        let st = self.st_mut(j);
        st.status = Status::Running;
        st.cur_size = size;
        let epoch = st.bump_epoch();
        let remaining_work = st.remaining_work;
        let remaining_ns = st.remaining_ns;
        st.run = Some(Run {
            start: now,
            size,
            setup_end: now + spec.setup,
            occ_anchor: now,
            work_anchor: now + spec.setup,
            tau,
            delta,
            work_at_start: remaining_work,
        });
        self.rec.job_started(j, now);
        self.log(now, j, TimelineEvent::Started { size });

        // Schedule completion (or a kill when the estimate is exceeded —
        // impossible for generated traces, possible for hand-built ones).
        match spec.kind {
            JobKind::Malleable => {
                let run = self.st(j).run.as_ref().expect("just set");
                let est_total_ns = spec.estimate.as_secs() * u64::from(spec.size);
                let done_ns = spec.work_node_seconds().saturating_sub(remaining_ns);
                let allowed_ns = est_total_ns.saturating_sub(done_ns);
                if remaining_ns <= allowed_ns {
                    let at = malleable_finish(run, remaining_ns);
                    q.schedule(at, Ev::Finish { job: j, epoch });
                } else {
                    let at = malleable_finish(run, allowed_ns);
                    q.schedule(at, Ev::Kill { job: j, epoch });
                }
            }
            _ => {
                let est_rem = self.est_remaining_work(j);
                if remaining_work <= est_rem {
                    let at = now + rigid_wall_time(remaining_work, spec.setup, tau, delta);
                    q.schedule(at, Ev::Finish { job: j, epoch });
                } else {
                    let at = now + rigid_wall_time(est_rem, spec.setup, tau, delta);
                    q.schedule(at, Ev::Kill { job: j, epoch });
                }
            }
        }
        self.schedule_failure(j, now, q);
        true
    }

    /// Draw a time-to-failure for the job's current run epoch and schedule
    /// the failure event (failure injection; no-op when disabled).
    fn schedule_failure(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let st = self.st(j);
        let Some(run) = st.run.as_ref() else { return };
        if let Some(ttf) = time_to_failure(&self.cfg.failures, j, st.epoch, run.size) {
            q.schedule(now + ttf, Ev::Fail { job: j, epoch: st.epoch });
        }
    }

    /// A node failure interrupts the run: rigid (and on-demand) jobs fall
    /// back to their last checkpoint and resubmit; malleable jobs lose only
    /// their setup (finished tasks survive) and resubmit immediately.
    fn fail_job(&mut self, j: JobId, now: SimTime, _q: &mut EventQueue<Ev>) {
        let spec = self.spec(j).clone();
        let size = self.st(j).run.as_ref().expect("running").size;
        self.accrue_occupancy(j, now);
        self.rec.job_failed(j);
        self.log(now, j, TimelineEvent::Failed);
        match spec.kind {
            JobKind::Malleable => {
                self.accrue_malleable(j, now);
                let st = self.st_mut(j);
                let run = st.run.take().expect("running");
                let setup_spent = now.since(run.start).min(spec.setup);
                st.status = Status::Waiting;
                st.cur_size = spec.size;
                st.bump_epoch();
                if !setup_spent.is_zero() {
                    self.rec.add_waste(size, setup_spent);
                }
                self.cluster.release(j);
                self.queue.push(j);
            }
            _ => {
                let st = self.st_mut(j);
                let run = st.run.take().expect("running");
                let p = rigid_progress(
                    now.since(run.start),
                    spec.setup,
                    run.tau,
                    run.delta,
                    run.work_at_start,
                );
                st.remaining_work = run.work_at_start - p.checkpointed;
                st.status = Status::Waiting;
                st.bump_epoch();
                let waste = now.since(run.start) - p.anchor_elapsed;
                if !waste.is_zero() {
                    self.rec.add_waste(size, waste);
                }
                self.cluster.release(j);
                self.queue.push(j);
                // A failed on-demand job re-enters at the queue front.
                if spec.kind == JobKind::OnDemand {
                    if !self.od_front.contains(&j) {
                        self.od_front.push(j);
                    }
                    self.claims.push(Claim { od: j, target: spec.size, phase: 0, since: now });
                }
            }
        }
    }

    /// Account occupancy for a running job up to `now`.
    fn accrue_occupancy(&mut self, j: JobId, now: SimTime) {
        let st = self.st_mut(j);
        if let Some(run) = st.run.as_mut() {
            let dur = now.since(run.occ_anchor);
            let size = run.size;
            run.occ_anchor = now;
            if !dur.is_zero() {
                self.rec.add_occupancy(size, dur);
            }
        }
    }

    /// Accrue a malleable run's work progress up to `now`.
    fn accrue_malleable(&mut self, j: JobId, now: SimTime) {
        let st = self.st_mut(j);
        if let Some(run) = st.run.as_mut() {
            let progressed = malleable_progress_ns(run, now);
            st.remaining_ns = st.remaining_ns.saturating_sub(progressed);
            run.work_anchor = now.max(run.setup_end);
        }
    }

    /// Preempt a running job. Rigid victims are killed instantly and lose
    /// everything past their last checkpoint; malleable victims get the
    /// two-minute warning (they hold their nodes, make no progress, then
    /// release). Returns the number of nodes that will be released (now or
    /// at drain end).
    fn preempt_job(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) -> u32 {
        debug_assert_eq!(self.st(j).status, Status::Running);
        let spec = self.spec(j).clone();
        let size = self.st(j).run.as_ref().expect("running").size;
        self.accrue_occupancy(j, now);
        self.rec.job_preempted(j);
        self.log(now, j, TimelineEvent::Preempted);

        match spec.kind {
            JobKind::Malleable => {
                self.accrue_malleable(j, now);
                let warning = self.cfg.malleable_warning;
                let st = self.st_mut(j);
                let run = st.run.as_ref().expect("running");
                let setup_spent = now.since(run.start).min(spec.setup);
                st.status = Status::Draining;
                st.preempt_count += 1;
                let epoch = st.bump_epoch();
                st.drain_until = Some(now + warning);
                q.schedule(now + warning, Ev::DrainEnd { job: j, epoch });
                self.log(now, j, TimelineEvent::DrainStarted);
                // The spent setup is wasted (it will be repeated).
                if !setup_spent.is_zero() {
                    self.rec.add_waste(size, setup_spent);
                }
                size
            }
            _ => {
                let st = self.st_mut(j);
                let run = st.run.take().expect("running");
                let p = rigid_progress(
                    now.since(run.start),
                    spec.setup,
                    run.tau,
                    run.delta,
                    run.work_at_start,
                );
                st.remaining_work = run.work_at_start - p.checkpointed;
                st.status = Status::Waiting;
                st.preempt_count += 1;
                st.bump_epoch();
                let waste = now.since(run.start) - p.anchor_elapsed;
                if !waste.is_zero() {
                    self.rec.add_waste(size, waste);
                }
                self.cluster.release(j);
                // Resubmission keeps the original submit time (§III-B2) —
                // the queue key is derived from the spec, so nothing to do.
                self.queue.push(j);
                size
            }
        }
    }

    /// Drain window expired: the malleable job's nodes release now.
    fn finish_drain(&mut self, j: JobId, _now: SimTime) {
        let full_size = self.spec(j).size;
        let st = self.st_mut(j);
        debug_assert_eq!(st.status, Status::Draining);
        let run = st.run.take().expect("draining holds a run");
        st.status = Status::Waiting;
        st.drain_until = None;
        st.cur_size = full_size; // next start re-chooses a size
        let size = run.size;
        // Warning window: occupied, zero progress → pure waste.
        self.rec.add_occupancy(size, self.cfg.malleable_warning);
        self.rec.add_waste(size, self.cfg.malleable_warning);
        self.cluster.release(j);
        self.queue.push(j);
    }

    /// Complete a job: release nodes, settle leases if on-demand.
    fn finish_job(&mut self, j: JobId, now: SimTime, killed: bool, q: &mut EventQueue<Ev>) {
        self.accrue_occupancy(j, now);
        let spec_kind = self.spec(j).kind;
        let st = self.st_mut(j);
        let run = st.run.take().expect("finishing job had a run");
        st.status = if killed { Status::Killed } else { Status::Finished };
        st.remaining_work = SimDuration::ZERO;
        st.remaining_ns = 0;
        st.bump_epoch();
        if killed {
            // A killed run contributed nothing that survives.
            self.rec.add_waste(run.size, now.since(run.start));
            self.rec.job_killed(j, now);
            self.log(now, j, TimelineEvent::Killed);
        } else {
            self.rec.job_finished(j, now);
            self.log(now, j, TimelineEvent::Finished);
        }
        self.cluster.release(j);
        self.leases.forget_lender(j);
        if spec_kind == JobKind::OnDemand {
            self.remove_claim(j);
            self.od_front.retain(|&x| x != j);
            self.settle_leases(j, now, q);
            self.cluster.release_reservation(j);
        }
    }

    /// §III-B3: return leased nodes to lenders, in lease order.
    fn settle_leases(&mut self, od: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        for lease in self.leases.settle(od) {
            let lender = lease.lender;
            let status = self.st(lender).status;
            if lease.by_preemption {
                // A still-waiting preempted lender gets a private
                // reservation it can combine with free nodes to resume
                // (source of the Obs. 2 starvation effect).
                if status == Status::Waiting || status == Status::Draining {
                    self.cluster.reserve(lender, lease.nodes.min(self.cluster.free_count()));
                }
            } else if status == Status::Running {
                // Shrunk lender expands back toward its original size.
                let owed = self.st(lender).owed_expansion.min(lease.nodes);
                if owed > 0 {
                    self.expand_job(lender, owed, now, q);
                }
            }
        }
    }

    /// Grow a running malleable job by up to `k` nodes.
    fn expand_job(&mut self, j: JobId, k: u32, now: SimTime, q: &mut EventQueue<Ev>) {
        debug_assert_eq!(self.spec(j).kind, JobKind::Malleable);
        self.accrue_occupancy(j, now);
        self.accrue_malleable(j, now);
        let granted = self.cluster.expand(j, k);
        if granted == 0 {
            return;
        }
        let st = self.st_mut(j);
        st.owed_expansion = st.owed_expansion.saturating_sub(granted);
        st.cur_size += granted;
        let epoch = st.bump_epoch();
        let remaining_ns = st.remaining_ns;
        let run = st.run.as_mut().expect("running");
        run.size += granted;
        let at = malleable_finish(run, remaining_ns);
        let (from, to) = (run.size - granted, run.size);
        self.rec.job_expanded(j);
        q.schedule(at.max(now), Ev::Finish { job: j, epoch });
        self.log(now, j, TimelineEvent::Expanded { from, to });
        self.schedule_failure(j, now, q);
    }

    /// Shrink a running malleable job by `k` nodes (free, instantaneous).
    fn shrink_job(&mut self, j: JobId, k: u32, now: SimTime, q: &mut EventQueue<Ev>) {
        debug_assert_eq!(self.spec(j).kind, JobKind::Malleable);
        self.accrue_occupancy(j, now);
        self.accrue_malleable(j, now);
        self.cluster.shrink(j, k);
        let st = self.st_mut(j);
        st.cur_size -= k;
        st.owed_expansion += k;
        let epoch = st.bump_epoch();
        let remaining_ns = st.remaining_ns;
        let run = st.run.as_mut().expect("running");
        run.size -= k;
        let at = malleable_finish(run, remaining_ns);
        let (from, to) = (run.size + k, run.size);
        self.rec.job_shrunk(j);
        q.schedule(at.max(now), Ev::Finish { job: j, epoch });
        self.log(now, j, TimelineEvent::Shrunk { from, to });
        self.schedule_failure(j, now, q);
    }

    // ------------------------------------------------------------------
    // On-demand handling
    // ------------------------------------------------------------------

    /// Advance notice (§III-B1): reserve free nodes; CUA/CUP register a
    /// collector; CUP additionally plans cheap preemptions.
    fn on_notice(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let started = std::time::Instant::now();
        let spec = self.spec(j).clone();
        let notice = spec.notice.expect("notice event without notice spec");
        debug_assert_eq!(self.st(j).status, Status::Announced);
        let need = spec.size;
        self.cluster.reserve(j, need.min(self.cluster.free_count()));
        self.noticed.push(j);
        if self.cfg.backfill_on_reserved {
            self.squattable.push(j);
        }
        let shortfall = need.saturating_sub(self.cluster.reserved_idle_count(j));
        if shortfall > 0 {
            self.claims.push(Claim {
                od: j,
                target: need,
                phase: 1,
                since: notice.notice_time,
            });
        }
        if self.cfg.mechanism.notice() == Some(NoticeStrategy::Cup) && shortfall > 0 {
            let predicted = notice.predicted_arrival;
            let candidates: Vec<CupCandidate> = self
                .running_victim_ids()
                .into_iter()
                .map(|v| {
                    let run = self.st(v).run.as_ref().expect("running");
                    let cheap = match self.spec(v).kind {
                        JobKind::Malleable => {
                            let at = predicted.saturating_sub(self.cfg.malleable_warning);
                            (at >= now).then_some(at)
                        }
                        _ => next_checkpoint_completion(run, now).filter(|t| *t >= now),
                    };
                    CupCandidate {
                        id: v,
                        nodes: run.size,
                        expected_end: self.expected_end(v, now),
                        overhead_ns: self.preemption_overhead(v, now),
                        cheap_preempt_at: cheap,
                    }
                })
                .collect();
            let plan = plan_cup(&candidates, shortfall, predicted);
            let mut evs = Vec::new();
            for (victim, at) in plan.planned_preemptions {
                let epoch = self.st(victim).epoch;
                evs.push(q.schedule(at.max(now), Ev::PlannedPreempt { victim, od: j, epoch }));
            }
            if !evs.is_empty() {
                self.cup_plans.insert(j, evs);
            }
        }
        let ev = q.schedule(
            notice.predicted_arrival + self.cfg.reservation_timeout,
            Ev::ReservationTimeout(j),
        );
        self.timeout_ev.insert(j, ev);
        if self.cfg.measure_decisions {
            self.rec.add_decision(started.elapsed());
        }
    }

    /// Running jobs eligible as preemption victims (never on-demand jobs,
    /// never draining jobs).
    fn running_victim_ids(&self) -> Vec<JobId> {
        let mut v: Vec<JobId> = self
            .cluster
            .running_jobs()
            .filter(|&j| self.spec(j).kind != JobKind::OnDemand)
            .filter(|&j| self.st(j).status == Status::Running)
            .collect();
        v.sort();
        v
    }

    /// Actual arrival of an on-demand job (§III-B2).
    fn on_od_arrival(&mut self, j: JobId, now: SimTime, q: &mut EventQueue<Ev>) {
        let started = std::time::Instant::now();
        let spec = self.spec(j).clone();
        let need = spec.size;

        // Close the notice phase: stop collection/planning, stop squatting.
        if let Some(ev) = self.timeout_ev.remove(&j) {
            q.cancel(ev);
        }
        if let Some(evs) = self.cup_plans.remove(&j) {
            for ev in evs {
                q.cancel(ev);
            }
        }
        self.remove_claim(j);
        self.squattable.retain(|&x| x != j);
        self.noticed.retain(|&x| x != j);

        // Evict squatters from this job's reserved nodes ("once the
        // on-demand job arrives, all these backfilled jobs have to be
        // preempted immediately").
        let squatters = self.cluster.squatters(j);
        let mut promised: u32 = 0; // nodes arriving via drains
        for (sq, on_mine) in squatters {
            let kind = self.spec(sq).kind;
            // Only the squatter's plain nodes and the nodes on *this*
            // reservation reach this job; nodes squatted on other holders'
            // reservations return to those holders.
            let (plain, _) = self.cluster.split_of(sq);
            if self.st(sq).status == Status::Draining {
                // Already serving an earlier preemption's two-minute
                // warning; its nodes arrive at drain end regardless.
                promised += plain + on_mine;
                continue;
            }
            self.preempt_job(sq, now, q);
            if kind == JobKind::Malleable {
                promised += plain + on_mine;
            }
        }
        self.offer_free_nodes(now); // rigid squatters' plain nodes

        let mut have = self.cluster.free_count() + self.cluster.reserved_idle_count(j) + promised;

        // An *arrived* on-demand job outranks reservations held for merely
        // predicted ones: raid notice-phase reservations, robbing the most
        // recent notice first so the earliest notice keeps its collection
        // priority (§III-B1).
        if have < need && !self.noticed.is_empty() {
            let mut holders: Vec<JobId> = self.noticed.clone();
            holders.sort_by_key(|&h| {
                let n = self.spec(h).notice.expect("noticed job has a notice");
                std::cmp::Reverse((n.notice_time, h))
            });
            for h in holders {
                if have >= need {
                    break;
                }
                let moved = self.cluster.transfer_reserved(h, j, need - have);
                have += moved;
            }
        }

        if have < need {
            let mut need_extra = need - have;
            // Arrival strategy.
            if self.cfg.mechanism.arrival() == Some(ArrivalStrategy::Spaa) {
                let infos: Vec<ShrinkInfo> = self
                    .running_victim_ids()
                    .into_iter()
                    .filter(|&v| self.spec(v).kind == JobKind::Malleable)
                    .map(|v| {
                        let cur = self.st(v).cur_size;
                        let min = self.spec(v).min_size.min(cur);
                        // Only plain nodes reach the arriving job through
                        // the free pool; cap the usable slack accordingly.
                        let (plain, _) = self.cluster.split_of(v);
                        ShrinkInfo {
                            id: v,
                            cur,
                            min: min.max(cur.saturating_sub(plain)),
                        }
                    })
                    .collect();
                if let Some(plan) = plan_shrinks(&infos, need_extra, self.cfg.shrink_strategy) {
                    for (victim, k) in plan {
                        self.shrink_job(victim, k, now, q);
                        self.leases.record(j, victim, k, false);
                    }
                    need_extra = 0;
                } // else: fall through to PAA below.
            }
            if need_extra > 0 {
                let victims: Vec<VictimInfo> = self
                    .running_victim_ids()
                    .into_iter()
                    .map(|v| {
                        // Count only the nodes this preemption actually
                        // yields to the arriving job: plain nodes reach the
                        // free pool, squatted nodes return to their own
                        // reservation holders.
                        let (plain, _) = self.cluster.split_of(v);
                        VictimInfo {
                            id: v,
                            nodes: plain,
                            overhead_ns: self.preemption_overhead(v, now),
                            started: self.st(v).run.as_ref().expect("running").start,
                        }
                    })
                    .filter(|v| v.nodes > 0)
                    .collect();
                match select_victims(victims, need_extra, self.cfg.victim_order) {
                    Some(selected) => {
                        let mut outstanding = need_extra;
                        for v in selected {
                            let lease = outstanding.min(v.nodes);
                            self.preempt_job(v.id, now, q);
                            self.leases.record(j, v.id, lease, true);
                            outstanding = outstanding.saturating_sub(v.nodes);
                        }
                    }
                    None => {
                        // Cannot start instantly even with full preemption:
                        // wait at the front of the queue (§III-B2).
                    }
                }
            }
        }

        // Register as an arrived collector and try to launch.
        self.claims.push(Claim {
            od: j,
            target: need,
            phase: 0,
            since: now,
        });
        self.st_mut(j).status = Status::Waiting;
        self.queue.push(j);
        self.od_front.push(j);
        self.offer_free_nodes(now);
        self.request_pass(now, q);
        if self.cfg.measure_decisions {
            self.rec.add_decision(started.elapsed());
        }
    }

    // ------------------------------------------------------------------
    // Scheduling pass: queue policy + EASY backfilling
    // ------------------------------------------------------------------

    fn schedule_pass(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.queue.is_empty() {
            return;
        }
        // Order the queue.
        let mut ordered: Vec<JobId> = self
            .queue
            .iter()
            .copied()
            .filter(|j| self.st(*j).status == Status::Waiting)
            .collect();
        ordered.sort_by(|&a, &b| {
            let ka = queue_key(self.cfg.policy, self.spec(a), self.od_front.contains(&a), now);
            let kb = queue_key(self.cfg.policy, self.spec(b), self.od_front.contains(&b), now);
            ka.cmp(&kb)
        });

        let mut started: Vec<JobId> = Vec::new();
        let mut head: Option<JobId> = None;
        let mut pos = 0;
        // Phase A: start jobs strictly in order while they fit. A job that
        // does not fit in free + its own reserved nodes may still start by
        // squatting on on-demand notice reservations (it becomes a
        // squatter, evicted when the holder arrives) — this keeps reserved
        // nodes busy, as §III-B1 intends.
        while pos < ordered.len() {
            let j = ordered[pos];
            let own = self.cluster.reserved_idle_count(j);
            let avail = self.cluster.free_count() + own;
            let need = self.start_need(j);
            let (fits, backfill, usable) = if avail >= need {
                (true, false, avail)
            } else if own == 0 && self.hybrid() && self.cfg.backfill_on_reserved {
                let squattable = &self.squattable;
                let squat = self.cluster.squattable_idle(|h| squattable.contains(&h));
                (avail + squat >= need, true, avail + squat)
            } else {
                (false, false, avail)
            };
            if fits {
                let size = self.choose_start_size(j, usable);
                if self.start_job(j, size, backfill, now, q) {
                    if self.spec(j).kind == JobKind::OnDemand {
                        self.od_front.retain(|&x| x != j);
                        self.remove_claim(j);
                    }
                    started.push(j);
                    pos += 1;
                    continue;
                }
            }
            // Deadlock avoidance: reservations are subordinate to queue
            // priority. A blocked head may raid the private reservations of
            // *lower-ranked waiting* jobs (lease returns, partial on-demand
            // claims) — otherwise two waiting jobs can hoard the whole
            // machine with nothing running and no event pending. Notice-
            // phase reservations are exempt: they expire via their timeout.
            if avail < need {
                let lower: Vec<JobId> = ordered[pos + 1..]
                    .iter()
                    .copied()
                    .filter(|&w| self.cluster.reserved_idle_count(w) > 0)
                    .collect();
                let raidable: u32 = lower
                    .iter()
                    .map(|&w| self.cluster.reserved_idle_count(w))
                    .sum();
                if avail + raidable >= need {
                    let mut deficit = need - avail;
                    // Rob the lowest-priority holders first.
                    for &w in lower.iter().rev() {
                        if deficit == 0 {
                            break;
                        }
                        deficit -= self.cluster.transfer_reserved(w, j, deficit);
                    }
                    let usable = self.cluster.free_count() + self.cluster.reserved_idle_count(j);
                    let size = self.choose_start_size(j, usable);
                    if self.start_job(j, size, false, now, q) {
                        if self.spec(j).kind == JobKind::OnDemand {
                            self.od_front.retain(|&x| x != j);
                            self.remove_claim(j);
                        }
                        started.push(j);
                        pos += 1;
                        continue;
                    }
                }
            }
            head = Some(j);
            break;
        }

        // Phase B: EASY backfill behind the blocked head.
        if let Some(head_id) = head {
            if self.cfg.easy_backfill {
                let shadow = self.head_shadow(head_id, now);
                for &j in &ordered[pos + 1..] {
                    if let Some(size) = self.backfill_size(j, shadow, now) {
                        if self.start_job(j, size, true, now, q) {
                            if self.spec(j).kind == JobKind::OnDemand {
                                self.od_front.retain(|&x| x != j);
                                self.remove_claim(j);
                            }
                            started.push(j);
                        }
                    }
                }
            }
        }
        if !started.is_empty() {
            let done: std::collections::HashSet<JobId> = started.into_iter().collect();
            self.queue.retain(|j| !done.contains(j));
        }
    }

    /// Minimum nodes `j` needs to start (its min size for malleable jobs in
    /// hybrid mode; full size otherwise).
    fn start_need(&self, j: JobId) -> u32 {
        let spec = self.spec(j);
        if spec.kind == JobKind::Malleable && self.hybrid() {
            spec.min_size
        } else {
            spec.size
        }
    }

    /// Size to start `j` at, given `avail` usable nodes. Malleable jobs
    /// greedily take the largest size available ("the scheduler can choose
    /// malleable jobs' sizes at their start or resumed time").
    fn choose_start_size(&self, j: JobId, avail: u32) -> u32 {
        let spec = self.spec(j);
        if spec.kind == JobKind::Malleable && self.hybrid() {
            avail.clamp(spec.min_size, spec.size)
        } else {
            spec.size
        }
    }

    /// Shadow reservation for the blocked head job.
    fn head_shadow(&self, head: JobId, now: SimTime) -> Shadow {
        let mut releases: Vec<(SimTime, u32)> = Vec::new();
        for v in self.cluster.running_jobs() {
            let st = self.st(v);
            if st.status != Status::Running && st.status != Status::Draining {
                continue;
            }
            // Only the plain portion returns to the free pool; squatted
            // nodes go back to their on-demand holder.
            let (plain, _) = self.cluster.split_of(v);
            if plain > 0 {
                releases.push((self.expected_end(v, now), plain));
            }
        }
        let avail = self.cluster.free_count() + self.cluster.reserved_idle_count(head);
        compute_shadow(&mut releases, avail, self.start_need(head))
    }

    /// Pick a backfill size for `j` under `shadow`, or None when no size
    /// qualifies.
    fn backfill_size(&self, j: JobId, shadow: Shadow, now: SimTime) -> Option<u32> {
        let spec = self.spec(j);
        let own = self.cluster.reserved_idle_count(j);
        // Availability must match start_job's allocation paths: a job with
        // a private reservation draws from free + own; otherwise it may
        // squat on notice-phase reservations.
        let avail = if own > 0 || !self.cfg.backfill_on_reserved {
            self.cluster.free_count() + own
        } else {
            let squattable = &self.squattable;
            self.cluster.free_count() + self.cluster.squattable_idle(|h| squattable.contains(&h))
        };
        if spec.kind == JobKind::Malleable && self.hybrid() {
            if avail < spec.min_size {
                return None;
            }
            // Largest size finishing before the shadow…
            let n1 = avail.min(spec.size);
            if may_backfill(n1, now + self.est_wall(j, n1), avail, shadow) {
                return Some(n1);
            }
            // …or a smaller size fitting in the shadow's spare nodes.
            let n2 = shadow.extra.min(avail).min(spec.size);
            if n2 >= spec.min_size && may_backfill(n2, SimTime::MAX, avail, shadow) {
                return Some(n2);
            }
            None
        } else {
            let size = spec.size;
            may_backfill(size, now + self.est_wall(j, size), avail, shadow).then_some(size)
        }
    }
}

impl Simulation for SimCore<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
        match ev {
            Ev::Submit(j) => {
                let spec = self.spec(j).clone();
                self.rec
                    .job_submitted_with_category(j, spec.kind, spec.size, now, spec.category);
                self.log(now, j, TimelineEvent::Submitted);
                if spec.kind == JobKind::OnDemand && self.hybrid() {
                    self.on_od_arrival(j, now, q);
                } else {
                    self.st_mut(j).status = Status::Waiting;
                    self.queue.push(j);
                    self.request_pass(now, q);
                }
            }
            Ev::Notice(j) => {
                if self.hybrid()
                    && self.cfg.mechanism.notice() != Some(NoticeStrategy::None)
                    && self.st(j).status == Status::Announced
                {
                    self.log(now, j, TimelineEvent::NoticeReceived);
                    self.on_notice(j, now, q);
                    self.request_pass(now, q);
                }
            }
            Ev::ReservationTimeout(j) => {
                if self.st(j).status == Status::Announced {
                    self.timeout_ev.remove(&j);
                    if let Some(evs) = self.cup_plans.remove(&j) {
                        for ev in evs {
                            q.cancel(ev);
                        }
                    }
                    self.remove_claim(j);
                    self.squattable.retain(|&x| x != j);
                    self.noticed.retain(|&x| x != j);
                    self.cluster.release_reservation(j);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Finish { job, epoch } => {
                if self.st(job).status == Status::Running && self.st(job).epoch == epoch {
                    self.finish_job(job, now, false, q);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Kill { job, epoch } => {
                if self.st(job).status == Status::Running && self.st(job).epoch == epoch {
                    self.finish_job(job, now, true, q);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::DrainEnd { job, epoch } => {
                if self.st(job).status == Status::Draining && self.st(job).epoch == epoch {
                    self.finish_drain(job, now);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::PlannedPreempt { victim, od, epoch } => {
                // Valid only while the on-demand job is still expected and
                // the victim's run is unchanged.
                if self.st(od).status == Status::Announced
                    && self.st(victim).status == Status::Running
                    && self.st(victim).epoch == epoch
                {
                    let nodes = self.st(victim).run.as_ref().expect("running").size;
                    let outstanding = self
                        .spec(od)
                        .size
                        .saturating_sub(self.cluster.reserved_idle_count(od));
                    self.preempt_job(victim, now, q);
                    self.leases.record(od, victim, outstanding.min(nodes), true);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Fail { job, epoch } => {
                if self.st(job).status == Status::Running && self.st(job).epoch == epoch {
                    self.fail_job(job, now, q);
                    self.offer_free_nodes(now);
                    self.request_pass(now, q);
                }
            }
            Ev::Pass => {
                self.pass_pending = false;
                self.schedule_pass(now, q);
            }
        }
        if self.cfg.paranoid_checks {
            self.cluster.check_invariants().expect("cluster invariants");
        }
    }
}

// Silence an unused-import warning for n_checkpoints, which is re-exported
// for the bench crate's ablations.
#[allow(unused)]
fn _touch() {
    let _ = n_checkpoints(SimDuration::ZERO, None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hws_workload::job::JobSpecBuilder;
    use hws_workload::TraceConfig;

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn trace(system: u32, jobs: Vec<JobSpec>) -> Trace {
        Trace::new(system, SimDuration::from_days(7), jobs)
    }

    fn run(cfg: SimConfig, tr: &Trace) -> SimOutcome {
        let mut cfg = cfg;
        cfg.paranoid_checks = true;
        Simulator::run_trace(&cfg, tr)
    }

    #[test]
    fn single_rigid_job_completes() {
        let tr = trace(
            100,
            vec![JobSpecBuilder::rigid(0)
                .size(10)
                .work(d(3_600))
                .estimate(d(7_200))
                .setup(d(300))
                .build()],
        );
        let out = run(SimConfig::baseline(), &tr);
        assert_eq!(out.metrics.completed_jobs, 1);
        // turnaround = setup + work (no checkpoint: τ for 10 nodes is huge).
        assert!((out.metrics.avg_turnaround_h - (3_900.0 / 3_600.0)).abs() < 1e-6);
    }

    #[test]
    fn checkpoint_walltime_accounting_modes() {
        // Paper mode (default): checkpoints live inside the recorded
        // runtime — wall time is setup + work regardless of τ.
        let mut cfg = SimConfig::baseline();
        cfg.ckpt.node_mtbf_hours = 0.25; // force frequent checkpoints
        let tr = trace(
            100,
            vec![JobSpecBuilder::rigid(0).size(10).work(d(10_000)).estimate(d(20_000)).build()],
        );
        let out = run(cfg.clone(), &tr);
        assert!((out.metrics.avg_turnaround_h - 10_000.0 / 3_600.0).abs() < 1e-6);

        // Physical mode (ablation): each checkpoint occupies δ = 600 s.
        cfg.ckpt.extends_walltime = true;
        let out = run(cfg.clone(), &tr);
        let tau = cfg.ckpt.interval(10).unwrap();
        let n = n_checkpoints(d(10_000), Some(tau));
        assert!(n >= 1, "expected at least one checkpoint, τ = {tau}");
        let expect_h = (10_000 + n * 600) as f64 / 3_600.0;
        assert!((out.metrics.avg_turnaround_h - expect_h).abs() < 1e-6);
    }

    #[test]
    fn fcfs_queueing_orders_by_submit() {
        // Two 60-node jobs on a 100-node machine: the second waits.
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(60).work(d(1_000)).estimate(d(1_000)).build(),
                JobSpecBuilder::rigid(1).size(60).work(d(1_000)).estimate(d(1_000)).submit_at(t(10)).build(),
            ],
        );
        let out = run(SimConfig::baseline(), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        // Second job waited ~990 s → mean TAT ≈ (1000 + 1990) / 2.
        assert!((out.metrics.avg_turnaround_h - (2_990.0 / 2.0 / 3_600.0)).abs() < 1e-6);
    }

    #[test]
    fn easy_backfill_lets_small_job_jump() {
        // Head blocked behind a big job; a small short job backfills.
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(80).work(d(10_000)).estimate(d(10_000)).build(),
                JobSpecBuilder::rigid(1).size(50).work(d(1_000)).estimate(d(1_000)).submit_at(t(1)).build(),
                JobSpecBuilder::rigid(2).size(20).work(d(500)).estimate(d(500)).submit_at(t(2)).build(),
            ],
        );
        let out = run(SimConfig::baseline(), &tr);
        let rec2 = out; // job 2 fits in the 20 free nodes and ends before the shadow
        assert_eq!(rec2.metrics.completed_jobs, 3);
        // Without backfill job 2 would wait 11000 s; with EASY it runs at t≈2.
        let mut no_bf = SimConfig::baseline();
        no_bf.easy_backfill = false;
        let out2 = run(no_bf, &tr);
        assert!(out2.metrics.avg_turnaround_h > rec2.metrics.avg_turnaround_h);
    }

    #[test]
    fn baseline_od_job_waits_like_everyone() {
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(100).work(d(5_000)).estimate(d(5_000)).build(),
                JobSpecBuilder::on_demand(1).size(50).work(d(100)).estimate(d(200)).submit_at(t(10)).build(),
            ],
        );
        let out = run(SimConfig::baseline(), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        assert_eq!(out.metrics.instant_start_rate, 0.0);
        assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
    }

    #[test]
    fn paa_preempts_rigid_for_on_demand() {
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(100).work(d(50_000)).estimate(d(60_000)).build(),
                JobSpecBuilder::on_demand(1).size(50).work(d(1_000)).estimate(d(2_000)).submit_at(t(1_000)).build(),
            ],
        );
        let out = run(SimConfig::with_mechanism(Mechanism::N_PAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
        assert!((out.metrics.rigid.preemption_ratio - 1.0).abs() < 1e-9);
        // The rigid job had no checkpoint yet → it lost its first 1000 s.
        assert!(out.metrics.utilization < out.metrics.raw_occupancy);
    }

    #[test]
    fn spaa_shrinks_malleable_instead_of_preempting() {
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::malleable(0)
                    .size(100)
                    .min_size(20)
                    .work(d(10_000))
                    .estimate(d(10_000))
                    .build(),
                JobSpecBuilder::on_demand(1).size(50).work(d(1_000)).estimate(d(2_000)).submit_at(t(1_000)).build(),
            ],
        );
        let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
        // Shrunk, not preempted.
        assert_eq!(out.metrics.malleable.preemption_ratio, 0.0);
    }

    #[test]
    fn spaa_falls_back_to_paa_when_supply_short() {
        // Malleable can only give 8 nodes (10 → 2), on-demand needs 50.
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::malleable(0).size(10).min_size(2).work(d(10_000)).estimate(d(10_000)).build(),
                JobSpecBuilder::rigid(1).size(90).work(d(50_000)).estimate(d(50_000)).submit_at(t(1)).build(),
                JobSpecBuilder::on_demand(2).size(50).work(d(1_000)).estimate(d(2_000)).submit_at(t(1_000)).build(),
            ],
        );
        let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 3);
        // PAA kicked in: something was preempted.
        assert!(
            out.metrics.rigid.preemption_ratio > 0.0
                || out.metrics.malleable.preemption_ratio > 0.0
        );
    }

    #[test]
    fn preempted_rigid_job_resumes_and_completes() {
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(100).work(d(5_000)).estimate(d(6_000)).build(),
                JobSpecBuilder::on_demand(1).size(100).work(d(500)).estimate(d(1_000)).submit_at(t(1_000)).build(),
            ],
        );
        let out = run(SimConfig::with_mechanism(Mechanism::N_PAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        assert_eq!(out.metrics.killed_jobs, 0);
        // Rigid job restarted from scratch (no checkpoint yet): total span
        // covers both the wasted 1000 s and the full re-run.
        assert!(out.metrics.rigid.avg_turnaround_h > (5_000.0 + 1_500.0) / 3_600.0 - 1e-9);
    }

    #[test]
    fn malleable_two_minute_warning_delays_od_start() {
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::malleable(0).size(100).min_size(90).work(d(10_000)).estimate(d(10_000)).build(),
                JobSpecBuilder::on_demand(1).size(50).work(d(1_000)).estimate(d(2_000)).submit_at(t(1_000)).build(),
            ],
        );
        // min 90 → shrink supply = 10 < 50 → PAA preempts the malleable job.
        let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        // Start delayed by the 120 s warning — still "instant".
        assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
        assert_eq!(out.metrics.strict_instant_rate, 0.0);
        assert!((out.metrics.malleable.preemption_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn od_returns_nodes_to_shrunk_lender() {
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::malleable(0).size(100).min_size(20).work(d(20_000)).estimate(d(20_000)).build(),
                JobSpecBuilder::on_demand(1).size(60).work(d(1_000)).estimate(d(2_000)).submit_at(t(1_000)).build(),
            ],
        );
        let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        // Shrink + expand-back happened: 2 000 000 node-seconds of work at
        // ≤100 nodes; if the job expanded back the makespan stays near
        // 20 000 s + shrunk interval compensation.
        let m = &out.metrics;
        assert!(m.malleable.avg_turnaround_h < 8.0, "{}", m.malleable.avg_turnaround_h);
    }

    #[test]
    fn cua_collects_nodes_before_arrival() {
        // Machine is full; a job finishes during the notice window; CUA
        // grabs its nodes so the OD job starts instantly at arrival.
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(50).work(d(2_000)).estimate(d(2_000)).build(),
                JobSpecBuilder::rigid(1).size(50).work(d(50_000)).estimate(d(50_000)).build(),
                JobSpecBuilder::on_demand(2)
                    .size(50)
                    .work(d(1_000))
                    .estimate(d(2_000))
                    .submit_at(t(3_000))
                    .notice(t(1_500), t(3_000))
                    .build(),
            ],
        );
        let out = run(SimConfig::with_mechanism(Mechanism::CUA_PAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 3);
        assert!((out.metrics.strict_instant_rate - 1.0).abs() < 1e-9);
        // No preemption was needed: job 0's release covered the request.
        assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
    }

    #[test]
    fn cup_preempts_after_checkpoint_before_predicted_arrival() {
        let mut cfg = SimConfig::with_mechanism(Mechanism::CUP_PAA);
        cfg.ckpt.node_mtbf_hours = 0.5; // small τ → checkpoint soon
        cfg.paranoid_checks = true;
        let tr = trace(
            100,
            vec![
                JobSpecBuilder::rigid(0).size(100).work(d(50_000)).estimate(d(50_000)).build(),
                JobSpecBuilder::on_demand(1)
                    .size(50)
                    .work(d(1_000))
                    .estimate(d(2_000))
                    .submit_at(t(10_000))
                    .notice(t(8_200), t(10_000))
                    .build(),
            ],
        );
        let out = Simulator::run_trace(&cfg, &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
        // The rigid job was preempted (after a checkpoint) pre-arrival.
        assert!((out.metrics.rigid.preemption_ratio - 1.0).abs() < 1e-9);
        // Lost work is bounded by one checkpoint cycle, so utilization
        // should not collapse.
        assert!(out.metrics.utilization > 0.5);
    }

    #[test]
    fn reservation_released_after_timeout() {
        // OD job announced but arrives very late (past the 10-minute
        // timeout); the reserved nodes must not idle until its arrival.
        let jobs = vec![
            JobSpecBuilder::on_demand(0)
                .size(100)
                .work(d(100))
                .estimate(d(200))
                .submit_at(t(10_000))
                .notice(t(100), t(1_000))
                .build(),
            JobSpecBuilder::rigid(1).size(100).work(d(1_000)).estimate(d(1_000)).submit_at(t(200)).build(),
        ];
        let tr = trace(100, jobs);

        // With backfill-on-reserved, the rigid job squats on the reserved
        // nodes immediately and finishes before the OD job shows up.
        let out = run(SimConfig::with_mechanism(Mechanism::CUA_PAA), &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        let tat = out.metrics.rigid.avg_turnaround_h * 3_600.0;
        assert!((tat - 1_000.0).abs() < 2.0, "squatting start: tat = {tat}");
        assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);

        // Without squatting the rigid job can only start when the timeout
        // (predicted 1000 + 600 s) releases the reservation.
        let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA);
        cfg.backfill_on_reserved = false;
        let out = run(cfg, &tr);
        assert_eq!(out.metrics.completed_jobs, 2);
        let tat = out.metrics.rigid.avg_turnaround_h * 3_600.0;
        assert!(
            (tat - (1_600.0 - 200.0 + 1_000.0)).abs() < 2.0,
            "timeout start: tat = {tat}"
        );
    }

    #[test]
    fn backfill_on_reserved_nodes_evicted_at_arrival() {
        let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA);
        cfg.paranoid_checks = true;
        let tr = trace(
            100,
            vec![
                // Fill the machine so the reservation comes from job 0's
                // release during the notice window.
                JobSpecBuilder::rigid(0).size(100).work(d(2_000)).estimate(d(2_000)).build(),
                // Backfill candidate arriving during the notice window.
                JobSpecBuilder::rigid(1).size(40).work(d(10_000)).estimate(d(10_000)).submit_at(t(2_100)).build(),
                JobSpecBuilder::on_demand(2)
                    .size(100)
                    .work(d(500))
                    .estimate(d(1_000))
                    .submit_at(t(4_000))
                    .notice(t(2_050), t(4_000))
                    .build(),
            ],
        );
        let out = Simulator::run_trace(&cfg, &tr);
        assert_eq!(out.metrics.completed_jobs, 3);
        // Job 1 squatted on reserved nodes and was evicted at arrival.
        assert!((out.metrics.rigid.preemption_ratio - 0.5).abs() < 1e-9);
        assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let tr = TraceConfig::tiny().generate(3);
        let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
        let mut a = Simulator::run_trace(&cfg, &tr);
        let mut b = Simulator::run_trace(&cfg, &tr);
        // Decision latencies are wall-clock measurements and legitimately
        // vary between runs; every simulated quantity must be identical.
        for m in [&mut a.metrics, &mut b.metrics] {
            m.decision_mean_us = 0.0;
            m.decision_p99_us = 0.0;
            m.decision_max_us = 0.0;
        }
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.engine.delivered, b.engine.delivered);
    }

    #[test]
    fn all_six_mechanisms_run_tiny_trace_clean() {
        let tr = TraceConfig::tiny().generate(7);
        for m in Mechanism::ALL_SIX {
            let mut cfg = SimConfig::with_mechanism(m);
            cfg.paranoid_checks = true;
            let out = Simulator::run_trace(&cfg, &tr);
            assert_eq!(
                out.metrics.completed_jobs + out.metrics.killed_jobs,
                tr.len(),
                "{m}: all jobs must finish"
            );
            assert!(out.metrics.utilization <= 1.0 + 1e-9, "{m}");
            assert_eq!(out.metrics.killed_jobs, 0, "{m}");
        }
    }

    #[test]
    fn decision_latency_recorded_and_fast() {
        let tr = TraceConfig::tiny().generate(9);
        let cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
        let out = Simulator::run_trace(&cfg, &tr);
        if out.metrics.decision_max_us > 0.0 {
            // Observation 10: decisions well under 10 ms.
            assert!(out.metrics.decision_max_us < 10_000.0);
        }
    }

    #[test]
    fn kill_fires_when_work_exceeds_estimate() {
        let mut spec = JobSpecBuilder::rigid(0).size(10).work(d(5_000)).build();
        spec.estimate = d(1_000); // bypass builder guard: user underestimated
        let tr = trace(100, vec![spec]);
        let out = run(SimConfig::baseline(), &tr);
        assert_eq!(out.metrics.killed_jobs, 1);
        assert_eq!(out.metrics.completed_jobs, 0);
    }
}
