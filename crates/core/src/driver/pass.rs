//! The scheduling pass: queue ordering, in-order starts with deadlock
//! avoidance, EASY backfilling behind a blocked head, shadow computation,
//! and backfill sizing.

use super::core::{Scratch, SimCore};
use super::events::Ev;
use crate::backfill::{compute_shadow, may_backfill, Shadow};
use crate::jobstate::Status;
use hws_cluster::ClusterBackend;
use hws_sim::{EventQueue, SimTime};
use hws_workload::{JobId, JobKind};

impl<B: ClusterBackend> SimCore<B> {
    pub(super) fn schedule_pass(&mut self, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.queue.is_empty() {
            return;
        }
        // The waiting queue is maintained in priority order across events
        // (see `super::waitq`), so ordering the pass is a straight copy of
        // the index — no per-job key computation, no O(Q log Q) sort.
        // Aging policies re-key the index at `now` first (same asymptotics
        // as the historical per-pass re-sort; static policies skip it).
        // The copy into recycled scratch keeps the exact stored keys, so a
        // started job's entry is removed under precisely the key it was
        // inserted with even though `start_job` flips its `od_front`
        // membership afterwards.
        self.refresh_queue_epoch(now);
        let mut keys = std::mem::take(&mut self.scratch.keys);
        keys.extend(self.queue.iter());

        let mut head: Option<JobId> = None;
        let mut pos = 0;
        // Phase A: start jobs strictly in order while they fit. A job that
        // does not fit in free + its own reserved nodes may still start by
        // squatting on on-demand notice reservations (it becomes a
        // squatter, evicted when the holder arrives) — this keeps reserved
        // nodes busy, as §III-B1 intends.
        while pos < keys.len() {
            let j = keys[pos].1;
            // Per-class admission: a throttled job blocks as the pass
            // head (reservations and EASY backfill proceed behind it),
            // exactly like a job the machine cannot fit yet. The default
            // hook admits everything, so the paper's mechanisms never
            // branch here.
            if self.hybrid() && !self.admission_ok(j, now) {
                head = Some(j);
                break;
            }
            let own = self.cluster.reserved_idle_count(j);
            // Per-job availability: free + own-reserved co-located on one
            // shard (on a single cluster, exactly `free_count() + own`).
            let avail = self.cluster.avail_for(j);
            let need = self.start_need(j);
            let (fits, backfill, usable) = if avail >= need {
                (true, false, avail)
            } else if own == 0 && self.hybrid() && self.cfg.backfill_on_reserved {
                let squattable = &self.squattable;
                let usable = self
                    .cluster
                    .backfill_avail_for(j, &mut |h| squattable.contains(&h));
                (usable >= need, true, usable)
            } else {
                (false, false, avail)
            };
            if fits {
                let size = self.choose_start_size(j, usable);
                if self.start_job(j, size, backfill, now, q) {
                    self.queue.remove(keys[pos].0, j);
                    if self.spec(j).kind == JobKind::OnDemand {
                        self.od_front.remove(&j);
                        self.remove_claim(j);
                    }
                    pos += 1;
                    continue;
                }
            }
            // Deadlock avoidance: reservations are subordinate to queue
            // priority. A blocked head may raid the private reservations of
            // *lower-ranked waiting* jobs (lease returns, partial on-demand
            // claims) — otherwise two waiting jobs can hoard the whole
            // machine with nothing running and no event pending. Notice-
            // phase reservations are exempt: they expire via their timeout.
            // Cheap guard first: the machine-wide idle-reserved total
            // bounds what any raid can recover, so when even taking all of
            // it cannot seat the head the per-job reservation scan below
            // would find nothing — skip it.
            if avail < need && avail + self.cluster.total_reserved_idle() >= need {
                let lower: Vec<JobId> = keys[pos + 1..]
                    .iter()
                    .map(|&(_, w)| w)
                    .filter(|&w| self.cluster.reserved_idle_count(w) > 0)
                    .collect();
                let raidable: u32 = lower
                    .iter()
                    .map(|&w| self.cluster.reserved_idle_count(w))
                    .sum();
                if avail + raidable >= need {
                    let mut deficit = need - avail;
                    // Rob the lowest-priority holders first. (Cross-shard
                    // transfers are refused by federated backends, so a
                    // raid can fall short there; the head then just stays
                    // blocked until its own shard drains.)
                    for &w in lower.iter().rev() {
                        if deficit == 0 {
                            break;
                        }
                        deficit -= self.cluster.transfer_reserved(w, j, deficit);
                    }
                    let usable = self.cluster.avail_for(j);
                    let size = self.choose_start_size(j, usable);
                    if self.start_job(j, size, false, now, q) {
                        self.queue.remove(keys[pos].0, j);
                        if self.spec(j).kind == JobKind::OnDemand {
                            self.od_front.remove(&j);
                            self.remove_claim(j);
                        }
                        pos += 1;
                        continue;
                    }
                }
            }
            head = Some(j);
            break;
        }

        // Phase B: EASY backfill behind the blocked head. No allocation
        // path can hand out more than every free node plus every idle
        // reserved node machine-wide, so that total bounds any candidate's
        // usable count: when it is zero the shadow and the whole scan are
        // skipped, and jobs needing more than it are skipped without the
        // per-shard availability queries (`backfill_size` would refuse
        // them anyway — `may_backfill` requires `size <= avail_now`).
        if let Some(head_id) = head {
            let usable_cap = self.cluster.free_count() + self.cluster.total_reserved_idle();
            if self.cfg.easy_backfill && usable_cap > 0 {
                // The shadow (an O(running · log running) projection) is
                // computed lazily, at the first candidate surviving the
                // cheap filters: every earlier iteration skipped without
                // touching cluster state, so the projection is the same
                // one an eager computation at loop entry would have built
                // — most passes over a backlog of too-big jobs never pay
                // for it at all.
                let mut shadow = None;
                for e in &keys[pos + 1..] {
                    let j = e.1;
                    if self.start_need(j) > usable_cap {
                        continue;
                    }
                    if self.hybrid() && !self.admission_ok(j, now) {
                        continue;
                    }
                    let shadow = match shadow {
                        Some(s) => s,
                        None => *shadow.insert(self.head_shadow(head_id, now)),
                    };
                    if let Some(size) = self.backfill_size(j, shadow, now) {
                        if self.start_job(j, size, true, now, q) {
                            self.queue.remove(e.0, j);
                            if self.spec(j).kind == JobKind::OnDemand {
                                self.od_front.remove(&j);
                                self.remove_claim(j);
                            }
                        }
                    }
                }
            }
        }
        // Started entries were unindexed one by one above, so the index
        // already holds exactly the still-waiting jobs — no per-pass
        // status retain.
        Scratch::stow(&mut self.scratch.keys, keys);
    }

    /// Consult the per-class admission hook for a waiting job (see
    /// [`super::hooks::MechanismHooks::admit`]).
    pub(super) fn admission_ok(&self, j: JobId, now: SimTime) -> bool {
        let spec = self.spec(j);
        self.hooks.admit(&super::hooks::AdmissionView {
            job: j,
            kind: spec.kind,
            class: spec.class,
            size: spec.size,
            running_capability: self.cap_running,
            now,
        })
    }

    /// Minimum nodes `j` needs to start (its min size for malleable jobs in
    /// hybrid mode; full size otherwise).
    pub(super) fn start_need(&self, j: JobId) -> u32 {
        let spec = self.spec(j);
        if spec.kind == JobKind::Malleable && self.hybrid() {
            spec.min_size
        } else {
            spec.size
        }
    }

    /// Size to start `j` at, given `avail` usable nodes. Malleable jobs
    /// greedily take the largest size available ("the scheduler can choose
    /// malleable jobs' sizes at their start or resumed time").
    pub(super) fn choose_start_size(&self, j: JobId, avail: u32) -> u32 {
        let spec = self.spec(j);
        if spec.kind == JobKind::Malleable && self.hybrid() {
            avail.clamp(spec.min_size, spec.size)
        } else {
            spec.size
        }
    }

    /// Shadow reservation for the blocked head job. Reuses the scratch
    /// release buffer; per-job split counts are O(1) cluster lookups. On a
    /// sharded backend the projection counts only releases on the head's
    /// shard — nodes freed elsewhere can never reach it.
    pub(super) fn head_shadow(&mut self, head: JobId, now: SimTime) -> Shadow {
        let mut releases = std::mem::take(&mut self.scratch.releases);
        // For a placed head this is its home; for an unplaced one, the
        // shard whose free count `avail_for` reports below — either way
        // the projection and the availability refer to the same shard.
        let head_shard = self.cluster.placement_shard(head);
        // Only the plain portion returns to the free pool (squatted nodes
        // go back to their on-demand holder), so the backend walks its
        // split counters directly — one pass, no per-job queries. The
        // shadow's heap selection absorbs the backend's unordered
        // iteration.
        self.cluster
            .for_each_plain_split(head_shard, &mut |v, plain| {
                let (st, spec) = self.table.state_spec(v);
                if st.status != Status::Running && st.status != Status::Draining {
                    return;
                }
                releases.push((SimCore::<B>::expected_end_of(spec, st, now), plain));
            });
        let avail = self.cluster.avail_for(head);
        let shadow = compute_shadow(&mut releases, avail, self.start_need(head));
        Scratch::stow(&mut self.scratch.releases, releases);
        shadow
    }

    /// Pick a backfill size for `j` under `shadow`, or None when no size
    /// qualifies.
    pub(super) fn backfill_size(&self, j: JobId, shadow: Shadow, now: SimTime) -> Option<u32> {
        let (st, spec) = self.table.state_spec(j);
        // With zero idle reserved nodes machine-wide no job holds any, so
        // the per-holder lookup is skipped on the common path.
        let own = if self.cluster.total_reserved_idle() == 0 {
            0
        } else {
            self.cluster.reserved_idle_count(j)
        };
        // Availability must match start_job's allocation paths: a job with
        // a private reservation draws from free + own; otherwise it may
        // squat on notice-phase reservations.
        let avail = if own > 0 || !self.cfg.backfill_on_reserved {
            self.cluster.avail_for(j)
        } else {
            let squattable = &self.squattable;
            self.cluster
                .backfill_avail_for(j, &mut |h| squattable.contains(&h))
        };
        if spec.kind == JobKind::Malleable && self.hybrid() {
            if avail < spec.min_size {
                return None;
            }
            // Largest size finishing before the shadow…
            let n1 = avail.min(spec.size);
            if may_backfill(n1, now + self.est_wall_of(spec, st, n1), avail, shadow) {
                return Some(n1);
            }
            // …or a smaller size fitting in the shadow's spare nodes.
            let n2 = shadow.extra.min(avail).min(spec.size);
            if n2 >= spec.min_size && may_backfill(n2, SimTime::MAX, avail, shadow) {
                return Some(n2);
            }
            None
        } else {
            let size = spec.size;
            may_backfill(size, now + self.est_wall_of(spec, st, size), avail, shadow)
                .then_some(size)
        }
    }
}
