//! **Policy search** — the deterministic black-box tuner over the
//! mechanism/knob space (DESIGN.md §16), exercised end to end and
//! recorded as a byte-stable baseline.
//!
//! Runs two searches over a capability-tagged quick-scale trace:
//!
//! * a **grid** over all six mechanisms × admission throttle × backfill
//!   level (reward: negative bounded slowdown), and
//! * a **tournament** (successive halving, fresh seeds per round) over
//!   the same space with a capability-weighted turnaround reward.
//!
//! Three reproducibility oracles run inline and abort non-zero on any
//! divergence (CI keys on them):
//!
//! 1. the grid executed twice emits **byte-identical** leaderboard text;
//! 2. parallel fan-out is **bitwise identical** to a sequential loop,
//!    for both tuners;
//! 3. an identity-action [`Environment`] episode
//!    opened at the grid winner's knob point reproduces the winner's
//!    batch replay **bitwise** (the facade the tuner is built on adds
//!    nothing).
//!
//! Writes `BENCH_policy_search.json` at the workspace root (override
//! with `HWS_POLICY_SEARCH_JSON=path`). Every recorded field is
//! deterministic, so the CI `baseline-parity` job compares the file
//! byte-for-byte. The committed baseline is recorded at
//! `HWS_SCALE=quick` with the default 10 seeds:
//!
//! ```text
//! HWS_SCALE=quick cargo run --release -p hws-bench --bin policy_search
//! ```

use hws_bench::{seeds_from_env, Scale};
use hws_core::{Action, EnvSpec, Environment, Mechanism, SimConfig, Simulator};
use hws_metrics::{RewardSpec, Table};
use hws_search::{
    grid_search, tournament_search, Leaderboard, SearchConfig, SearchSpace, TournamentConfig,
};
use hws_sim::SimDuration;
use hws_workload::{BackfillLevel, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Capability fraction tagged onto every trace (class-weighted rewards
/// need both classes present).
const CAPABILITY_FRAC: f64 = 0.25;

fn make_trace(seed: u64) -> Trace {
    let mut trace = Scale::from_env().trace_config().generate(seed);
    trace.tag_capability(CAPABILITY_FRAC);
    trace
}

fn search_space() -> SearchSpace {
    SearchSpace {
        mechanisms: Mechanism::ALL_SIX.to_vec(),
        throttles: vec![None, Some(1)],
        backfills: vec![None, Some(BackfillLevel::Conservative)],
        ckpt_mults: vec![1.0],
        placements: vec![None],
    }
}

fn quiet_base() -> SimConfig {
    let mut cfg = SimConfig::baseline();
    cfg.measure_decisions = false;
    cfg
}

/// Oracle 3: an identity-action episode opened at the winner's knob
/// point must reproduce the winner's batch replay bitwise.
fn assert_environment_parity(lb: &Leaderboard) {
    let winner = lb.winner().expect("non-empty leaderboard");
    let mechanism = Mechanism::ALL_SIX
        .into_iter()
        .find(|m| m.name() == winner.mechanism)
        .expect("winner is one of the six mechanisms");
    let trace = make_trace(0);
    let candidate = hws_core::config_for_knobs(&quiet_base(), mechanism, &winner.knobs)
        .expect("winner materialises");
    let batch = Simulator::run_trace(&candidate, &trace);

    let mut base = quiet_base();
    base.mechanism = mechanism;
    let spec = EnvSpec::new(base)
        .with_interval(SimDuration::from_hours(6))
        .with_knobs(winner.knobs.clone());
    let report = Environment::new(spec, &trace)
        .expect("open episode")
        .run(|_| Action::hold())
        .expect("identity episode");
    assert_eq!(
        report.outcome.metrics, batch.metrics,
        "environment identity episode diverged from the winner's batch replay"
    );
    assert_eq!(
        report.outcome.engine, batch.engine,
        "environment engine stats diverged from the winner's batch replay"
    );
    eprintln!(
        "  environment parity OK: identity episode == batch replay for {}",
        winner.mechanism
    );
}

fn main() {
    let seeds = seeds_from_env();
    let space = search_space();
    eprintln!(
        "policy_search: {} candidates × {seeds} seeds (capability frac {CAPABILITY_FRAC})",
        space.len(),
    );

    // --- Grid: reward = negative bounded slowdown -------------------
    let grid_cfg = SearchConfig::new(
        quiet_base(),
        RewardSpec::neg_bounded_slowdown(),
        (0..seeds).collect(),
    );
    let grid = grid_search(&space, &grid_cfg, make_trace).expect("grid search");
    let grid_again = grid_search(&space, &grid_cfg, make_trace).expect("grid rerun");
    assert_eq!(
        grid.to_text(),
        grid_again.to_text(),
        "two runs of the same grid search must emit identical bytes"
    );
    let grid_seq =
        grid_search(&space, &grid_cfg.clone().sequential(), make_trace).expect("sequential grid");
    assert_eq!(
        grid.to_text(),
        grid_seq.to_text(),
        "parallel grid search diverged from sequential"
    );
    eprintln!("  grid OK: rerun + sequential byte-identical");

    // --- Tournament: reward = capability-weighted turnaround --------
    let tour_cfg = TournamentConfig::new(quiet_base(), RewardSpec::class_weighted(1.0, 3.0), 3, 2);
    let tournament = tournament_search(&space, &tour_cfg, make_trace).expect("tournament");
    let tour_seq = tournament_search(&space, &tour_cfg.clone().sequential(), make_trace)
        .expect("sequential tournament");
    assert_eq!(
        tournament.to_text(),
        tour_seq.to_text(),
        "parallel tournament diverged from sequential"
    );
    eprintln!("  tournament OK: parallel == sequential byte-identical");

    assert_environment_parity(&grid);

    // Leaderboard text must survive its own codec (the artifact a tuning
    // session would persist and reload).
    for lb in [&grid, &tournament] {
        let text = lb.to_text();
        assert_eq!(
            &Leaderboard::from_text(&text).expect("parse own output"),
            lb,
            "leaderboard text did not round-trip"
        );
    }

    let mut t = Table::new(vec![
        "search",
        "rank",
        "mechanism",
        "knobs",
        "seeds",
        "mean reward",
        "fingerprint",
    ]);
    for lb in [&grid, &tournament] {
        for row in &lb.rows {
            t.row(vec![
                lb.search.clone(),
                row.rank.to_string(),
                row.mechanism.clone(),
                row.knobs.to_text(),
                row.seeds.to_string(),
                format!("{:.4}", row.mean_reward),
                format!("{:016x}", row.fingerprint),
            ]);
        }
    }
    println!(
        "POLICY SEARCH ({} candidates, grid reward {}, tournament reward {})",
        space.len(),
        grid.reward,
        tournament.reward
    );
    println!("{}", t.render());

    let json_path = std::env::var("HWS_POLICY_SEARCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    match std::fs::write(&json_path, to_json(&[&grid, &tournament])) {
        Ok(()) => {
            let rows: usize = [&grid, &tournament].iter().map(|l| l.rows.len()).sum();
            println!("wrote {rows} rows to {}", json_path.display());
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Workspace root, next to the other `BENCH_*.json` baselines.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_policy_search.json")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn to_json(boards: &[&Leaderboard]) -> String {
    let mut out = String::from("[\n");
    let total: usize = boards.iter().map(|l| l.rows.len()).sum();
    let mut n = 0usize;
    for lb in boards {
        for row in &lb.rows {
            n += 1;
            let comma = if n == total { "" } else { "," };
            let _ = writeln!(
                out,
                "  {{\"search\": \"{}\", \"reward\": \"{}\", \"rank\": {}, \
                 \"mechanism\": \"{}\", \"knobs\": \"{}\", \"seeds\": {}, \
                 \"mean_reward\": {}, \"fingerprint\": \"{:016x}\"}}{comma}",
                lb.search,
                lb.reward,
                row.rank,
                row.mechanism,
                row.knobs.to_text(),
                row.seeds,
                json_f64(row.mean_reward),
                row.fingerprint,
            );
        }
    }
    out.push_str("]\n");
    out
}
