//! Offline stand-in for the crates.io `criterion` crate (see DESIGN.md §5).
//!
//! The build environment has no network access, so bench targets are built
//! against this vendored subset: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, and `BatchSize`.
//!
//! Measurement model: each benchmark is calibrated with a few warm-up
//! iterations, then timed for a fixed wall-clock budget; the mean, minimum,
//! and iteration count are printed per benchmark. Set `HWS_BENCH_JSON=path`
//! to additionally write every result as a JSON array — the repo's
//! `BENCH_decision_latency.json` regression baseline is recorded that way.
//! There is no statistical analysis, outlier detection, or HTML report.

use std::time::{Duration, Instant};

/// Per-iteration batch sizing hint (accepted for API compatibility; the
/// shim times each batch of one input individually either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub id: String,
    pub iterations: u64,
    pub mean_ns: f64,
    pub min_ns: f64,
}

/// Top-level harness state: collects results across groups for the final
/// summary and optional JSON export.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    /// Wall-clock measurement budget per benchmark.
    budget: Duration,
}

impl Criterion {
    pub fn new() -> Self {
        let budget_ms = std::env::var("HWS_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            results: Vec::new(),
            budget: Duration::from_millis(budget_ms),
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            max_iterations: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let result = run_benchmark(id, self.budget, None, f);
        eprintln!("  {}", render(&result));
        self.results.push(result);
        self
    }

    /// Print the run summary and honor `HWS_BENCH_JSON`. Called by
    /// [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("HWS_BENCH_JSON") {
            match std::fs::write(&path, results_to_json(&self.results)) {
                Ok(()) => eprintln!("wrote {} results to {path}", self.results.len()),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
    }
}

/// A named collection of benchmarks sharing group-level settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    max_iterations: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Upstream signature; the shim reuses the sample count as an iteration
    /// cap, which serves the same purpose: bounding slow benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.max_iterations = Some(n as u64);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let result = run_benchmark(id, self.criterion.budget, self.max_iterations, f);
        eprintln!("  {}", render(&result));
        self.criterion.results.push(result);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; records per-iteration timings.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u64>,
    budget: Duration,
    max_iterations: Option<u64>,
}

impl Bencher {
    fn done(&self, spent: Duration) -> bool {
        spent >= self.budget
            || self.samples_ns.len() as u64 >= self.max_iterations.unwrap_or(u64::MAX)
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        std::hint::black_box(f());
        let begin = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(t.elapsed().as_nanos() as u64);
            if self.done(begin.elapsed()) {
                break;
            }
        }
    }

    /// Times only `routine`; `setup` runs outside the measured window.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let begin = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as u64);
            if self.done(begin.elapsed()) {
                break;
            }
        }
    }
}

fn run_benchmark<F>(
    id: String,
    budget: Duration,
    max_iterations: Option<u64>,
    mut f: F,
) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples_ns: Vec::new(),
        budget,
        max_iterations,
    };
    f(&mut b);
    let n = b.samples_ns.len().max(1) as u64;
    let total: u64 = b.samples_ns.iter().sum();
    let min = b.samples_ns.iter().copied().min().unwrap_or(0);
    BenchResult {
        id,
        iterations: n,
        mean_ns: total as f64 / n as f64,
        min_ns: min as f64,
    }
}

fn render(r: &BenchResult) -> String {
    format!(
        "{:<44} mean {:>12} min {:>12} ({} iters)",
        r.id,
        fmt_ns(r.mean_ns),
        fmt_ns(r.min_ns),
        r.iterations
    )
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"iterations\": {}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}}}{comma}\n",
            r.id.replace('"', "'"),
            r.iterations,
            r.mean_ns,
            r.min_ns
        ));
    }
    out.push(']');
    out.push('\n');
    out
}

/// Upstream's `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Upstream's `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::new();
        c.budget = Duration::from_millis(5);
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.iterations >= 1));
    }

    #[test]
    fn sample_size_caps_iterations() {
        let mut c = Criterion::new();
        c.budget = Duration::from_secs(5);
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(10);
            g.bench_function("capped", |b| b.iter(|| 0u8));
            g.finish();
        }
        assert!(c.results[0].iterations <= 10);
    }

    #[test]
    fn json_shape() {
        let j = results_to_json(&[BenchResult {
            id: "a/b".into(),
            iterations: 3,
            mean_ns: 10.5,
            min_ns: 9.0,
        }]);
        assert!(j.starts_with("[\n") && j.ends_with("]\n"));
        assert!(j.contains("\"id\": \"a/b\""));
    }
}
