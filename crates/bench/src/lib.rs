//! # hws-bench — experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus shared
//! plumbing: multi-seed parallel execution and result aggregation. The
//! Criterion benches under `benches/` cover Observation 10 (decision
//! latency) and simulator/backfill throughput.
//!
//! Scale knobs (environment variables, so `cargo bench`/CI stay fast):
//!
//! * `HWS_SCALE=full` — run the full-year, 4,392-node Theta configuration
//!   (the paper's scale). Default is a calibrated 1/6-scale trace (2 months)
//!   that preserves system size, load, and burstiness.
//! * `HWS_SEEDS=n` — number of random traces per cell (paper: 10).

use hws_core::{Mechanism, SimConfig, Simulator};
use hws_metrics::{Metrics, MetricsAvg};
use hws_sim::SimDuration;
use hws_workload::{NoticeMix, TraceConfig};

/// Experiment scale selected via `HWS_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full paper scale: one year of Theta (37,298 jobs).
    Full,
    /// Default: two months at the same offered load (≈6,200 jobs).
    Standard,
    /// Quick smoke scale for CI (two weeks).
    Quick,
}

impl Scale {
    pub fn from_env() -> Scale {
        match std::env::var("HWS_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("quick") => Scale::Quick,
            _ => Scale::Standard,
        }
    }

    /// The Theta-shaped trace configuration at this scale.
    pub fn trace_config(self) -> TraceConfig {
        let base = TraceConfig::theta_2019();
        match self {
            Scale::Full => base,
            Scale::Standard => TraceConfig {
                horizon: SimDuration::from_days(61),
                target_jobs: 37_298 * 61 / 365,
                n_projects: 120,
                ..base
            },
            Scale::Quick => TraceConfig {
                horizon: SimDuration::from_days(14),
                target_jobs: 37_298 * 14 / 365,
                n_projects: 60,
                ..base
            },
        }
    }
}

/// Seeds per experiment cell (`HWS_SEEDS`, default 10 — "we repeat the same
/// experiment on ten randomly generated traces").
pub fn seeds_from_env() -> u64 {
    std::env::var("HWS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// Run `cfg` over `seeds` independently generated traces in parallel and
/// average the metrics (the paper's averaging protocol). Routed through
/// [`Simulator::run_sweep`], which fans the seeds across CPU cores while
/// keeping every per-seed result bitwise identical to a sequential run.
pub fn run_averaged(sim_cfg: &SimConfig, trace_cfg: &TraceConfig, seeds: u64) -> Metrics {
    assert!(seeds > 0);
    let seed_list: Vec<u64> = (0..seeds).collect();
    let outcomes = Simulator::run_sweep(sim_cfg, trace_cfg, &seed_list);
    let mut avg = MetricsAvg::new();
    for outcome in &outcomes {
        avg.push(&outcome.metrics);
    }
    avg.mean()
}

/// Run every (mechanism × workload) cell of Fig. 6 and return
/// `(workload name, mechanism, averaged metrics)` rows.
pub fn run_fig6_grid(
    trace_base: &TraceConfig,
    seeds: u64,
    mechanisms: &[Mechanism],
) -> Vec<(&'static str, Mechanism, Metrics)> {
    let mut rows = Vec::new();
    for (wname, mix) in NoticeMix::TABLE3 {
        let tcfg = trace_base.clone().with_notice_mix(mix);
        for &m in mechanisms {
            let scfg = SimConfig::with_mechanism(m);
            rows.push((wname, m, run_averaged(&scfg, &tcfg, seeds)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_standard() {
        // (Environment is not set in the test harness.)
        if std::env::var("HWS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Standard);
        }
    }

    #[test]
    fn scaled_configs_preserve_system_size() {
        for s in [Scale::Full, Scale::Standard, Scale::Quick] {
            let c = s.trace_config();
            assert_eq!(c.system_size, 4_392);
            assert!(c.target_jobs > 100);
        }
    }

    #[test]
    fn run_averaged_is_deterministic() {
        let tcfg = TraceConfig::tiny();
        let scfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
        let a = run_averaged(&scfg, &tcfg, 2);
        let b = run_averaged(&scfg, &tcfg, 2);
        assert!((a.avg_turnaround_h - b.avg_turnaround_h).abs() < 1e-12);
        assert!((a.utilization - b.utilization).abs() < 1e-12);
    }
}
