//! EASY backfilling (Mu'alem & Feitelson): the head of the queue gets a
//! *shadow* reservation at the earliest instant enough nodes will be free;
//! later jobs may jump ahead iff they either finish before the shadow time
//! or fit into the nodes the head job will not need ("extra" nodes).

use hws_sim::SimTime;

/// The head job's reservation: when it is expected to start, and how many
/// nodes beyond its requirement remain usable by backfill until then.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shadow {
    /// Earliest instant the head job is expected to have enough nodes.
    /// `SimTime::MAX` when the projection never accumulates enough (e.g.
    /// nodes locked in other reservations).
    pub time: SimTime,
    /// Nodes free at the shadow instant beyond the head job's need —
    /// backfill jobs no larger than this cannot delay the head job even if
    /// they run forever.
    pub extra: u32,
}

/// Compute the head job's shadow from the projected releases of running
/// jobs. `releases` is a list of `(expected_end, nodes_returning_to_free)`
/// — squatters returning to foreign reservations are excluded by the
/// caller. `avail_now` counts nodes the head job could use immediately.
pub fn compute_shadow(releases: &mut [(SimTime, u32)], avail_now: u32, need: u32) -> Shadow {
    if avail_now >= need {
        return Shadow {
            time: SimTime::ZERO,
            extra: avail_now - need,
        };
    }
    // Two equivalent selection strategies — both walk releases in
    // ascending `(end, nodes)` order until the cumulative count crosses
    // `need`, so they return bit-identical shadows (entries tied on the
    // whole pair are interchangeable: same cumulative sums, same crossing
    // entry). Which is cheaper depends on how deep the walk goes:
    //
    // * a small deficit crosses within a handful of releases — heapify
    //   (O(R)) plus k pops (O(k log R)) beats sorting everything;
    // * a deficit near the total projected release count consumes most of
    //   the heap, and R pops cost more than one good sort.
    //
    // The deficit and the release total are both known up front, so pick
    // per call. The cutoff only affects speed, never the result.
    let len = releases.len();
    let deficit = need - avail_now;
    let total: u32 = releases.iter().map(|&(_, n)| n).sum();
    if deficit.saturating_mul(4) <= total {
        // Expected crossing depth ≲ R/4 (the deficit is at most a quarter
        // of the projected release total): heap selection.
        for i in (0..len / 2).rev() {
            sift_down(releases, i, len);
        }
        let mut have = avail_now;
        let mut live = len;
        while live > 0 {
            let (end, nodes) = releases[0];
            have += nodes;
            if have >= need {
                return Shadow {
                    time: end,
                    extra: have - need,
                };
            }
            live -= 1;
            releases.swap(0, live);
            sift_down(releases, 0, live);
        }
    } else {
        // Deep walk expected: one unstable sort (key is the whole
        // element, so instability is harmless) then a linear scan.
        releases.sort_unstable_by_key(|&(t, n)| (t, n));
        let mut have = avail_now;
        for &(end, nodes) in releases.iter() {
            have += nodes;
            if have >= need {
                return Shadow {
                    time: end,
                    extra: have - need,
                };
            }
        }
    }
    Shadow {
        time: SimTime::MAX,
        extra: avail_now,
    }
}

/// Restore the min-heap property for the subtree rooted at `i` within
/// `heap[..len]` (ordering on the whole `(end, nodes)` tuple).
fn sift_down(heap: &mut [(SimTime, u32)], mut i: usize, len: usize) {
    loop {
        let l = 2 * i + 1;
        if l >= len {
            return;
        }
        let mut c = l;
        let r = l + 1;
        if r < len && heap[r] < heap[l] {
            c = r;
        }
        if heap[c] < heap[i] {
            heap.swap(c, i);
            i = c;
        } else {
            return;
        }
    }
}

/// EASY admission test for one backfill candidate: the candidate (needing
/// `size` nodes and expected to run until `expected_end`) may start iff it
/// fits in `avail_now` nodes and either completes before the shadow or uses
/// no more than the shadow's extra nodes.
pub fn may_backfill(size: u32, expected_end: SimTime, avail_now: u32, shadow: Shadow) -> bool {
    size <= avail_now && (expected_end <= shadow.time || size <= shadow.extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn shadow_now_when_head_fits() {
        let s = compute_shadow(&mut [(t(100), 4)], 10, 8);
        assert_eq!(s.time, SimTime::ZERO);
        assert_eq!(s.extra, 2);
    }

    #[test]
    fn shadow_at_first_sufficient_release() {
        let mut rel = vec![(t(300), 4), (t(100), 2), (t(200), 3)];
        // avail 1, need 6: after t=100 have 3, after t=200 have 6 → shadow.
        let s = compute_shadow(&mut rel, 1, 6);
        assert_eq!(s.time, t(200));
        assert_eq!(s.extra, 0);
    }

    #[test]
    fn shadow_extra_counts_overshoot() {
        let mut rel = vec![(t(100), 10)];
        let s = compute_shadow(&mut rel, 2, 5);
        assert_eq!(s.time, t(100));
        assert_eq!(s.extra, 7);
    }

    #[test]
    fn shadow_unreachable() {
        let mut rel = vec![(t(100), 1)];
        let s = compute_shadow(&mut rel, 2, 10);
        assert_eq!(s.time, SimTime::MAX);
        assert_eq!(s.extra, 2);
    }

    #[test]
    fn backfill_admission_by_time() {
        let shadow = Shadow {
            time: t(1_000),
            extra: 0,
        };
        assert!(may_backfill(4, t(900), 5, shadow));
        assert!(may_backfill(4, t(1_000), 5, shadow)); // boundary allowed
        assert!(!may_backfill(4, t(1_001), 5, shadow));
    }

    #[test]
    fn backfill_admission_by_extra_nodes() {
        let shadow = Shadow {
            time: t(1_000),
            extra: 4,
        };
        // Runs past the shadow but fits in the extra nodes.
        assert!(may_backfill(4, t(99_999), 5, shadow));
        assert!(!may_backfill(5, t(99_999), 5, shadow));
    }

    #[test]
    fn backfill_requires_current_fit() {
        let shadow = Shadow {
            time: SimTime::MAX,
            extra: 100,
        };
        assert!(!may_backfill(6, t(10), 5, shadow));
    }
}
