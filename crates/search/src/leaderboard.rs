//! The text-round-trippable leaderboard artifact the tuners emit.
//!
//! House text-codec style (see `hws_workload::outage`): a version header
//! comment, one tagged record per line, `to_text`/`from_text` an exact
//! round trip, malformed input rejected with a message rather than a
//! panic. Fields are `|`-separated because knob text contains spaces;
//! floats are printed with `{:?}` so the shortest representation
//! re-parses to the same bits, which makes "byte-identical leaderboard"
//! and "identical search result" the same statement.

use hws_workload::KnobVector;
use std::fmt::Write as _;

const HEADER: &str = "; HWS-Leaderboard: 1";

/// 64-bit FNV-1a (the workspace's standard fingerprint hash; see
/// `hws_bench::fnv1a` — reimplemented here because `hws-bench` sits
/// *above* this crate in the dependency order).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// 1-based rank (best first).
    pub rank: usize,
    /// Mechanism name as `Mechanism::name` reports it.
    pub mechanism: String,
    pub knobs: KnobVector,
    /// Number of seeded evaluations folded into this row.
    pub seeds: usize,
    /// Mean reward over those evaluations, folded in seed order.
    pub mean_reward: f64,
    /// FNV-1a over the `Debug` form of every per-seed `Metrics` this
    /// candidate produced, in evaluation order — the bitwise receipt.
    pub fingerprint: u64,
    /// Per-evaluation rewards, in evaluation order.
    pub scores: Vec<f64>,
}

/// A complete search result: which tuner ran, what it optimised, and
/// every candidate ranked best-first.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaderboard {
    /// Tuner kind (`grid` / `tournament`).
    pub search: String,
    /// `RewardSpec::describe()` of the objective.
    pub reward: String,
    pub rows: Vec<LeaderboardRow>,
}

impl Leaderboard {
    /// Serialise; exact inverse of [`Leaderboard::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        writeln!(out, "search|{}", self.search).unwrap();
        writeln!(out, "reward|{}", self.reward).unwrap();
        for row in &self.rows {
            let scores = row
                .scores
                .iter()
                .map(|s| format!("{s:?}"))
                .collect::<Vec<_>>()
                .join(",");
            writeln!(
                out,
                "r|{}|{}|{}|{:?}|{:016x}|{}|{}",
                row.rank,
                row.mechanism,
                row.seeds,
                row.mean_reward,
                row.fingerprint,
                scores,
                row.knobs.to_text(),
            )
            .unwrap();
        }
        out
    }

    /// Parse the [`Leaderboard::to_text`] form.
    pub fn from_text(s: &str) -> Result<Leaderboard, String> {
        let mut lines = s.lines();
        match lines.next() {
            Some(l) if l == HEADER => {}
            other => return Err(format!("bad leaderboard header: {other:?}")),
        }
        let mut search = None;
        let mut reward = None;
        let mut rows = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line
                .split_once('|')
                .ok_or_else(|| format!("untagged leaderboard line: {line:?}"))?;
            match tag {
                "search" => {
                    if search.replace(rest.to_string()).is_some() {
                        return Err("duplicate search line".into());
                    }
                }
                "reward" => {
                    if reward.replace(rest.to_string()).is_some() {
                        return Err("duplicate reward line".into());
                    }
                }
                "r" => {
                    let fields: Vec<&str> = rest.splitn(6, '|').collect();
                    let [rank, mechanism, seeds, mean, fp, tail] = fields[..] else {
                        return Err(format!("bad row field count: {line:?}"));
                    };
                    let (scores_text, knobs_text) = tail
                        .split_once('|')
                        .ok_or_else(|| format!("row missing knob field: {line:?}"))?;
                    let scores = if scores_text.is_empty() {
                        Vec::new()
                    } else {
                        scores_text
                            .split(',')
                            .map(|t| {
                                t.parse::<f64>()
                                    .map_err(|_| format!("bad score {t:?} in {line:?}"))
                            })
                            .collect::<Result<Vec<f64>, String>>()?
                    };
                    rows.push(LeaderboardRow {
                        rank: rank.parse().map_err(|_| format!("bad rank in {line:?}"))?,
                        mechanism: mechanism.to_string(),
                        seeds: seeds
                            .parse()
                            .map_err(|_| format!("bad seed count in {line:?}"))?,
                        mean_reward: mean
                            .parse()
                            .map_err(|_| format!("bad mean reward in {line:?}"))?,
                        fingerprint: u64::from_str_radix(fp, 16)
                            .map_err(|_| format!("bad fingerprint in {line:?}"))?,
                        scores,
                        knobs: KnobVector::from_text(knobs_text)?,
                    });
                }
                other => return Err(format!("unknown leaderboard tag {other:?}")),
            }
        }
        Ok(Leaderboard {
            search: search.ok_or("missing search line")?,
            reward: reward.ok_or("missing reward line")?,
            rows,
        })
    }

    /// The winning row (rank 1), if any candidate was evaluated.
    pub fn winner(&self) -> Option<&LeaderboardRow> {
        self.rows.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Leaderboard {
        Leaderboard {
            search: "grid".into(),
            reward: "neg-bounded-slowdown".into(),
            rows: vec![
                LeaderboardRow {
                    rank: 1,
                    mechanism: "CUA&SPAA".into(),
                    knobs: KnobVector::identity(),
                    seeds: 2,
                    mean_reward: -1.25,
                    fingerprint: 0xdead_beef_0123_4567,
                    scores: vec![-1.0, -1.5],
                },
                LeaderboardRow {
                    rank: 2,
                    mechanism: "FCFS/EASY".into(),
                    knobs: KnobVector::from_text(
                        "admit=1 backfill=off ckpt=0.5 placement=least-loaded",
                    )
                    .unwrap(),
                    seeds: 0,
                    mean_reward: 0.0,
                    fingerprint: 0,
                    scores: vec![],
                },
            ],
        }
    }

    #[test]
    fn round_trip_exact() {
        let lb = sample();
        let text = lb.to_text();
        let back = Leaderboard::from_text(&text).expect("parse");
        assert_eq!(back, lb);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn rejects_malformed_input() {
        let good = sample().to_text();
        let cases = [
            ("".to_string(), "header"),
            ("; HWS-Leaderboard: 2\n".to_string(), "header"),
            (
                good.replace("search|grid", "search|grid\nsearch|again"),
                "duplicate search",
            ),
            (good.replace("reward|", "prize|"), "unknown leaderboard tag"),
            (good.replace("r|1|", "r|one|"), "bad rank"),
            (good.replacen("-1.0,-1.5", "-1.0,fast", 1), "bad score"),
            (
                good.replace(HEADER, format!("{HEADER}\njunk line").as_str()),
                "untagged",
            ),
            (
                good.replace("admit=none", "admit=whenever"),
                "bad admit throttle",
            ),
        ];
        for (text, want) in cases {
            let err = Leaderboard::from_text(&text).unwrap_err();
            assert!(err.contains(want), "{want}: {err}");
        }
        let missing = format!("{HEADER}\nreward|x\n");
        assert!(Leaderboard::from_text(&missing)
            .unwrap_err()
            .contains("missing search"));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
