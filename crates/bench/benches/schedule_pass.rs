//! Microbench of the pass-ordering kernel: the incrementally maintained
//! `BTreeSet<(QueueKey, JobId)>` waiting-queue index (churn a few entries
//! per tick, copy the already-ordered index into the pass scratch) against
//! the historical full re-sort (recompute every key and `sort_unstable`
//! the whole queue on every pass). The simulator switched to the former in
//! DESIGN.md §15; this bench is the standing record of why — and of the
//! aging-policy (WFP3) exception, whose per-pass re-key genuinely costs
//! the old O(Q log Q).

use criterion::{criterion_group, criterion_main, Criterion};
use hws_core::policy::{queue_key, QueueKey};
use hws_core::PolicyKind;
use hws_sim::SimTime;
use hws_workload::job::JobSpecBuilder;
use hws_workload::{JobId, JobSpec};
use std::collections::BTreeSet;
use std::hint::black_box;

/// Deterministic waiting set: spread submit instants and sizes so FCFS
/// keys are distinct and WFP3 scores are non-trivial.
fn waiting_specs(q: u64) -> Vec<JobSpec> {
    (0..q)
        .map(|i| {
            JobSpecBuilder::rigid(i)
                .submit_at(SimTime::from_secs((i * 37) % (q * 8) + 1))
                .size(((i * 13) % 512 + 1) as u32)
                .build()
        })
        .collect()
}

fn bench_schedule_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_pass");

    for q in [64u64, 1_024, 16_384] {
        let specs = waiting_specs(q);

        // Historical ordering: every pass recomputes every waiting job's
        // key and sorts from scratch — O(Q) key evaluations + O(Q log Q)
        // comparisons per pass, i.e. per event once passes coalesce.
        g.bench_function(format!("full_resort/{q}_waiting"), |b| {
            let mut scratch: Vec<(QueueKey, JobId)> = Vec::with_capacity(specs.len());
            b.iter(|| {
                scratch.clear();
                scratch.extend(
                    specs
                        .iter()
                        .map(|s| (queue_key(PolicyKind::Fcfs, s, false, SimTime::ZERO), s.id)),
                );
                scratch.sort_unstable();
                black_box(scratch.last().copied())
            });
        });

        // Incremental ordering: the index persists across passes; a tick
        // churns a handful of entries (starts out, submissions in) and the
        // pass copies the already-ordered index into scratch.
        g.bench_function(format!("incremental/{q}_waiting_8_churn"), |b| {
            let keyed: Vec<(QueueKey, JobId)> = specs
                .iter()
                .map(|s| (queue_key(PolicyKind::Fcfs, s, false, SimTime::ZERO), s.id))
                .collect();
            let mut index: BTreeSet<(QueueKey, JobId)> = keyed.iter().copied().collect();
            let mut scratch: Vec<(QueueKey, JobId)> = Vec::with_capacity(keyed.len());
            let mut round = 0usize;
            b.iter(|| {
                // 8 priority-relevant transitions per tick: a started job
                // leaves the index, its resubmission re-enters. Rotating
                // through the keyed set keeps the occupancy steady.
                for k in 0..8 {
                    let e = keyed[(round * 8 + k) % keyed.len()];
                    assert!(index.remove(&e));
                    index.insert(e);
                }
                round += 1;
                scratch.clear();
                scratch.extend(index.iter());
                black_box(scratch.last().copied())
            });
        });

        // The aging-policy exception: WFP3 scores move with every tick, so
        // the index is re-keyed wholesale before each pass — the old
        // asymptotics, paid only by time-varying policies.
        g.bench_function(format!("wfp3_rekey/{q}_waiting"), |b| {
            let mut index: BTreeSet<(QueueKey, JobId)> = specs
                .iter()
                .map(|s| (queue_key(PolicyKind::Wfp3, s, false, SimTime::ZERO), s.id))
                .collect();
            let mut ids: Vec<JobId> = Vec::with_capacity(specs.len());
            let mut now = 0u64;
            b.iter(|| {
                now += 60;
                let epoch = SimTime::from_secs(now);
                ids.clear();
                ids.extend(index.iter().map(|&(_, j)| j));
                index.clear();
                index.extend(ids.iter().map(|&j| {
                    let s = &specs[j.0 as usize];
                    (queue_key(PolicyKind::Wfp3, s, false, epoch), j)
                }));
                black_box(index.len())
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_schedule_pass);
criterion_main!(benches);
