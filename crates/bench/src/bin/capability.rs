//! **Capability/capacity co-scheduling** — the six mechanisms under the
//! capability-aware hooks composition, swept over the capability fraction
//! (ROADMAP: "capability/capacity co-scheduling", *More for Less*,
//! arXiv:2501.12464).
//!
//! Each cell replays a trace whose largest rigid jobs are tagged as
//! capability campaigns (`Trace::tag_capability` — the synthetic
//! generator's `capability_frac` knob and, for the bundled
//! `theta_quick.swf` fixture, the same deterministic injection applied
//! after import) under `CapabilityAware::for_mechanism(m)`: capability
//! jobs are never preemption victims, everything else behaves exactly
//! like the paper's mechanism.
//!
//! The `frac = 0` rows are the refactor-safety oracle: with **no**
//! capability jobs, the wrapped hooks must reproduce the plain mechanism
//! path **bitwise** — every per-seed metric and engine counter is
//! asserted equal, which is what keeps all committed `BENCH_*.json`
//! baselines byte-stable. Any divergence aborts non-zero (CI keys on it).
//!
//! Writes `BENCH_capability.json` at the workspace root (override with
//! `HWS_CAPABILITY_JSON=path`). Every recorded field is deterministic, so
//! the CI `baseline-parity` job compares the file byte-for-byte. The
//! committed baseline is recorded at `HWS_SCALE=quick` with the default
//! 10 seeds.
//!
//! ```text
//! HWS_SCALE=quick cargo run --release -p hws-bench --bin capability
//! ```

use hws_bench::{bundled_swf_fixture, metrics_fingerprint, seeds_from_env, Scale, TraceSource};
use hws_core::{CapabilityAware, Mechanism, SimConfig, SimOutcome, Simulator};
use hws_metrics::Table;
use hws_workload::{JobClass, SwfImportConfig, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Capability fractions swept per source (fractions of *rigid* jobs).
const FRACS: [f64; 3] = [0.0, 0.25, 0.5];

struct Row {
    source: &'static str,
    capability_frac: f64,
    mechanism: Mechanism,
    seeds: u64,
    metrics_fingerprint: u64,
    avg_turnaround_h: f64,
    utilization: f64,
    completed_jobs: usize,
    killed_jobs: usize,
    /// Seed-0 capability-side breakdown (deterministic).
    cap_jobs: usize,
    cap_completed: usize,
    cap_avg_turnaround_h: f64,
    cap_preempted_jobs: usize,
    capacity_avg_turnaround_h: f64,
}

/// One (source × fraction × mechanism) cell: parallel sweep, sequential
/// bitwise verification, and — at zero fraction — the bitwise
/// plain-mechanism parity oracle.
fn run_cell(m: Mechanism, source: &'static str, traces: &[Trace], frac: f64, seeds: u64) -> Row {
    let mut cfg = SimConfig::with_hooks(CapabilityAware::for_mechanism(m));
    // Wall-clock decision latencies are the one non-simulated metric; drop
    // them so parallel == sequential == plain-path holds bitwise.
    cfg.measure_decisions = false;

    let swept = Simulator::run_sweep_with(&cfg, &(0..seeds).collect::<Vec<_>>(), |s| {
        traces[s as usize].clone()
    });
    let sequential: Vec<SimOutcome> = traces
        .iter()
        .map(|tr| Simulator::run_trace(&cfg, tr))
        .collect();
    for (i, (p, s)) in swept.iter().zip(&sequential).enumerate() {
        assert_eq!(
            p.metrics,
            s.metrics,
            "{} on {source} (frac {frac}) seed {i}: parallel sweep diverged",
            m.name()
        );
        assert_eq!(
            p.engine,
            s.engine,
            "{} seed {i}: engine stats diverged",
            m.name()
        );
    }

    if frac == 0.0 {
        // The key oracle: zero capability jobs ≡ the plain two-class
        // mechanism path, bitwise.
        let mut plain_cfg = SimConfig::with_mechanism(m);
        plain_cfg.measure_decisions = false;
        for (i, (tr, c)) in traces.iter().zip(&sequential).enumerate() {
            assert_eq!(tr.count_class(JobClass::Capability), 0);
            let plain = Simulator::run_trace(&plain_cfg, tr);
            assert_eq!(
                c.metrics,
                plain.metrics,
                "{} on {source} seed {i}: capability-aware hooks diverged from the plain path",
                m.name()
            );
            assert_eq!(
                c.engine,
                plain.engine,
                "{} on {source} seed {i}: engine stats diverged from the plain path",
                m.name()
            );
            assert!(c.classes.is_none() && plain.classes.is_none());
        }
    }

    let classes0 = sequential[0].classes.unwrap_or_default();
    Row {
        source,
        capability_frac: frac,
        mechanism: m,
        seeds,
        metrics_fingerprint: metrics_fingerprint(&sequential),
        avg_turnaround_h: sequential[0].metrics.avg_turnaround_h,
        utilization: sequential[0].metrics.utilization,
        completed_jobs: sequential[0].metrics.completed_jobs,
        killed_jobs: sequential[0].metrics.killed_jobs,
        cap_jobs: classes0.capability.jobs,
        cap_completed: classes0.capability.completed,
        cap_avg_turnaround_h: classes0.capability.avg_turnaround_h,
        cap_preempted_jobs: classes0.capability.preempted_jobs,
        capacity_avg_turnaround_h: classes0.capacity.avg_turnaround_h,
    }
}

fn main() {
    let seeds = seeds_from_env();
    let synthetic = TraceSource::Synthetic(Scale::Quick.trace_config());
    let fixture = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default());
    let sources: [(&'static str, TraceSource); 2] =
        [("synthetic", synthetic), ("theta_quick.swf", fixture)];

    let mut rows: Vec<Row> = Vec::new();
    for (label, source) in &sources {
        eprintln!("capability: {label} ({}), {seeds} seeds", source.describe());
        for &frac in &FRACS {
            // The same deterministic injection for both sources: largest
            // rigid jobs first, no RNG consumed (frac 0 is a no-op).
            let traces: Vec<Trace> = (0..seeds)
                .map(|s| {
                    let mut tr = source.make_trace(s);
                    tr.tag_capability(frac);
                    tr
                })
                .collect();
            for m in Mechanism::ALL_SIX {
                let row = run_cell(m, label, &traces, frac, seeds);
                eprintln!(
                    "  frac {:>4} {:<8} fp {:016x}  done {:>5}  cap {:>3}/{:>3} preempted {:>2}{}",
                    frac,
                    m.name(),
                    row.metrics_fingerprint,
                    row.completed_jobs,
                    row.cap_completed,
                    row.cap_jobs,
                    row.cap_preempted_jobs,
                    if frac == 0.0 {
                        "  zero-capability == plain path OK"
                    } else {
                        ""
                    }
                );
                rows.push(row);
            }
        }
    }

    let mut t = Table::new(vec![
        "source",
        "frac",
        "mechanism",
        "TAT (h)",
        "util %",
        "done",
        "cap done/jobs",
        "cap TAT (h)",
        "capacity TAT (h)",
    ]);
    for r in &rows {
        t.row(vec![
            r.source.to_string(),
            format!("{}", r.capability_frac),
            r.mechanism.name().to_string(),
            format!("{:.1}", r.avg_turnaround_h),
            format!("{:.1}", r.utilization * 100.0),
            r.completed_jobs.to_string(),
            format!("{}/{}", r.cap_completed, r.cap_jobs),
            format!("{:.1}", r.cap_avg_turnaround_h),
            format!("{:.1}", r.capacity_avg_turnaround_h),
        ]);
    }
    println!(
        "CAPABILITY/CAPACITY CO-SCHEDULING ({seeds} seeds, frac-0 bitwise-verified vs plain path)"
    );
    println!("{}", t.render());

    let json_path = std::env::var("HWS_CAPABILITY_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    match std::fs::write(&json_path, rows_to_json(&rows)) {
        Ok(()) => println!("wrote {} rows to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Workspace root, next to the other `BENCH_*.json` baselines.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_capability.json")
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"source\": \"{}\", \"capability_frac\": {}, \"mechanism\": \"{}\", \
             \"seeds\": {}, \"metrics_fingerprint\": \"{:016x}\", \
             \"avg_turnaround_h\": {}, \"utilization\": {}, \
             \"completed_jobs\": {}, \"killed_jobs\": {}, \
             \"cap_jobs\": {}, \"cap_completed\": {}, \"cap_avg_turnaround_h\": {}, \
             \"cap_preempted_jobs\": {}, \"capacity_avg_turnaround_h\": {}}}{comma}",
            r.source,
            json_f64(r.capability_frac),
            r.mechanism.name(),
            r.seeds,
            r.metrics_fingerprint,
            json_f64(r.avg_turnaround_h),
            json_f64(r.utilization),
            r.completed_jobs,
            r.killed_jobs,
            r.cap_jobs,
            r.cap_completed,
            json_f64(r.cap_avg_turnaround_h),
            r.cap_preempted_jobs,
            json_f64(r.capacity_avg_turnaround_h),
        );
    }
    out.push_str("]\n");
    out
}
