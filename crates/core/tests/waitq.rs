//! Incremental waiting-queue contracts (DESIGN.md §15):
//!
//! 1. **Index matches the re-sort oracle** — the maintained
//!    `BTreeSet<(QueueKey, JobId)>` pass order equals a from-scratch
//!    recompute-every-key-and-sort after *every* event. `paranoid_checks`
//!    wires that oracle (`check_waitq_invariant`) into the per-event
//!    validation hook, so simply completing a paranoid run asserts the
//!    property at every step. Covered across all six mechanisms, every
//!    queue policy (including the time-varying WFP3, whose keys age with
//!    the queue epoch), and a capability-aware composition.
//! 2. **Coalescing is pure dedup** — folding the same tick's redundant
//!    pass requests into one pass changes nothing observable: a run with
//!    the hidden `pass_per_event` oracle (one pass per request, as the
//!    historical driver did) is bitwise identical in metrics, engine
//!    stats, class breakdowns, and shard reports.

use hws_core::{CapabilityAware, Mechanism, PolicyKind, SimConfig, Simulator};
use hws_workload::TraceConfig;
use proptest::prelude::*;

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::Fcfs,
    PolicyKind::Sjf,
    PolicyKind::Ljf,
    PolicyKind::Wfp3,
];

/// Every configuration the queue index must hold up under: the six paper
/// mechanisms at the default policy, then every policy (static and aging)
/// on the richest mechanism both plain and capability-aware.
fn configs() -> Vec<(String, SimConfig)> {
    let mut cfgs: Vec<(String, SimConfig)> = Vec::new();
    for m in Mechanism::ALL_SIX {
        let mut c = SimConfig::with_mechanism(m);
        c.measure_decisions = false;
        cfgs.push((m.name().into(), c));
    }
    for p in POLICIES {
        let mut c = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
        c.policy = p;
        c.measure_decisions = false;
        cfgs.push((format!("CUP&SPAA/{}", p.name()), c));

        let mut cap = SimConfig::with_hooks(CapabilityAware::for_mechanism(Mechanism::CUP_SPAA));
        cap.policy = p;
        cap.measure_decisions = false;
        cfgs.push((format!("capability/{}", p.name()), cap));
    }
    cfgs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: incremental index vs. full re-sort, as a per-event
    /// oracle rather than a sampled end-state check — `paranoid_checks`
    /// re-keys every waiting job from scratch after each event and
    /// asserts the maintained index matches, so any missed or stale
    /// transition (a flip of `od_front`, an aging epoch not refreshed, a
    /// start that left its entry behind) aborts the run at the exact
    /// event that corrupted the order.
    #[test]
    fn index_matches_resort_oracle_every_event(seed in 0..1_000u64, jobs in 40..120u32) {
        let trace = TraceConfig::tiny()
            .with_jobs(jobs)
            .with_capability_frac(0.2)
            .generate(seed);
        for (label, mut cfg) in configs() {
            cfg.paranoid_checks = true;
            let out = Simulator::run_trace(&cfg, &trace);
            prop_assert!(
                out.metrics.completed_jobs + out.metrics.killed_jobs > 0,
                "paranoid run did no work for {label}"
            );
        }
    }

    /// Satellite: same-tick pass coalescing is bitwise-invisible. The
    /// `pass_per_event` oracle re-enables the historical
    /// one-pass-per-request behaviour; every outcome field must match the
    /// coalesced run exactly, for every mechanism, policy, and the
    /// capability composition.
    #[test]
    fn coalescing_is_bitwise_equivalent(seed in 0..1_000u64, jobs in 40..120u32) {
        let trace = TraceConfig::tiny()
            .with_jobs(jobs)
            .with_capability_frac(0.2)
            .generate(seed);
        for (label, cfg) in configs() {
            let coalesced = Simulator::run_trace(&cfg, &trace);
            let mut eager = cfg.clone();
            eager.pass_per_event = true;
            let per_event = Simulator::run_trace(&eager, &trace);
            // Every *scheduling* observable is bitwise identical. The raw
            // engine event counters are exempt by construction: coalescing
            // exists precisely to deliver fewer (redundant) pass events —
            // but it must never change when the run ends, nor save fewer
            // events than it claims.
            assert_eq!(coalesced.metrics, per_event.metrics, "metrics diverge for {label}");
            assert_eq!(coalesced.classes, per_event.classes, "classes diverge for {label}");
            assert_eq!(coalesced.shards, per_event.shards, "shards diverge for {label}");
            assert_eq!(coalesced.admitted_jobs, per_event.admitted_jobs, "admissions diverge for {label}");
            assert_eq!(
                coalesced.engine.end_time, per_event.engine.end_time,
                "end instants diverge for {label}"
            );
            assert_eq!(
                coalesced.engine.cancelled, per_event.engine.cancelled,
                "cancellations diverge for {label}"
            );
            prop_assert!(
                coalesced.engine.delivered <= per_event.engine.delivered,
                "coalescing delivered MORE events for {label}"
            );
        }
    }
}
