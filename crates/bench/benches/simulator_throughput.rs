//! End-to-end simulator throughput: how fast a full trace replays under the
//! baseline and the heaviest hybrid mechanism, plus trace generation cost.
//! (Not a paper figure; it documents that the one-month Theta replay is a
//! tens-of-milliseconds affair, which is what makes the 300-simulation
//! Fig. 6 grid practical.)

use criterion::{criterion_group, criterion_main, Criterion};
use hws_core::{Mechanism, SimConfig, Simulator};
use hws_workload::TraceConfig;
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    let month = TraceConfig {
        horizon: hws_sim::SimDuration::from_days(30),
        target_jobs: 3_065,
        ..TraceConfig::theta_2019()
    };

    g.bench_function("generate_trace/1_month_theta", |b| {
        b.iter(|| black_box(month.generate(1)))
    });

    let trace = month.generate(1);
    g.bench_function("replay/baseline_1_month", |b| {
        let cfg = SimConfig::baseline();
        b.iter(|| black_box(Simulator::run_trace(&cfg, &trace)))
    });
    g.bench_function("replay/cup_spaa_1_month", |b| {
        let cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
        b.iter(|| black_box(Simulator::run_trace(&cfg, &trace)))
    });

    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
