//! Regenerate the bundled SWF replay fixture `data/theta_quick.swf`.
//!
//! The fixture is the **plain** SWF export (standard raw fields only — no
//! `HWS-Embedded` extension) of the quick-scale Theta-shaped synthetic
//! trace at seed 42, so it mimics what a real archive log carries: submit,
//! runtime, size, estimate, status, and project, but no job classes or
//! advance notices. `--bin swf_replay` re-imports it through the paper's
//! §IV-A protocol, and a unit test in `hws-bench` pins the committed file
//! to this generator (provenance: DESIGN.md §8).

use hws_bench::{bundled_swf_fixture, swf_fixture_trace_config, SWF_FIXTURE_SEED};
use hws_workload::{to_swf, SwfExportConfig};

fn main() {
    let trace = swf_fixture_trace_config().generate(SWF_FIXTURE_SEED);
    trace.validate().expect("generated trace is valid");
    let swf = to_swf(
        &trace,
        &SwfExportConfig {
            embed_classes: false,
            procs_per_node: 1,
        },
    );
    let path = bundled_swf_fixture();
    std::fs::create_dir_all(path.parent().expect("fixture has a parent dir"))
        .expect("create data dir");
    std::fs::write(&path, &swf).expect("write fixture");
    println!(
        "wrote {} ({} jobs, {} bytes, seed {SWF_FIXTURE_SEED})",
        path.display(),
        trace.len(),
        swf.len()
    );
}
