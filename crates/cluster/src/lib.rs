//! # hws-cluster — resource-management substrate
//!
//! Per-node state tracking for a machine of identical nodes (the paper's
//! model: "an HPC system has N identical nodes", allocation at node
//! granularity, jobs run exclusively on their nodes).
//!
//! The cluster knows nothing about scheduling policy; it provides the
//! *operations* the paper's resource manager must support — allocate,
//! release, **reserve** (for on-demand jobs given advance notice),
//! **backfill onto reserved nodes** ("the nodes reserved for on-demand jobs
//! can be used to backfill jobs"), **shrink/expand** (malleable jobs), and
//! **preemption** bookkeeping — while maintaining conservation invariants
//! that the test-suite (including property tests) checks after every
//! operation sequence.
//!
//! The [`lease::LeaseLedger`] records which running jobs lent nodes to an
//! on-demand job, so that on completion "the on-demand job will try to
//! return its nodes to the lenders" (§III-B3).

pub mod backend;
pub mod federation;
pub mod lease;
pub mod node;
pub mod snapshot;

pub use backend::ClusterBackend;
pub use federation::{
    ClassAffinity, Federation, FederationConfig, FirstFit, LeastLoaded, PlaceReq, PlacementPolicy,
    ShardSpec, ShardView,
};
pub use lease::{Lease, LeaseLedger};
pub use node::{NodeId, NodeState};
pub use snapshot::SnapshotBackend;

use hws_workload::JobId;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of releasing a job's nodes: how many went back to the general
/// free pool and how many returned to on-demand reservations the job was
/// squatting on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReleaseOutcome {
    pub to_free: u32,
    /// `(reservation holder, node count)` — nodes that were backfilled on a
    /// reservation return to that reservation, not to the free pool.
    pub to_reservations: Vec<(JobId, u32)>,
}

impl ReleaseOutcome {
    pub fn total(&self) -> u32 {
        self.to_free + self.to_reservations.iter().map(|(_, k)| *k).sum::<u32>()
    }
}

/// Incremental per-job node split: how many of the job's nodes are plain
/// `Busy` vs squatted (`ReservedBusy`). Maintained on every node transition
/// so the hot path never rescans allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Split {
    plain: u32,
    squatted: u32,
}

/// The machine: `n` identical nodes with per-node state.
///
/// Besides the authoritative per-node states, the cluster maintains three
/// pieces of *derived* accounting, updated incrementally on every node
/// transition so the scheduler's hot path is scan-free:
///
/// * `splits` — per running job, its `(plain, squatted)` node counts
///   (makes [`Cluster::split_of`] O(1) instead of O(job size));
/// * `squatter_index` — reservation holder → squatter → node count
///   (makes [`Cluster::squatters`] O(squatters) instead of O(total nodes),
///   and lets [`Cluster::release_reservation`] unsquat by walking only the
///   affected allocations);
/// * `reserved_idle_total` — running total of idle reserved nodes (makes
///   [`Cluster::total_reserved_idle`] O(1)).
///
/// [`Cluster::check_invariants`] cross-validates all three against a full
/// node scan; the simulator's `paranoid_checks` mode runs it per event.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<NodeState>,
    /// Stack of plain-free nodes (state `Free`).
    free_list: Vec<NodeId>,
    /// Running job → its nodes (both `Busy` and `ReservedBusy`).
    alloc: HashMap<JobId, Vec<NodeId>>,
    /// Reservation holder → idle reserved nodes (state `Reserved`).
    reserved_idle: HashMap<JobId, Vec<NodeId>>,
    /// Running job → incremental `(plain, squatted)` counters.
    splits: HashMap<JobId, Split>,
    /// Holder → squatter → nodes of the squatter on that holder's
    /// reservation. `BTreeMap` keeps [`Cluster::squatters`] output in
    /// deterministic job-id order without a per-call sort.
    squatter_index: HashMap<JobId, BTreeMap<JobId, u32>>,
    /// Running total of idle reserved nodes across all holders.
    reserved_idle_total: u32,
    /// Nodes marked for graceful drain while still occupied; they go
    /// [`NodeState::Down`] instead of back into service the moment they
    /// are next freed (see [`Cluster::free_node`]).
    draining: BTreeSet<u32>,
    /// Running count of [`NodeState::Down`] nodes.
    down_count: u32,
    /// Recycled node-list buffers: `release` parks each emptied allocation
    /// `Vec` here and the allocate paths draw from it, so steady-state
    /// replay does one node-list malloc per *concurrent* job instead of
    /// one per job. Pure capacity reuse — never observable state.
    spare: Vec<Vec<NodeId>>,
}

impl Cluster {
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "cluster must have at least one node");
        Cluster {
            nodes: vec![NodeState::Free; n as usize],
            free_list: (0..n).rev().map(NodeId).collect(),
            alloc: HashMap::new(),
            reserved_idle: HashMap::new(),
            splits: HashMap::new(),
            squatter_index: HashMap::new(),
            reserved_idle_total: 0,
            draining: BTreeSet::new(),
            down_count: 0,
            spare: Vec::new(),
        }
    }

    /// Take a cleared node buffer with room for `k` ids, recycling a
    /// retired allocation's capacity when one is parked.
    fn fresh_nodes(&mut self, k: usize) -> Vec<NodeId> {
        let mut v = self.spare.pop().unwrap_or_default();
        debug_assert!(v.is_empty());
        v.reserve(k);
        v
    }

    /// Park an emptied node buffer for reuse. Bounded so pathological
    /// bursts cannot pin unbounded capacity.
    fn retire_nodes(&mut self, mut v: Vec<NodeId>) {
        if self.spare.len() < 128 && v.capacity() > 0 {
            v.clear();
            self.spare.push(v);
        }
    }

    pub fn total_nodes(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Nodes currently out of service ([`NodeState::Down`]).
    pub fn down_count(&self) -> u32 {
        self.down_count
    }

    /// Nodes in service (total minus down). Draining-but-occupied nodes
    /// still count as live until they actually leave.
    pub fn live_nodes(&self) -> u32 {
        self.total_nodes() - self.down_count
    }

    /// Nodes marked for graceful drain but not yet down.
    pub fn draining_count(&self) -> u32 {
        self.draining.len() as u32
    }

    pub fn is_down(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()) == Some(&NodeState::Down)
    }

    /// Authoritative state of one node (`None` when out of range).
    pub fn node_state(&self, id: NodeId) -> Option<NodeState> {
        self.nodes.get(id.index()).copied()
    }

    /// Nodes in the plain free pool (not reserved, not busy).
    pub fn free_count(&self) -> u32 {
        self.free_list.len() as u32
    }

    /// Idle nodes reserved for `holder`. The running total short-circuits
    /// the probe: with nothing reserved machine-wide (the common state —
    /// reservations exist only around on-demand notices) no holder can
    /// have any.
    pub fn reserved_idle_count(&self, holder: JobId) -> u32 {
        if self.reserved_idle_total == 0 {
            return 0;
        }
        self.reserved_idle
            .get(&holder)
            .map_or(0, |v| v.len() as u32)
    }

    /// Idle reserved nodes across all holders. O(1).
    pub fn total_reserved_idle(&self) -> u32 {
        self.reserved_idle_total
    }

    /// Number of nodes currently allocated to `job` (0 if not running).
    pub fn size_of(&self, job: JobId) -> u32 {
        self.alloc.get(&job).map_or(0, |v| v.len() as u32)
    }

    pub fn is_running(&self, job: JobId) -> bool {
        self.alloc.contains_key(&job)
    }

    /// Number of running jobs. O(1).
    pub fn running_job_count(&self) -> u32 {
        self.alloc.len() as u32
    }

    pub fn running_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.alloc.keys().copied()
    }

    /// Visit every running job with a non-zero plain node count, yielding
    /// that count: one walk of the incremental split counters, no per-job
    /// lookups. Same unordered iteration contract as
    /// [`Cluster::running_jobs`].
    pub fn for_each_plain_split(&self, f: &mut dyn FnMut(JobId, u32)) {
        for (&j, s) in &self.splits {
            if s.plain > 0 {
                f(j, s.plain);
            }
        }
    }

    pub fn nodes_of(&self, job: JobId) -> &[NodeId] {
        self.alloc.get(&job).map_or(&[], |v| v.as_slice())
    }

    /// Split a running job's allocation into (plain busy, squatted) node
    /// counts. Squatted nodes return to their holder's reservation on
    /// release, so only the plain part becomes free — the scheduler's
    /// shadow projection needs the distinction. O(1): served from the
    /// incrementally maintained counters (reference scan:
    /// [`Cluster::split_of_scanned`]).
    pub fn split_of(&self, job: JobId) -> (u32, u32) {
        let s = self.splits.get(&job).copied().unwrap_or_default();
        (s.plain, s.squatted)
    }

    /// Reference implementation of [`Cluster::split_of`] by scanning the
    /// job's allocation. Used by [`Cluster::check_invariants`] and the
    /// property-test oracle; the scheduler hot path never calls it.
    pub fn split_of_scanned(&self, job: JobId) -> (u32, u32) {
        let mut plain = 0;
        let mut squatted = 0;
        for id in self.nodes_of(job) {
            match self.nodes[id.index()] {
                NodeState::Busy { .. } => plain += 1,
                NodeState::ReservedBusy { .. } => squatted += 1,
                _ => unreachable!("allocated node must be busy"),
            }
        }
        (plain, squatted)
    }

    /// Jobs backfilled onto `holder`'s reserved nodes, with the number of
    /// reserved nodes each occupies, in job-id order. O(squatters): served
    /// from the incrementally maintained index (reference scan:
    /// [`Cluster::squatters_scanned`]).
    pub fn squatters(&self, holder: JobId) -> Vec<(JobId, u32)> {
        self.squatter_index
            .get(&holder)
            .map(|m| m.iter().map(|(&j, &k)| (j, k)).collect())
            .unwrap_or_default()
    }

    /// Reference implementation of [`Cluster::squatters`] by scanning all
    /// nodes. Used by [`Cluster::check_invariants`] and the property-test
    /// oracle; the scheduler hot path never calls it.
    pub fn squatters_scanned(&self, holder: JobId) -> Vec<(JobId, u32)> {
        let mut counts: HashMap<JobId, u32> = HashMap::new();
        for st in &self.nodes {
            if let NodeState::ReservedBusy { holder: h, job } = st {
                if *h == holder {
                    *counts.entry(*job).or_default() += 1;
                }
            }
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by_key(|(j, _)| *j);
        v
    }

    /// Record that `job` squats on `count` of `holder`'s reserved nodes.
    fn note_squat(&mut self, holder: JobId, job: JobId, count: u32) {
        if count > 0 {
            *self
                .squatter_index
                .entry(holder)
                .or_default()
                .entry(job)
                .or_default() += count;
        }
    }

    /// Record that `job` vacated `count` of `holder`'s reserved nodes.
    fn note_unsquat(&mut self, holder: JobId, job: JobId, count: u32) {
        if count == 0 {
            return;
        }
        let holder_map = self
            .squatter_index
            .get_mut(&holder)
            .expect("unsquat of untracked holder");
        let left = holder_map.get_mut(&job).expect("unsquat of untracked job");
        debug_assert!(*left >= count, "unsquat exceeds tracked count");
        *left -= count;
        if *left == 0 {
            holder_map.remove(&job);
            if holder_map.is_empty() {
                self.squatter_index.remove(&holder);
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Allocate `k` nodes from the plain free pool. Panics if `job` is
    /// already running; returns `None` (allocating nothing) when the free
    /// pool is too small.
    pub fn allocate(&mut self, job: JobId, k: u32) -> Option<&[NodeId]> {
        assert!(!self.alloc.contains_key(&job), "{job} already allocated");
        assert!(k > 0, "zero-size allocation for {job}");
        if self.free_count() < k {
            return None;
        }
        let mut nodes = self.fresh_nodes(k as usize);
        for _ in 0..k {
            let id = self.free_list.pop().expect("free_count checked");
            self.nodes[id.index()] = NodeState::Busy { job };
            nodes.push(id);
        }
        self.splits.insert(
            job,
            Split {
                plain: k,
                squatted: 0,
            },
        );
        Some(self.alloc.entry(job).or_insert(nodes))
    }

    /// Allocate `k` nodes for reservation-holder `job`, consuming its own
    /// idle reserved nodes first and topping up from the free pool.
    /// Any reservation remainder stays reserved (the caller decides whether
    /// to release it). Returns `None` when even reserved+free is too small.
    pub fn allocate_with_reserved(&mut self, job: JobId, k: u32) -> Option<&[NodeId]> {
        assert!(!self.alloc.contains_key(&job), "{job} already allocated");
        assert!(k > 0, "zero-size allocation for {job}");
        let own_reserved = self.reserved_idle_count(job);
        if own_reserved + self.free_count() < k {
            return None;
        }
        let mut nodes = self.fresh_nodes(k as usize);
        if let Some(idle) = self.reserved_idle.get_mut(&job) {
            while nodes.len() < k as usize {
                match idle.pop() {
                    Some(id) => {
                        self.nodes[id.index()] = NodeState::Busy { job };
                        self.reserved_idle_total -= 1;
                        nodes.push(id);
                    }
                    None => break,
                }
            }
            if idle.is_empty() {
                self.reserved_idle.remove(&job);
            }
        }
        while nodes.len() < k as usize {
            let id = self.free_list.pop().expect("checked above");
            self.nodes[id.index()] = NodeState::Busy { job };
            nodes.push(id);
        }
        self.splits.insert(
            job,
            Split {
                plain: k,
                squatted: 0,
            },
        );
        Some(self.alloc.entry(job).or_insert(nodes))
    }

    /// Idle reserved nodes whose holder satisfies `squat_allowed`.
    /// O(active holders), with an O(1) exit when nothing is reserved.
    pub fn squattable_idle(&self, mut squat_allowed: impl FnMut(JobId) -> bool) -> u32 {
        if self.reserved_idle_total == 0 {
            return 0;
        }
        self.reserved_idle
            .iter()
            .filter(|(h, _)| squat_allowed(**h))
            .map(|(_, v)| v.len() as u32)
            .sum()
    }

    /// Allocate `k` nodes for a backfill job, using plain free nodes first
    /// and squatting on idle reserved nodes whose holder satisfies
    /// `squat_allowed` (the scheduler permits squatting only on on-demand
    /// advance-notice reservations, never on the private reservations of
    /// preempted lenders). Returns the holders squatted on (so the scheduler
    /// can evict the squatter when the holder arrives).
    pub fn allocate_backfill(
        &mut self,
        job: JobId,
        k: u32,
        mut squat_allowed: impl FnMut(JobId) -> bool,
    ) -> Option<Vec<(JobId, u32)>> {
        assert!(!self.alloc.contains_key(&job), "{job} already allocated");
        assert!(k > 0, "zero-size allocation for {job}");
        let avail = self.free_count() + self.squattable_idle(&mut squat_allowed);
        if avail < k {
            return None;
        }
        let mut nodes = self.fresh_nodes(k as usize);
        while nodes.len() < k as usize {
            match self.free_list.pop() {
                Some(id) => {
                    self.nodes[id.index()] = NodeState::Busy { job };
                    nodes.push(id);
                }
                None => break,
            }
        }
        let mut squatted: Vec<(JobId, u32)> = Vec::new();
        if nodes.len() < k as usize {
            // Deterministic holder order.
            let mut holders: Vec<JobId> = self
                .reserved_idle
                .keys()
                .copied()
                .filter(|h| squat_allowed(*h))
                .collect();
            holders.sort();
            'outer: for h in holders {
                let idle = self.reserved_idle.get_mut(&h).expect("key exists");
                let mut taken = 0;
                while nodes.len() < k as usize {
                    match idle.pop() {
                        Some(id) => {
                            self.nodes[id.index()] = NodeState::ReservedBusy { holder: h, job };
                            self.reserved_idle_total -= 1;
                            nodes.push(id);
                            taken += 1;
                        }
                        None => break,
                    }
                }
                if idle.is_empty() {
                    self.reserved_idle.remove(&h);
                }
                if taken > 0 {
                    self.note_squat(h, job, taken);
                    squatted.push((h, taken));
                }
                if nodes.len() == k as usize {
                    break 'outer;
                }
            }
        }
        debug_assert_eq!(nodes.len(), k as usize);
        let squatted_total: u32 = squatted.iter().map(|(_, k)| *k).sum();
        self.splits.insert(
            job,
            Split {
                plain: k - squatted_total,
                squatted: squatted_total,
            },
        );
        self.alloc.insert(job, nodes);
        Some(squatted)
    }

    /// Dispose of one node whose occupant just left: the single choke
    /// point through which nodes re-enter the free pool. A node marked
    /// draining goes [`NodeState::Down`] here instead; returns whether the
    /// node actually became free.
    fn free_node(&mut self, id: NodeId) -> bool {
        // `is_empty` guard: with no drains pending (the common case — a
        // whole replay without outages never marks one) the per-node tree
        // probe collapses to a length check.
        if !self.draining.is_empty() && self.draining.remove(&id.0) {
            self.nodes[id.index()] = NodeState::Down;
            self.down_count += 1;
            false
        } else {
            self.nodes[id.index()] = NodeState::Free;
            self.free_list.push(id);
            true
        }
    }

    /// Dispose of one vacated squatted node: back to `holder`'s
    /// reservation, or straight down if the node is draining.
    fn unsquat_node(&mut self, id: NodeId, holder: JobId) -> bool {
        if !self.draining.is_empty() && self.draining.remove(&id.0) {
            self.nodes[id.index()] = NodeState::Down;
            self.down_count += 1;
            false
        } else {
            self.nodes[id.index()] = NodeState::Reserved { holder };
            self.reserved_idle.entry(holder).or_default().push(id);
            self.reserved_idle_total += 1;
            true
        }
    }

    /// Release all of `job`'s nodes. Plain nodes go to the free pool;
    /// squatted nodes return to their holder's reservation. Nodes marked
    /// draining leave service instead and appear in neither bucket.
    pub fn release(&mut self, job: JobId) -> ReleaseOutcome {
        let mut nodes = self.alloc.remove(&job).unwrap_or_default();
        self.splits.remove(&job);
        let mut out = ReleaseOutcome::default();
        let mut unsquat: Vec<(JobId, u32)> = Vec::new();
        for id in nodes.drain(..) {
            match self.nodes[id.index()] {
                NodeState::Busy { job: j } => {
                    debug_assert_eq!(j, job);
                    if self.free_node(id) {
                        out.to_free += 1;
                    }
                }
                NodeState::ReservedBusy { holder, job: j } => {
                    debug_assert_eq!(j, job);
                    match unsquat.iter_mut().find(|(h, _)| *h == holder) {
                        Some((_, k)) => *k += 1,
                        None => unsquat.push((holder, 1)),
                    }
                    if self.unsquat_node(id, holder) {
                        match out.to_reservations.iter_mut().find(|(h, _)| *h == holder) {
                            Some((_, k)) => *k += 1,
                            None => out.to_reservations.push((holder, 1)),
                        }
                    }
                }
                ref st => unreachable!("released node in state {st:?}"),
            }
        }
        for &(holder, k) in &unsquat {
            self.note_unsquat(holder, job, k);
        }
        self.retire_nodes(nodes);
        out
    }

    /// Remove `k` nodes from a running job (malleable shrink). Surrenders
    /// plain nodes first: SPAA shrinks feed the arriving on-demand job via
    /// the free pool, while squatted nodes would leak to their reservation
    /// holders instead. Panics if the job would drop below one node.
    pub fn shrink(&mut self, job: JobId, k: u32) -> ReleaseOutcome {
        let mut removed = self.fresh_nodes(k as usize);
        let nodes = self.alloc.get_mut(&job).expect("shrink of non-running job");
        assert!(
            (nodes.len() as u32) > k,
            "shrink would leave {job} with no nodes"
        );
        // Partition so plain nodes are surrendered first — and among the
        // plain nodes, draining ones (which leave service on release)
        // before healthy ones, so shrinks accelerate graceful drains.
        // With no draining marks the keys collapse to the historical
        // plain-before-squatted order, so no-outage runs are unchanged.
        let states = &self.nodes;
        let draining = &self.draining;
        nodes.sort_by_key(|id| match states[id.index()] {
            NodeState::ReservedBusy { .. } => 2,
            _ if draining.contains(&id.0) => 0,
            _ => 1,
        });
        let mut out = ReleaseOutcome::default();
        let mut plain_removed = 0u32;
        let mut unsquat: Vec<(JobId, u32)> = Vec::new();
        // One O(n) drain, not k front-shifts; yields the same nodes in the
        // same order, so the free-list/reservation push order (and with it
        // bitwise determinism) is unchanged.
        removed.extend(nodes.drain(..k as usize));
        for id in removed.drain(..) {
            match self.nodes[id.index()] {
                NodeState::Busy { .. } => {
                    plain_removed += 1;
                    if self.free_node(id) {
                        out.to_free += 1;
                    }
                }
                NodeState::ReservedBusy { holder, .. } => {
                    match unsquat.iter_mut().find(|(h, _)| *h == holder) {
                        Some((_, c)) => *c += 1,
                        None => unsquat.push((holder, 1)),
                    }
                    if self.unsquat_node(id, holder) {
                        match out.to_reservations.iter_mut().find(|(h, _)| *h == holder) {
                            Some((_, c)) => *c += 1,
                            None => out.to_reservations.push((holder, 1)),
                        }
                    }
                }
                ref st => unreachable!("shrunk node in state {st:?}"),
            }
        }
        let split = self.splits.get_mut(&job).expect("running job has a split");
        split.plain -= plain_removed;
        for &(_, c) in &unsquat {
            split.squatted -= c;
        }
        for &(holder, c) in &unsquat {
            self.note_unsquat(holder, job, c);
        }
        self.retire_nodes(removed);
        out
    }

    /// Add up to `k` free nodes to a running job (malleable expand).
    /// Returns how many nodes were actually added.
    pub fn expand(&mut self, job: JobId, k: u32) -> u32 {
        assert!(self.alloc.contains_key(&job), "expand of non-running job");
        let take = k.min(self.free_count());
        for _ in 0..take {
            let id = self.free_list.pop().expect("bounded by free_count");
            self.nodes[id.index()] = NodeState::Busy { job };
            self.alloc.get_mut(&job).expect("checked").push(id);
        }
        self.splits
            .get_mut(&job)
            .expect("running job has a split")
            .plain += take;
        take
    }

    // ------------------------------------------------------------------
    // Reservations
    // ------------------------------------------------------------------

    /// Move up to `k` free nodes into `holder`'s reservation. Returns how
    /// many were reserved.
    pub fn reserve(&mut self, holder: JobId, k: u32) -> u32 {
        let take = k.min(self.free_count());
        if take == 0 {
            return 0;
        }
        let idle = self.reserved_idle.entry(holder).or_default();
        for _ in 0..take {
            let id = self.free_list.pop().expect("bounded by free_count");
            self.nodes[id.index()] = NodeState::Reserved { holder };
            idle.push(id);
        }
        self.reserved_idle_total += take;
        take
    }

    /// Move up to `k` idle reserved nodes from `from`'s reservation to
    /// `to`'s. Used when an arrived on-demand job outranks a reservation
    /// held for a merely-predicted one. Returns the number transferred.
    pub fn transfer_reserved(&mut self, from: JobId, to: JobId, k: u32) -> u32 {
        if from == to || k == 0 {
            return 0;
        }
        let Some(src) = self.reserved_idle.get_mut(&from) else {
            return 0;
        };
        let take = (k as usize).min(src.len());
        let moved: Vec<NodeId> = src.split_off(src.len() - take);
        if src.is_empty() {
            self.reserved_idle.remove(&from);
        }
        for id in &moved {
            self.nodes[id.index()] = NodeState::Reserved { holder: to };
        }
        self.reserved_idle.entry(to).or_default().extend(moved);
        take as u32
    }

    /// Drop `holder`'s reservation: idle reserved nodes go back to the free
    /// pool (draining ones leave service), squatters keep running on plain
    /// `Busy` nodes. Returns how many idle nodes left the reservation.
    pub fn release_reservation(&mut self, holder: JobId) -> u32 {
        let mut freed = 0;
        if let Some(idle) = self.reserved_idle.remove(&holder) {
            for id in idle {
                self.free_node(id);
                freed += 1;
            }
            self.reserved_idle_total -= freed;
        }
        // Squatters keep running, now on plain `Busy` nodes. The squatter
        // index names exactly the affected jobs, so only their allocations
        // are walked — not the whole machine.
        if let Some(squatters) = self.squatter_index.remove(&holder) {
            for (&sq, &count) in &squatters {
                let split = self.splits.get_mut(&sq).expect("squatter has a split");
                split.plain += count;
                split.squatted -= count;
                for id in self.alloc.get(&sq).expect("squatter is allocated") {
                    if let NodeState::ReservedBusy { holder: h, job } = self.nodes[id.index()] {
                        if h == holder {
                            self.nodes[id.index()] = NodeState::Busy { job };
                        }
                    }
                }
            }
        }
        freed
    }

    // ------------------------------------------------------------------
    // Availability (outage engine)
    // ------------------------------------------------------------------

    /// Take a node out of service. A `Free` node goes down immediately; an
    /// occupied or reserved node is marked draining and goes down the
    /// moment it is next freed (hard-down callers evict the occupant
    /// first, so their release converts the node on the spot). Returns
    /// `true` when the node is `Down` after the call. Idempotent.
    pub fn drain_node(&mut self, id: NodeId) -> bool {
        match self.nodes[id.index()] {
            NodeState::Down => true,
            NodeState::Free => {
                let pos = self
                    .free_list
                    .iter()
                    .position(|n| *n == id)
                    .expect("free node is on the free list");
                // In-place removal keeps the relative order of the other
                // free nodes, so the pop order downstream is unchanged.
                self.free_list.remove(pos);
                self.nodes[id.index()] = NodeState::Down;
                self.down_count += 1;
                self.draining.remove(&id.0);
                true
            }
            _ => {
                self.draining.insert(id.0);
                false
            }
        }
    }

    /// Hard outage on an idle reserved node: pull it out of `holder`'s
    /// reservation and take it down. Returns `false` when the node is not
    /// an idle reserved node of `holder`.
    pub fn down_reserved_node(&mut self, holder: JobId, id: NodeId) -> bool {
        let Some(idle) = self.reserved_idle.get_mut(&holder) else {
            return false;
        };
        let Some(pos) = idle.iter().position(|n| *n == id) else {
            return false;
        };
        idle.remove(pos);
        if idle.is_empty() {
            self.reserved_idle.remove(&holder);
        }
        self.reserved_idle_total -= 1;
        self.nodes[id.index()] = NodeState::Down;
        self.down_count += 1;
        self.draining.remove(&id.0);
        true
    }

    /// Return a down node to service (it re-enters the free pool), or
    /// cancel a pending draining mark on a still-occupied node. Returns
    /// `true` when anything changed. Idempotent.
    pub fn rejoin_node(&mut self, id: NodeId) -> bool {
        if self.nodes[id.index()] == NodeState::Down {
            self.nodes[id.index()] = NodeState::Free;
            self.free_list.push(id);
            self.down_count -= 1;
            true
        } else {
            self.draining.remove(&id.0)
        }
    }

    /// Remove one specific node from a running job's allocation (a
    /// malleable job shrinking away from a lost node). The node is
    /// disposed through the normal release path, so a draining mark takes
    /// effect. Panics if the job does not hold the node or would drop to
    /// zero nodes.
    pub fn release_single_node(&mut self, job: JobId, id: NodeId) {
        let nodes = self
            .alloc
            .get_mut(&job)
            .expect("single-node release from non-running job");
        assert!(nodes.len() > 1, "single-node release would empty {job}");
        let pos = nodes
            .iter()
            .position(|n| *n == id)
            .expect("job holds the released node");
        nodes.remove(pos);
        match self.nodes[id.index()] {
            NodeState::Busy { .. } => {
                self.splits
                    .get_mut(&job)
                    .expect("running job has a split")
                    .plain -= 1;
                self.free_node(id);
            }
            NodeState::ReservedBusy { holder, .. } => {
                self.splits
                    .get_mut(&job)
                    .expect("running job has a split")
                    .squatted -= 1;
                self.note_unsquat(holder, job, 1);
                self.unsquat_node(id, holder);
            }
            ref st => unreachable!("allocated node in state {st:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Full-scan consistency check; O(nodes + jobs). Used by tests and the
    /// simulator's debug assertions, and by `paranoid_checks` mode to
    /// cross-validate the incremental `(plain, squatted)` counters, the
    /// squatter index, and the reserved-idle total against the authoritative
    /// per-node states.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut busy = 0u32;
        let mut reserved = 0u32;
        let mut down = 0u32;
        for (i, st) in self.nodes.iter().enumerate() {
            match st {
                NodeState::Free => {}
                NodeState::Down => down += 1,
                NodeState::Busy { job } | NodeState::ReservedBusy { job, .. } => {
                    busy += 1;
                    let nodes = self
                        .alloc
                        .get(job)
                        .ok_or_else(|| format!("node {i} busy for unallocated {job}"))?;
                    if !nodes.contains(&NodeId(i as u32)) {
                        return Err(format!("node {i} not in {job}'s allocation list"));
                    }
                }
                NodeState::Reserved { holder } => {
                    reserved += 1;
                    let idle = self
                        .reserved_idle
                        .get(holder)
                        .ok_or_else(|| format!("node {i} reserved for untracked {holder}"))?;
                    if !idle.contains(&NodeId(i as u32)) {
                        return Err(format!("node {i} missing from {holder}'s idle list"));
                    }
                }
            }
        }
        let free = self.free_list.len() as u32;
        if free + busy + reserved + down != self.total_nodes() {
            return Err(format!(
                "conservation violated: {free} free + {busy} busy + {reserved} reserved \
                 + {down} down != {}",
                self.total_nodes()
            ));
        }
        if self.down_count != down {
            return Err(format!(
                "down_count counter {} != scanned {down}",
                self.down_count
            ));
        }
        for &id in &self.draining {
            match self.nodes.get(id as usize) {
                None => return Err(format!("draining id {id} out of range")),
                Some(NodeState::Free) => {
                    return Err(format!("draining node {id} is Free (should be Down)"))
                }
                Some(NodeState::Down) => return Err(format!("draining node {id} is already Down")),
                Some(_) => {}
            }
        }
        let alloc_total: usize = self.alloc.values().map(|v| v.len()).sum();
        if alloc_total as u32 != busy {
            return Err(format!(
                "alloc index ({alloc_total}) != busy nodes ({busy})"
            ));
        }
        for id in &self.free_list {
            if self.nodes[id.index()] != NodeState::Free {
                return Err(format!("free-list node {id} not Free"));
            }
        }
        for (h, idle) in &self.reserved_idle {
            for id in idle {
                if self.nodes[id.index()] != (NodeState::Reserved { holder: *h }) {
                    return Err(format!("idle-reserved node {id} not Reserved for {h}"));
                }
            }
        }
        // Incremental accounting vs. full scan.
        if self.reserved_idle_total != reserved {
            return Err(format!(
                "reserved_idle_total counter {} != scanned {reserved}",
                self.reserved_idle_total
            ));
        }
        if self.splits.len() != self.alloc.len() {
            return Err(format!(
                "splits tracks {} jobs, alloc {}",
                self.splits.len(),
                self.alloc.len()
            ));
        }
        for (&job, &split) in &self.splits {
            let (plain, squatted) = self.split_of_scanned(job);
            if (split.plain, split.squatted) != (plain, squatted) {
                return Err(format!(
                    "split counters for {job}: ({}, {}) != scanned ({plain}, {squatted})",
                    split.plain, split.squatted
                ));
            }
        }
        let mut scanned_squats: HashMap<JobId, BTreeMap<JobId, u32>> = HashMap::new();
        for st in &self.nodes {
            if let NodeState::ReservedBusy { holder, job } = st {
                *scanned_squats
                    .entry(*holder)
                    .or_default()
                    .entry(*job)
                    .or_default() += 1;
            }
        }
        if self.squatter_index != scanned_squats {
            return Err(format!(
                "squatter index {:?} != scanned {scanned_squats:?}",
                self.squatter_index
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n)
    }

    fn checked(c: &Cluster) {
        c.check_invariants().expect("invariants");
    }

    #[test]
    fn new_cluster_all_free() {
        let c = Cluster::new(16);
        assert_eq!(c.free_count(), 16);
        assert_eq!(c.total_nodes(), 16);
        checked(&c);
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut c = Cluster::new(10);
        assert_eq!(c.allocate(j(1), 4).map(|n| n.len()), Some(4));
        assert_eq!(c.free_count(), 6);
        assert_eq!(c.size_of(j(1)), 4);
        assert!(c.is_running(j(1)));
        checked(&c);
        let out = c.release(j(1));
        assert_eq!(out.to_free, 4);
        assert!(out.to_reservations.is_empty());
        assert_eq!(c.free_count(), 10);
        checked(&c);
    }

    #[test]
    fn allocate_refuses_oversubscription() {
        let mut c = Cluster::new(4);
        assert!(c.allocate(j(1), 5).is_none());
        assert_eq!(c.free_count(), 4);
        checked(&c);
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_allocate_panics() {
        let mut c = Cluster::new(8);
        c.allocate(j(1), 2);
        c.allocate(j(1), 2);
    }

    #[test]
    fn reserve_takes_from_free_pool() {
        let mut c = Cluster::new(10);
        assert_eq!(c.reserve(j(9), 6), 6);
        assert_eq!(c.free_count(), 4);
        assert_eq!(c.reserved_idle_count(j(9)), 6);
        assert_eq!(c.total_reserved_idle(), 6);
        checked(&c);
        // Partial when free pool is short.
        assert_eq!(c.reserve(j(8), 10), 4);
        assert_eq!(c.free_count(), 0);
        checked(&c);
    }

    #[test]
    fn allocate_with_reserved_prefers_own_reservation() {
        let mut c = Cluster::new(10);
        c.reserve(j(9), 4);
        assert_eq!(c.allocate_with_reserved(j(9), 6).map(|n| n.len()), Some(6));
        assert_eq!(c.reserved_idle_count(j(9)), 0);
        assert_eq!(c.free_count(), 4);
        checked(&c);
    }

    #[test]
    fn allocate_with_reserved_leaves_remainder_reserved() {
        let mut c = Cluster::new(10);
        c.reserve(j(9), 5);
        assert_eq!(c.allocate_with_reserved(j(9), 3).map(|n| n.len()), Some(3));
        assert_eq!(c.reserved_idle_count(j(9)), 2);
        checked(&c);
    }

    #[test]
    fn backfill_squats_on_reserved_nodes() {
        let mut c = Cluster::new(10);
        c.allocate(j(1), 5);
        c.reserve(j(9), 5);
        assert_eq!(c.free_count(), 0);
        // Without reserved access there is no room.
        assert!(c.allocate_backfill(j(2), 3, |_| false).is_none());
        let squat = c
            .allocate_backfill(j(2), 3, |_| true)
            .expect("fits on reserved");
        assert_eq!(squat, vec![(j(9), 3)]);
        assert_eq!(c.reserved_idle_count(j(9)), 2);
        assert_eq!(c.squatters(j(9)), vec![(j(2), 3)]);
        checked(&c);
        // Releasing the squatter returns nodes to the reservation.
        let out = c.release(j(2));
        assert_eq!(out.to_free, 0);
        assert_eq!(out.to_reservations, vec![(j(9), 3)]);
        assert_eq!(c.reserved_idle_count(j(9)), 5);
        checked(&c);
    }

    #[test]
    fn backfill_uses_free_nodes_first() {
        let mut c = Cluster::new(10);
        c.reserve(j(9), 4);
        let squat = c.allocate_backfill(j(2), 7, |_| true).expect("fits");
        // 6 free + 1 reserved.
        assert_eq!(squat, vec![(j(9), 1)]);
        assert_eq!(c.free_count(), 0);
        assert_eq!(c.reserved_idle_count(j(9)), 3);
        checked(&c);
    }

    #[test]
    fn release_reservation_unsquats() {
        let mut c = Cluster::new(8);
        c.reserve(j(9), 5);
        c.allocate_backfill(j(2), 4, |_| true).expect("fits"); // 3 free + 1 reserved
        let freed = c.release_reservation(j(9));
        assert_eq!(freed, 4);
        assert_eq!(c.free_count(), 4);
        assert_eq!(c.reserved_idle_count(j(9)), 0);
        // Squatter now on plain busy nodes.
        let out = c.release(j(2));
        assert_eq!(out.to_free, 4);
        checked(&c);
    }

    #[test]
    fn shrink_prefers_plain_nodes() {
        let mut c = Cluster::new(10);
        c.allocate(j(1), 4);
        c.reserve(j(9), 2);
        c.allocate_backfill(j(2), 6, |_| true).expect("fits"); // 4 free + 2 reserved
                                                               // Shrinking by 3 surrenders plain nodes only.
        let out = c.shrink(j(2), 3);
        assert_eq!(out.to_free, 3);
        assert!(out.to_reservations.is_empty());
        assert_eq!(c.size_of(j(2)), 3);
        checked(&c);
        // Shrinking past the plain supply surrenders squatted nodes too.
        let out = c.shrink(j(2), 2);
        assert_eq!(out.to_free, 1);
        assert_eq!(out.to_reservations, vec![(j(9), 1)]);
        checked(&c);
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn shrink_to_zero_panics() {
        let mut c = Cluster::new(4);
        c.allocate(j(1), 2);
        c.shrink(j(1), 2);
    }

    #[test]
    fn expand_takes_free_nodes() {
        let mut c = Cluster::new(10);
        c.allocate(j(1), 3);
        assert_eq!(c.expand(j(1), 4), 4);
        assert_eq!(c.size_of(j(1)), 7);
        assert_eq!(c.expand(j(1), 10), 3); // only 3 left
        assert_eq!(c.size_of(j(1)), 10);
        checked(&c);
    }

    #[test]
    fn multi_holder_backfill_is_deterministic() {
        let mut c = Cluster::new(12);
        c.reserve(j(20), 4);
        c.reserve(j(10), 4);
        // 4 free + need 8 → squats on holders in id order: j(10) then j(20).
        let squat = c.allocate_backfill(j(2), 10, |_| true).expect("fits");
        assert_eq!(squat, vec![(j(10), 4), (j(20), 2)]);
        checked(&c);
    }

    #[test]
    fn release_outcome_total() {
        let mut c = Cluster::new(8);
        c.reserve(j(9), 2);
        c.allocate_backfill(j(2), 5, |_| true).expect("fits");
        let out = c.release(j(2));
        assert_eq!(out.total(), 5);
    }

    #[test]
    fn release_of_unknown_job_is_empty() {
        let mut c = Cluster::new(4);
        let out = c.release(j(42));
        assert_eq!(out, ReleaseOutcome::default());
        checked(&c);
    }
}
