//! Live-service contracts:
//!
//! 1. **Log-replay parity** — replaying a [`SubmissionLog`] through
//!    [`SchedulerService`] (ops at their timestamps, events in between)
//!    produces bitwise-identical metrics to materializing the log and
//!    batch-replaying it, for every mechanism, with and without buffered
//!    cancels.
//! 2. **Snapshot round trip** — snapshot → restore → continue is
//!    bitwise-identical to never pausing, across mechanisms, a
//!    capability-aware custom composition, and a 2-shard federation; a
//!    restored snapshot re-serializes to the same bytes; truncated bytes
//!    error cleanly.
//! 3. **What-if isolation** — forecasting forks never perturb the live
//!    session (snapshot bytes unchanged).
//! 4. **Cancel semantics** — buffered / announced / waiting / too-late.

use hws_cluster::{Federation, FederationConfig, SnapshotBackend};
use hws_core::{
    replay_submission_log, CancelOutcome, CapabilityAware, JobStatus, Mechanism, SchedulerService,
    SimConfig, SimOutcome, Simulator,
};
use hws_sim::{SimDuration, SimTime};
use hws_workload::job::JobSpecBuilder;
use hws_workload::{LogEntry, SubmissionLog, SubmitOp, Trace, TraceConfig};
use proptest::prelude::*;

fn cfg_for(mechanism: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::with_mechanism(mechanism);
    cfg.measure_decisions = false;
    // Every contract here also runs the O(n)-scan cross-validating
    // cluster accounting: the logs are small enough that paranoia is
    // nearly free, and a restore that corrupted occupancy must trip an
    // assertion, not just drift a metric.
    cfg.paranoid_checks = true;
    cfg
}

/// Insert a buffered cancel (timestamped at the job's earliest event,
/// directly after its submit op) for every `stride`-th submit.
fn with_buffered_cancels(log: &SubmissionLog, stride: usize) -> SubmissionLog {
    let mut entries: Vec<LogEntry> = Vec::new();
    let mut nth = 0usize;
    for e in log.entries() {
        entries.push(e.clone());
        if let SubmitOp::Submit(spec) = &e.op {
            nth += 1;
            if nth.is_multiple_of(stride) {
                entries.push(LogEntry {
                    at: e.at,
                    op: SubmitOp::Cancel(spec.id),
                });
            }
        }
    }
    SubmissionLog::new(log.system_size(), log.horizon(), entries).expect("valid cancel placement")
}

fn assert_parity(cfg: &SimConfig, log: &SubmissionLog, label: &str) {
    let live = replay_submission_log(cfg, log).expect("service replay");
    let trace = log.materialize().expect("only buffered cancels");
    let batch = Simulator::run_trace(cfg, &trace);
    assert_eq!(live.metrics, batch.metrics, "metrics diverge for {label}");
    assert_eq!(live.classes, batch.classes, "classes diverge for {label}");
    assert_eq!(live.shards, batch.shards, "shards diverge for {label}");
    assert_eq!(
        live.admitted_jobs, batch.admitted_jobs,
        "admission counts diverge for {label}"
    );
}

/// Drive `log[..cut]`, snapshot, verify the image round-trips bitwise and
/// rejects truncation, restore, drive the rest, and fold the outcome.
fn run_interrupted<B: SnapshotBackend>(
    mut svc: SchedulerService<B>,
    cfg: &SimConfig,
    ctx: B::Ctx,
    log: &SubmissionLog,
    cut: usize,
) -> SimOutcome
where
    B::Ctx: Clone,
{
    for e in &log.entries()[..cut] {
        svc.apply(e).expect("log entry applies");
    }
    let bytes = svc.snapshot();
    // A restored session must re-serialize to the identical image.
    let reread = SchedulerService::<B>::restore(&bytes, cfg, ctx.clone()).expect("fresh snapshot");
    assert_eq!(reread.snapshot(), bytes, "snapshot not a fixed point");
    // Any strict prefix must error cleanly (never panic).
    for frac in [0, 1, 2, 3] {
        let cut_b = bytes.len() * frac / 4;
        assert!(
            SchedulerService::<B>::restore(&bytes[..cut_b], cfg, ctx.clone()).is_err(),
            "truncation at {cut_b} accepted"
        );
    }
    assert!(
        SchedulerService::<B>::restore(&bytes[..bytes.len() - 1], cfg, ctx.clone()).is_err(),
        "missing final byte accepted"
    );
    let mut svc = reread;
    for e in &log.entries()[cut..] {
        svc.apply(e).expect("log entry applies after restore");
    }
    svc.into_outcome()
}

fn assert_snapshot_transparent(cfg: &SimConfig, log: &SubmissionLog, cut: usize, label: &str) {
    let uninterrupted = replay_submission_log(cfg, log).expect("service replay");
    let resumed = match &cfg.federation {
        None => run_interrupted(
            SchedulerService::new(cfg.clone(), log.system_size()),
            cfg,
            (),
            log,
            cut,
        ),
        Some(fed) => run_interrupted(
            SchedulerService::<Federation>::federated(cfg.clone(), log.system_size()),
            cfg,
            fed.clone(),
            log,
            cut,
        ),
    };
    assert_eq!(
        uninterrupted.metrics, resumed.metrics,
        "snapshot changed the future for {label}"
    );
    assert_eq!(uninterrupted.classes, resumed.classes);
    assert_eq!(uninterrupted.shards, resumed.shards);
    assert_eq!(uninterrupted.admitted_jobs, resumed.admitted_jobs);
}

fn capability_cfg() -> SimConfig {
    let mut cfg = SimConfig::with_hooks(CapabilityAware::for_mechanism(Mechanism::CUP_SPAA));
    cfg.measure_decisions = false;
    cfg.paranoid_checks = true;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Service replay of a submission log equals batch replay of its
    /// materialization — bitwise — for baseline, all six mechanisms, and
    /// logs with buffered cancels.
    #[test]
    fn log_replay_matches_materialized(seed in 0..1_000u64, jobs in 25..90u32) {
        let trace = TraceConfig::tiny().with_jobs(jobs).with_capability_frac(0.1).generate(seed);
        let log = SubmissionLog::from_trace(&trace);
        let cancelled = with_buffered_cancels(&log, 5);
        {
            let mut cfg = SimConfig::baseline();
            cfg.measure_decisions = false;
            assert_parity(&cfg, &log, "baseline");
            assert_parity(&cfg, &cancelled, "baseline+cancels");
        }
        for m in Mechanism::ALL_SIX {
            let cfg = cfg_for(m);
            assert_parity(&cfg, &log, m.name());
            assert_parity(&cfg, &cancelled, m.name());
        }
    }

    /// Snapshot → restore → drain equals the uninterrupted run, bitwise,
    /// at a random cut point: across the six mechanisms, a
    /// capability-aware custom composition, and a 2-shard federation.
    #[test]
    fn snapshot_restore_is_transparent(seed in 0..1_000u64, jobs in 20..60u32, cut_frac in 0..=100u32) {
        let trace = TraceConfig::tiny().with_jobs(jobs).with_capability_frac(0.15).generate(seed);
        let log = with_buffered_cancels(&SubmissionLog::from_trace(&trace), 7);
        let cut = (log.len() * cut_frac as usize) / 100;
        for m in Mechanism::ALL_SIX {
            assert_snapshot_transparent(&cfg_for(m), &log, cut, m.name());
        }
        assert_snapshot_transparent(&capability_cfg(), &log, cut, "capability-aware");
        let fed = cfg_for(Mechanism::CUA_SPAA)
            .federated(FederationConfig::even_split(2, log.system_size()));
        assert_snapshot_transparent(&fed, &log, cut, "2-shard federation");
    }
}

/// What-if forks must not perturb the live session: the snapshot image is
/// byte-identical before and after a forecast, and the forecast covers
/// every mechanism for a runnable probe.
#[test]
fn what_if_leaves_no_trace() {
    let trace = TraceConfig::tiny().with_jobs(40).generate(11);
    let log = SubmissionLog::from_trace(&trace);
    let cfg = cfg_for(Mechanism::CUP_PAA);
    let mut svc = SchedulerService::new(cfg, log.system_size());
    let mid = log.len() / 2;
    for e in &log.entries()[..mid] {
        svc.apply(e).expect("entry applies");
    }
    let before = svc.snapshot();
    let probe = JobSpecBuilder::rigid(9_999_999)
        .submit_at(svc.now() + SimDuration::from_secs(60))
        .size(4)
        .work(SimDuration::from_secs(300))
        .estimate(SimDuration::from_secs(600))
        .build();
    let forecast = svc.what_if(&probe).expect("probe is submittable");
    assert_eq!(
        forecast.len(),
        6,
        "a small rigid probe starts under every mechanism"
    );
    for (&m, &start) in &forecast {
        assert!(
            start >= probe.submit,
            "{m:?} forecasts a start before submission"
        );
    }
    assert_eq!(svc.snapshot(), before, "what_if perturbed the live session");
    assert_eq!(svc.query(probe.id), JobStatus::Unknown);
}

/// Buffered cancel: bitwise-identical to never submitting the job.
#[test]
fn buffered_cancel_equals_never_submitted() {
    let cfg = cfg_for(Mechanism::N_PAA);
    let horizon = SimDuration::from_hours(4);
    let keep = JobSpecBuilder::rigid(1)
        .submit_at(SimTime::from_secs(100))
        .size(8)
        .work(SimDuration::from_secs(600))
        .estimate(SimDuration::from_secs(900))
        .build();
    let doomed = JobSpecBuilder::rigid(2)
        .submit_at(SimTime::from_secs(200))
        .size(8)
        .work(SimDuration::from_secs(600))
        .estimate(SimDuration::from_secs(900))
        .build();

    let mut svc = SchedulerService::new(cfg.clone(), 64);
    svc.submit(keep.clone()).unwrap();
    svc.submit(doomed.clone()).unwrap();
    assert_eq!(svc.query(doomed.id), JobStatus::Pending);
    assert_eq!(svc.cancel(doomed.id), CancelOutcome::Buffered);
    assert_eq!(svc.query(doomed.id), JobStatus::Cancelled);
    // The id is burned even though the job never ran.
    assert!(svc.submit(doomed.clone()).is_err());
    let with_cancel = svc.into_outcome();

    let clean = Simulator::run_trace(&cfg, &Trace::new(64, horizon, vec![keep]));
    assert_eq!(with_cancel.metrics, clean.metrics);
    assert_eq!(with_cancel.admitted_jobs, clean.admitted_jobs);
}

/// In-flight cancels under paranoid invariant checking: an announced
/// on-demand job releases its reservation and vanishes without a record;
/// a waiting job is recorded as killed; running jobs are too late.
#[test]
fn in_flight_cancels_keep_invariants() {
    let mut cfg = cfg_for(Mechanism::CUP_SPAA);
    cfg.paranoid_checks = true;
    let mut svc = SchedulerService::new(cfg, 64);

    // Fill the machine so everything below queues deterministically.
    let hog = JobSpecBuilder::rigid(1)
        .submit_at(SimTime::from_secs(10))
        .size(64)
        .work(SimDuration::from_secs(7_200))
        .estimate(SimDuration::from_secs(10_000))
        .build();
    svc.submit(hog.clone()).unwrap();

    // An on-demand job announced at t=600, predicted to arrive at 1_800.
    let od = JobSpecBuilder::on_demand(2)
        .submit_at(SimTime::from_secs(1_800))
        .size(16)
        .work(SimDuration::from_secs(300))
        .estimate(SimDuration::from_secs(600))
        .notice(SimTime::from_secs(600), SimTime::from_secs(1_800))
        .build();
    svc.submit(od.clone()).unwrap();

    // A rigid job that will sit in the queue behind the hog.
    let waiter = JobSpecBuilder::rigid(3)
        .submit_at(SimTime::from_secs(700))
        .size(32)
        .work(SimDuration::from_secs(600))
        .estimate(SimDuration::from_secs(900))
        .build();
    svc.submit(waiter.clone()).unwrap();

    svc.step_until(SimTime::from_secs(1_000));
    assert_eq!(svc.query(hog.id), JobStatus::Running);
    assert_eq!(svc.query(od.id), JobStatus::Announced);
    assert_eq!(svc.query(waiter.id), JobStatus::Waiting);

    assert_eq!(svc.cancel(od.id), CancelOutcome::Cancelled);
    assert_eq!(svc.query(od.id), JobStatus::Cancelled);
    assert_eq!(svc.cancel(waiter.id), CancelOutcome::Cancelled);
    assert_eq!(svc.query(waiter.id), JobStatus::Cancelled);
    assert_eq!(svc.cancel(hog.id), CancelOutcome::TooLate);
    assert_eq!(svc.cancel(hws_workload::JobId(404)), CancelOutcome::Unknown);
    // Cancelling twice reports Unknown, not a second cancellation.
    assert_eq!(svc.cancel(od.id), CancelOutcome::Unknown);

    // The cancelled od job's pending arrival events must die against the
    // liveness guard — draining the run (paranoid checks on) proves the
    // cleanup left a consistent cluster.
    let outcome = svc.into_outcome();
    // Only the hog completes; the waiting job's cancel was recorded as a
    // kill; the announced od job left no record at all.
    assert_eq!(outcome.metrics.completed_jobs, 1);
    assert_eq!(outcome.metrics.killed_jobs, 1);
    assert_eq!(outcome.admitted_jobs, 3);
}

/// The service clock mirrors `Engine::run_until`: inclusive horizon,
/// idempotent repeats, exclusive stepping for op ordering.
#[test]
fn step_horizons_are_inclusive_and_idempotent() {
    let cfg = cfg_for(Mechanism::N_PAA);
    let mut svc = SchedulerService::new(cfg, 64);
    let job = JobSpecBuilder::rigid(1)
        .submit_at(SimTime::from_secs(500))
        .size(4)
        .work(SimDuration::from_secs(60))
        .estimate(SimDuration::from_secs(120))
        .build();
    svc.submit(job.clone()).unwrap();

    // Exclusive: nothing at 500 delivers.
    svc.step_before(SimTime::from_secs(500));
    assert_eq!(svc.query(job.id), JobStatus::Pending);
    // Inclusive: the submission at exactly 500 delivers (and the pass
    // starts the job on the empty machine).
    svc.step_until(SimTime::from_secs(500));
    assert_eq!(svc.query(job.id), JobStatus::Running);
    assert_eq!(svc.now(), SimTime::from_secs(500));
    let before = svc.snapshot();
    svc.step_until(SimTime::from_secs(500));
    assert_eq!(svc.snapshot(), before, "repeated equal horizon acted");

    // Past-due submissions are rejected, not silently reordered.
    let late = JobSpecBuilder::rigid(2)
        .submit_at(SimTime::from_secs(499))
        .size(4)
        .work(SimDuration::from_secs(60))
        .estimate(SimDuration::from_secs(120))
        .build();
    assert!(svc.submit(late).is_err());
}
