use super::*;
use crate::config::{Mechanism, SimConfig};
use crate::jobstate::n_checkpoints;
use hws_sim::{SimDuration, SimTime};
use hws_workload::job::JobSpecBuilder;
use hws_workload::{JobSpec, Trace, TraceConfig};

fn d(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

fn trace(system: u32, jobs: Vec<JobSpec>) -> Trace {
    Trace::new(system, SimDuration::from_days(7), jobs)
}

fn run(cfg: SimConfig, tr: &Trace) -> SimOutcome {
    let mut cfg = cfg;
    cfg.paranoid_checks = true;
    Simulator::run_trace(&cfg, tr)
}

#[test]
fn single_rigid_job_completes() {
    let tr = trace(
        100,
        vec![JobSpecBuilder::rigid(0)
            .size(10)
            .work(d(3_600))
            .estimate(d(7_200))
            .setup(d(300))
            .build()],
    );
    let out = run(SimConfig::baseline(), &tr);
    assert_eq!(out.metrics.completed_jobs, 1);
    // turnaround = setup + work (no checkpoint: τ for 10 nodes is huge).
    assert!((out.metrics.avg_turnaround_h - (3_900.0 / 3_600.0)).abs() < 1e-6);
}

#[test]
fn checkpoint_walltime_accounting_modes() {
    // Paper mode (default): checkpoints live inside the recorded
    // runtime — wall time is setup + work regardless of τ.
    let mut cfg = SimConfig::baseline();
    cfg.ckpt.node_mtbf_hours = 0.25; // force frequent checkpoints
    let tr = trace(
        100,
        vec![JobSpecBuilder::rigid(0)
            .size(10)
            .work(d(10_000))
            .estimate(d(20_000))
            .build()],
    );
    let out = run(cfg.clone(), &tr);
    assert!((out.metrics.avg_turnaround_h - 10_000.0 / 3_600.0).abs() < 1e-6);

    // Physical mode (ablation): each checkpoint occupies δ = 600 s.
    cfg.ckpt.extends_walltime = true;
    let out = run(cfg.clone(), &tr);
    let tau = cfg.ckpt.interval(10).unwrap();
    let n = n_checkpoints(d(10_000), Some(tau));
    assert!(n >= 1, "expected at least one checkpoint, τ = {tau}");
    let expect_h = (10_000 + n * 600) as f64 / 3_600.0;
    assert!((out.metrics.avg_turnaround_h - expect_h).abs() < 1e-6);
}

#[test]
fn fcfs_queueing_orders_by_submit() {
    // Two 60-node jobs on a 100-node machine: the second waits.
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(60)
                .work(d(1_000))
                .estimate(d(1_000))
                .build(),
            JobSpecBuilder::rigid(1)
                .size(60)
                .work(d(1_000))
                .estimate(d(1_000))
                .submit_at(t(10))
                .build(),
        ],
    );
    let out = run(SimConfig::baseline(), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    // Second job waited ~990 s → mean TAT ≈ (1000 + 1990) / 2.
    assert!((out.metrics.avg_turnaround_h - (2_990.0 / 2.0 / 3_600.0)).abs() < 1e-6);
}

#[test]
fn easy_backfill_lets_small_job_jump() {
    // Head blocked behind a big job; a small short job backfills.
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(80)
                .work(d(10_000))
                .estimate(d(10_000))
                .build(),
            JobSpecBuilder::rigid(1)
                .size(50)
                .work(d(1_000))
                .estimate(d(1_000))
                .submit_at(t(1))
                .build(),
            JobSpecBuilder::rigid(2)
                .size(20)
                .work(d(500))
                .estimate(d(500))
                .submit_at(t(2))
                .build(),
        ],
    );
    let out = run(SimConfig::baseline(), &tr);
    let rec2 = out; // job 2 fits in the 20 free nodes and ends before the shadow
    assert_eq!(rec2.metrics.completed_jobs, 3);
    // Without backfill job 2 would wait 11000 s; with EASY it runs at t≈2.
    let mut no_bf = SimConfig::baseline();
    no_bf.easy_backfill = false;
    let out2 = run(no_bf, &tr);
    assert!(out2.metrics.avg_turnaround_h > rec2.metrics.avg_turnaround_h);
}

#[test]
fn baseline_od_job_waits_like_everyone() {
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(100)
                .work(d(5_000))
                .estimate(d(5_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(50)
                .work(d(100))
                .estimate(d(200))
                .submit_at(t(10))
                .build(),
        ],
    );
    let out = run(SimConfig::baseline(), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    assert_eq!(out.metrics.instant_start_rate, 0.0);
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
}

#[test]
fn paa_preempts_rigid_for_on_demand() {
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(100)
                .work(d(50_000))
                .estimate(d(60_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(50)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(1_000))
                .build(),
        ],
    );
    let out = run(SimConfig::with_mechanism(Mechanism::N_PAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
    assert!((out.metrics.rigid.preemption_ratio - 1.0).abs() < 1e-9);
    // The rigid job had no checkpoint yet → it lost its first 1000 s.
    assert!(out.metrics.utilization < out.metrics.raw_occupancy);
}

#[test]
fn spaa_shrinks_malleable_instead_of_preempting() {
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::malleable(0)
                .size(100)
                .min_size(20)
                .work(d(10_000))
                .estimate(d(10_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(50)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(1_000))
                .build(),
        ],
    );
    let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
    // Shrunk, not preempted.
    assert_eq!(out.metrics.malleable.preemption_ratio, 0.0);
}

#[test]
fn spaa_falls_back_to_paa_when_supply_short() {
    // Malleable can only give 8 nodes (10 → 2), on-demand needs 50.
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::malleable(0)
                .size(10)
                .min_size(2)
                .work(d(10_000))
                .estimate(d(10_000))
                .build(),
            JobSpecBuilder::rigid(1)
                .size(90)
                .work(d(50_000))
                .estimate(d(50_000))
                .submit_at(t(1))
                .build(),
            JobSpecBuilder::on_demand(2)
                .size(50)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(1_000))
                .build(),
        ],
    );
    let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 3);
    // PAA kicked in: something was preempted.
    assert!(
        out.metrics.rigid.preemption_ratio > 0.0 || out.metrics.malleable.preemption_ratio > 0.0
    );
}

#[test]
fn preempted_rigid_job_resumes_and_completes() {
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(100)
                .work(d(5_000))
                .estimate(d(6_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(100)
                .work(d(500))
                .estimate(d(1_000))
                .submit_at(t(1_000))
                .build(),
        ],
    );
    let out = run(SimConfig::with_mechanism(Mechanism::N_PAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    assert_eq!(out.metrics.killed_jobs, 0);
    // Rigid job restarted from scratch (no checkpoint yet): total span
    // covers both the wasted 1000 s and the full re-run.
    assert!(out.metrics.rigid.avg_turnaround_h > (5_000.0 + 1_500.0) / 3_600.0 - 1e-9);
}

#[test]
fn malleable_two_minute_warning_delays_od_start() {
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::malleable(0)
                .size(100)
                .min_size(90)
                .work(d(10_000))
                .estimate(d(10_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(50)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(1_000))
                .build(),
        ],
    );
    // min 90 → shrink supply = 10 < 50 → PAA preempts the malleable job.
    let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    // Start delayed by the 120 s warning — still "instant".
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
    assert_eq!(out.metrics.strict_instant_rate, 0.0);
    assert!((out.metrics.malleable.preemption_ratio - 1.0).abs() < 1e-9);
}

#[test]
fn od_returns_nodes_to_shrunk_lender() {
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::malleable(0)
                .size(100)
                .min_size(20)
                .work(d(20_000))
                .estimate(d(20_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(60)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(1_000))
                .build(),
        ],
    );
    let out = run(SimConfig::with_mechanism(Mechanism::N_SPAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    // Shrink + expand-back happened: 2 000 000 node-seconds of work at
    // ≤100 nodes; if the job expanded back the makespan stays near
    // 20 000 s + shrunk interval compensation.
    let m = &out.metrics;
    assert!(
        m.malleable.avg_turnaround_h < 8.0,
        "{}",
        m.malleable.avg_turnaround_h
    );
}

#[test]
fn cua_collects_nodes_before_arrival() {
    // Machine is full; a job finishes during the notice window; CUA
    // grabs its nodes so the OD job starts instantly at arrival.
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(50)
                .work(d(2_000))
                .estimate(d(2_000))
                .build(),
            JobSpecBuilder::rigid(1)
                .size(50)
                .work(d(50_000))
                .estimate(d(50_000))
                .build(),
            JobSpecBuilder::on_demand(2)
                .size(50)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(3_000))
                .notice(t(1_500), t(3_000))
                .build(),
        ],
    );
    let out = run(SimConfig::with_mechanism(Mechanism::CUA_PAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 3);
    assert!((out.metrics.strict_instant_rate - 1.0).abs() < 1e-9);
    // No preemption was needed: job 0's release covered the request.
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
}

#[test]
fn cup_preempts_after_checkpoint_before_predicted_arrival() {
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUP_PAA);
    cfg.ckpt.node_mtbf_hours = 0.5; // small τ → checkpoint soon
    cfg.paranoid_checks = true;
    let tr = trace(
        100,
        vec![
            JobSpecBuilder::rigid(0)
                .size(100)
                .work(d(50_000))
                .estimate(d(50_000))
                .build(),
            JobSpecBuilder::on_demand(1)
                .size(50)
                .work(d(1_000))
                .estimate(d(2_000))
                .submit_at(t(10_000))
                .notice(t(8_200), t(10_000))
                .build(),
        ],
    );
    let out = Simulator::run_trace(&cfg, &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
    // The rigid job was preempted (after a checkpoint) pre-arrival.
    assert!((out.metrics.rigid.preemption_ratio - 1.0).abs() < 1e-9);
    // Lost work is bounded by one checkpoint cycle, so utilization
    // should not collapse.
    assert!(out.metrics.utilization > 0.5);
}

#[test]
fn reservation_released_after_timeout() {
    // OD job announced but arrives very late (past the 10-minute
    // timeout); the reserved nodes must not idle until its arrival.
    let jobs = vec![
        JobSpecBuilder::on_demand(0)
            .size(100)
            .work(d(100))
            .estimate(d(200))
            .submit_at(t(10_000))
            .notice(t(100), t(1_000))
            .build(),
        JobSpecBuilder::rigid(1)
            .size(100)
            .work(d(1_000))
            .estimate(d(1_000))
            .submit_at(t(200))
            .build(),
    ];
    let tr = trace(100, jobs);

    // With backfill-on-reserved, the rigid job squats on the reserved
    // nodes immediately and finishes before the OD job shows up.
    let out = run(SimConfig::with_mechanism(Mechanism::CUA_PAA), &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    let tat = out.metrics.rigid.avg_turnaround_h * 3_600.0;
    assert!((tat - 1_000.0).abs() < 2.0, "squatting start: tat = {tat}");
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);

    // Without squatting the rigid job can only start when the timeout
    // (predicted 1000 + 600 s) releases the reservation.
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA);
    cfg.backfill_on_reserved = false;
    let out = run(cfg, &tr);
    assert_eq!(out.metrics.completed_jobs, 2);
    let tat = out.metrics.rigid.avg_turnaround_h * 3_600.0;
    assert!(
        (tat - (1_600.0 - 200.0 + 1_000.0)).abs() < 2.0,
        "timeout start: tat = {tat}"
    );
}

#[test]
fn backfill_on_reserved_nodes_evicted_at_arrival() {
    let mut cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA);
    cfg.paranoid_checks = true;
    let tr = trace(
        100,
        vec![
            // Fill the machine so the reservation comes from job 0's
            // release during the notice window.
            JobSpecBuilder::rigid(0)
                .size(100)
                .work(d(2_000))
                .estimate(d(2_000))
                .build(),
            // Backfill candidate arriving during the notice window.
            JobSpecBuilder::rigid(1)
                .size(40)
                .work(d(10_000))
                .estimate(d(10_000))
                .submit_at(t(2_100))
                .build(),
            JobSpecBuilder::on_demand(2)
                .size(100)
                .work(d(500))
                .estimate(d(1_000))
                .submit_at(t(4_000))
                .notice(t(2_050), t(4_000))
                .build(),
        ],
    );
    let out = Simulator::run_trace(&cfg, &tr);
    assert_eq!(out.metrics.completed_jobs, 3);
    // Job 1 squatted on reserved nodes and was evicted at arrival.
    assert!((out.metrics.rigid.preemption_ratio - 0.5).abs() < 1e-9);
    assert!((out.metrics.instant_start_rate - 1.0).abs() < 1e-9);
}

#[test]
fn determinism_same_seed_same_metrics() {
    let tr = TraceConfig::tiny().generate(3);
    let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA);
    let mut a = Simulator::run_trace(&cfg, &tr);
    let mut b = Simulator::run_trace(&cfg, &tr);
    // Decision latencies are wall-clock measurements and legitimately
    // vary between runs; every simulated quantity must be identical.
    for m in [&mut a.metrics, &mut b.metrics] {
        m.decision_mean_us = 0.0;
        m.decision_p99_us = 0.0;
        m.decision_max_us = 0.0;
    }
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.engine.delivered, b.engine.delivered);
}

#[test]
fn all_six_mechanisms_run_tiny_trace_clean() {
    let tr = TraceConfig::tiny().generate(7);
    for m in Mechanism::ALL_SIX {
        let mut cfg = SimConfig::with_mechanism(m);
        cfg.paranoid_checks = true;
        let out = Simulator::run_trace(&cfg, &tr);
        assert_eq!(
            out.metrics.completed_jobs + out.metrics.killed_jobs,
            tr.len(),
            "{m}: all jobs must finish"
        );
        assert!(out.metrics.utilization <= 1.0 + 1e-9, "{m}");
        assert_eq!(out.metrics.killed_jobs, 0, "{m}");
    }
}

#[test]
fn decision_latency_recorded_and_fast() {
    let tr = TraceConfig::tiny().generate(9);
    let cfg = SimConfig::with_mechanism(Mechanism::CUP_SPAA);
    let out = Simulator::run_trace(&cfg, &tr);
    if out.metrics.decision_max_us > 0.0 {
        // Observation 10: decisions well under 10 ms.
        assert!(out.metrics.decision_max_us < 10_000.0);
    }
}

#[test]
fn kill_fires_when_work_exceeds_estimate() {
    let mut spec = JobSpecBuilder::rigid(0).size(10).work(d(5_000)).build();
    spec.estimate = d(1_000); // bypass builder guard: user underestimated
    let tr = trace(100, vec![spec]);
    let out = run(SimConfig::baseline(), &tr);
    assert_eq!(out.metrics.killed_jobs, 1);
    assert_eq!(out.metrics.completed_jobs, 0);
}

use super::core::{Scratch, SCRATCH_RETAIN};

#[test]
fn scratch_stow_caps_retained_capacity() {
    // Ordinary buffers are recycled with their capacity intact…
    let mut slot: Vec<u64> = Vec::new();
    Scratch::stow(&mut slot, Vec::with_capacity(64));
    assert!(slot.capacity() >= 64, "small buffer capacity not recycled");
    // …but an oversized buffer is trimmed on the way back: a one-off
    // queue spike must not pin its high-water allocation forever.
    let mut huge: Vec<u64> = Vec::with_capacity(10 * SCRATCH_RETAIN);
    huge.extend(0..(10 * SCRATCH_RETAIN) as u64);
    Scratch::stow(&mut slot, huge);
    assert!(slot.is_empty(), "stowed buffer not cleared");
    assert!(
        slot.capacity() <= SCRATCH_RETAIN,
        "oversized scratch kept {} entries of capacity",
        slot.capacity()
    );
}

#[test]
fn scratch_capacity_released_after_queue_spike() {
    // A simultaneous-arrival spike 3× the retention cap: the first pass
    // copies thousands of queue keys into scratch, every later pass only
    // a shrinking tail. After the run the pass scratch must have dropped
    // back to the cap — the spike's allocation is not carried through the
    // rest of a long replay.
    const SPIKE: usize = 3 * SCRATCH_RETAIN;
    let jobs: Vec<JobSpec> = (0..SPIKE as u64)
        .map(|i| {
            JobSpecBuilder::rigid(i)
                .size(4)
                .work(d(600))
                .estimate(d(1_200))
                .build()
        })
        .collect();
    let tr = trace(64, jobs);
    let mut cfg = SimConfig::with_mechanism(Mechanism::N_PAA);
    cfg.measure_decisions = false;
    let mut engine = Engine::new(SimCore::new(cfg, tr.system_size));
    for spec in tr.jobs.iter().cloned() {
        engine
            .queue
            .schedule_arrival(spec.submit, Ev::Submit(spec.id));
        engine.sim.admit(spec);
    }
    while engine.step() {}
    let core = engine.into_sim();
    let metrics = Metrics::compute(&core.rec, core.cfg.instant_threshold);
    assert_eq!(
        metrics.completed_jobs, SPIKE,
        "spike trace did not complete"
    );
    assert!(
        core.scratch.keys.capacity() <= SCRATCH_RETAIN,
        "pass scratch still holds spike capacity ({} keys)",
        core.scratch.keys.capacity()
    );
    assert!(
        core.scratch.keys.capacity() > 0,
        "scratch was not recycled at all"
    );
}
