//! **End-to-end simulator throughput** — jobs/sec per mechanism over the
//! synthetic quick-scale trace and the bundled `theta_quick.swf` fixture,
//! sequential and parallel, with a metric-parity self-check.
//!
//! This is the companion baseline to `BENCH_decision_latency.json`: where
//! the decision bench times the mechanism kernels in isolation, this binary
//! times the whole event loop — queue ordering, shadow computation, node
//! routing, cluster accounting — so hot-path regressions that the kernels
//! can't see (e.g. an O(N) scan creeping back into `split_of`) show up as
//! a jobs/sec drop.
//!
//! **Parity self-check:** for every (mechanism × source) cell, seed 0 is
//! re-run with `SimConfig::paranoid_checks` enabled, which cross-validates
//! the cluster's incremental `(plain, squatted)` counters and squatter
//! index against a full node scan after *every* event, and the resulting
//! metrics are asserted bitwise identical to the fast run. Every per-seed
//! parallel outcome is likewise asserted bitwise identical to a sequential
//! replay. Any divergence aborts with a non-zero exit, which is what CI
//! keys on.
//!
//! Writes `BENCH_simulator_throughput.json` at the workspace root
//! (override with `HWS_THROUGHPUT_JSON=path`). The committed baseline is
//! recorded at `HWS_SCALE=quick` with the default 10 seeds.
//!
//! ```text
//! HWS_SCALE=quick cargo run --release -p hws-bench --bin throughput
//! ```

use hws_bench::{bundled_swf_fixture, metrics_fingerprint, seeds_from_env, Scale, TraceSource};
use hws_core::{Mechanism, SimConfig, SimOutcome, Simulator};
use hws_metrics::Table;
use hws_workload::{SwfImportConfig, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Row {
    mechanism: Mechanism,
    source: &'static str,
    jobs: usize,
    seeds: u64,
    seq_s: f64,
    par_s: f64,
    seq_jobs_per_sec: f64,
    par_jobs_per_sec: f64,
    events_per_sec: f64,
    /// FNV-1a over the `Debug` rendering of every per-seed metrics struct:
    /// an exact behavioral fingerprint (f64 `Debug` is round-trip), stable
    /// across runs and Rust versions, committed so optimizations that
    /// change *any* metric bit are caught by diffing the baseline.
    metrics_fingerprint: u64,
    avg_turnaround_h: f64,
    utilization: f64,
}

/// Run one (mechanism × source) cell: timed sequential replays, a timed
/// parallel sweep, bitwise sequential-vs-parallel verification, and the
/// paranoid metric-parity self-check on seed 0.
fn run_cell(m: Mechanism, source_label: &'static str, traces: &[Trace], seeds: u64) -> Row {
    let mut cfg = SimConfig::with_mechanism(m);
    // Wall-clock decision latencies are the one non-simulated metric; drop
    // them so parallel == sequential == paranoid holds bitwise.
    cfg.measure_decisions = false;

    let t0 = Instant::now();
    let sequential: Vec<SimOutcome> = traces
        .iter()
        .map(|tr| Simulator::run_trace(&cfg, tr))
        .collect();
    let seq_s = t0.elapsed().as_secs_f64();

    // Hand each sweep worker a pre-cloned trace so the parallel window
    // measures pure simulation too (a clone inside the factory would bill
    // the parallel path for copies the sequential path never makes).
    let handoff: Vec<std::sync::Mutex<Option<Trace>>> = traces
        .iter()
        .map(|tr| std::sync::Mutex::new(Some(tr.clone())))
        .collect();
    let t1 = Instant::now();
    let parallel = Simulator::run_sweep_with(&cfg, &(0..seeds).collect::<Vec<_>>(), |s| {
        handoff[s as usize]
            .lock()
            .expect("trace handoff")
            .take()
            .expect("each seed taken once")
    });
    let par_s = t1.elapsed().as_secs_f64();

    for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
        assert_eq!(
            p.metrics,
            s.metrics,
            "{} on {source_label} seed {i}: parallel sweep diverged from sequential replay",
            m.name()
        );
        assert_eq!(
            p.engine,
            s.engine,
            "{} seed {i}: engine stats diverged",
            m.name()
        );
    }

    // Metric-parity self-check: the paranoid run cross-validates the
    // incremental cluster accounting against a full node scan after every
    // event (panicking on any counter drift), and its metrics must match
    // the fast path bitwise.
    let paranoid = Simulator::run_trace(&cfg.clone().paranoid(), &traces[0]);
    assert_eq!(
        paranoid.metrics,
        sequential[0].metrics,
        "{} on {source_label}: paranoid reference run diverged from the optimized hot path",
        m.name()
    );

    let jobs: usize = traces.iter().map(|t| t.len()).sum();
    let events: u64 = sequential.iter().map(|o| o.engine.delivered).sum();
    Row {
        mechanism: m,
        source: source_label,
        jobs,
        seeds,
        seq_s,
        par_s,
        seq_jobs_per_sec: jobs as f64 / seq_s,
        par_jobs_per_sec: jobs as f64 / par_s,
        events_per_sec: events as f64 / seq_s,
        metrics_fingerprint: metrics_fingerprint(&sequential),
        avg_turnaround_h: sequential[0].metrics.avg_turnaround_h,
        utilization: sequential[0].metrics.utilization,
    }
}

fn main() {
    let seeds = seeds_from_env();
    let scale = Scale::from_env();
    let synthetic = TraceSource::Synthetic(scale.trace_config());
    let fixture = TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default());
    let sources: [(&'static str, TraceSource); 2] =
        [("synthetic", synthetic), ("theta_quick.swf", fixture)];

    let mut rows: Vec<Row> = Vec::new();
    for (label, source) in &sources {
        // Pre-build the per-seed traces so the measured window is pure
        // simulation, not trace generation / SWF import.
        let traces: Vec<Trace> = (0..seeds).map(|s| source.make_trace(s)).collect();
        eprintln!(
            "throughput: {label} ({}), {} jobs x {seeds} seeds",
            source.describe(),
            traces[0].len()
        );
        for m in Mechanism::ALL_SIX {
            let row = run_cell(m, label, &traces, seeds);
            eprintln!(
                "  {:<8} seq {:>9.1} jobs/s  par {:>9.1} jobs/s  ({:.0} events/s)  parity OK",
                m.name(),
                row.seq_jobs_per_sec,
                row.par_jobs_per_sec,
                row.events_per_sec
            );
            rows.push(row);
        }
    }

    let mut t = Table::new(vec![
        "source",
        "mechanism",
        "seq jobs/s",
        "par jobs/s",
        "events/s",
        "fingerprint",
    ]);
    for r in &rows {
        t.row(vec![
            r.source.to_string(),
            r.mechanism.name().to_string(),
            format!("{:.1}", r.seq_jobs_per_sec),
            format!("{:.1}", r.par_jobs_per_sec),
            format!("{:.0}", r.events_per_sec),
            format!("{:016x}", r.metrics_fingerprint),
        ]);
    }
    println!("SIMULATOR THROUGHPUT (scale {scale:?}, {seeds} seeds, parity-checked)");
    println!("{}", t.render());

    let json_path = std::env::var("HWS_THROUGHPUT_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    match std::fs::write(&json_path, rows_to_json(&rows)) {
        Ok(()) => println!("wrote {} rows to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Workspace root, next to `BENCH_decision_latency.json`.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_simulator_throughput.json")
}

/// Round-trip-exact f64 rendering that stays valid JSON: `{:?}` would emit
/// bare `NaN`/`inf` tokens for degenerate metrics (e.g. a trace with no
/// completed jobs), which JSON parsers reject.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"source\": \"{}\", \"mechanism\": \"{}\", \"jobs\": {}, \"seeds\": {}, \
             \"seq_wall_s\": {:.4}, \"par_wall_s\": {:.4}, \
             \"seq_jobs_per_sec\": {:.1}, \"par_jobs_per_sec\": {:.1}, \
             \"events_per_sec\": {:.0}, \"metrics_fingerprint\": \"{:016x}\", \
             \"avg_turnaround_h\": {}, \"utilization\": {}}}{comma}",
            r.source,
            r.mechanism.name(),
            r.jobs,
            r.seeds,
            r.seq_s,
            r.par_s,
            r.seq_jobs_per_sec,
            r.par_jobs_per_sec,
            r.events_per_sec,
            r.metrics_fingerprint,
            json_f64(r.avg_turnaround_h),
            json_f64(r.utilization),
        );
    }
    out.push_str("]\n");
    out
}
