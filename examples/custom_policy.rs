//! The mechanisms are designed to compose with any queue policy
//! ("our mechanisms manipulate the running jobs... while a scheduling
//! policy determines the order of waiting jobs"). This example runs the
//! same workload and mechanism under four queue policies and two PAA
//! victim-ordering ablations.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use hybrid_workload_sched::prelude::*;

fn main() {
    let trace = TraceConfig::small().generate(11);
    println!("workload: {} jobs on {} nodes\n", trace.len(), trace.system_size);

    println!("== queue policies under CUA&SPAA ==");
    let mut t = Table::new(vec!["policy", "TAT (h)", "util %", "instant %"]);
    for p in PolicyKind::ALL {
        let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA).policy(p);
        let m = Simulator::run_trace(&cfg, &trace).metrics;
        t.row(vec![
            p.name().to_string(),
            format!("{:.1}", m.avg_turnaround_h),
            format!("{:.1}", m.utilization * 100.0),
            format!("{:.1}", m.instant_start_rate * 100.0),
        ]);
    }
    println!("{}", t.render());

    println!("== PAA victim-ordering ablation under N&PAA ==");
    let mut t = Table::new(vec!["victim order", "TAT (h)", "util %", "wasted %"]);
    for (name, order) in [
        ("overhead (paper)", VictimOrder::Overhead),
        ("smallest first", VictimOrder::SizeAscending),
        ("newest first", VictimOrder::NewestFirst),
    ] {
        let mut cfg = SimConfig::with_mechanism(Mechanism::N_PAA);
        cfg.victim_order = order;
        let m = Simulator::run_trace(&cfg, &trace).metrics;
        t.row(vec![
            name.to_string(),
            format!("{:.1}", m.avg_turnaround_h),
            format!("{:.1}", m.utilization * 100.0),
            format!("{:.2}", (m.raw_occupancy - m.utilization) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("ordering victims by wasted node-seconds (the paper's choice) keeps the gap");
    println!("between raw occupancy and useful utilization small; run the ablation bench");
    println!("(hws-bench --bin ablations) for the multi-seed comparison.");
}
