//! **Archive generator** — materialize the synthetic `theta_full` /
//! `theta_quick` streaming corpora on demand (they are never committed;
//! each is a pure function of `(profile, seed)` and lands under
//! `target/archives`, or `HWS_ARCHIVE_DIR`).
//!
//! ```text
//! cargo run --release -p hws-bench --bin make_theta_full            # full, seeds 0..2
//! cargo run --release -p hws-bench --bin make_theta_full -- quick   # CI-sized profile
//! HWS_SEEDS=4 cargo run --release -p hws-bench --bin make_theta_full
//! ```
//!
//! Existing archives are reused (generation is deterministic, so they can
//! only be byte-identical); delete the archive directory to force a
//! rebuild.

use hws_bench::{ensure_archive, seeds_from_env_or, ArchiveProfile};
use std::time::Instant;

fn main() {
    let profile = match std::env::args().nth(1).as_deref() {
        None | Some("full") => ArchiveProfile::Full,
        Some("quick") => ArchiveProfile::Quick,
        Some(other) => {
            eprintln!("unknown profile {other:?}: expected \"quick\" or \"full\"");
            std::process::exit(2);
        }
    };
    let seeds = seeds_from_env_or(2);
    let cfg = profile.trace_config();
    eprintln!(
        "theta_{}: {} jobs over {} days on {} nodes, seeds 0..{seeds}",
        profile.name(),
        cfg.target_jobs,
        cfg.horizon.as_secs() / 86_400,
        cfg.system_size
    );
    for seed in 0..seeds {
        let t0 = Instant::now();
        let path = ensure_archive(profile, seed);
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "seed {seed}: {} ({:.1} MiB, {:.1}s)",
            path.display(),
            bytes as f64 / (1024.0 * 1024.0),
            t0.elapsed().as_secs_f64()
        );
    }
}
