//! The mechanisms are designed to compose with any queue policy
//! ("our mechanisms manipulate the running jobs... while a scheduling
//! policy determines the order of waiting jobs"). This example runs the
//! same workload and mechanism under four queue policies and two PAA
//! victim-ordering ablations — then registers a **seventh mechanism**
//! through the [`MechanismHooks`] trait, and finally a **capability-aware
//! hook** (victim shielding + admission throttle for capability-class
//! campaigns), all without touching any driver internals.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use hybrid_workload_sched::prelude::*;

/// A custom arrival strategy: preempt the victims with the **least elapsed
/// runtime** first (they lose the least absolute progress), never shrink.
/// Composing it with the stock CUP notice policy yields a seventh
/// mechanism, "CUP&LRF", registered via [`SimConfig::with_hooks`].
#[derive(Debug)]
struct LeastRuntimeFirst;

impl ArrivalPolicy for LeastRuntimeFirst {
    fn on_arrival(&self, view: &ArrivalView<'_>) -> ArrivalPlan {
        let mut victims = view.victims.to_vec();
        // Newest start = least elapsed runtime; ties broken by id.
        victims.sort_by_key(|v| (std::cmp::Reverse(v.started), v.id));
        let mut got = 0u32;
        let mut preempt = Vec::new();
        for v in victims {
            if got >= view.need_extra {
                break;
            }
            got = got.saturating_add(v.nodes);
            preempt.push(v);
        }
        if got >= view.need_extra {
            ArrivalPlan {
                shrinks: Vec::new(),
                preempt,
            }
        } else {
            // Not satisfiable: wait at the front of the queue (§III-B2).
            ArrivalPlan::wait()
        }
    }
}

fn main() {
    let trace = TraceConfig::small().generate(11);
    println!(
        "workload: {} jobs on {} nodes\n",
        trace.len(),
        trace.system_size
    );

    println!("== queue policies under CUA&SPAA ==");
    let mut t = Table::new(vec!["policy", "TAT (h)", "util %", "instant %"]);
    for p in PolicyKind::ALL {
        let cfg = SimConfig::with_mechanism(Mechanism::CUA_SPAA).policy(p);
        let m = Simulator::run_trace(&cfg, &trace).metrics;
        t.row(vec![
            p.name().to_string(),
            format!("{:.1}", m.avg_turnaround_h),
            format!("{:.1}", m.utilization * 100.0),
            format!("{:.1}", m.instant_start_rate * 100.0),
        ]);
    }
    println!("{}", t.render());

    println!("== PAA victim-ordering ablation under N&PAA ==");
    let mut t = Table::new(vec!["victim order", "TAT (h)", "util %", "wasted %"]);
    for (name, order) in [
        ("overhead (paper)", VictimOrder::Overhead),
        ("smallest first", VictimOrder::SizeAscending),
        ("newest first", VictimOrder::NewestFirst),
    ] {
        let mut cfg = SimConfig::with_mechanism(Mechanism::N_PAA);
        cfg.victim_order = order;
        let m = Simulator::run_trace(&cfg, &trace).metrics;
        t.row(vec![
            name.to_string(),
            format!("{:.1}", m.avg_turnaround_h),
            format!("{:.1}", m.utilization * 100.0),
            format!("{:.2}", (m.raw_occupancy - m.utilization) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("ordering victims by wasted node-seconds (the paper's choice) keeps the gap");
    println!("between raw occupancy and useful utilization small; run the ablation bench");
    println!("(hws-bench --bin ablations) for the multi-seed comparison.");

    println!("\n== a seventh mechanism via MechanismHooks ==");
    let mut t = Table::new(vec![
        "mechanism",
        "TAT (h)",
        "util %",
        "instant %",
        "preempt r/m %",
    ]);
    let seventh = SimConfig::with_hooks(Composed::new(
        "CUP&LRF",
        CollectUntilPredicted,
        LeastRuntimeFirst,
    ));
    for cfg in [SimConfig::with_mechanism(Mechanism::CUP_PAA), seventh] {
        let name = cfg
            .hooks
            .as_ref()
            .map(|h| h.name().to_string())
            .unwrap_or_else(|| cfg.mechanism.name().to_string());
        let m = Simulator::run_trace(&cfg, &trace).metrics;
        t.row(vec![
            name,
            format!("{:.1}", m.avg_turnaround_h),
            format!("{:.1}", m.utilization * 100.0),
            format!("{:.1}", m.instant_start_rate * 100.0),
            format!(
                "{:.1}/{:.1}",
                m.rigid.preemption_ratio * 100.0,
                m.malleable.preemption_ratio * 100.0
            ),
        ]);
    }
    println!("{}", t.render());
    println!("CUP&LRF was registered entirely through SimConfig::with_hooks — no driver");
    println!("internals were modified to add it.");

    println!("\n== capability-aware co-scheduling via CapabilityAware ==");
    // Tag the largest 20 % of rigid jobs as capability campaigns and
    // compare the plain mechanism against the capability-aware wrapper:
    // shielded campaigns absorb no arrival/CUP preemptions, and a
    // throttle bounds how many run at once.
    let mut cap_trace = trace.clone();
    let tagged = cap_trace.tag_capability(0.2);
    let mut t = Table::new(vec![
        "hooks",
        "TAT (h)",
        "cap TAT (h)",
        "cap preempted",
        "capacity preempted",
    ]);
    for (label, cfg) in [
        (
            "cap[CUA&SPAA] (shielded)",
            SimConfig::with_hooks(CapabilityAware::for_mechanism(Mechanism::CUA_SPAA)),
        ),
        (
            "cap[CUA&SPAA] + throttle 2",
            SimConfig::with_hooks(
                CapabilityAware::for_mechanism(Mechanism::CUA_SPAA).with_max_running(2),
            ),
        ),
        (
            "cap[CUA&SPAA] shield off",
            SimConfig::with_hooks(
                CapabilityAware::for_mechanism(Mechanism::CUA_SPAA).allow_capability_victims(),
            ),
        ),
    ] {
        let label = label.to_string();
        let out = Simulator::run_trace(&cfg, &cap_trace);
        let classes = out.classes.expect("capability jobs were tagged");
        t.row(vec![
            label,
            format!("{:.1}", out.metrics.avg_turnaround_h),
            format!("{:.1}", classes.capability.avg_turnaround_h),
            format!("{}", classes.capability.preempted_jobs),
            format!("{}", classes.capacity.preempted_jobs),
        ]);
    }
    println!("{}", t.render());
    println!("{tagged} rigid jobs were tagged capability-class; the default cap[CUA&SPAA] hook");
    println!("shields them from victim selection, and with_max_running(2) additionally");
    println!("throttles concurrent campaigns — again purely through SimConfig::with_hooks.");
}
