//! Schedule timelines: an optional per-run event log plus an ASCII Gantt
//! renderer, for small scenarios where *seeing* the schedule matters
//! (e.g. the Fig. 2 CUA-vs-CUP comparison in `examples/cua_vs_cup.rs`).

use hws_sim::SimTime;
use hws_workload::JobId;

/// One scheduling event of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEvent {
    Submitted,
    NoticeReceived,
    /// Run started on `size` nodes.
    Started {
        size: u32,
    },
    Preempted,
    /// Two-minute warning began.
    DrainStarted,
    Shrunk {
        from: u32,
        to: u32,
    },
    Expanded {
        from: u32,
        to: u32,
    },
    Finished,
    Failed,
    Killed,
}

impl TimelineEvent {
    /// One-character glyph for the Gantt lane.
    fn glyph(self) -> char {
        match self {
            TimelineEvent::Submitted => '.',
            TimelineEvent::NoticeReceived => 'n',
            TimelineEvent::Started { .. } => '[',
            TimelineEvent::Preempted => 'x',
            TimelineEvent::DrainStarted => 'd',
            TimelineEvent::Shrunk { .. } => 'v',
            TimelineEvent::Expanded { .. } => '^',
            TimelineEvent::Finished => ']',
            TimelineEvent::Failed => '!',
            TimelineEvent::Killed => 'K',
        }
    }
}

/// Chronological event log of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    pub entries: Vec<(SimTime, JobId, TimelineEvent)>,
}

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, t: SimTime, job: JobId, ev: TimelineEvent) {
        self.entries.push((t, job, ev));
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Events of one job, in order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &(SimTime, JobId, TimelineEvent)> {
        self.entries.iter().filter(move |(_, j, _)| *j == job)
    }

    /// Span covered by the log.
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        let first = self.entries.first()?.0;
        let last = self.entries.iter().map(|(t, _, _)| *t).max()?;
        Some((first, last))
    }

    /// Render an ASCII Gantt chart: one lane per job, `width` columns over
    /// the full span. Running intervals are drawn with `=`, drains with
    /// `~`; event glyphs mark transitions (`[` start, `]` finish, `x`
    /// preempt, `v`/`^` shrink/expand, `!` failure, `K` kill).
    pub fn render_gantt(&self, width: usize) -> String {
        let Some((t0, t1)) = self.span() else {
            return String::from("(empty timeline)\n");
        };
        let width = width.max(10);
        let span = (t1.as_secs() - t0.as_secs()).max(1);
        let col = |t: SimTime| -> usize {
            ((t.as_secs() - t0.as_secs()) as u128 * (width as u128 - 1) / span as u128) as usize
        };
        let mut jobs: Vec<JobId> = self.entries.iter().map(|(_, j, _)| *j).collect();
        jobs.sort();
        jobs.dedup();

        let mut out = String::new();
        out.push_str(&format!(
            "time: {t0} .. {t1} ({span} s across {width} cols)\n"
        ));
        for job in jobs {
            let mut lane = vec![' '; width];
            // Fill running segments first, then overlay glyphs.
            let mut run_start: Option<(usize, char)> = None;
            for (t, _, ev) in self.for_job(job) {
                let c = col(*t);
                match ev {
                    TimelineEvent::Started { .. } => run_start = Some((c, '=')),
                    TimelineEvent::DrainStarted => {
                        if let Some((s, _)) = run_start.take() {
                            for x in lane.iter_mut().take(c + 1).skip(s) {
                                *x = '=';
                            }
                        }
                        run_start = Some((c, '~'));
                    }
                    TimelineEvent::Finished
                    | TimelineEvent::Preempted
                    | TimelineEvent::Failed
                    | TimelineEvent::Killed => {
                        if let Some((s, fill)) = run_start.take() {
                            for x in lane.iter_mut().take(c + 1).skip(s) {
                                *x = fill;
                            }
                        }
                    }
                    _ => {}
                }
            }
            if let Some((s, fill)) = run_start {
                for x in lane.iter_mut().skip(s) {
                    *x = fill;
                }
            }
            for (t, _, ev) in self.for_job(job) {
                lane[col(*t)] = ev.glyph();
            }
            out.push_str(&format!("{job:>6} |{}|\n", lane.iter().collect::<String>()));
        }
        out.push_str("legend: . submit  n notice  [ start  = running  v shrink  ^ expand\n");
        out.push_str("        x preempt  d/~ drain  ! failure  ] finish  K killed\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample() -> Timeline {
        let mut tl = Timeline::new();
        tl.record(t(0), JobId(1), TimelineEvent::Submitted);
        tl.record(t(10), JobId(1), TimelineEvent::Started { size: 8 });
        tl.record(t(50), JobId(1), TimelineEvent::Preempted);
        tl.record(t(80), JobId(1), TimelineEvent::Started { size: 8 });
        tl.record(t(100), JobId(1), TimelineEvent::Finished);
        tl.record(t(20), JobId(2), TimelineEvent::Submitted);
        tl.record(t(20), JobId(2), TimelineEvent::Started { size: 4 });
        tl.record(t(60), JobId(2), TimelineEvent::Finished);
        tl
    }

    #[test]
    fn records_and_filters() {
        let tl = sample();
        assert_eq!(tl.len(), 8);
        assert_eq!(tl.for_job(JobId(1)).count(), 5);
        assert_eq!(tl.span(), Some((t(0), t(100))));
    }

    #[test]
    fn gantt_contains_a_lane_per_job() {
        let g = sample().render_gantt(60);
        assert!(g.contains("J1 |"));
        assert!(g.contains("J2 |"));
        assert!(g.contains("legend"));
    }

    #[test]
    fn gantt_marks_start_and_finish() {
        let g = sample().render_gantt(60);
        let lane1 = g
            .lines()
            .find(|l| l.trim_start().starts_with("J1"))
            .unwrap();
        assert!(lane1.contains('['));
        assert!(lane1.contains(']'));
        assert!(lane1.contains('x'));
        assert!(lane1.contains('='));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(Timeline::new().render_gantt(40), "(empty timeline)\n");
    }

    #[test]
    fn glyphs_are_distinct() {
        use TimelineEvent::*;
        let evs = [
            Submitted,
            NoticeReceived,
            Started { size: 1 },
            Preempted,
            DrainStarted,
            Shrunk { from: 2, to: 1 },
            Expanded { from: 1, to: 2 },
            Finished,
            Failed,
            Killed,
        ];
        let mut glyphs: Vec<char> = evs.iter().map(|e| e.glyph()).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), evs.len());
    }

    #[test]
    fn single_instant_span_renders() {
        let mut tl = Timeline::new();
        tl.record(t(5), JobId(0), TimelineEvent::Submitted);
        let g = tl.render_gantt(40);
        assert!(g.contains("J0"));
    }
}
