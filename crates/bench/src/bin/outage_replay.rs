//! **Outage replay** — the bundled `theta_quick.swf` fixture replayed
//! under a deterministic maintenance-window [`OutageSchedule`] for all six
//! mechanisms (ROADMAP: capacity-fault robustness).
//!
//! The schedule is derived from the trace's own shape: a **hard** window
//! takes the first eighth of the machine down at the quarter mark of the
//! submission horizon (evicting residents into checkpoint-restart), and a
//! **graceful** window drains the next eighth at the half mark; both
//! windows rejoin in full. Every job therefore stays feasible, and the
//! binary asserts none is lost: completed + estimate-kills must equal the
//! trace, and the infeasibility sweep must kill nothing.
//!
//! Writes `BENCH_outages.json` at the workspace root (override with
//! `HWS_OUTAGE_REPLAY_JSON=path`). Every recorded column is a
//! deterministic simulation output — lost node-hours, interruption and
//! recovery counts, recovery latency — so `baseline_parity` gates the
//! file byte-for-byte. `HWS_OUTAGE_PARANOID=1` additionally runs the
//! O(n)-scan cluster cross-validation plus the outage-specific
//! live-capacity invariants on every event (the CI smoke does).
//!
//! ```text
//! cargo run --release -p hws-bench --bin outage_replay               # bundled fixture
//! HWS_SWF=theta.swf HWS_SWF_PPN=64 cargo run --release -p hws-bench --bin outage_replay
//! ```

use hws_bench::{bundled_swf_fixture, metrics_fingerprint, seeds_from_env, TraceSource};
use hws_core::{Mechanism, SimConfig, SimOutcome, Simulator};
use hws_metrics::{OutageReport, Table};
use hws_sim::SimTime;
use hws_workload::{MaintenanceWindow, OutageSchedule, SwfImportConfig, Trace};
use std::fmt::Write as _;
use std::path::PathBuf;

fn main() {
    let seeds = seeds_from_env();
    let paranoid = std::env::var("HWS_OUTAGE_PARANOID").is_ok_and(|v| v == "1");
    let source = TraceSource::swf_from_env()
        .unwrap_or_else(|| TraceSource::swf(bundled_swf_fixture(), SwfImportConfig::default()));
    let probe = source.make_trace(0);
    let schedule = maintenance_schedule(&probe);
    eprintln!(
        "outage_replay: {}, {} jobs on {} nodes, {} seeds x 6 mechanisms, \
         {} schedule events (hard + graceful maintenance windows){}",
        source.describe(),
        probe.len(),
        probe.system_size,
        seeds,
        schedule.len(),
        if paranoid { ", paranoid checks on" } else { "" }
    );

    let mut rows: Vec<(Mechanism, u64, OutageReport, usize, usize)> = Vec::new();
    for m in Mechanism::ALL_SIX {
        let mut cfg = SimConfig::with_mechanism(m).with_outages(schedule.clone());
        // Deterministic fingerprint: no wall-clock decision sampling.
        cfg.measure_decisions = false;
        cfg.paranoid_checks = paranoid;
        let mut outcomes: Vec<SimOutcome> = Vec::new();
        let mut agg = OutageReport::default();
        let (mut completed, mut killed) = (0usize, 0usize);
        for seed in 0..seeds {
            let trace = source.make_trace(seed);
            let out = Simulator::run_trace(&cfg, &trace);
            let rep = out.outages.expect("the schedule applied");
            // Full-rejoin windows keep every job feasible: nothing may be
            // swept, and nothing may vanish.
            assert_eq!(
                rep.infeasible_killed,
                0,
                "{} seed {seed}: full-rejoin windows swept a job as infeasible",
                m.name()
            );
            assert_eq!(
                out.metrics.completed_jobs + out.metrics.killed_jobs,
                trace.len(),
                "{} seed {seed}: a job was lost to the outage",
                m.name()
            );
            fold(&mut agg, &rep);
            completed += out.metrics.completed_jobs;
            killed += out.metrics.killed_jobs;
            outcomes.push(out);
        }
        let fp = metrics_fingerprint(&outcomes);
        eprintln!(
            "  {:<8} {} seeds: {} interrupted, {} shrunk, {} recovered, \
             {:.1} lost node-hours, fingerprint {fp:016x}",
            m.name(),
            seeds,
            agg.interrupted_jobs,
            agg.shrunk_jobs,
            agg.recoveries,
            agg.lost_node_seconds as f64 / 3600.0,
        );
        rows.push((m, fp, agg, completed, killed));
    }

    let mut t = Table::new(vec![
        "mechanism",
        "fingerprint",
        "lost node-h",
        "interrupted",
        "shrunk",
        "recovered",
        "mean recovery (s)",
        "degraded wall-h",
    ]);
    for (m, fp, rep, _, _) in &rows {
        t.row(vec![
            m.name().to_string(),
            format!("{fp:016x}"),
            format!("{:.1}", rep.lost_node_seconds as f64 / 3600.0),
            rep.interrupted_jobs.to_string(),
            rep.shrunk_jobs.to_string(),
            rep.recoveries.to_string(),
            format!("{:.1}", rep.mean_recovery_latency_secs()),
            format!("{:.1}", rep.degraded_wall_seconds as f64 / 3600.0),
        ]);
    }
    println!(
        "OUTAGE REPLAY: maintenance windows on {}",
        source.describe()
    );
    println!("{}", t.render());

    let json_path = std::env::var("HWS_OUTAGE_REPLAY_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| default_json_path());
    let label = match &source {
        TraceSource::SwfFile { path, .. } => path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| source.describe()),
        _ => source.describe(),
    };
    let json = results_to_json(&label, probe.len(), seeds, &rows);
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {} mechanisms to {}", rows.len(), json_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
}

/// Two full-rejoin maintenance windows scaled to the trace: a hard one
/// over nodes `[0, N/8)` for the second eighth of the horizon, and a
/// graceful one over `[N/8, N/4)` for the fifth eighth. Pure function of
/// the trace shape — identical across seeds of the same source.
fn maintenance_schedule(trace: &Trace) -> OutageSchedule {
    let n = trace.system_size;
    let h = trace.horizon.as_secs();
    let mut windows = Vec::new();
    for node in 0..n / 8 {
        windows.push(MaintenanceWindow {
            shard: 0,
            node: Some(node),
            start: SimTime::from_secs(h / 4),
            end: SimTime::from_secs(3 * h / 8),
            hard: true,
        });
    }
    for node in n / 8..n / 4 {
        windows.push(MaintenanceWindow {
            shard: 0,
            node: Some(node),
            start: SimTime::from_secs(h / 2),
            end: SimTime::from_secs(5 * h / 8),
            hard: false,
        });
    }
    OutageSchedule::maintenance_windows(&windows).expect("windows are well-formed")
}

fn fold(agg: &mut OutageReport, rep: &OutageReport) {
    agg.events_applied += rep.events_applied;
    agg.nodes_down += rep.nodes_down;
    agg.nodes_drained += rep.nodes_drained;
    agg.nodes_rejoined += rep.nodes_rejoined;
    agg.interrupted_jobs += rep.interrupted_jobs;
    agg.shrunk_jobs += rep.shrunk_jobs;
    agg.infeasible_killed += rep.infeasible_killed;
    agg.lost_node_seconds += rep.lost_node_seconds;
    agg.degraded_wall_seconds += rep.degraded_wall_seconds;
    agg.recoveries += rep.recoveries;
    agg.recovery_latency_seconds += rep.recovery_latency_seconds;
}

/// Workspace root, next to the other committed baselines.
fn default_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_outages.json")
}

fn results_to_json(
    label: &str,
    jobs: usize,
    seeds: u64,
    rows: &[(Mechanism, u64, OutageReport, usize, usize)],
) -> String {
    let mut out = String::from("[\n");
    for (i, (m, fp, rep, completed, killed)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "  {{\"mechanism\": \"{}\", \"source\": \"{}\", \"jobs\": {jobs}, \"seeds\": {seeds}, \
             \"metrics_fingerprint\": \"{fp:016x}\", \
             \"events_applied\": {}, \"nodes_down\": {}, \"nodes_drained\": {}, \
             \"nodes_rejoined\": {}, \"interrupted_jobs\": {}, \"shrunk_jobs\": {}, \
             \"infeasible_killed\": {}, \"lost_node_hours\": {:.3}, \
             \"degraded_wall_hours\": {:.3}, \"recoveries\": {}, \
             \"mean_recovery_latency_s\": {:.3}, \
             \"completed_jobs\": {completed}, \"killed_jobs\": {killed}}}{comma}",
            m.name(),
            label.replace('"', "'"),
            rep.events_applied,
            rep.nodes_down,
            rep.nodes_drained,
            rep.nodes_rejoined,
            rep.interrupted_jobs,
            rep.shrunk_jobs,
            rep.infeasible_killed,
            rep.lost_node_seconds as f64 / 3600.0,
            rep.degraded_wall_seconds as f64 / 3600.0,
            rep.recoveries,
            rep.mean_recovery_latency_secs(),
        );
    }
    out.push_str("]\n");
    out
}
