//! Tuner determinism: the load-bearing reproducibility claims.
//!
//! * Same (space, base, seeds) twice → **byte-identical** leaderboard
//!   text, for both tuners.
//! * A parallel search is **bitwise identical** to a sequential one
//!   (the `par_map` slot pattern returns results in index order, and
//!   every fold runs in that order).
//! * An identity-knob candidate materialises to a configuration whose
//!   run is bitwise equal to plain `SimConfig::with_mechanism` — the
//!   bridge that lets a leaderboard row be compared against every
//!   committed `BENCH_*.json` number.
//! * Real tuner output survives the text codec round trip exactly.

use hws_core::{Mechanism, SimConfig, Simulator};
use hws_metrics::RewardSpec;
use hws_search::{
    grid_search, tournament_search, Candidate, Leaderboard, SearchConfig, SearchSpace,
    TournamentConfig,
};
use hws_workload::{BackfillLevel, KnobVector, Trace, TraceConfig};

fn make_trace(seed: u64) -> Trace {
    let mut trace = TraceConfig::tiny().generate(seed);
    trace.tag_capability(0.25);
    trace
}

fn quiet_base() -> SimConfig {
    let mut cfg = SimConfig::baseline();
    cfg.measure_decisions = false;
    cfg
}

fn small_space() -> SearchSpace {
    SearchSpace {
        mechanisms: vec![Mechanism::N_PAA, Mechanism::CUA_SPAA],
        throttles: vec![None, Some(1)],
        backfills: vec![None, Some(BackfillLevel::Conservative)],
        ckpt_mults: vec![1.0],
        placements: vec![None],
    }
}

#[test]
fn grid_search_is_byte_reproducible() {
    let space = small_space();
    let cfg = SearchConfig::new(
        quiet_base(),
        RewardSpec::neg_bounded_slowdown(),
        vec![0, 1, 2],
    );
    let a = grid_search(&space, &cfg, make_trace).expect("first run");
    let b = grid_search(&space, &cfg, make_trace).expect("second run");
    assert_eq!(
        a.to_text(),
        b.to_text(),
        "two runs of the same grid search must emit identical bytes"
    );
    assert_eq!(a, b);
}

#[test]
fn grid_parallel_is_bitwise_sequential() {
    let space = small_space();
    let par = SearchConfig::new(
        quiet_base(),
        RewardSpec::class_weighted(1.0, 3.0),
        vec![0, 1],
    );
    let seq = par.clone().sequential();
    let a = grid_search(&space, &par, make_trace).expect("parallel");
    let b = grid_search(&space, &seq, make_trace).expect("sequential");
    assert_eq!(a.to_text(), b.to_text(), "parallel grid != sequential grid");
}

#[test]
fn tournament_is_byte_reproducible_and_parallel_matches_sequential() {
    let space = small_space();
    let par = TournamentConfig::new(quiet_base(), RewardSpec::utilization(), 3, 2);
    let seq = par.clone().sequential();
    let a = tournament_search(&space, &par, make_trace).expect("parallel");
    let b = tournament_search(&space, &par, make_trace).expect("parallel again");
    let c = tournament_search(&space, &seq, make_trace).expect("sequential");
    assert_eq!(a.to_text(), b.to_text(), "tournament not reproducible");
    assert_eq!(
        a.to_text(),
        c.to_text(),
        "parallel tournament != sequential"
    );
}

#[test]
fn leaderboards_are_well_formed_and_round_trip() {
    let space = small_space();
    let cfg = SearchConfig::new(quiet_base(), RewardSpec::blend(1.0, 10.0), vec![0, 1]);
    let lb = grid_search(&space, &cfg, make_trace).expect("grid");

    // Every candidate ranked exactly once, best first.
    assert_eq!(lb.rows.len(), space.len());
    for (i, row) in lb.rows.iter().enumerate() {
        assert_eq!(row.rank, i + 1);
        assert_eq!(row.seeds, cfg.seeds.len());
        assert!(row.mean_reward.is_finite());
        if i > 0 {
            assert!(
                lb.rows[i - 1].mean_reward >= row.mean_reward,
                "grid rows must be sorted by mean reward"
            );
        }
    }
    assert_eq!(lb.winner().map(|r| r.rank), Some(1));

    let text = lb.to_text();
    let back = Leaderboard::from_text(&text).expect("parse own output");
    assert_eq!(back, lb);
    assert_eq!(back.to_text(), text, "codec must be a fixed point");
}

#[test]
fn tournament_spends_more_seeds_on_survivors() {
    let space = small_space();
    let cfg = TournamentConfig::new(quiet_base(), RewardSpec::neg_bounded_slowdown(), 3, 2);
    let lb = tournament_search(&space, &cfg, make_trace).expect("tournament");
    assert_eq!(lb.rows.len(), space.len(), "every candidate stays ranked");
    let first = lb.rows.first().expect("winner");
    let last = lb.rows.last().expect("loser");
    assert!(
        first.seeds > last.seeds,
        "successive halving must evaluate the winner ({} seeds) on more \
         seeds than the first-round casualty ({} seeds)",
        first.seeds,
        last.seeds
    );
    assert_eq!(first.seeds, 3 * 2, "the winner survives every round");
    assert_eq!(last.seeds, 2, "a first-round casualty sees one round");
}

#[test]
fn identity_candidate_runs_bitwise_equal_to_plain_mechanism_config() {
    let trace = make_trace(7);
    for m in Mechanism::ALL_SIX {
        let candidate = Candidate {
            mechanism: m,
            knobs: KnobVector::identity(),
        };
        let cfg = candidate.to_config(&quiet_base()).expect("materialise");
        assert!(
            cfg.hooks.is_none(),
            "identity candidate must carry no hooks"
        );
        let got = Simulator::run_trace(&cfg, &trace);

        let mut plain = SimConfig::with_mechanism(m);
        plain.measure_decisions = false;
        let want = Simulator::run_trace(&plain, &trace);
        assert_eq!(got.metrics, want.metrics, "{}", m.name());
        assert_eq!(got.engine, want.engine, "{}", m.name());
        assert_eq!(got.classes, want.classes, "{}", m.name());
    }
}

#[test]
fn tuner_input_validation_rejects_degenerate_requests() {
    let space = small_space();
    let no_seeds = SearchConfig::new(quiet_base(), RewardSpec::utilization(), vec![]);
    assert!(grid_search(&space, &no_seeds, make_trace)
        .unwrap_err()
        .contains("seed"));

    let no_rounds = TournamentConfig::new(quiet_base(), RewardSpec::utilization(), 0, 2);
    assert!(tournament_search(&space, &no_rounds, make_trace)
        .unwrap_err()
        .contains("round"));

    let no_spr = TournamentConfig::new(quiet_base(), RewardSpec::utilization(), 2, 0);
    assert!(tournament_search(&space, &no_spr, make_trace)
        .unwrap_err()
        .contains("seed"));

    let mut bad = small_space();
    bad.mechanisms.push(Mechanism::Custom);
    let cfg = SearchConfig::new(quiet_base(), RewardSpec::utilization(), vec![0]);
    assert!(grid_search(&bad, &cfg, make_trace)
        .unwrap_err()
        .contains("Custom"));
}
