//! The driver loop: repeatedly pops the earliest event and hands it to the
//! [`Simulation`] implementation together with a scheduling context.
//!
//! The handler receives `&mut EventQueue` directly (rather than a callback
//! context) so that it can schedule follow-up events and cancel stale ones
//! without borrow gymnastics.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation model driven by the engine.
pub trait Simulation {
    type Event;

    /// Handle one event at virtual time `now`. New events may be scheduled
    /// on `queue`; they must not be in the past.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Counters describing an engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered to the handler.
    pub delivered: u64,
    /// Events scheduled over the whole run (delivered + cancelled + pending).
    pub scheduled: u64,
    /// Cancelled entries skipped by the queue.
    pub cancelled: u64,
    /// Virtual time of the last delivered event.
    pub end_time: SimTime,
}

/// Event-loop driver owning the future-event list and the model.
pub struct Engine<S: Simulation> {
    pub queue: EventQueue<S::Event>,
    pub sim: S,
    now: SimTime,
    delivered: u64,
}

impl<S: Simulation> Engine<S> {
    pub fn new(sim: S) -> Self {
        Engine {
            queue: EventQueue::new(),
            sim,
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Current virtual time (time of the most recently delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deliver a single event. Returns `false` when the queue is exhausted.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, _, ev)) => {
                debug_assert!(t >= self.now, "time went backwards");
                self.now = t;
                self.delivered += 1;
                self.sim.handle(t, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue is empty.
    pub fn run_to_completion(&mut self) -> EngineStats {
        while self.step() {}
        self.stats()
    }

    /// Run while events exist and their time is `<= horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> EngineStats {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        self.stats()
    }

    pub fn stats(&self) -> EngineStats {
        EngineStats {
            delivered: self.delivered,
            scheduled: self.queue.scheduled_total(),
            cancelled: self.queue.cancelled_skipped(),
            end_time: self.now,
        }
    }

    /// Consume the engine, returning the model (for result extraction).
    pub fn into_sim(self) -> S {
        self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Toy model: a ping-pong chain that counts down.
    struct PingPong {
        remaining: u32,
        log: Vec<(SimTime, &'static str)>,
    }

    #[derive(Debug)]
    enum Ev {
        Ping,
        Pong,
    }

    impl Simulation for PingPong {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Ping => {
                    self.log.push((now, "ping"));
                    q.schedule(now + SimDuration::from_secs(1), Ev::Pong);
                }
                Ev::Pong => {
                    self.log.push((now, "pong"));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        q.schedule(now + SimDuration::from_secs(2), Ev::Ping);
                    }
                }
            }
        }
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let mut eng = Engine::new(PingPong {
            remaining: 2,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        let stats = eng.run_to_completion();
        assert_eq!(stats.delivered, 6); // ping,pong,ping,pong,ping,pong
        assert_eq!(eng.sim.log.last().unwrap().0, SimTime::from_secs(7));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut eng = Engine::new(PingPong {
            remaining: 100,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        eng.run_until(SimTime::from_secs(4));
        assert!(eng.sim.log.iter().all(|(t, _)| *t <= SimTime::from_secs(4)));
        assert!(eng.now() <= SimTime::from_secs(4));
        // Queue still holds the future part of the chain.
        assert!(!eng.queue.is_empty());
    }

    #[test]
    fn stats_track_counts() {
        let mut eng = Engine::new(PingPong {
            remaining: 0,
            log: vec![],
        });
        eng.queue.schedule(SimTime::ZERO, Ev::Ping);
        let st = eng.run_to_completion();
        assert_eq!(st.delivered, 2);
        assert_eq!(st.scheduled, 2);
        assert_eq!(st.end_time, SimTime::from_secs(1));
    }

    #[test]
    fn deterministic_event_trace() {
        let run = || {
            let mut eng = Engine::new(PingPong {
                remaining: 10,
                log: vec![],
            });
            eng.queue.schedule(SimTime::ZERO, Ev::Ping);
            eng.run_to_completion();
            eng.sim.log
        };
        assert_eq!(run(), run());
    }
}
