//! Per-shard aggregation for federated runs.
//!
//! Federation-wide numbers are the ordinary [`Metrics`](crate::Metrics) —
//! a federated simulation records into the same `Recorder` as a
//! single-cluster one. What a federation adds is the *breakdown*: how the
//! load landed across shards. The driver accumulates one [`ShardStat`] per
//! shard and attaches the list to the run outcome.

/// Where one shard's load ended up over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    pub name: String,
    pub nodes: u32,
    /// Job starts placed on this shard (restarts after preemption count
    /// again — they are fresh placements, pinned to the same home).
    pub jobs_started: u64,
    /// Node-seconds any job occupied on this shard.
    pub occupied_node_seconds: u128,
}

impl ShardStat {
    /// Occupancy over `span_secs` of wall time, as a fraction of this
    /// shard's capacity. 0 for an empty span.
    pub fn occupancy(&self, span_secs: u64) -> f64 {
        let cap = u128::from(self.nodes) * u128::from(span_secs);
        if cap == 0 {
            0.0
        } else {
            self.occupied_node_seconds as f64 / cap as f64
        }
    }
}

/// Federation-wide rollup of a shard breakdown (a consistency companion to
/// the global [`Metrics`](crate::Metrics), not a replacement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardTotals {
    pub nodes: u32,
    pub jobs_started: u64,
    pub occupied_node_seconds: u128,
}

impl ShardTotals {
    pub fn of(shards: &[ShardStat]) -> ShardTotals {
        shards
            .iter()
            .fold(ShardTotals::default(), |acc, s| ShardTotals {
                nodes: acc.nodes + s.nodes,
                jobs_started: acc.jobs_started + s.jobs_started,
                occupied_node_seconds: acc.occupied_node_seconds + s.occupied_node_seconds,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_fraction() {
        let s = ShardStat {
            name: "a".into(),
            nodes: 10,
            jobs_started: 3,
            occupied_node_seconds: 500,
        };
        assert!((s.occupancy(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.occupancy(0), 0.0);
    }

    #[test]
    fn totals_roll_up() {
        let shards = vec![
            ShardStat {
                name: "a".into(),
                nodes: 4,
                jobs_started: 1,
                occupied_node_seconds: 10,
            },
            ShardStat {
                name: "b".into(),
                nodes: 6,
                jobs_started: 2,
                occupied_node_seconds: 20,
            },
        ];
        let t = ShardTotals::of(&shards);
        assert_eq!(t.nodes, 10);
        assert_eq!(t.jobs_started, 3);
        assert_eq!(t.occupied_node_seconds, 30);
    }
}
