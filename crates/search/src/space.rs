//! Candidates and the enumerable search space.

use hws_core::{config_for_knobs, Mechanism, SimConfig};
use hws_workload::{BackfillLevel, KnobVector, PlacementChoice};

/// One point the tuners evaluate: a mechanism plus a knob vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub mechanism: Mechanism,
    pub knobs: KnobVector,
}

impl Candidate {
    /// Human/leaderboard label, e.g.
    /// `CUA&SPAA admit=1 backfill=keep ckpt=1.0 placement=keep`.
    pub fn label(&self) -> String {
        format!("{} {}", self.mechanism.name(), self.knobs.to_text())
    }

    /// Materialise this candidate over `base` — see
    /// [`hws_core::config_for_knobs`] for the exact semantics (an
    /// unthrottled candidate carries no hook wrapper and is bitwise
    /// equivalent to plain `base.with_mechanism(..)`).
    pub fn to_config(&self, base: &SimConfig) -> Result<SimConfig, String> {
        config_for_knobs(base, self.mechanism, &self.knobs)
    }
}

/// A cartesian grid over the knob axes. [`SearchSpace::enumerate`]
/// yields candidates in a fixed nesting order (mechanisms outermost,
/// placements innermost), which is the candidate index order every
/// deterministic fold below relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    pub mechanisms: Vec<Mechanism>,
    pub throttles: Vec<Option<u32>>,
    pub backfills: Vec<Option<BackfillLevel>>,
    pub ckpt_mults: Vec<f64>,
    pub placements: Vec<Option<PlacementChoice>>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::mechanisms_only()
    }
}

impl SearchSpace {
    /// The paper's comparison as a degenerate grid: the six mechanisms
    /// at the identity knob point.
    pub fn mechanisms_only() -> Self {
        SearchSpace {
            mechanisms: Mechanism::ALL_SIX.to_vec(),
            throttles: vec![None],
            backfills: vec![None],
            ckpt_mults: vec![1.0],
            placements: vec![None],
        }
    }

    /// Number of candidates the grid enumerates.
    pub fn len(&self) -> usize {
        self.mechanisms.len()
            * self.throttles.len()
            * self.backfills.len()
            * self.ckpt_mults.len()
            * self.placements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reject empty axes, `Custom` mechanisms (no built-in composition
    /// to materialise), and invalid knob coordinates.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("search space has an empty axis".into());
        }
        if self.mechanisms.contains(&Mechanism::Custom) {
            return Err("search space cannot contain Mechanism::Custom".into());
        }
        for &m in &self.ckpt_mults {
            KnobVector {
                ckpt_mult: m,
                ..KnobVector::identity()
            }
            .validate()?;
        }
        Ok(())
    }

    /// All candidates, in the fixed nesting order.
    pub fn enumerate(&self) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.len());
        for &mechanism in &self.mechanisms {
            for &admit_throttle in &self.throttles {
                for &backfill in &self.backfills {
                    for &ckpt_mult in &self.ckpt_mults {
                        for &placement in &self.placements {
                            out.push(Candidate {
                                mechanism,
                                knobs: KnobVector {
                                    admit_throttle,
                                    backfill,
                                    ckpt_mult,
                                    placement,
                                },
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_is_the_six_mechanisms() {
        let space = SearchSpace::default();
        assert_eq!(space.len(), 6);
        let cands = space.enumerate();
        assert_eq!(cands.len(), 6);
        assert!(cands.iter().all(|c| c.knobs.is_identity()));
        assert!(space.validate().is_ok());
    }

    #[test]
    fn enumerate_order_is_stable_and_exhaustive() {
        let space = SearchSpace {
            mechanisms: vec![Mechanism::N_PAA, Mechanism::CUA_SPAA],
            throttles: vec![None, Some(1)],
            backfills: vec![None],
            ckpt_mults: vec![1.0, 2.0],
            placements: vec![None],
        };
        let cands = space.enumerate();
        assert_eq!(cands.len(), space.len());
        assert_eq!(cands.len(), 8);
        // Mechanisms outermost, then throttle, then ckpt.
        assert_eq!(cands[0].mechanism, Mechanism::N_PAA);
        assert_eq!(cands[0].knobs.admit_throttle, None);
        assert_eq!(cands[0].knobs.ckpt_mult, 1.0);
        assert_eq!(cands[1].knobs.ckpt_mult, 2.0);
        assert_eq!(cands[2].knobs.admit_throttle, Some(1));
        assert_eq!(cands[4].mechanism, Mechanism::CUA_SPAA);
    }

    #[test]
    fn validate_rejects_bad_spaces() {
        let mut space = SearchSpace::mechanisms_only();
        space.mechanisms.push(Mechanism::Custom);
        assert!(space.validate().unwrap_err().contains("Custom"));

        let mut space = SearchSpace::mechanisms_only();
        space.throttles.clear();
        assert!(space.validate().unwrap_err().contains("empty axis"));

        let mut space = SearchSpace::mechanisms_only();
        space.ckpt_mults = vec![f64::NAN];
        assert!(space.validate().unwrap_err().contains("NaN"));
    }

    #[test]
    fn label_round_trips_through_knob_codec() {
        let c = Candidate {
            mechanism: Mechanism::CUP_SPAA,
            knobs: KnobVector {
                admit_throttle: Some(2),
                backfill: Some(BackfillLevel::Aggressive),
                ckpt_mult: 0.5,
                placement: None,
            },
        };
        let label = c.label();
        let (mech, knobs) = label.split_once(' ').unwrap();
        assert_eq!(mech, "CUP&SPAA");
        assert_eq!(KnobVector::from_text(knobs).unwrap(), c.knobs);
    }
}
