//! **Table I** — workload summary of the (synthetic) Theta trace.
//!
//! Paper values: ALCF / Cobalt / 4,392 KNL nodes / Jan–Dec 2019 /
//! 37,298 jobs / 211 projects / max job length 1 day / min job size 128.

use hws_bench::TraceSource;
use hws_metrics::Table;
use hws_workload::{stats, TraceConfig};

fn main() {
    let seed = std::env::var("HWS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let source = TraceSource::from_env_or(TraceConfig::theta_2019());
    let trace = source.make_trace(seed);
    trace.validate().expect("trace is valid");
    let s = stats::summarize(&trace);

    let mut t = Table::new(vec!["Property", "Synthetic trace", "Theta 2019 (paper)"]);
    t.row(vec![
        "Location".into(),
        "synthetic (calibrated)".to_string(),
        "ALCF".into(),
    ]);
    t.row(vec![
        "Scheduler".into(),
        "hws-core (CQSim-like)".to_string(),
        "Cobalt".into(),
    ]);
    t.row(vec![
        "Compute Nodes".into(),
        format!("{}", s.system_size),
        "4,392 KNL".into(),
    ]);
    t.row(vec![
        "Trace Period".into(),
        "365 days".to_string(),
        "Jan. - Dec. 2019".into(),
    ]);
    t.row(vec![
        "Number of Jobs".into(),
        format!("{}", s.n_jobs),
        "37,298".into(),
    ]);
    t.row(vec![
        "Number of Projects".into(),
        format!("{}", s.n_active_projects),
        "211".into(),
    ]);
    t.row(vec![
        "Maximum Job Length".into(),
        format!("{}", s.max_work),
        "1 day".into(),
    ]);
    t.row(vec![
        "Minimum Job Size".into(),
        format!("{} nodes", s.min_size),
        "128 nodes".into(),
    ]);
    println!("TABLE I: Theta workload (seed {seed})");
    println!("{}", t.render());
    println!(
        "job mix: {} rigid / {} on-demand / {} malleable; {:.1}M node-hours total",
        s.n_rigid,
        s.n_on_demand,
        s.n_malleable,
        s.total_node_hours / 1e6
    );
}
