//! Deterministic submission logs: the workload format of the live
//! scheduler service.
//!
//! A [`SubmissionLog`] is an ordered sequence of timestamped operations —
//! [`SubmitOp::Submit`] and [`SubmitOp::Cancel`] — with non-decreasing
//! timestamps. A submit's timestamp is the instant the *scheduler learns
//! of the job*: the advance-notice time for noticed on-demand jobs, the
//! submission instant otherwise (see [`earliest_event`]). Replaying a log
//! through `SchedulerService` (hws-core) must produce metrics
//! bitwise-identical to replaying the equivalent materialized [`Trace`] —
//! the parity oracle the service mode is gated on.
//!
//! The text interchange format follows the SWF-codec house style: `;`
//! header comments (`HWS-SubmissionLog`, `HWS-SystemSize`, `HWS-Horizon`)
//! followed by one op per line — `S,<at>,<job csv fields…>` or
//! `C,<at>,<job id>` — so logs are diffable, greppable, and offline-
//! friendly like every other artifact in this repo.
//!
//! ## Cancel timing
//!
//! All ops sharing a timestamp apply before any simulator event at that
//! instant is delivered. A cancel timestamped at its job's own submit op
//! therefore withdraws the job while it is still *buffered* — it never
//! reaches the scheduler and provably perturbs nothing. A cancel at any
//! later timestamp hits a job already in flight (announced, queued, or
//! running); that is precisely the live-service feature, and it has no
//! batch equivalent: [`LiveSource::new`] and
//! [`SubmissionLog::materialize`] reject such logs rather than silently
//! approximating them.

use crate::job::{JobSpec, NoticeCategory, NoticeSpec};
use crate::source::JobSource;
use crate::trace::Trace;
use crate::{JobClass, JobId, JobKind, ProjectId};
use hws_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One operation in a submission log.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOp {
    /// A new job becomes known to the scheduler.
    Submit(JobSpec),
    /// A previously submitted job is withdrawn.
    Cancel(JobId),
}

/// A timestamped [`SubmitOp`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// When the operation reaches the scheduler. Non-decreasing across the
    /// log; for submits this equals [`earliest_event`] of the spec.
    pub at: SimTime,
    pub op: SubmitOp,
}

/// The instant a job first becomes visible to the scheduler: its advance
/// notice when it carries one, its submission otherwise. This is the
/// earliest event any mechanism can schedule for the job (baselines that
/// ignore notices see it later, which only lengthens the buffering
/// window — never shortens it).
pub fn earliest_event(spec: &JobSpec) -> SimTime {
    spec.notice.map_or(spec.submit, |n| n.notice_time)
}

/// An ordered, validated submission log. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionLog {
    system_size: u32,
    /// Carried for lossless [`Trace`] round trips (the trace horizon is a
    /// generation parameter, not derivable from the ops).
    horizon: SimDuration,
    entries: Vec<LogEntry>,
}

impl SubmissionLog {
    /// Build and validate a log.
    ///
    /// # Errors
    ///
    /// Out-of-order timestamps, submit timestamps that disagree with
    /// [`earliest_event`], invalid specs, duplicate submit ids, cancels of
    /// ids never submitted, or cancels timestamped before their submit.
    pub fn new(
        system_size: u32,
        horizon: SimDuration,
        entries: Vec<LogEntry>,
    ) -> Result<Self, String> {
        let mut last = SimTime::ZERO;
        let mut submitted: HashMap<u64, SimTime> = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            if e.at < last {
                return Err(format!(
                    "op {i}: timestamp {} precedes predecessor {last}",
                    e.at
                ));
            }
            last = e.at;
            match &e.op {
                SubmitOp::Submit(spec) => {
                    spec.validate(system_size)
                        .map_err(|m| format!("op {i}: {m}"))?;
                    if e.at != earliest_event(spec) {
                        return Err(format!(
                            "op {i}: submit of {} at {} but its earliest event is {}",
                            spec.id,
                            e.at,
                            earliest_event(spec)
                        ));
                    }
                    if submitted.insert(spec.id.0, e.at).is_some() {
                        return Err(format!("op {i}: duplicate submit of {}", spec.id));
                    }
                }
                SubmitOp::Cancel(id) => match submitted.get(&id.0) {
                    None => return Err(format!("op {i}: cancel of never-submitted {id}")),
                    Some(&s) if e.at < s => {
                        return Err(format!("op {i}: cancel of {id} precedes its submit"))
                    }
                    Some(_) => {}
                },
            }
        }
        Ok(SubmissionLog {
            system_size,
            horizon,
            entries,
        })
    }

    /// Express a materialized trace as a pure-submit log (the round-trip
    /// partner of [`SubmissionLog::materialize`]). Ops are ordered by
    /// `(at, submit, id)` — a noticed job becomes known at its notice
    /// time, which may precede the submission of earlier-submitted jobs.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut entries: Vec<LogEntry> = trace
            .jobs
            .iter()
            .map(|j| LogEntry {
                at: earliest_event(j),
                op: SubmitOp::Submit(j.clone()),
            })
            .collect();
        entries.sort_by_key(|e| {
            let SubmitOp::Submit(s) = &e.op else {
                unreachable!("from_trace emits only submits")
            };
            (e.at, s.submit, s.id.0)
        });
        SubmissionLog {
            system_size: trace.system_size,
            horizon: trace.horizon,
            entries,
        }
    }

    /// Rebuild the equivalent materialized [`Trace`]: every submitted job
    /// in `(submit, id)` order, minus jobs cancelled while still buffered.
    ///
    /// # Errors
    ///
    /// An in-flight cancel (see the module docs) — such an op changes live
    /// scheduler state and has no trace equivalent; replay those logs
    /// through `SchedulerService` instead.
    pub fn materialize(&self) -> Result<Trace, String> {
        Ok(Trace::new(
            self.system_size,
            self.horizon,
            self.surviving_jobs()?,
        ))
    }

    /// Jobs that actually reach the scheduler (submits minus buffered
    /// cancels), in `(submit, id)` order. See [`SubmissionLog::materialize`]
    /// for the error contract.
    fn surviving_jobs(&self) -> Result<Vec<JobSpec>, String> {
        let mut jobs: HashMap<u64, JobSpec> = HashMap::new();
        for (i, e) in self.entries.iter().enumerate() {
            match &e.op {
                SubmitOp::Submit(spec) => {
                    jobs.insert(spec.id.0, spec.clone());
                }
                SubmitOp::Cancel(id) => {
                    let spec = jobs
                        .get(&id.0)
                        .ok_or_else(|| format!("op {i}: cancel of unknown {id}"))?;
                    // Buffered ⟺ same instant as the submit op (its
                    // earliest event); anything later is in flight.
                    if e.at == earliest_event(spec) {
                        jobs.remove(&id.0);
                    } else {
                        return Err(format!(
                            "op {i}: cancel of {id} at {} hits a job in flight (earliest \
                             event {}); a JobSource cannot express in-flight cancellation \
                             — replay through SchedulerService",
                            e.at,
                            earliest_event(spec)
                        ));
                    }
                }
            }
        }
        let mut jobs: Vec<JobSpec> = jobs.into_values().collect();
        jobs.sort_by_key(|j| (j.submit, j.id.0));
        Ok(jobs)
    }

    pub fn system_size(&self) -> u32 {
        self.system_size
    }

    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Truncate to the first `n` ops (used by the snapshot proptests to
    /// split a log into a prefix to replay and a suffix to continue with).
    pub fn prefix(&self, n: usize) -> SubmissionLog {
        SubmissionLog {
            system_size: self.system_size,
            horizon: self.horizon,
            entries: self.entries[..n.min(self.entries.len())].to_vec(),
        }
    }

    /// Serialise to the text interchange format (see the module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(80 * (self.entries.len() + 3));
        let _ = writeln!(out, "; HWS-SubmissionLog: 1");
        let _ = writeln!(out, "; HWS-SystemSize: {}", self.system_size);
        let _ = writeln!(out, "; HWS-Horizon: {}", self.horizon.as_secs());
        for e in &self.entries {
            match &e.op {
                SubmitOp::Submit(j) => {
                    let (nt, pa) = match &j.notice {
                        Some(n) => (
                            n.notice_time.as_secs().to_string(),
                            n.predicted_arrival.as_secs().to_string(),
                        ),
                        None => (String::new(), String::new()),
                    };
                    let _ = writeln!(
                        out,
                        "S,{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        e.at.as_secs(),
                        j.id.0,
                        j.project.0,
                        j.kind.label(),
                        j.submit.as_secs(),
                        j.size,
                        j.min_size,
                        j.work.as_secs(),
                        j.estimate.as_secs(),
                        j.setup.as_secs(),
                        j.category.label(),
                        nt,
                        pa,
                        j.class.label()
                    );
                }
                SubmitOp::Cancel(id) => {
                    let _ = writeln!(out, "C,{},{}", e.at.as_secs(), id.0);
                }
            }
        }
        out
    }

    /// Parse the text interchange format produced by
    /// [`SubmissionLog::to_text`], re-running full validation.
    ///
    /// # Errors
    ///
    /// Line-tagged messages for missing/malformed headers or data lines,
    /// plus every [`SubmissionLog::new`] validation error.
    pub fn from_text(text: &str) -> Result<SubmissionLog, String> {
        let mut tagged = false;
        let mut system_size: Option<u32> = None;
        let mut horizon = SimDuration::ZERO;
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let ln = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                let comment = comment.trim();
                if let Some(v) = comment.strip_prefix("HWS-SubmissionLog:") {
                    tagged = v.trim() == "1";
                } else if let Some(v) = comment.strip_prefix("HWS-SystemSize:") {
                    system_size = v.trim().parse().ok();
                } else if let Some(v) = comment.strip_prefix("HWS-Horizon:") {
                    horizon = SimDuration::from_secs(
                        v.trim()
                            .parse()
                            .map_err(|e| format!("line {ln}: HWS-Horizon: {e}"))?,
                    );
                }
                continue;
            }
            if !tagged {
                return Err(format!(
                    "line {ln}: data before the HWS-SubmissionLog header"
                ));
            }
            let f: Vec<&str> = line.split(',').collect();
            let parse_u64 = |s: &str, what: &str| {
                s.parse::<u64>()
                    .map_err(|e| format!("line {ln}: {what}: {e}"))
            };
            let parse_u32 = |s: &str, what: &str| {
                s.parse::<u32>()
                    .map_err(|e| format!("line {ln}: {what}: {e}"))
            };
            match f[0] {
                "C" => {
                    if f.len() != 3 {
                        return Err(format!("line {ln}: C op takes 3 fields, got {}", f.len()));
                    }
                    entries.push(LogEntry {
                        at: SimTime::from_secs(parse_u64(f[1], "at")?),
                        op: SubmitOp::Cancel(JobId(parse_u64(f[2], "job id")?)),
                    });
                }
                "S" => {
                    if f.len() != 15 {
                        return Err(format!("line {ln}: S op takes 15 fields, got {}", f.len()));
                    }
                    let kind = match f[4] {
                        "rigid" => JobKind::Rigid,
                        "on-demand" => JobKind::OnDemand,
                        "malleable" => JobKind::Malleable,
                        other => return Err(format!("line {ln}: unknown kind {other}")),
                    };
                    let category = match f[11] {
                        "no-notice" => NoticeCategory::NoNotice,
                        "accurate" => NoticeCategory::Accurate,
                        "early" => NoticeCategory::Early,
                        "late" => NoticeCategory::Late,
                        other => return Err(format!("line {ln}: unknown category {other}")),
                    };
                    let notice = if f[12].is_empty() {
                        None
                    } else {
                        Some(NoticeSpec {
                            notice_time: SimTime::from_secs(parse_u64(f[12], "notice_time")?),
                            predicted_arrival: SimTime::from_secs(parse_u64(
                                f[13],
                                "predicted_arrival",
                            )?),
                        })
                    };
                    let class = match f[14] {
                        "capacity" => JobClass::Capacity,
                        "capability" => JobClass::Capability,
                        other => return Err(format!("line {ln}: unknown class {other}")),
                    };
                    entries.push(LogEntry {
                        at: SimTime::from_secs(parse_u64(f[1], "at")?),
                        op: SubmitOp::Submit(JobSpec {
                            id: JobId(parse_u64(f[2], "id")?),
                            project: ProjectId(parse_u32(f[3], "project")?),
                            kind,
                            submit: SimTime::from_secs(parse_u64(f[5], "submit")?),
                            size: parse_u32(f[6], "size")?,
                            min_size: parse_u32(f[7], "min_size")?,
                            work: SimDuration::from_secs(parse_u64(f[8], "work")?),
                            estimate: SimDuration::from_secs(parse_u64(f[9], "estimate")?),
                            setup: SimDuration::from_secs(parse_u64(f[10], "setup")?),
                            notice,
                            category,
                            site_hint: None,
                            class,
                        }),
                    });
                }
                other => return Err(format!("line {ln}: unknown op tag {other}")),
            }
        }
        let system_size = system_size.ok_or_else(|| "missing HWS-SystemSize header".to_string())?;
        SubmissionLog::new(system_size, horizon, entries)
    }

    /// Write the log to a file (text format).
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Read and validate a log from a file (text format).
    ///
    /// # Errors
    ///
    /// IO failures and every [`SubmissionLog::from_text`] error.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<SubmissionLog, String> {
        let path = path.as_ref();
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_text(&text)
    }
}

/// [`JobSource`] view of a [`SubmissionLog`]: yields the log's surviving
/// jobs (submits minus buffered cancels) in `(submit, id)` order, so any
/// batch driver can replay a service workload. Construction fails for
/// in-flight cancels a source cannot express — see the module docs.
pub struct LiveSource {
    system_size: u32,
    lead: SimDuration,
    jobs: std::vec::IntoIter<JobSpec>,
}

impl LiveSource {
    /// # Errors
    ///
    /// An in-flight (non-buffered) cancel, which has no source-level
    /// equivalent.
    pub fn new(log: &SubmissionLog) -> Result<Self, String> {
        let jobs = log.surviving_jobs()?;
        let lead = jobs
            .iter()
            .filter_map(|j| j.notice.map(|n| j.submit.since(n.notice_time)))
            .max()
            .unwrap_or(SimDuration::ZERO);
        Ok(LiveSource {
            system_size: log.system_size,
            lead,
            jobs: jobs.into_iter(),
        })
    }
}

impl JobSource for LiveSource {
    fn system_size(&self) -> u32 {
        self.system_size
    }

    fn max_notice_lead(&self) -> SimDuration {
        self.lead
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        self.jobs.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceConfig;
    use crate::job::JobSpecBuilder;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn sample_log() -> SubmissionLog {
        let tr = TraceConfig::tiny().generate(11);
        SubmissionLog::from_trace(&tr)
    }

    #[test]
    fn from_trace_materialize_is_identity() {
        let tr = TraceConfig::tiny().generate(7);
        let log = SubmissionLog::from_trace(&tr);
        let back = log.materialize().expect("pure-submit log materializes");
        assert_eq!(back.system_size, tr.system_size);
        assert_eq!(back.horizon, tr.horizon);
        assert_eq!(back.jobs, tr.jobs);
    }

    #[test]
    fn from_trace_orders_ops_by_learn_time() {
        let tr = TraceConfig::tiny().generate(7);
        let log = SubmissionLog::from_trace(&tr);
        let mut last = SimTime::ZERO;
        for e in log.entries() {
            assert!(e.at >= last, "ops out of order");
            last = e.at;
            let SubmitOp::Submit(s) = &e.op else {
                panic!("from_trace must emit only submits")
            };
            assert_eq!(e.at, earliest_event(s));
        }
    }

    #[test]
    fn text_round_trip_is_identity() {
        let log = sample_log();
        let text = log.to_text();
        let back = SubmissionLog::from_text(&text).expect("parse");
        assert_eq!(back, log);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn text_round_trip_with_cancels() {
        let spec = JobSpecBuilder::rigid(5).submit_at(t(100)).size(4).build();
        let log = SubmissionLog::new(
            64,
            SimDuration::from_secs(1_000),
            vec![
                LogEntry {
                    at: t(100),
                    op: SubmitOp::Submit(spec),
                },
                LogEntry {
                    at: t(150),
                    op: SubmitOp::Cancel(JobId(5)),
                },
            ],
        )
        .expect("valid");
        let back = SubmissionLog::from_text(&log.to_text()).expect("parse");
        assert_eq!(back, log);
    }

    #[test]
    fn validation_rejects_disorder_and_duplicates() {
        let a = JobSpecBuilder::rigid(1).submit_at(t(50)).size(2).build();
        let b = JobSpecBuilder::rigid(2).submit_at(t(10)).size(2).build();
        // Timestamps must be non-decreasing.
        let err = SubmissionLog::new(
            64,
            SimDuration::ZERO,
            vec![
                LogEntry {
                    at: t(50),
                    op: SubmitOp::Submit(a.clone()),
                },
                LogEntry {
                    at: t(10),
                    op: SubmitOp::Submit(b),
                },
            ],
        )
        .unwrap_err();
        assert!(err.contains("precedes"), "{err}");
        // Submit timestamp must equal the earliest event.
        let err = SubmissionLog::new(
            64,
            SimDuration::ZERO,
            vec![LogEntry {
                at: t(40),
                op: SubmitOp::Submit(a.clone()),
            }],
        )
        .unwrap_err();
        assert!(err.contains("earliest event"), "{err}");
        // Duplicate ids are rejected.
        let err = SubmissionLog::new(
            64,
            SimDuration::ZERO,
            vec![
                LogEntry {
                    at: t(50),
                    op: SubmitOp::Submit(a.clone()),
                },
                LogEntry {
                    at: t(50),
                    op: SubmitOp::Submit(a),
                },
            ],
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        // Cancels must reference a prior submit.
        let err = SubmissionLog::new(
            64,
            SimDuration::ZERO,
            vec![LogEntry {
                at: t(5),
                op: SubmitOp::Cancel(JobId(9)),
            }],
        )
        .unwrap_err();
        assert!(err.contains("never-submitted"), "{err}");
    }

    #[test]
    fn live_source_matches_materialized_trace() {
        let tr = TraceConfig::tiny().generate(3);
        let log = SubmissionLog::from_trace(&tr);
        let mut src = LiveSource::new(&log).expect("pure submits");
        assert_eq!(src.system_size(), tr.system_size);
        assert_eq!(src.max_notice_lead(), tr.max_notice_lead());
        let jobs: Vec<_> = std::iter::from_fn(|| src.next_job()).collect();
        assert_eq!(jobs, tr.jobs);
    }

    #[test]
    fn buffered_cancel_drops_the_job() {
        // A cancel at the same instant as its submit op withdraws the job
        // before the scheduler ever sees it.
        let doomed = JobSpecBuilder::rigid(1).submit_at(t(300)).size(2).build();
        let keeper = JobSpecBuilder::rigid(2).submit_at(t(400)).size(2).build();
        let log = SubmissionLog::new(
            64,
            SimDuration::from_secs(1_000),
            vec![
                LogEntry {
                    at: t(300),
                    op: SubmitOp::Submit(doomed),
                },
                LogEntry {
                    at: t(300),
                    op: SubmitOp::Cancel(JobId(1)),
                },
                LogEntry {
                    at: t(400),
                    op: SubmitOp::Submit(keeper.clone()),
                },
            ],
        )
        .expect("valid");
        let tr = log.materialize().expect("buffered cancel materializes");
        assert_eq!(tr.jobs, vec![keeper.clone()]);
        let mut src = LiveSource::new(&log).expect("buffered cancel streams");
        assert_eq!(src.next_job(), Some(keeper));
        assert_eq!(src.next_job(), None);
    }

    #[test]
    fn in_flight_cancel_is_not_source_representable() {
        let job = JobSpecBuilder::rigid(1).submit_at(t(300)).size(2).build();
        let log = SubmissionLog::new(
            64,
            SimDuration::from_secs(1_000),
            vec![
                LogEntry {
                    at: t(300),
                    op: SubmitOp::Submit(job),
                },
                LogEntry {
                    at: t(350),
                    op: SubmitOp::Cancel(JobId(1)),
                },
            ],
        )
        .expect("valid log — the service can replay it");
        let err = log.materialize().unwrap_err();
        assert!(err.contains("in flight"), "{err}");
        assert!(LiveSource::new(&log).is_err());
    }

    #[test]
    fn notice_learn_order_differs_from_submit_order() {
        // A noticed job is learned (op order) before an earlier-submitting
        // plain job, yet materializes after it in (submit, id) order.
        let noticed = JobSpecBuilder::on_demand(3)
            .submit_at(t(900))
            .size(4)
            .notice(t(250), t(900))
            .build();
        let plain = JobSpecBuilder::rigid(1).submit_at(t(300)).size(2).build();
        let log = SubmissionLog::new(
            64,
            SimDuration::from_secs(2_000),
            vec![
                LogEntry {
                    at: t(250),
                    op: SubmitOp::Submit(noticed),
                },
                LogEntry {
                    at: t(300),
                    op: SubmitOp::Submit(plain),
                },
            ],
        )
        .expect("valid");
        let tr = log.materialize().unwrap();
        assert_eq!(
            tr.jobs.iter().map(|j| j.id.0).collect::<Vec<_>>(),
            vec![1, 3]
        );
        // And the round trip back to a log restores learn order.
        assert_eq!(SubmissionLog::from_trace(&tr), log);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(SubmissionLog::from_text("S,1,2\n").is_err()); // before header
        let ok = "; HWS-SubmissionLog: 1\n; HWS-SystemSize: 64\n";
        assert!(SubmissionLog::from_text(ok).unwrap().is_empty());
        assert!(SubmissionLog::from_text(&format!("{ok}X,1,2\n")).is_err());
        assert!(SubmissionLog::from_text(&format!("{ok}C,1\n")).is_err());
        assert!(SubmissionLog::from_text(&format!("{ok}C,zz,3\n")).is_err());
        assert!(SubmissionLog::from_text("; HWS-SubmissionLog: 1\n").is_err()); // no size
    }

    #[test]
    fn save_load_round_trips() {
        let log = sample_log();
        let dir = std::env::temp_dir().join(format!("hws_sublog_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ops.log");
        log.save(&path).expect("save");
        let back = SubmissionLog::load(&path).expect("load");
        assert_eq!(back, log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefix_truncates() {
        let log = sample_log();
        assert_eq!(log.prefix(3).len(), 3.min(log.len()));
        assert_eq!(log.prefix(usize::MAX), log);
        assert!(log.prefix(0).is_empty());
    }
}
