//! Outage-engine contracts:
//!
//! 1. **Empty schedule is invisible** — a run configured with
//!    `OutageSchedule::empty()` is bitwise-identical to a run with no
//!    schedule at all, across baseline, all six mechanisms, a
//!    capability-aware composition, and a 2-shard federation.
//! 2. **Full rejoin completes everything** — a maintenance window that
//!    takes a whole shard down and brings every node back later loses no
//!    feasible job: all six mechanisms complete the entire trace, on a
//!    single cluster and on a federation.
//! 3. **Snapshot mid-outage is transparent** — snapshot → restore →
//!    continue between two outage events is bitwise-identical to never
//!    pausing, including the outage report and — with failure injection
//!    active — the counter-based failure draws (epoch keys serialize, so
//!    restored failure times match exactly).
//! 4. **Cancel mid-recovery** — a job evicted by a hard down waits to
//!    restart; cancelling it in that window reports `Cancelled` (never
//!    `Unknown`) and leaves a consistent cluster.
//!
//! Every run here has `paranoid_checks` on, which cross-validates the new
//! live-capacity invariants (down nodes never appear in free counts or
//! `avail_for` headroom) on every event.

use hws_cluster::FederationConfig;
use hws_core::{
    replay_submission_log, CancelOutcome, CapabilityAware, JobStatus, Mechanism, SchedulerService,
    SimConfig, SimOutcome, Simulator,
};
use hws_sim::{SimDuration, SimTime};
use hws_workload::job::JobSpecBuilder;
use hws_workload::{
    MaintenanceWindow, OutageEvent, OutageKind, OutageSchedule, SubmissionLog, Trace, TraceConfig,
};
use proptest::prelude::*;

fn cfg_for(mechanism: Mechanism) -> SimConfig {
    let mut cfg = SimConfig::with_mechanism(mechanism);
    cfg.measure_decisions = false;
    cfg.paranoid_checks = true;
    cfg
}

fn capability_cfg() -> SimConfig {
    let mut cfg = SimConfig::with_hooks(CapabilityAware::for_mechanism(Mechanism::CUP_SPAA));
    cfg.measure_decisions = false;
    cfg.paranoid_checks = true;
    cfg
}

fn assert_same(a: &SimOutcome, b: &SimOutcome, label: &str) {
    assert_eq!(a.metrics, b.metrics, "metrics diverge for {label}");
    assert_eq!(a.engine, b.engine, "engine stats diverge for {label}");
    assert_eq!(a.classes, b.classes, "classes diverge for {label}");
    assert_eq!(a.shards, b.shards, "shards diverge for {label}");
    assert_eq!(a.outages, b.outages, "outage reports diverge for {label}");
    assert_eq!(a.admitted_jobs, b.admitted_jobs);
}

/// Whole-machine maintenance window: every node of `shard` hard-down at
/// `start`, rejoined at `end`.
fn shard_window(shard: u32, start: u64, end: u64) -> OutageSchedule {
    OutageSchedule::maintenance_windows(&[MaintenanceWindow {
        shard,
        node: None,
        start: SimTime::from_secs(start),
        end: SimTime::from_secs(end),
        hard: true,
    }])
    .expect("valid window")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 3a: an **empty** schedule takes the exact same code path
    /// as no schedule — same metrics, same event counts, no report —
    /// across baseline, all six mechanisms, a capability-aware
    /// composition, and a 2-shard federation.
    #[test]
    fn empty_schedule_is_bitwise_invisible(seed in 0..1_000u64, jobs in 30..100u32) {
        let trace = TraceConfig::tiny().with_jobs(jobs).with_capability_frac(0.15).generate(seed);
        let mut cfgs: Vec<(String, SimConfig)> = vec![
            ("baseline".into(), {
                let mut c = SimConfig::baseline();
                c.measure_decisions = false;
                c
            }),
            ("capability-aware".into(), capability_cfg()),
            (
                "2-shard federation".into(),
                cfg_for(Mechanism::CUA_SPAA)
                    .federated(FederationConfig::even_split(2, trace.system_size)),
            ),
        ];
        for m in Mechanism::ALL_SIX {
            cfgs.push((m.name().into(), cfg_for(m)));
        }
        for (label, cfg) in cfgs {
            let plain = Simulator::run_trace(&cfg, &trace);
            let empty = Simulator::run_trace(
                &cfg.clone().with_outages(OutageSchedule::empty()),
                &trace,
            );
            prop_assert!(plain.outages.is_none(), "no-schedule run reported outages");
            prop_assert!(empty.outages.is_none(), "empty schedule produced a report");
            assert_same(&plain, &empty, &label);
        }
    }

    /// Satellite 3b: a hard whole-machine outage followed by a full
    /// rejoin completes **every** job of the trace under all six
    /// mechanisms — evicted residents checkpoint-restart, malleable
    /// drains resubmit, and nothing is swept as infeasible because the
    /// rejoin restores full capacity before the horizon passes.
    #[test]
    fn outage_then_full_rejoin_completes_every_job(seed in 0..500u64, jobs in 30..80u32) {
        let trace = TraceConfig::tiny().with_jobs(jobs).generate(seed);
        // Strike mid-trace: day 2 to day 2.5 of a 7-day horizon.
        let schedule = shard_window(0, 172_800, 216_000);
        for m in Mechanism::ALL_SIX {
            let cfg = cfg_for(m).with_outages(schedule.clone());
            let out = Simulator::run_trace(&cfg, &trace);
            prop_assert_eq!(
                out.metrics.completed_jobs,
                trace.jobs.len(),
                "{} lost jobs to a fully-recovered outage", m.name()
            );
            prop_assert_eq!(out.metrics.killed_jobs, 0);
            let rep = out.outages.expect("events applied");
            prop_assert_eq!(rep.events_applied, 2);
            // Every down node came back.
            prop_assert_eq!(rep.nodes_down, rep.nodes_rejoined);
            prop_assert!(rep.lost_node_seconds > 0);
            prop_assert!(rep.degraded_wall_seconds >= 43_200);
        }
    }
}

/// Tentpole, federation level: rolling maintenance across both shards of
/// a federation — shard 1 fully down and rejoined, then shard 0 drained
/// and rejoined — completes every job. Jobs fit a single shard, so
/// placement always has a live home.
#[test]
fn federation_rolling_maintenance_completes_every_job() {
    let span = SimDuration::from_days(4);
    let jobs: Vec<_> = (0..40u64)
        .map(|i| {
            JobSpecBuilder::rigid(i + 1)
                .submit_at(SimTime::from_secs(600 * i))
                .size(4 + (i % 4) as u32 * 4)
                .work(SimDuration::from_secs(1_800 + 120 * i))
                .estimate(SimDuration::from_secs(7_200))
                .build()
        })
        .collect();
    let n = jobs.len();
    let trace = Trace::new(64, span, jobs);
    let schedule = OutageSchedule::new(
        [
            shard_window(1, 20_000, 40_000).events().to_vec(),
            vec![
                OutageEvent {
                    at: SimTime::from_secs(50_000),
                    kind: OutageKind::Drain,
                    shard: 0,
                    node: None,
                },
                OutageEvent {
                    at: SimTime::from_secs(70_000),
                    kind: OutageKind::Rejoin,
                    shard: 0,
                    node: None,
                },
            ],
        ]
        .concat(),
    )
    .expect("ordered events");
    for m in Mechanism::ALL_SIX {
        let cfg = cfg_for(m)
            .federated(FederationConfig::even_split(2, 64))
            .with_outages(schedule.clone());
        let out = Simulator::run_trace(&cfg, &trace);
        assert_eq!(
            out.metrics.completed_jobs,
            n,
            "{} lost jobs under rolling maintenance",
            m.name()
        );
        assert_eq!(out.metrics.killed_jobs, 0);
        let rep = out.outages.expect("events applied");
        assert_eq!(rep.events_applied, 4);
        assert!(rep.nodes_drained > 0, "graceful drain window never drained");
    }
}

/// Drive `log[..cut]` through a service, snapshot, check the image is a
/// serialization fixed point, restore, drive the rest.
fn service_roundtrip(cfg: &SimConfig, log: &SubmissionLog, cut: usize) -> SimOutcome {
    let mut svc = SchedulerService::new(cfg.clone(), log.system_size());
    for e in &log.entries()[..cut] {
        svc.apply(e).expect("log entry applies");
    }
    let bytes = svc.snapshot();
    let restored =
        SchedulerService::<hws_cluster::Cluster>::restore(&bytes, cfg, ()).expect("restores");
    assert_eq!(restored.snapshot(), bytes, "snapshot not a fixed point");
    let mut svc = restored;
    for e in &log.entries()[cut..] {
        svc.apply(e).expect("log entry applies after restore");
    }
    svc.into_outcome()
}

/// Acceptance: snapshot → restore **mid-outage** (between the down and
/// the rejoin, with evicted jobs still waiting to recover) is
/// bitwise-identical to the uninterrupted run — including the outage
/// report, whose state rides the snapshot.
#[test]
fn snapshot_mid_outage_is_transparent() {
    let trace = TraceConfig::tiny().with_jobs(60).generate(7);
    let log = SubmissionLog::from_trace(&trace);
    let schedule = shard_window(0, 172_800, 216_000);
    // Cut inside the outage window: the first entry past the down event.
    let cut = log
        .entries()
        .iter()
        .position(|e| e.at > SimTime::from_secs(172_800))
        .expect("entries after the window opens");
    for m in Mechanism::ALL_SIX {
        let cfg = cfg_for(m).with_outages(schedule.clone());
        let uninterrupted = replay_submission_log(&cfg, &log).expect("service replay");
        let resumed = service_roundtrip(&cfg, &log, cut);
        assert_same(&uninterrupted, &resumed, m.name());
        assert!(
            uninterrupted.outages.expect("report").interrupted_jobs > 0,
            "{}: the window evicted nothing — cut point not mid-outage",
            m.name()
        );
    }
}

/// Satellite 1: with failure injection active, a snapshot → restore run
/// reproduces the uninterrupted run bitwise — the counter-based failure
/// draws are keyed by `(job, epoch)` and the epochs serialize, so the
/// restored session redraws **identical** failure times rather than a
/// fresh sequence. Outages ride along so eviction-bumped epochs are
/// covered too.
#[test]
fn restored_failure_draws_are_bitwise_identical() {
    let trace = TraceConfig::tiny().with_jobs(80).generate(21);
    let log = SubmissionLog::from_trace(&trace);
    let schedule = shard_window(0, 172_800, 216_000);
    for m in [Mechanism::N_PAA, Mechanism::CUP_SPAA] {
        let cfg = cfg_for(m)
            .with_failures(400.0)
            .with_outages(schedule.clone());
        let uninterrupted = replay_submission_log(&cfg, &log).expect("service replay");
        assert!(
            uninterrupted.metrics.total_failures > 0,
            "{}: MTBF too long — no failures drawn, test is vacuous",
            m.name()
        );
        for frac in [1, 2, 3] {
            let cut = log.len() * frac / 4;
            let resumed = service_roundtrip(&cfg, &log, cut);
            assert_same(&uninterrupted, &resumed, m.name());
        }
    }
}

/// Satellite 2: cancelling a job that an outage evicted — queued again,
/// waiting to restart — returns `Cancelled` and a coherent `query`, not
/// `Unknown`, and the drained run keeps every invariant.
#[test]
fn cancel_mid_recovery_is_coherent() {
    // One hard down of node 63 at t=1000; nothing ever rejoins.
    let schedule = OutageSchedule::new(vec![OutageEvent {
        at: SimTime::from_secs(1_000),
        kind: OutageKind::Down,
        shard: 0,
        node: Some(63),
    }])
    .expect("single event");
    let cfg = cfg_for(Mechanism::CUP_SPAA).with_outages(schedule);
    let mut svc = SchedulerService::new(cfg, 64);

    // Two 32-node jobs fill the machine; allocation order puts the second
    // one on the upper half, so the down strikes it.
    let stays = JobSpecBuilder::rigid(1)
        .submit_at(SimTime::from_secs(10))
        .size(32)
        .work(SimDuration::from_secs(50_000))
        .estimate(SimDuration::from_secs(60_000))
        .build();
    let victim = JobSpecBuilder::rigid(2)
        .submit_at(SimTime::from_secs(20))
        .size(32)
        .work(SimDuration::from_secs(50_000))
        .estimate(SimDuration::from_secs(60_000))
        .build();
    svc.submit(stays.clone()).unwrap();
    svc.submit(victim.clone()).unwrap();

    svc.step_until(SimTime::from_secs(500));
    assert_eq!(svc.query(victim.id), JobStatus::Running);
    assert_eq!(svc.down_nodes(), 0);

    // Past the down: the victim is evicted and cannot restart (31 free
    // nodes live, it needs 32) — it waits for the survivor to finish.
    svc.step_until(SimTime::from_secs(2_000));
    assert_eq!(svc.down_nodes(), 1);
    assert_eq!(svc.live_nodes(), 63);
    assert_eq!(svc.query(stays.id), JobStatus::Running);
    assert_eq!(svc.query(victim.id), JobStatus::Waiting);

    // Mid-recovery cancel: coherent state, never Unknown.
    assert_eq!(svc.cancel(victim.id), CancelOutcome::Cancelled);
    assert_eq!(svc.query(victim.id), JobStatus::Cancelled);
    assert_eq!(svc.cancel(victim.id), CancelOutcome::Unknown);

    let out = svc.into_outcome();
    assert_eq!(out.metrics.completed_jobs, 1);
    assert_eq!(out.metrics.killed_jobs, 1);
    let rep = out.outages.expect("the down applied");
    assert_eq!(rep.interrupted_jobs, 1);
    assert_eq!(rep.recoveries, 0, "a cancelled job is not a recovery");
    assert_eq!(rep.nodes_down, 1);
}

/// Admin drain/rejoin ops work without any configured schedule, and a
/// graceful drain of a busy node takes it out only when its resident
/// releases it.
#[test]
fn admin_drain_without_schedule() {
    let cfg = cfg_for(Mechanism::N_PAA);
    let mut svc = SchedulerService::new(cfg, 64);
    let job = JobSpecBuilder::rigid(1)
        .submit_at(SimTime::from_secs(10))
        .size(8)
        .work(SimDuration::from_secs(600))
        .estimate(SimDuration::from_secs(900))
        .build();
    svc.submit(job.clone()).unwrap();
    svc.step_until(SimTime::from_secs(100));
    assert_eq!(svc.query(job.id), JobStatus::Running);

    // Free node: down immediately. Busy node: marked, downs on release.
    assert!(svc.drain_node(0, 63), "free node drains immediately");
    assert!(!svc.drain_node(0, 0), "busy node only marks");
    assert_eq!(svc.down_nodes(), 1);
    svc.step_until(SimTime::from_secs(1_000));
    assert_eq!(svc.query(job.id), JobStatus::Finished);
    assert_eq!(svc.down_nodes(), 2, "marked node went down on release");
    assert_eq!(svc.live_nodes(), 62);

    // Rejoin restores; out-of-range coordinates are refused, not fatal.
    assert!(svc.rejoin_node(0, 0));
    assert!(svc.rejoin_node(0, 63));
    assert!(!svc.rejoin_node(0, 63), "double rejoin is a no-op");
    assert!(!svc.drain_node(0, 64), "node index out of range");
    assert!(!svc.drain_node(1, 0), "shard index out of range");
    assert_eq!(svc.down_nodes(), 0);
    assert_eq!(svc.live_nodes(), 64);

    let out = svc.into_outcome();
    assert_eq!(out.metrics.completed_jobs, 1);
    // Admin ops without a schedule leave no outage report.
    assert!(out.outages.is_none());
}

/// Degraded-mode contract: while rejoins may still come, an oversized
/// waiting job blocks; once the schedule's horizon proves the capacity
/// loss permanent, it is killed as infeasible.
#[test]
fn oversized_jobs_block_then_die_at_the_horizon() {
    // Node 63 goes down at t=1000 and never returns; a second no-op
    // event at t=9000 ends the schedule horizon.
    let schedule = OutageSchedule::new(vec![
        OutageEvent {
            at: SimTime::from_secs(1_000),
            kind: OutageKind::Down,
            shard: 0,
            node: Some(63),
        },
        OutageEvent {
            at: SimTime::from_secs(9_000),
            kind: OutageKind::Rejoin,
            shard: 0,
            node: Some(62),
        },
    ])
    .expect("ordered events");
    let cfg = cfg_for(Mechanism::N_PAA).with_outages(schedule);
    let mut svc = SchedulerService::new(cfg, 64);
    let full = JobSpecBuilder::rigid(1)
        .submit_at(SimTime::from_secs(2_000))
        .size(64)
        .work(SimDuration::from_secs(600))
        .estimate(SimDuration::from_secs(900))
        .build();
    svc.submit(full.clone()).unwrap();

    // Submitted while a rejoin is still pending: blocks, does not die.
    svc.step_until(SimTime::from_secs(5_000));
    assert_eq!(svc.query(full.id), JobStatus::Waiting);

    // The horizon passes with only 63 live nodes: provably infeasible.
    svc.step_until(SimTime::from_secs(9_000));
    assert_eq!(svc.query(full.id), JobStatus::Killed);
    let out = svc.into_outcome();
    assert_eq!(out.outages.expect("events applied").infeasible_killed, 1);
    assert_eq!(out.metrics.killed_jobs, 1);
}
