//! Criterion bench for **Observation 10**: "the proposed methods take less
//! than 10 milliseconds to make a decision, hence being feasible for online
//! deployment."
//!
//! We benchmark the pure decision kernels on a *fully loaded Theta-sized
//! state*: hundreds of running jobs on 4,392 nodes, an on-demand request
//! that needs victim selection / shrink planning / CUP planning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hws_core::mechanism::{
    plan_cup, plan_shrinks, select_victims, CupCandidate, ShrinkInfo, VictimInfo,
};
use hws_core::{ShrinkStrategy, VictimOrder};
use hws_sim::SimTime;
use hws_workload::{JobClass, JobId};
use std::hint::black_box;

/// A Theta-sized running set: jobs covering several thousand nodes.
fn victims(n: usize) -> Vec<VictimInfo> {
    (0..n)
        .map(|i| VictimInfo {
            id: JobId(i as u64),
            nodes: 8 + (i as u32 * 37) % 128,
            overhead_ns: ((i as u64 * 2_654_435_761) % 1_000_000) * 60,
            started: SimTime::from_secs((i as u64 * 997) % 86_400),
            class: JobClass::Capacity,
        })
        .collect()
}

fn shrinkables(n: usize) -> Vec<ShrinkInfo> {
    (0..n)
        .map(|i| {
            let cur = 16 + (i as u32 * 53) % 256;
            ShrinkInfo {
                id: JobId(i as u64),
                cur,
                min: cur / 5,
                class: JobClass::Capacity,
            }
        })
        .collect()
}

fn cup_candidates(n: usize) -> Vec<CupCandidate> {
    (0..n)
        .map(|i| CupCandidate {
            id: JobId(i as u64),
            nodes: 8 + (i as u32 * 37) % 128,
            expected_end: SimTime::from_secs(1_000 + (i as u64 * 331) % 100_000),
            overhead_ns: ((i as u64 * 48_271) % 1_000_000) * 60,
            cheap_preempt_at: (i % 3 != 0).then(|| SimTime::from_secs((i as u64 * 77) % 2_000)),
            class: JobClass::Capacity,
        })
        .collect()
}

fn bench_decisions(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision_latency");

    for n in [64usize, 400, 1_000] {
        g.bench_function(format!("paa_select_victims/{n}_running"), |b| {
            let v = victims(n);
            b.iter_batched(
                || v.clone(),
                |v| black_box(select_victims(v, 2_048, VictimOrder::Overhead)),
                BatchSize::SmallInput,
            )
        });
    }

    for n in [32usize, 150, 400] {
        g.bench_function(format!("spaa_plan_shrinks/{n}_malleable"), |b| {
            let s = shrinkables(n);
            b.iter(|| black_box(plan_shrinks(&s, 2_048, ShrinkStrategy::EvenWaterFill)))
        });
    }

    for n in [64usize, 400] {
        g.bench_function(format!("cup_plan/{n}_running"), |b| {
            let cand = cup_candidates(n);
            b.iter(|| black_box(plan_cup(&cand, 2_048, SimTime::from_secs(1_800))))
        });
    }

    g.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
