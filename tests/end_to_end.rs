//! Cross-crate integration tests: generator → scheduler → metrics, for
//! every mechanism, with the cluster's conservation invariants checked
//! after every event (paranoid mode).

use hybrid_workload_sched::prelude::*;

fn small_trace(seed: u64) -> Trace {
    TraceConfig::small().generate(seed)
}

#[test]
fn every_mechanism_completes_every_job() {
    let trace = small_trace(1);
    for mechanism in Mechanism::ALL_SIX {
        let cfg = SimConfig::with_mechanism(mechanism).paranoid();
        let out = Simulator::run_trace(&cfg, &trace);
        assert_eq!(
            out.metrics.completed_jobs,
            trace.len(),
            "{mechanism}: every job must eventually complete"
        );
        assert_eq!(out.metrics.killed_jobs, 0, "{mechanism}");
        assert!(out.metrics.utilization <= 1.0 + 1e-9, "{mechanism}");
        assert!(
            out.metrics.utilization <= out.metrics.raw_occupancy + 1e-9,
            "{mechanism}"
        );
    }
}

#[test]
fn baseline_never_preempts() {
    let trace = small_trace(2);
    let out = Simulator::run_trace(&SimConfig::baseline().paranoid(), &trace);
    assert_eq!(out.metrics.rigid.preemption_ratio, 0.0);
    assert_eq!(out.metrics.malleable.preemption_ratio, 0.0);
    // No preemption → no waste → utilization equals raw occupancy.
    assert!((out.metrics.utilization - out.metrics.raw_occupancy).abs() < 1e-12);
}

#[test]
fn hybrid_mechanisms_far_exceed_baseline_instant_start() {
    let trace = small_trace(3);
    let base = Simulator::run_trace(&SimConfig::baseline(), &trace).metrics;
    for mechanism in Mechanism::ALL_SIX {
        let m = Simulator::run_trace(&SimConfig::with_mechanism(mechanism), &trace).metrics;
        assert!(
            m.instant_start_rate >= base.instant_start_rate,
            "{mechanism}: {} < baseline {}",
            m.instant_start_rate,
            base.instant_start_rate
        );
        assert!(
            m.instant_start_rate > 0.7,
            "{mechanism}: {}",
            m.instant_start_rate
        );
    }
}

#[test]
fn runs_are_deterministic_across_repeats() {
    let trace = small_trace(4);
    for mechanism in [Mechanism::CUA_SPAA, Mechanism::CUP_PAA, Mechanism::Baseline] {
        let cfg = SimConfig::with_mechanism(mechanism);
        let mut a = Simulator::run_trace(&cfg, &trace);
        let mut b = Simulator::run_trace(&cfg, &trace);
        for m in [&mut a.metrics, &mut b.metrics] {
            m.decision_mean_us = 0.0;
            m.decision_p99_us = 0.0;
            m.decision_max_us = 0.0;
        }
        assert_eq!(a.metrics, b.metrics, "{mechanism}");
        assert_eq!(a.engine, b.engine, "{mechanism}");
    }
}

#[test]
fn different_seeds_produce_different_workloads() {
    let a = small_trace(10);
    let b = small_trace(11);
    assert_ne!(a, b);
    let cfg = SimConfig::with_mechanism(Mechanism::N_PAA);
    let ma = Simulator::run_trace(&cfg, &a).metrics;
    let mb = Simulator::run_trace(&cfg, &b).metrics;
    assert_ne!(ma.avg_turnaround_h, mb.avg_turnaround_h);
}

#[test]
fn disabling_checkpoints_increases_preemption_waste() {
    // Without checkpoints, every rigid preemption loses the entire run.
    let trace = small_trace(5);
    let with = SimConfig::with_mechanism(Mechanism::N_PAA);
    let without = {
        let mut c = with.clone();
        c.ckpt = CkptConfig::disabled();
        c
    };
    let m_with = Simulator::run_trace(&with, &trace).metrics;
    let m_without = Simulator::run_trace(&without, &trace).metrics;
    let waste = |m: &Metrics| m.raw_occupancy - m.utilization;
    // Only meaningful when preemptions actually happened.
    if m_with.rigid.preemption_ratio > 0.0 && m_without.rigid.preemption_ratio > 0.0 {
        assert!(
            waste(&m_without) >= waste(&m_with) - 1e-3,
            "no-ckpt waste {} vs ckpt waste {}",
            waste(&m_without),
            waste(&m_with)
        );
    }
}

#[test]
fn workload_mixes_shift_od_instant_profile() {
    // W2 (accurate notices) must give CUP at least as good an instant rate
    // as W1 (mostly unannounced) — the CUP preparation needs notices.
    let cfg_w1 = TraceConfig::small().with_notice_mix(NoticeMix::W1);
    let cfg_w2 = TraceConfig::small().with_notice_mix(NoticeMix::W2);
    let sim = SimConfig::with_mechanism(Mechanism::CUP_PAA);
    let mut w1 = MetricsAvg::new();
    let mut w2 = MetricsAvg::new();
    for seed in 0..4 {
        w1.push(&Simulator::run_trace(&sim, &cfg_w1.generate(seed)).metrics);
        w2.push(&Simulator::run_trace(&sim, &cfg_w2.generate(seed)).metrics);
    }
    // Both should be high; the check is that notices are not *hurting*.
    assert!(w2.mean().instant_start_rate > 0.8);
    assert!(w1.mean().instant_start_rate > 0.8);
}

#[test]
fn trace_csv_round_trip_preserves_simulation() {
    let trace = small_trace(6);
    let reparsed = Trace::from_csv(&trace.to_csv()).expect("parse");
    let cfg = SimConfig::with_mechanism(Mechanism::CUA_PAA);
    let m1 = Simulator::run_trace(&cfg, &trace).metrics;
    let m2 = Simulator::run_trace(&cfg, &reparsed).metrics;
    assert_eq!(m1.completed_jobs, m2.completed_jobs);
    assert!((m1.avg_turnaround_h - m2.avg_turnaround_h).abs() < 1e-12);
}

#[test]
fn od_front_priority_over_later_batch_jobs() {
    // An on-demand job that cannot start instantly must still start before
    // batch jobs submitted after it.
    use hws_sim::{SimDuration as D, SimTime as T};
    let jobs = vec![
        // Fill the machine with an un-preemptable on-demand job.
        JobSpecBuilder::on_demand(0)
            .submit_at(T::from_secs(0))
            .size(100)
            .work(D::from_secs(5_000))
            .estimate(D::from_secs(6_000))
            .build(),
        // Second OD job arrives; nothing preemptable → waits at the front.
        JobSpecBuilder::on_demand(1)
            .submit_at(T::from_secs(100))
            .size(100)
            .work(D::from_secs(1_000))
            .estimate(D::from_secs(2_000))
            .build(),
        // Batch job submitted later must not overtake it.
        JobSpecBuilder::rigid(2)
            .submit_at(T::from_secs(200))
            .size(100)
            .work(D::from_secs(1_000))
            .estimate(D::from_secs(1_000))
            .build(),
    ];
    let trace = Trace::new(100, D::from_days(1), jobs);
    let out = Simulator::run_trace(
        &SimConfig::with_mechanism(Mechanism::N_PAA).paranoid(),
        &trace,
    );
    assert_eq!(out.metrics.completed_jobs, 3);
    // OD job 1 runs 5000..6000, rigid job 2 runs 6000..7000.
    let od_tat = out.metrics.on_demand.avg_turnaround_h * 3_600.0;
    // Jobs 0 (5000 s) and 1 (6000-100+... ) → mean ≈ (5000 + 5900) / 2.
    assert!((od_tat - 5_450.0).abs() < 5.0, "od tat = {od_tat}");
}
