//! **Figure 6** — the paper's main result: the six mechanisms compared on
//! workloads W1–W5 (Table III notice-accuracy mixes), averaged over
//! randomly generated traces. One sub-table per metric panel:
//!
//! * average job turnaround (overall / rigid / malleable / on-demand),
//! * system utilization,
//! * on-demand instant-start rate,
//! * preemption ratio (rigid and malleable).
//!
//! `-- --check` additionally evaluates the paper's Observations 1–9 against
//! the measured grid and prints a pass/fail line per observation.

use hws_bench::{run_fig6_grid, seeds_from_env, Scale, TraceSource};
use hws_core::{Mechanism, SimConfig};
use hws_metrics::{Metrics, Table};

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let scale = Scale::from_env();
    let seeds = seeds_from_env();
    let source = TraceSource::from_env(scale);
    eprintln!(
        "fig6: scale {scale:?}, {}, {seeds} seeds x 5 workloads x 6 mechanisms = {} sims",
        source.describe(),
        seeds * 30
    );

    println!("TABLE III: on-demand notice distribution per workload");
    let mut t3 = Table::new(vec![
        "",
        "No Notice",
        "Accurate Notice",
        "Arrive Early",
        "Arrive Late",
    ]);
    for (name, mix) in hws_workload::NoticeMix::TABLE3 {
        t3.row(vec![
            name.to_string(),
            format!("{:.0}%", mix.no_notice * 100.0),
            format!("{:.0}%", mix.accurate * 100.0),
            format!("{:.0}%", mix.early * 100.0),
            format!("{:.0}%", mix.late * 100.0),
        ]);
    }
    println!("{}", t3.render());

    let baseline = hws_bench::run_averaged_source(&SimConfig::baseline(), &source, seeds);
    let rows = run_fig6_grid(&source, seeds, &Mechanism::ALL_SIX);

    type Panel = (&'static str, fn(&Metrics) -> String);
    let metric_panels: [Panel; 8] = [
        ("avg job turnaround (h)", |m| {
            format!("{:.1}", m.avg_turnaround_h)
        }),
        ("rigid turnaround (h)", |m| {
            format!("{:.1}", m.rigid.avg_turnaround_h)
        }),
        ("malleable turnaround (h)", |m| {
            format!("{:.1}", m.malleable.avg_turnaround_h)
        }),
        ("on-demand turnaround (h)", |m| {
            format!("{:.2}", m.on_demand.avg_turnaround_h)
        }),
        ("system utilization (%)", |m| {
            format!("{:.1}", m.utilization * 100.0)
        }),
        ("on-demand instant start (%)", |m| {
            format!("{:.1}", m.instant_start_rate * 100.0)
        }),
        ("rigid preemption ratio (%)", |m| {
            format!("{:.1}", m.rigid.preemption_ratio * 100.0)
        }),
        ("malleable preemption ratio (%)", |m| {
            format!("{:.1}", m.malleable.preemption_ratio * 100.0)
        }),
    ];

    for (title, fmt) in metric_panels {
        let mut t = Table::new(vec![
            "workload", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA",
        ]);
        for (wname, _) in hws_workload::NoticeMix::TABLE3 {
            let mut cells = vec![wname.to_string()];
            for m in Mechanism::ALL_SIX {
                let cell = rows
                    .iter()
                    .find(|(w, mech, _)| *w == wname && *mech == m)
                    .map(|(_, _, metrics)| fmt(metrics))
                    .expect("grid complete");
                cells.push(cell);
            }
            t.row(cells);
        }
        println!(
            "FIGURE 6 panel: {title}   [baseline FCFS/EASY: {}]",
            fmt(&baseline)
        );
        println!("{}", t.render());
    }

    println!(
        "decision latency across all runs: mean {:.1} us, p99 {:.1} us, max {:.1} us (Obs. 10: << 10 ms)",
        avg(&rows, |m| m.decision_mean_us),
        rows.iter().map(|(_, _, m)| m.decision_p99_us).fold(0.0, f64::max),
        rows.iter().map(|(_, _, m)| m.decision_max_us).fold(0.0, f64::max),
    );

    if check {
        run_observation_checks(&baseline, &rows);
    }
}

fn avg(rows: &[(&str, Mechanism, Metrics)], f: fn(&Metrics) -> f64) -> f64 {
    rows.iter().map(|(_, _, m)| f(m)).sum::<f64>() / rows.len() as f64
}

fn mech_avg(rows: &[(&str, Mechanism, Metrics)], mech: Mechanism, f: fn(&Metrics) -> f64) -> f64 {
    let v: Vec<f64> = rows
        .iter()
        .filter(|(_, m, _)| *m == mech)
        .map(|(_, _, m)| f(m))
        .collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Evaluate the qualitative claims of §V-A/§V-B against the measured grid.
fn run_observation_checks(baseline: &Metrics, rows: &[(&str, Mechanism, Metrics)]) {
    use Mechanism as M;
    println!("\nOBSERVATION CHECKS (paper §V)");
    let mut pass = 0;
    let mut total = 0;
    let mut check = |name: &str, ok: bool| {
        total += 1;
        if ok {
            pass += 1;
        }
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    };

    let instant = |m: &Metrics| m.instant_start_rate;
    let util = |m: &Metrics| m.utilization;
    let tat = |m: &Metrics| m.avg_turnaround_h;
    let rigid_tat = |m: &Metrics| m.rigid.avg_turnaround_h;
    let mal_tat = |m: &Metrics| m.malleable.avg_turnaround_h;
    let rigid_pr = |m: &Metrics| m.rigid.preemption_ratio;
    let mal_pr = |m: &Metrics| m.malleable.preemption_ratio;

    // Obs 1: mechanisms lift instant start dramatically; the preemption/
    // shrink cost lands on the batch classes (rigid turnaround grows).
    // Note: in this reproduction the malleable class *gains* so much from
    // flexible sizing that the overall average does not rise the way the
    // paper's does — see DESIGN.md §6 for the analysis.
    let all_instant = avg(rows, instant);
    check(
        "Obs 1a: instant-start far above baseline",
        all_instant > baseline.instant_start_rate + 0.3,
    );
    check(
        "Obs 1b: rigid turnaround increases vs baseline (preemption cost)",
        avg(rows, rigid_tat) > baseline.rigid.avg_turnaround_h,
    );
    println!(
        "         (overall TAT: baseline {:.1} h vs mechanisms {:.1} h; rigid {:.1} -> {:.1} h)",
        baseline.avg_turnaround_h,
        avg(rows, tat),
        baseline.rigid.avg_turnaround_h,
        avg(rows, rigid_tat)
    );

    // Obs 2: N&PAA worst on turnaround and utilization. In this
    // reproduction the six mechanisms sit within noise of each other on
    // these two aggregates (preemption events are rare at calibrated
    // load), so the check allows a small tolerance band.
    let worst_tat = M::ALL_SIX
        .iter()
        .fold(f64::MIN, |a, &m| a.max(mech_avg(rows, m, tat)));
    check(
        "Obs 2a: N&PAA within the worst avg-turnaround band",
        mech_avg(rows, M::N_PAA, tat) >= worst_tat - 0.5,
    );
    let worst_util = M::ALL_SIX
        .iter()
        .fold(f64::MAX, |a, &m| a.min(mech_avg(rows, m, util)));
    check(
        "Obs 2b: N&PAA within the worst utilization band",
        mech_avg(rows, M::N_PAA, util) <= worst_util + 0.01,
    );

    // Obs 3: SPAA reduces malleable preemption ratio vs the matching PAA.
    let spaa_mal = (mech_avg(rows, M::N_SPAA, mal_pr)
        + mech_avg(rows, M::CUA_SPAA, mal_pr)
        + mech_avg(rows, M::CUP_SPAA, mal_pr))
        / 3.0;
    let paa_mal = (mech_avg(rows, M::N_PAA, mal_pr)
        + mech_avg(rows, M::CUA_PAA, mal_pr)
        + mech_avg(rows, M::CUP_PAA, mal_pr))
        / 3.0;
    check(
        "Obs 3: SPAA lowers malleable preemption ratio",
        spaa_mal < paa_mal,
    );

    // Obs 5: CUA beats CUP on turnaround/utilization on average.
    let cua = (mech_avg(rows, M::CUA_PAA, tat) + mech_avg(rows, M::CUA_SPAA, tat)) / 2.0;
    let cup = (mech_avg(rows, M::CUP_PAA, tat) + mech_avg(rows, M::CUP_SPAA, tat)) / 2.0;
    check("Obs 5: CUA turnaround <= CUP turnaround", cua <= cup + 0.5);

    // Obs 6: malleable incentive under CUA/CUP mechanisms.
    let incentive = [M::CUA_PAA, M::CUA_SPAA, M::CUP_PAA, M::CUP_SPAA]
        .iter()
        .all(|&m| mech_avg(rows, m, mal_tat) < mech_avg(rows, m, rigid_tat));
    check(
        "Obs 6: malleable TAT < rigid TAT under CUA/CUP mechanisms",
        incentive,
    );

    // Obs 7: N&SPAA achieves the lowest rigid turnaround of the six.
    let best_rigid = M::ALL_SIX
        .iter()
        .fold(f64::MAX, |a, &m| a.min(mech_avg(rows, m, rigid_tat)));
    check(
        "Obs 7: N&SPAA lowest rigid turnaround",
        mech_avg(rows, M::N_SPAA, rigid_tat) <= best_rigid * 1.05,
    );

    // Obs 8: malleable preemption ratio > rigid preemption ratio overall.
    check(
        "Obs 8: malleable preempted more often than rigid",
        avg(rows, mal_pr) > avg(rows, rigid_pr),
    );

    // Obs 9: very high instant start everywhere.
    check(
        "Obs 9: instant start rate > 90% for every cell",
        rows.iter().all(|(_, _, m)| m.instant_start_rate > 0.9),
    );

    // Obs 10: decisions are fast.
    check(
        "Obs 10: max decision < 10 ms",
        rows.iter().all(|(_, _, m)| m.decision_max_us < 10_000.0),
    );

    // Obs 11: CUP methods peak on W2 (accurate notices).
    let cup_w2 = rows
        .iter()
        .filter(|(w, m, _)| *w == "W2" && matches!(*m, M::CUP_PAA | M::CUP_SPAA))
        .map(|(_, _, m)| m.utilization)
        .sum::<f64>()
        / 2.0;
    let cup_w1 = rows
        .iter()
        .filter(|(w, m, _)| *w == "W1" && matches!(*m, M::CUP_PAA | M::CUP_SPAA))
        .map(|(_, _, m)| m.utilization)
        .sum::<f64>()
        / 2.0;
    check(
        "Obs 11: CUP utilization W2 (accurate) >= W1 (no notice)",
        cup_w2 >= cup_w1 - 0.005,
    );

    // Obs 12: CUA best turnaround on W4 (longest lead time).
    let cua_by_w = |w: &str| {
        rows.iter()
            .filter(|(ww, m, _)| *ww == w && matches!(*m, M::CUA_PAA | M::CUA_SPAA))
            .map(|(_, _, m)| m.avg_turnaround_h)
            .sum::<f64>()
            / 2.0
    };
    let w4 = cua_by_w("W4");
    let others = ["W1", "W2", "W3", "W5"]
        .iter()
        .map(|w| cua_by_w(w))
        .fold(f64::MAX, f64::min);
    check(
        "Obs 12: CUA turnaround on W4 <= other workloads",
        w4 <= others + 0.5,
    );

    println!("observations: {pass}/{total} PASS");
}
