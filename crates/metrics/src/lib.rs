//! # hws-metrics — measurement for hybrid-workload simulations
//!
//! Implements the paper's §IV-D metrics:
//!
//! 1. **Job turnaround time** (submission → completion), overall and per
//!    job class;
//! 2. **On-demand instant-start rate** — the share of on-demand jobs that
//!    launch within the two-minute vacate window of their arrival (plus a
//!    strict `delay == 0` variant);
//! 3. **Preemption ratio** per class — the share of rigid/malleable jobs
//!    preempted at least once;
//! 4. **System utilization** — occupied node-time minus computation wasted
//!    by preemption (lost work segments, drain windows, repeated setups),
//!    over `N × span`.
//!
//! A [`Recorder`] receives callbacks from the simulation driver;
//! [`Metrics::compute`] folds the records into the report. `MetricsAvg`
//! averages reports across seeds the way the paper averages ten traces.

pub mod classes;
pub mod outage;
pub mod record;
pub mod reward;
pub mod shard;
pub mod summary;
pub mod table;

pub use classes::{ClassAcc, ClassBreakdown, ClassStats};
pub use outage::OutageReport;
pub use record::{JobRecord, Recorder};
pub use reward::{RewardKind, RewardSpec};
pub use shard::{ShardStat, ShardTotals};
pub use summary::{KindStats, Metrics, MetricsAcc, MetricsAvg};
pub use table::Table;
